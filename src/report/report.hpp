#pragma once

/// \file report.hpp
/// Structured experiment reporting.
///
/// Benches print tables to stdout; this module additionally captures them
/// as structured data and renders Markdown and CSV artifacts, so a full
/// reproduction run can leave a self-contained report directory behind
/// (see examples/paper_reproduction.cpp).

#include <iosfwd>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace aeva::report {

/// One named table of string cells (header + rows), with optional caption.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Adds a data row; arity must match the header.
  Table& add_row(std::vector<std::string> cells);

  /// Free-form caption shown under the table in Markdown.
  Table& caption(std::string text);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// GitHub-flavoured Markdown rendering.
  [[nodiscard]] std::string to_markdown() const;

  /// CSV rendering (header + rows).
  [[nodiscard]] util::CsvTable to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::string caption_;
};

/// An ordered collection of tables plus prose sections, renderable as one
/// Markdown document and a sidecar CSV per table.
class Report {
 public:
  explicit Report(std::string title);

  /// Appends a prose paragraph (Markdown allowed).
  Report& paragraph(std::string text);

  /// Appends a section heading.
  Report& section(std::string heading);

  /// Appends a table (copied).
  Report& table(Table table);

  /// Renders the whole report as Markdown.
  [[nodiscard]] std::string to_markdown() const;

  /// Writes `<dir>/report.md` plus one `<dir>/<slug>.csv` per table.
  /// Creates the directory; throws std::runtime_error on I/O failure.
  void write(const std::string& directory) const;

  [[nodiscard]] std::size_t table_count() const noexcept {
    return tables_.size();
  }

 private:
  struct Block {
    enum class Kind { kParagraph, kSection, kTable } kind;
    std::string text;        // paragraph / section
    std::size_t table_index = 0;
  };

  std::string title_;
  std::vector<Block> blocks_;
  std::vector<Table> tables_;
};

/// Filesystem-safe slug of a title ("Figure 5 — Makespan" → "figure-5-makespan").
[[nodiscard]] std::string slugify(const std::string& title);

}  // namespace aeva::report
