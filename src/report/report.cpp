#include "report/report.hpp"

#include <cctype>
#include <filesystem>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace aeva::report {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  AEVA_REQUIRE(!title_.empty(), "table needs a title");
  AEVA_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  AEVA_REQUIRE(cells.size() == header_.size(), "row arity ", cells.size(),
               " does not match header arity ", header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::caption(std::string text) {
  caption_ = std::move(text);
  return *this;
}

namespace {

std::string md_escape(const std::string& cell) {
  std::string out;
  for (const char c : cell) {
    if (c == '|') {
      out += "\\|";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << "**" << title_ << "**\n\n";
  os << "|";
  for (const std::string& h : header_) {
    os << " " << md_escape(h) << " |";
  }
  os << "\n|";
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << "---|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (const std::string& cell : row) {
      os << " " << md_escape(cell) << " |";
    }
    os << "\n";
  }
  if (!caption_.empty()) {
    os << "\n*" << caption_ << "*\n";
  }
  return os.str();
}

util::CsvTable Table::to_csv() const {
  util::CsvTable csv;
  csv.header = header_;
  csv.rows = rows_;
  return csv;
}

Report::Report(std::string title) : title_(std::move(title)) {
  AEVA_REQUIRE(!title_.empty(), "report needs a title");
}

Report& Report::paragraph(std::string text) {
  blocks_.push_back(Block{Block::Kind::kParagraph, std::move(text), 0});
  return *this;
}

Report& Report::section(std::string heading) {
  blocks_.push_back(Block{Block::Kind::kSection, std::move(heading), 0});
  return *this;
}

Report& Report::table(Table table) {
  blocks_.push_back(Block{Block::Kind::kTable, "", tables_.size()});
  tables_.push_back(std::move(table));
  return *this;
}

std::string Report::to_markdown() const {
  std::ostringstream os;
  os << "# " << title_ << "\n\n";
  for (const Block& block : blocks_) {
    switch (block.kind) {
      case Block::Kind::kParagraph:
        os << block.text << "\n\n";
        break;
      case Block::Kind::kSection:
        os << "## " << block.text << "\n\n";
        break;
      case Block::Kind::kTable:
        os << tables_[block.table_index].to_markdown() << "\n";
        break;
    }
  }
  return os.str();
}

void Report::write(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    throw std::runtime_error("cannot create report directory " + directory +
                             ": " + ec.message());
  }
  const std::filesystem::path dir(directory);
  // Crash-safe publish (temp + fsync + rename); throws a typed
  // util::FileWriteError naming the path on any failure, disk-full
  // included.
  util::write_file_atomic((dir / "report.md").string(), to_markdown());
  for (const Table& table : tables_) {
    util::write_csv_file((dir / (slugify(table.title()) + ".csv")).string(),
                         table.to_csv());
  }
}

std::string slugify(const std::string& title) {
  std::string slug;
  bool dash_pending = false;
  for (const unsigned char c : title) {
    if (std::isalnum(c) != 0) {
      if (dash_pending && !slug.empty()) {
        slug += '-';
      }
      dash_pending = false;
      slug += static_cast<char>(std::tolower(c));
    } else {
      dash_pending = true;
    }
  }
  return slug.empty() ? "table" : slug;
}

}  // namespace aeva::report
