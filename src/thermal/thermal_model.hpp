#pragma once

/// \file thermal_model.hpp
/// Datacenter thermal substrate — the paper's future work ii
/// ("integrating the proposed solution with schemes for autonomic thermal
/// management in instrumented datacenters") and the thermal context of the
/// authors' prior work [3].
///
/// The model is the standard abstract heat-recirculation formulation
/// (Tang et al.): every server heats its exhaust proportionally to its
/// power draw, a fixed fraction of that exhaust recirculates into the
/// inlets of nearby machines (decaying geometrically with rack distance),
/// and the CRAC supplies air at a fixed cold-aisle temperature. Inlet
/// temperatures then follow T_in = T_cold + D · k · P in steady state,
/// which is accurate at the multi-minute granularity of VM allocation.

#include <cstddef>
#include <vector>

namespace aeva::thermal {

/// Thermal environment parameters.
struct ThermalConfig {
  double cold_aisle_c = 18.0;      ///< CRAC supply temperature
  double inlet_limit_c = 32.0;     ///< redline inlet temperature
  double watts_to_delta_c = 0.10;  ///< exhaust rise per Watt of IT load
  /// Fraction of a server's exhaust heat reaching its immediate rack
  /// neighbours' inlets; halves per additional slot of distance.
  double recirculation = 0.20;
  /// CRAC coefficient of performance: cooling energy = IT energy / COP.
  double crac_cop = 4.0;
  /// Rack-row width: exhaust recirculates only among servers in the same
  /// row (hot-aisle containment between rows). 0 → one single row.
  int servers_per_row = 20;
};

/// Static rack topology plus the recirculation solve.
class ThermalMap {
 public:
  /// `server_count` machines in one rack row. Throws on a degenerate
  /// configuration.
  ThermalMap(int server_count, ThermalConfig config);

  /// Steady-state inlet temperature per server for the given instantaneous
  /// power draws (W); `power_w.size()` must equal the server count.
  [[nodiscard]] std::vector<double> inlet_temps(
      const std::vector<double>& power_w) const;

  /// Largest inlet temperature under the given draws.
  [[nodiscard]] double peak_inlet_c(const std::vector<double>& power_w) const;

  /// Cooling power that the CRAC spends extracting the given IT power.
  [[nodiscard]] double cooling_power_w(double it_power_w) const;

  [[nodiscard]] int server_count() const noexcept { return server_count_; }
  [[nodiscard]] const ThermalConfig& config() const noexcept {
    return config_;
  }

 private:
  int server_count_;
  ThermalConfig config_;
  /// Row-major recirculation weights D[i][j]: share of server j's exhaust
  /// temperature rise appearing at server i's inlet.
  std::vector<double> weights_;
};

}  // namespace aeva::thermal
