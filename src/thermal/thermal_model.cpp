#include "thermal/thermal_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aeva::thermal {

ThermalMap::ThermalMap(int server_count, ThermalConfig config)
    : server_count_(server_count), config_(config) {
  AEVA_REQUIRE(server_count >= 1, "need at least one server");
  AEVA_REQUIRE(config_.watts_to_delta_c >= 0.0, "negative heat coefficient");
  AEVA_REQUIRE(config_.recirculation >= 0.0 && config_.recirculation < 1.0,
               "recirculation fraction out of [0, 1)");
  AEVA_REQUIRE(config_.crac_cop > 0.0, "CRAC COP must be positive");
  AEVA_REQUIRE(config_.inlet_limit_c > config_.cold_aisle_c,
               "inlet redline must exceed the cold-aisle temperature");

  AEVA_REQUIRE(config_.servers_per_row >= 0, "negative row width");
  const std::size_t row_width =
      config_.servers_per_row > 0
          ? static_cast<std::size_t>(config_.servers_per_row)
          : static_cast<std::size_t>(server_count_);
  const auto n = static_cast<std::size_t>(server_count_);
  weights_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;  // a server does not ingest its own exhaust directly
      }
      if (i / row_width != j / row_width) {
        continue;  // hot-aisle containment between rows
      }
      const auto distance = static_cast<double>(
          i > j ? i - j : j - i);
      weights_[i * n + j] =
          config_.recirculation * std::pow(0.5, distance - 1.0);
    }
  }
}

std::vector<double> ThermalMap::inlet_temps(
    const std::vector<double>& power_w) const {
  AEVA_REQUIRE(power_w.size() == static_cast<std::size_t>(server_count_),
               "power vector size ", power_w.size(),
               " does not match server count ", server_count_);
  const auto n = static_cast<std::size_t>(server_count_);
  std::vector<double> inlets(n, config_.cold_aisle_c);
  for (std::size_t i = 0; i < n; ++i) {
    double rise = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      rise += weights_[i * n + j] * config_.watts_to_delta_c * power_w[j];
    }
    inlets[i] += rise;
  }
  return inlets;
}

double ThermalMap::peak_inlet_c(const std::vector<double>& power_w) const {
  const std::vector<double> inlets = inlet_temps(power_w);
  return *std::max_element(inlets.begin(), inlets.end());
}

double ThermalMap::cooling_power_w(double it_power_w) const {
  AEVA_REQUIRE(it_power_w >= 0.0, "negative IT power");
  return it_power_w / config_.crac_cop;
}

}  // namespace aeva::thermal
