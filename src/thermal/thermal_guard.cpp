#include "thermal/thermal_guard.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aeva::thermal {

ThermalGuardAllocator::ThermalGuardAllocator(
    std::unique_ptr<core::Allocator> inner, const modeldb::ModelDatabase& db,
    const ThermalMap& map, GuardConfig config)
    : inner_(std::move(inner)), db_(&db), map_(&map), config_(config) {
  AEVA_REQUIRE(inner_ != nullptr, "null inner allocator");
  AEVA_REQUIRE(config_.soft_limit_c > map.config().cold_aisle_c,
               "soft limit must exceed the cold-aisle temperature");
}

std::vector<double> ThermalGuardAllocator::predicted_inlets(
    std::span<const core::ServerState> servers) const {
  std::vector<double> power(static_cast<std::size_t>(map_->server_count()),
                            0.0);
  for (const core::ServerState& server : servers) {
    AEVA_REQUIRE(server.id >= 0 && server.id < map_->server_count(),
                 "server ", server.id, " outside the thermal map");
    if (server.allocated.total() > 0) {
      power[static_cast<std::size_t>(server.id)] =
          db_->estimate(server.allocated).avg_power_w();
    } else if (server.powered) {
      power[static_cast<std::size_t>(server.id)] = 125.0;
    }
  }
  return map_->inlet_temps(power);
}

core::AllocationResult ThermalGuardAllocator::allocate(
    std::span<const core::VmRequest> vms,
    std::span<const core::ServerState> servers) const {
  const std::vector<double> inlets = predicted_inlets(servers);
  std::vector<core::ServerState> cool;
  cool.reserve(servers.size());
  for (const core::ServerState& server : servers) {
    if (inlets[static_cast<std::size_t>(server.id)] <= config_.soft_limit_c) {
      cool.push_back(server);
    }
  }
  // Rank the surviving servers coolest-first: inner strategies break ties
  // toward the front of the list, so equal-cost placements drift away
  // from hot zones instead of marching along the rack.
  std::stable_sort(cool.begin(), cool.end(),
                   [&](const core::ServerState& a,
                       const core::ServerState& b) {
                     return inlets[static_cast<std::size_t>(a.id)] <
                            inlets[static_cast<std::size_t>(b.id)];
                   });
  if (!cool.empty()) {
    core::AllocationResult guarded = inner_->allocate(vms, cool);
    if (guarded.complete) {
      return guarded;
    }
  }
  // Fall back to the unmasked cluster rather than starving the queue.
  return inner_->allocate(vms, servers);
}

std::string ThermalGuardAllocator::name() const {
  return "TG(" + inner_->name() + ")";
}

}  // namespace aeva::thermal
