#pragma once

/// \file thermal_guard.hpp
/// Proactive thermal guard: an Allocator decorator that predicts inlet
/// temperatures from the cluster's current allocations (via the empirical
/// power model) and hides servers whose inlets would cross a soft
/// threshold from the inner strategy — proactive avoidance of the
/// "undesired thermal behavior (e.g., equipment overheating)" that the
/// paper's reactive predecessor [3] had to migrate away from.

#include <memory>

#include "core/types.hpp"
#include "modeldb/database.hpp"
#include "thermal/thermal_model.hpp"

namespace aeva::thermal {

/// Guard parameters.
struct GuardConfig {
  /// Servers whose predicted inlet exceeds this are masked (defaults to
  /// 1 °C under the redline).
  double soft_limit_c = 31.0;
};

/// Wraps any allocation strategy with thermal masking. When masking every
/// server would make the request unplaceable, the guard falls back to the
/// full server list (availability beats thermal comfort, as in reactive
/// schemes that only act when possible).
class ThermalGuardAllocator final : public core::Allocator {
 public:
  /// `inner` is owned; `db` and `map` must outlive the guard. `map`'s
  /// server count must cover every server id passed to allocate().
  ThermalGuardAllocator(std::unique_ptr<core::Allocator> inner,
                        const modeldb::ModelDatabase& db,
                        const ThermalMap& map, GuardConfig config = {});

  [[nodiscard]] core::AllocationResult allocate(
      std::span<const core::VmRequest> vms,
      std::span<const core::ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

  /// Predicted inlet temperatures for the given cluster state (exposed for
  /// tests and reporting).
  [[nodiscard]] std::vector<double> predicted_inlets(
      std::span<const core::ServerState> servers) const;

 private:
  std::unique_ptr<core::Allocator> inner_;
  const modeldb::ModelDatabase* db_;
  const ThermalMap* map_;
  GuardConfig config_;
};

}  // namespace aeva::thermal
