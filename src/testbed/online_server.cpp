#include "testbed/online_server.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace aeva::testbed {

namespace {
constexpr double kEps = 1e-9;
}

OnlineServer::OnlineServer(ServerConfig config) : config_(config) {
  config_.validate();
}

std::int64_t OnlineServer::add_vm(const workload::AppSpec& app,
                                  double runtime_scale) {
  app.validate();
  AEVA_REQUIRE(runtime_scale > 0.0, "runtime scale must be positive, got ",
               runtime_scale);
  Vm vm;
  vm.handle = next_handle_++;
  vm.app = app.scaled_runtime(runtime_scale);
  vm.phase = 0;
  vm.remaining_nominal_s = vm.app.phases.front().nominal_s;
  vms_.push_back(std::move(vm));
  resolve();
  return vms_.back().handle;
}

void OnlineServer::resolve() {
  std::vector<ActivePhase> phases;
  phases.reserve(vms_.size());
  for (const Vm& vm : vms_) {
    phases.push_back(ActivePhase{&vm.app.phases[vm.phase].demand,
                                 vm.app.mem_footprint_mb});
  }
  std::vector<double> rates;
  loads_ = solve_contention(config_, phases, rates);
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    vms_[i].rate = rates[i];
  }
}

double OnlineServer::next_event_in() const {
  double soonest = std::numeric_limits<double>::infinity();
  for (const Vm& vm : vms_) {
    soonest = std::min(soonest, vm.remaining_nominal_s / vm.rate);
  }
  return soonest;
}

void OnlineServer::advance(double dt, std::vector<std::int64_t>& completed) {
  AEVA_REQUIRE(dt >= 0.0, "cannot advance time backwards: ", dt);
  double left = dt;
  // Generous budget: every sub-step but the last retires at least one
  // phase of some VM.
  std::size_t phase_budget = 16;
  for (const Vm& vm : vms_) {
    phase_budget += vm.app.phases.size() + 1;
  }
  std::size_t guard = 0;
  while (left > kEps && !vms_.empty()) {
    AEVA_INVARIANT(++guard <= phase_budget * 4,
                "online server sub-step budget exhausted");

    const double step = std::min(left, next_event_in());
    // Accrue progress for the sub-step.
    for (Vm& vm : vms_) {
      vm.remaining_nominal_s -= vm.rate * step;
    }
    left -= step;

    // Retire finished phases / VMs.
    bool membership_changed = false;
    bool phase_changed = false;
    for (std::size_t i = 0; i < vms_.size();) {
      Vm& vm = vms_[i];
      if (vm.remaining_nominal_s <=
          kEps * vm.app.phases[vm.phase].nominal_s + kEps) {
        ++vm.phase;
        if (vm.phase >= vm.app.phases.size()) {
          completed.push_back(vm.handle);
          vms_.erase(vms_.begin() + static_cast<std::ptrdiff_t>(i));
          membership_changed = true;
          continue;
        }
        vm.remaining_nominal_s = vm.app.phases[vm.phase].nominal_s;
        phase_changed = true;
      }
      ++i;
    }
    if (membership_changed || phase_changed) {
      resolve();
    }
  }
}

double OnlineServer::power_w() const {
  return instantaneous_power_w(config_.power, loads_);
}

workload::ClassCounts OnlineServer::mix() const {
  workload::ClassCounts counts;
  for (const Vm& vm : vms_) {
    ++counts.of(vm.app.profile);
  }
  return counts;
}

std::vector<ResidentVm> OnlineServer::residents() const {
  std::vector<ResidentVm> out;
  out.reserve(vms_.size());
  for (const Vm& vm : vms_) {
    out.push_back(ResidentVm{vm.handle, vm.app.profile});
  }
  return out;
}

}  // namespace aeva::testbed
