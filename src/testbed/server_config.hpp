#pragma once

/// \file server_config.hpp
/// Hardware description of the simulated rack server.
///
/// Defaults model the paper's testbed: Dell servers with one quad-core
/// Intel Xeon X3220, 4 GB of memory, two hard disks, and two 1 Gb Ethernet
/// interfaces, running Xen 3.1 (Sect. III-B). Power figures are calibrated
/// so an idle machine draws the 125 W the paper's evaluation assumes and a
/// fully loaded one lands in the low-200 W range typical of that class.

#include <string>

namespace aeva::testbed {

/// Linear subsystem power model: P = idle + Σ max_w(sub) · util(sub).
struct PowerModel {
  double idle_w = 125.0;      ///< powered-on baseline (Sect. IV-A)
  double cpu_max_w = 80.0;    ///< all four cores busy
  double mem_max_w = 14.0;    ///< memory bus saturated
  double disk_max_w = 16.0;   ///< both spindles streaming
  double net_max_w = 8.0;     ///< both NICs saturated

  /// Largest possible draw (all subsystems saturated).
  [[nodiscard]] double peak_w() const noexcept {
    return idle_w + cpu_max_w + mem_max_w + disk_max_w + net_max_w;
  }
};

/// Capacities and virtualization-overhead knobs of one server.
struct ServerConfig {
  int cores = 4;                   ///< Xeon X3220: 4 cores
  double mem_capacity_mb = 4096.0; ///< 4 GB DIMMs
  double mem_reserved_mb = 512.0;  ///< hypervisor + dom0 resident set
  /// Memory bandwidth in units of the reference testbed's bus (application
  /// demand vectors express `mem_bw_share` against that reference).
  double mem_bw_capacity = 1.0;
  double disk_mbps = 90.0;         ///< sequential bandwidth per disk
  int disk_count = 2;
  double nic_mbps = 125.0;         ///< 1 GbE in MB/s
  int nic_count = 2;

  /// Hypervisor CPU tax per resident VM, in core units.
  double per_vm_cpu_overhead = 0.02;
  /// Context-switch inflation per VM beyond the core count: a VM's CPU
  /// demand is multiplied by (1 + k · max(0, n − cores)). Xen 3.1's credit
  /// scheduler degrades noticeably once several vCPUs share a core, which
  /// is what makes blind 3× multiplexing (FF-3) counterproductive.
  double sched_overhead = 0.10;
  /// Quadratic thrashing penalty once resident footprints exceed available
  /// memory: slowdown = 1 + coeff · (overcommit_mb / available_mb)².
  double thrash_coeff = 30.0;
  /// Swap traffic injected on the disks per GB of memory overcommit (MB/s).
  double swap_disk_mbps_per_gb = 20.0;

  PowerModel power;

  /// Aggregate disk bandwidth (MB/s).
  [[nodiscard]] double disk_capacity_mbps() const noexcept {
    return disk_mbps * disk_count;
  }
  /// Aggregate network bandwidth (MB/s).
  [[nodiscard]] double net_capacity_mbps() const noexcept {
    return nic_mbps * nic_count;
  }
  /// Memory available to guests (MB).
  [[nodiscard]] double guest_mem_mb() const noexcept {
    return mem_capacity_mb - mem_reserved_mb;
  }

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;
};

/// The default testbed configuration described above.
[[nodiscard]] ServerConfig testbed_server();

/// A second, larger server class for the heterogeneous-hardware extension
/// (the paper's future work i): dual-socket 8-core box with 8 GB of
/// memory, four disks, and two NICs. Higher baseline draw, proportionally
/// higher capacities.
[[nodiscard]] ServerConfig bigbox_server();

}  // namespace aeva::testbed
