#pragma once

/// \file microsim.hpp
/// Fluid-flow simulator of one virtualized server.
///
/// This is the stand-in for the paper's physical testbed (DESIGN.md,
/// substitution table): it runs a set of VM-hosted applications to
/// completion under proportional-share contention on four subsystems
/// (CPU, memory bandwidth, disk, network), hypervisor/scheduling overhead,
/// and memory-overcommit thrashing, and records power and per-subsystem
/// utilization over time. The benchmarking campaign (`modeldb::Campaign`)
/// drives it exactly the way the authors drove their Dell servers.
///
/// Model: at any instant each active VM executes one phase of its
/// application. Every demanded resource is granted proportionally when
/// oversubscribed; the phase progresses at the rate of its most-throttled
/// resource, further slowed by the thrashing multiplier when resident
/// footprints exceed guest memory. Events (VM starts, phase completions)
/// are processed in order; between events all rates are constant, so the
/// simulation is exact, not time-stepped.

#include <string>
#include <vector>

#include "testbed/server_config.hpp"
#include "util/time_series.hpp"
#include "workload/app_spec.hpp"
#include "workload/profile.hpp"

namespace aeva::testbed {

/// One VM to run: an application model plus its arrival time.
struct VmRun {
  workload::AppSpec app;
  double start_s = 0.0;
};

/// Completion record for one VM.
struct VmOutcome {
  std::string app_name;
  workload::ProfileClass profile{};
  double start_s = 0.0;
  double finish_s = 0.0;

  /// Wall-clock residence time on the server.
  [[nodiscard]] double runtime_s() const noexcept { return finish_s - start_s; }
};

/// Per-subsystem utilization traces (each value is the busy share of the
/// subsystem's total capacity, in [0, 1]).
struct UtilizationTrace {
  util::TimeSeries cpu{"cpu", "share"};
  util::TimeSeries memory{"memory", "share"};
  util::TimeSeries disk{"disk", "share"};
  util::TimeSeries network{"network", "share"};

  /// Access by subsystem enum.
  [[nodiscard]] const util::TimeSeries& of(workload::Subsystem s) const;
};

/// Full result of one server run.
struct SimResult {
  std::vector<VmOutcome> vms;
  double makespan_s = 0.0;       ///< latest finish − earliest start
  double energy_j = 0.0;         ///< exact ∫P dt (noise-free ground truth)
  double max_power_w = 0.0;      ///< peak instantaneous power
  util::TimeSeries power_w{"power", "W"};  ///< event-aligned power trace
  UtilizationTrace utilization;

  /// The paper's figure of merit: max execution time / #VMs (Sect. III).
  [[nodiscard]] double avg_time_per_vm_s() const;
};

/// The server simulator. Stateless between runs; safe to share const.
class MicroSim {
 public:
  /// Validates and stores the hardware description.
  explicit MicroSim(ServerConfig config);

  /// Runs the given VMs to completion and returns the full trace.
  /// Throws std::invalid_argument on an empty VM set, an invalid app spec,
  /// or a negative start time.
  [[nodiscard]] SimResult run(const std::vector<VmRun>& vms) const;

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  ServerConfig config_;
};

}  // namespace aeva::testbed
