#pragma once

/// \file online_server.hpp
/// Incremental (online) fluid server.
///
/// Where `MicroSim` runs a fixed VM set to completion (the benchmarking
/// campaign's shape), the online server is driven from outside: VMs arrive
/// at arbitrary times, time advances in caller-chosen steps, completions
/// are reported as they happen. Same contention physics (the shared
/// `solve_contention` core), so a VM set admitted at t = 0 completes at
/// exactly the MicroSim times — a property the tests pin down.
///
/// This is the substrate for the ground-truth datacenter co-simulation:
/// one OnlineServer per cloud machine, replacing the model-database
/// accounting with the fluid "reality" the database was measured from.

#include <cstdint>
#include <vector>

#include "testbed/contention.hpp"
#include "testbed/server_config.hpp"
#include "workload/app_spec.hpp"
#include "workload/profile.hpp"

namespace aeva::testbed {

/// One resident VM's public view.
struct ResidentVm {
  std::int64_t handle = 0;
  workload::ProfileClass profile{};
};

/// The online server.
class OnlineServer {
 public:
  explicit OnlineServer(ServerConfig config);

  /// Admits a VM running `app` stretched by `runtime_scale` (> 0); returns
  /// a caller-unique handle — the only way to match a later completion
  /// back to this VM, hence [[nodiscard]].
  [[nodiscard]] std::int64_t add_vm(const workload::AppSpec& app,
                                    double runtime_scale);

  /// Advances the server by `dt` (≥ 0) seconds of wall-clock time,
  /// appending the handles of VMs that completed (in completion order).
  /// Completions exactly at the end of the step are reported.
  void advance(double dt, std::vector<std::int64_t>& completed);

  /// Seconds until the next internal event (phase boundary or completion)
  /// under current conditions; +inf when idle. Advancing beyond this is
  /// safe (the server sub-steps internally), but event-driven callers use
  /// it to pick exact step sizes.
  [[nodiscard]] double next_event_in() const;

  /// Instantaneous power draw (idle baseline when no VM is resident).
  [[nodiscard]] double power_w() const;

  /// Resident VM count / class mix / handles.
  [[nodiscard]] int resident() const noexcept {
    return static_cast<int>(vms_.size());
  }
  [[nodiscard]] workload::ClassCounts mix() const;
  [[nodiscard]] std::vector<ResidentVm> residents() const;

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Vm {
    std::int64_t handle = 0;
    workload::AppSpec app;  ///< runtime-scaled copy
    std::size_t phase = 0;
    double remaining_nominal_s = 0.0;
    double rate = 0.0;
  };

  /// Recomputes all rates and the cached loads after any membership or
  /// phase change.
  void resolve();

  ServerConfig config_;
  std::vector<Vm> vms_;
  SubsystemLoads loads_;
  std::int64_t next_handle_ = 1;
};

}  // namespace aeva::testbed
