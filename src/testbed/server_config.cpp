#include "testbed/server_config.hpp"

#include "util/error.hpp"

namespace aeva::testbed {

void ServerConfig::validate() const {
  AEVA_REQUIRE(cores > 0, "server needs at least one core");
  AEVA_REQUIRE(mem_capacity_mb > 0.0, "memory capacity must be positive");
  AEVA_REQUIRE(mem_reserved_mb >= 0.0 && mem_reserved_mb < mem_capacity_mb,
               "reserved memory must leave room for guests: reserved=",
               mem_reserved_mb, " capacity=", mem_capacity_mb);
  AEVA_REQUIRE(mem_bw_capacity > 0.0, "memory bandwidth must be positive");
  AEVA_REQUIRE(disk_mbps > 0.0 && disk_count > 0, "disk subsystem empty");
  AEVA_REQUIRE(nic_mbps > 0.0 && nic_count > 0, "network subsystem empty");
  AEVA_REQUIRE(per_vm_cpu_overhead >= 0.0, "negative hypervisor overhead");
  AEVA_REQUIRE(sched_overhead >= 0.0, "negative scheduling overhead");
  AEVA_REQUIRE(thrash_coeff >= 0.0, "negative thrashing coefficient");
  AEVA_REQUIRE(swap_disk_mbps_per_gb >= 0.0, "negative swap traffic");
  AEVA_REQUIRE(power.idle_w >= 0.0 && power.cpu_max_w >= 0.0 &&
                   power.mem_max_w >= 0.0 && power.disk_max_w >= 0.0 &&
                   power.net_max_w >= 0.0,
               "negative power coefficient");
}

ServerConfig testbed_server() {
  ServerConfig config;  // defaults model the Dell/X3220 testbed
  config.validate();
  return config;
}

ServerConfig bigbox_server() {
  ServerConfig config;
  config.cores = 8;
  config.mem_capacity_mb = 8192.0;
  config.mem_reserved_mb = 768.0;
  config.mem_bw_capacity = 2.0;  // dual memory controllers
  config.disk_count = 4;
  config.nic_count = 2;
  config.power.idle_w = 210.0;
  config.power.cpu_max_w = 150.0;
  config.power.mem_max_w = 24.0;
  config.power.disk_max_w = 30.0;
  config.power.net_max_w = 8.0;
  config.validate();
  return config;
}

}  // namespace aeva::testbed
