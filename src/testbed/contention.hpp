#pragma once

/// \file contention.hpp
/// The proportional-share contention core shared by the batch
/// microsimulator (`MicroSim`) and the online server (`OnlineServer`).
///
/// Given the set of phases currently executing on one server, computes
/// each VM's fluid progress rate and the subsystem utilizations that feed
/// the power model. Semantics (see microsim.hpp): every demanded resource
/// is granted proportionally under oversubscription, a phase progresses at
/// its most-throttled resource's share, hypervisor and scheduling overhead
/// tax the CPU, and memory overcommit applies a global thrashing slowdown
/// plus swap traffic on the disks.

#include <vector>

#include "testbed/server_config.hpp"
#include "workload/app_spec.hpp"

namespace aeva::testbed {

/// One active VM's view for the contention solve.
struct ActivePhase {
  const workload::Demand* demand = nullptr;  ///< current phase demand
  double footprint_mb = 0.0;                 ///< resident set of the VM
};

/// Subsystem busy shares (each in [0, 1]) for the power model.
struct SubsystemLoads {
  double cpu = 0.0;
  double memory = 0.0;
  double disk = 0.0;
  double network = 0.0;
};

/// Computes per-VM progress rates (written into `rates`, resized to match
/// `phases`) and returns the subsystem loads. An empty set yields zero
/// loads.
SubsystemLoads solve_contention(const ServerConfig& config,
                                const std::vector<ActivePhase>& phases,
                                std::vector<double>& rates);

/// Instantaneous power draw for the given loads.
[[nodiscard]] double instantaneous_power_w(const PowerModel& power,
                                           const SubsystemLoads& loads);

}  // namespace aeva::testbed
