#include "testbed/microsim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "testbed/contention.hpp"
#include "util/error.hpp"

namespace aeva::testbed {

using workload::Demand;
using workload::ProfileClass;
using workload::Subsystem;

const util::TimeSeries& UtilizationTrace::of(Subsystem s) const {
  switch (s) {
    case Subsystem::kCpu:
      return cpu;
    case Subsystem::kMemory:
      return memory;
    case Subsystem::kDisk:
      return disk;
    case Subsystem::kNetwork:
      return network;
  }
  throw std::invalid_argument("unknown subsystem");
}

double SimResult::avg_time_per_vm_s() const {
  AEVA_REQUIRE(!vms.empty(), "no VM outcomes");
  double max_finish = 0.0;
  for (const auto& vm : vms) {
    max_finish = std::max(max_finish, vm.finish_s);
  }
  return max_finish / static_cast<double>(vms.size());
}

MicroSim::MicroSim(ServerConfig config) : config_(config) {
  config_.validate();
}

namespace {

constexpr double kEps = 1e-9;

/// Mutable per-VM execution state.
struct VmState {
  const workload::AppSpec* app = nullptr;
  double start_s = 0.0;
  std::size_t phase = 0;          // current phase index
  double remaining_nominal_s = 0; // work left in current phase at rate 1
  bool started = false;
  bool finished = false;
  double finish_s = 0.0;
  double rate = 0.0;              // progress rate for the current interval
};

/// Computes per-VM progress rates and subsystem utilizations for the set
/// of currently active VMs via the shared contention core.
SubsystemLoads compute_rates(const ServerConfig& cfg,
                             std::vector<VmState*>& active) {
  std::vector<ActivePhase> phases;
  phases.reserve(active.size());
  for (const VmState* vm : active) {
    phases.push_back(ActivePhase{&vm->app->phases[vm->phase].demand,
                                 vm->app->mem_footprint_mb});
  }
  std::vector<double> rates;
  const SubsystemLoads loads = solve_contention(cfg, phases, rates);
  for (std::size_t i = 0; i < active.size(); ++i) {
    active[i]->rate = rates[i];
  }
  return loads;
}

}  // namespace

SimResult MicroSim::run(const std::vector<VmRun>& vms) const {
  AEVA_REQUIRE(!vms.empty(), "MicroSim::run needs at least one VM");
  std::vector<VmState> states(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    vms[i].app.validate();
    AEVA_REQUIRE(vms[i].start_s >= 0.0, "negative VM start time: ",
                 vms[i].start_s);
    states[i].app = &vms[i].app;
    states[i].start_s = vms[i].start_s;
    states[i].remaining_nominal_s = vms[i].app.phases.front().nominal_s;
  }

  SimResult result;
  double now = states.front().start_s;
  for (const auto& s : states) {
    now = std::min(now, s.start_s);
  }

  const auto record = [&](double t0, double t1, const SubsystemLoads& loads) {
    const double p = instantaneous_power_w(config_.power, loads);
    result.power_w.append(t0, p);
    result.power_w.append(t1, p);
    result.utilization.cpu.append(t0, loads.cpu);
    result.utilization.cpu.append(t1, loads.cpu);
    result.utilization.memory.append(t0, loads.memory);
    result.utilization.memory.append(t1, loads.memory);
    result.utilization.disk.append(t0, loads.disk);
    result.utilization.disk.append(t1, loads.disk);
    result.utilization.network.append(t0, loads.network);
    result.utilization.network.append(t1, loads.network);
    result.max_power_w = std::max(result.max_power_w, p);
  };

  std::size_t remaining = states.size();
  std::size_t guard = 0;
  const std::size_t max_events = 64 + states.size() * 64 +
                                 [&] {
                                   std::size_t phases = 0;
                                   for (const auto& s : states) {
                                     phases += s.app->phases.size();
                                   }
                                   return phases * 4;
                                 }();
  while (remaining > 0) {
    AEVA_INVARIANT(++guard <= max_events,
                "microsim event budget exhausted — model diverged");

    // Activate VMs whose start time has arrived.
    std::vector<VmState*> active;
    double next_start = std::numeric_limits<double>::infinity();
    for (auto& s : states) {
      if (s.finished) {
        continue;
      }
      if (s.start_s <= now + kEps) {
        s.started = true;
        active.push_back(&s);
      } else {
        next_start = std::min(next_start, s.start_s);
      }
    }

    if (active.empty()) {
      // Idle gap until the next arrival: baseline power only.
      AEVA_INVARIANT(std::isfinite(next_start), "no active VMs and no arrivals");
      record(now, next_start, SubsystemLoads{});
      now = next_start;
      continue;
    }

    const SubsystemLoads loads = compute_rates(config_, active);

    // Earliest next event: a phase completion or a pending VM start.
    double dt = next_start - now;
    for (const VmState* vm : active) {
      dt = std::min(dt, vm->remaining_nominal_s / vm->rate);
    }
    AEVA_INVARIANT(dt > 0.0 && std::isfinite(dt), "non-positive event step");

    record(now, now + dt, loads);

    for (VmState* vm : active) {
      vm->remaining_nominal_s -= vm->rate * dt;
      if (vm->remaining_nominal_s <= kEps * vm->app->phases[vm->phase].nominal_s +
                                         kEps) {
        ++vm->phase;
        if (vm->phase >= vm->app->phases.size()) {
          vm->finished = true;
          vm->finish_s = now + dt;
          --remaining;
        } else {
          vm->remaining_nominal_s = vm->app->phases[vm->phase].nominal_s;
        }
      }
    }
    now += dt;
  }

  double first_start = std::numeric_limits<double>::infinity();
  double last_finish = 0.0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    VmOutcome outcome;
    outcome.app_name = states[i].app->name;
    outcome.profile = states[i].app->profile;
    outcome.start_s = states[i].start_s;
    outcome.finish_s = states[i].finish_s;
    result.vms.push_back(outcome);
    first_start = std::min(first_start, outcome.start_s);
    last_finish = std::max(last_finish, outcome.finish_s);
  }
  result.makespan_s = last_finish - first_start;
  result.energy_j = result.power_w.integrate();
  return result;
}

}  // namespace aeva::testbed
