#include "testbed/contention.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aeva::testbed {

SubsystemLoads solve_contention(const ServerConfig& cfg,
                                const std::vector<ActivePhase>& phases,
                                std::vector<double>& rates) {
  SubsystemLoads loads;
  rates.assign(phases.size(), 0.0);
  if (phases.empty()) {
    return loads;
  }
  const auto n = static_cast<double>(phases.size());

  // --- capacities ----------------------------------------------------------
  const double cores = static_cast<double>(cfg.cores);
  const double hypervisor_burn =
      std::min(cores * 0.5, cfg.per_vm_cpu_overhead * n);
  const double cpu_cap = cores - hypervisor_burn;
  const double inflation = 1.0 + cfg.sched_overhead * std::max(0.0, n - cores);
  const double disk_cap = cfg.disk_capacity_mbps();
  const double net_cap = cfg.net_capacity_mbps();

  // --- memory overcommit ----------------------------------------------------
  double footprint = 0.0;
  for (const ActivePhase& phase : phases) {
    footprint += phase.footprint_mb;
  }
  const double avail = cfg.guest_mem_mb();
  const double over_mb = std::max(0.0, footprint - avail);
  const double over_ratio = over_mb / avail;
  const double thrash = 1.0 + cfg.thrash_coeff * over_ratio * over_ratio;
  const double swap_mbps = cfg.swap_disk_mbps_per_gb * (over_mb / 1024.0);

  // --- total demands --------------------------------------------------------
  double cpu_demand = 0.0;
  double mem_demand = 0.0;
  double disk_demand = swap_mbps;
  double net_demand = 0.0;
  for (const ActivePhase& phase : phases) {
    const workload::Demand& d = *phase.demand;
    cpu_demand += d.cpu_cores * inflation;
    mem_demand += d.mem_bw_share;
    disk_demand += d.disk_mbps;
    net_demand += d.net_mbps;
  }

  // --- proportional grant ratios ---------------------------------------------
  const auto ratio = [](double cap, double demand) {
    return demand <= cap ? 1.0 : cap / demand;
  };
  const double rho_cpu = ratio(cpu_cap, cpu_demand);
  const double rho_mem = ratio(cfg.mem_bw_capacity, mem_demand);
  const double rho_disk = ratio(disk_cap, disk_demand);
  const double rho_net = ratio(net_cap, net_demand);

  // --- per-VM progress rates ---------------------------------------------------
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const workload::Demand& d = *phases[i].demand;
    double rate = 1.0;
    if (d.cpu_cores > 0.0) rate = std::min(rate, rho_cpu);
    if (d.mem_bw_share > 0.0) rate = std::min(rate, rho_mem);
    if (d.disk_mbps > 0.0) rate = std::min(rate, rho_disk);
    if (d.net_mbps > 0.0) rate = std::min(rate, rho_net);
    rates[i] = rate / thrash;
    AEVA_INVARIANT(rates[i] > 0.0, "VM stalled with zero progress rate");
  }

  // --- subsystem utilizations for the power model ------------------------------
  const double granted_cpu = std::min(cpu_demand * rho_cpu, cpu_cap);
  loads.cpu = std::min(1.0, (granted_cpu + hypervisor_burn) / cores);
  loads.memory =
      std::min(1.0, mem_demand * rho_mem / cfg.mem_bw_capacity);
  loads.disk = std::min(1.0, disk_demand * rho_disk / disk_cap);
  loads.network = std::min(1.0, net_demand * rho_net / net_cap);
  return loads;
}

double instantaneous_power_w(const PowerModel& pm,
                             const SubsystemLoads& loads) {
  return pm.idle_w + pm.cpu_max_w * loads.cpu + pm.mem_max_w * loads.memory +
         pm.disk_max_w * loads.disk + pm.net_max_w * loads.network;
}

}  // namespace aeva::testbed
