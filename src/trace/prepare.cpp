#include "trace/prepare.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aeva::trace {

using workload::ProfileClass;

PreparedWorkload prepare_workload(const SwfTrace& trace,
                                  const PreparationConfig& config,
                                  util::Rng& rng) {
  AEVA_REQUIRE(!trace.jobs.empty(), "empty trace — run the generator first");
  AEVA_REQUIRE(config.min_vms_per_job >= 1 &&
                   config.max_vms_per_job >= config.min_vms_per_job,
               "bad VM-per-job bounds");
  AEVA_REQUIRE(config.min_burst >= 1 && config.max_burst >= config.min_burst,
               "bad burst bounds");
  AEVA_REQUIRE(config.reference_runtime_s > 0.0,
               "reference runtime must be positive");
  AEVA_REQUIRE(config.min_runtime_scale > 0.0 &&
                   config.max_runtime_scale >= config.min_runtime_scale,
               "bad runtime-scale bounds");
  for (const double f : config.qos_factor) {
    AEVA_REQUIRE(f > 0.0, "QoS factor must be positive");
  }
  AEVA_REQUIRE(config.workflow_chain_fraction >= 0.0 &&
                   config.workflow_chain_fraction <= 1.0,
               "chain fraction out of [0, 1]");

  PreparedWorkload prepared;
  long long id = 1;
  int burst_left = 0;
  bool burst_started = false;
  ProfileClass burst_profile = ProfileClass::kCpu;

  for (const SwfJob& job : trace.jobs) {
    if (config.target_total_vms > 0 &&
        prepared.total_vms >= config.target_total_vms) {
      break;
    }
    // Profiles are assigned uniformly *by bursts*: consecutive jobs model a
    // scientific workflow with identical resource requirements.
    if (burst_left == 0) {
      burst_left = static_cast<int>(
          rng.uniform_int(config.min_burst, config.max_burst));
      burst_profile = workload::kAllProfileClasses[static_cast<std::size_t>(
          rng.uniform_int(0, workload::kProfileClassCount - 1))];
      burst_started = true;
    }
    --burst_left;

    JobRequest request;
    request.id = id++;
    request.submit_s = job.submit_s;
    request.profile = burst_profile;
    request.vm_count = static_cast<int>(
        rng.uniform_int(config.min_vms_per_job, config.max_vms_per_job));
    request.runtime_scale =
        std::clamp(job.run_s / config.reference_runtime_s,
                   config.min_runtime_scale, config.max_runtime_scale);
    const auto ci = static_cast<std::size_t>(burst_profile);
    request.deadline_s = config.qos_factor[ci] * config.solo_time_s[ci];
    request.max_exec_stretch = config.qos_exec_stretch[ci];
    // Workflow chaining: a non-first burst member may require its
    // predecessor's completion.
    if (!burst_started && config.workflow_chain_fraction > 0.0 &&
        rng.bernoulli(config.workflow_chain_fraction)) {
      request.depends_on = request.id - 1;
    }
    burst_started = false;

    prepared.total_vms += request.vm_count;
    prepared.vm_mix.of(burst_profile) += request.vm_count;
    prepared.jobs.push_back(request);
  }
  AEVA_REQUIRE(!prepared.jobs.empty(), "preparation produced no jobs");
  return prepared;
}

}  // namespace aeva::trace
