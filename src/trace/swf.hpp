#pragma once

/// \file swf.hpp
/// Standard Workload Format (SWF) traces.
///
/// The paper converts Grid Observatory / EGEE logs to SWF [24], merges the
/// multiple files into one, and cleans the result (failed jobs, cancelled
/// jobs, anomalies) before simulation (Sect. IV-B). This module implements
/// that toolchain: the 18-field SWF record, a tolerant parser, a writer,
/// merging, and cleaning.

#include <iosfwd>
#include <string>
#include <vector>

namespace aeva::trace {

/// SWF job status codes (field 11).
enum class SwfStatus : int {
  kFailed = 0,
  kCompleted = 1,
  kPartialToBeContinued = 2,
  kPartialLast = 3,
  kCancelled = 5,
};

/// One SWF record; field names follow the SWF definition. Unknown values
/// are −1 per the standard.
struct SwfJob {
  long long job_id = -1;          ///< 1: job number
  double submit_s = -1.0;         ///< 2: submit time
  double wait_s = -1.0;           ///< 3: wait time
  double run_s = -1.0;            ///< 4: run time
  int allocated_procs = -1;       ///< 5: number of allocated processors
  double avg_cpu_s = -1.0;        ///< 6: average CPU time used
  double used_mem_kb = -1.0;      ///< 7: used memory
  int requested_procs = -1;       ///< 8: requested number of processors
  double requested_s = -1.0;      ///< 9: requested time
  double requested_mem_kb = -1.0; ///< 10: requested memory
  int status = 1;                 ///< 11: status
  int user_id = -1;               ///< 12
  int group_id = -1;              ///< 13
  int executable = -1;            ///< 14: executable (application) number
  int queue = -1;                 ///< 15
  int partition = -1;             ///< 16
  long long preceding_job = -1;   ///< 17
  double think_s = -1.0;          ///< 18: think time after preceding job
};

/// An SWF document: header comments (`;` lines) plus jobs.
struct SwfTrace {
  std::vector<std::string> comments;
  std::vector<SwfJob> jobs;
};

/// Parses SWF text; `;` comment lines are collected, blank lines skipped,
/// and a malformed data line throws std::invalid_argument with its number.
[[nodiscard]] SwfTrace parse_swf(std::istream& in);

/// Serializes a trace (comments first, then one line per job).
void write_swf(std::ostream& out, const SwfTrace& trace);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
[[nodiscard]] SwfTrace read_swf_file(const std::string& path);
void write_swf_file(const std::string& path, const SwfTrace& trace);

/// Merges several traces into one: jobs re-sorted by submit time and
/// renumbered from 1, comments concatenated — "as they are usually
/// composed of multiple files we combined them into a single file".
[[nodiscard]] SwfTrace merge_traces(const std::vector<SwfTrace>& traces);

/// What `clean` removed.
struct CleanStats {
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t anomalies = 0;  ///< non-positive runtime/procs, negative submit

  [[nodiscard]] std::size_t total() const noexcept {
    return failed + cancelled + anomalies;
  }
};

/// Removes failed jobs, cancelled jobs, and anomalies, in place
/// (Sect. IV-B). Surviving jobs keep their relative order.
CleanStats clean(SwfTrace& trace);

}  // namespace aeva::trace
