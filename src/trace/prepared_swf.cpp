#include "trace/prepared_swf.hpp"

#include "util/error.hpp"

namespace aeva::trace {

using workload::ProfileClass;

SwfTrace prepared_to_swf(const PreparedWorkload& workload) {
  AEVA_REQUIRE(!workload.jobs.empty(), "empty workload");
  SwfTrace trace;
  trace.comments = {
      "; aeva prepared workload (annotated SWF)",
      "; executable: 1=CPU 2=MEM 3=IO; requested_procs: VM count;",
      "; run_s: runtime_scale x " +
          std::to_string(static_cast<int>(kPreparedSwfReferenceRuntime)) +
          "; requested_s: response deadline; think_s: stretch x 1000",
  };
  for (const JobRequest& job : workload.jobs) {
    SwfJob row;
    row.job_id = job.id;
    row.submit_s = job.submit_s;
    row.wait_s = 0.0;
    row.run_s = job.runtime_scale * kPreparedSwfReferenceRuntime;
    row.allocated_procs = job.vm_count;
    row.requested_procs = job.vm_count;
    row.requested_s = job.deadline_s;
    row.executable = static_cast<int>(job.profile) + 1;
    row.preceding_job = job.depends_on == 0 ? -1 : job.depends_on;
    row.think_s = job.max_exec_stretch * 1000.0;
    row.status = static_cast<int>(SwfStatus::kCompleted);
    trace.jobs.push_back(row);
  }
  return trace;
}

PreparedWorkload swf_to_prepared(const SwfTrace& trace) {
  AEVA_REQUIRE(!trace.jobs.empty(), "empty trace");
  PreparedWorkload workload;
  for (const SwfJob& row : trace.jobs) {
    JobRequest job;
    job.id = row.job_id;
    job.submit_s = row.submit_s;
    AEVA_REQUIRE(row.executable >= 1 &&
                     row.executable <= workload::kProfileClassCount,
                 "job ", row.job_id, " has unknown profile code ",
                 row.executable);
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
        row.executable - 1)];
    AEVA_REQUIRE(row.requested_procs >= 1, "job ", row.job_id,
                 " requests no VMs");
    job.vm_count = row.requested_procs;
    AEVA_REQUIRE(row.run_s > 0.0, "job ", row.job_id,
                 " has non-positive runtime");
    job.runtime_scale = row.run_s / kPreparedSwfReferenceRuntime;
    AEVA_REQUIRE(row.requested_s > 0.0, "job ", row.job_id,
                 " has non-positive deadline");
    job.deadline_s = row.requested_s;
    AEVA_REQUIRE(row.think_s > 0.0, "job ", row.job_id,
                 " has non-positive stretch bound");
    job.max_exec_stretch = row.think_s / 1000.0;
    job.depends_on = row.preceding_job <= 0 ? 0 : row.preceding_job;
    workload.total_vms += job.vm_count;
    workload.vm_mix.of(job.profile) += job.vm_count;
    workload.jobs.push_back(job);
  }
  return workload;
}

}  // namespace aeva::trace
