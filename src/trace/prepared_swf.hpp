#pragma once

/// \file prepared_swf.hpp
/// SWF interop for prepared workloads.
///
/// A `PreparedWorkload` carries information plain SWF lacks (profile
/// class, VM count, runtime scale, QoS); this module round-trips it
/// through an *annotated* SWF encoding so prepared workloads can be
/// exchanged as ordinary trace files:
///
///   field 8  (requested_procs)  ← vm_count
///   field 4  (run_s)            ← runtime_scale × reference runtime
///   field 9  (requested_s)      ← response deadline (seconds)
///   field 14 (executable)       ← profile class (1 = CPU, 2 = MEM, 3 = IO)
///   field 17 (preceding_job)    ← depends_on (−1 = independent)
///   field 18 (think_s)          ← execution-stretch QoS × 1000
///
/// Everything uses standard SWF fields, so third-party SWF tooling can
/// still read the files.

#include "trace/prepare.hpp"
#include "trace/swf.hpp"

namespace aeva::trace {

/// Reference runtime used to encode/decode runtime scales (seconds).
inline constexpr double kPreparedSwfReferenceRuntime = 1000.0;

/// Encodes a prepared workload as annotated SWF.
[[nodiscard]] SwfTrace prepared_to_swf(const PreparedWorkload& workload);

/// Decodes an annotated SWF back into a prepared workload. Throws
/// std::invalid_argument on an unknown profile code or broken dependency.
[[nodiscard]] PreparedWorkload swf_to_prepared(const SwfTrace& trace);

}  // namespace aeva::trace
