#pragma once

/// \file prepare.hpp
/// Workload preparation (Sect. IV-B): completes the cleaned SWF trace with
/// the information the traces lack —
///  * a benchmark profile per request, "following a uniform distribution by
///    bursts" of 1..5 jobs,
///  * 1 to 4 VMs per job request instead of the original CPU demand,
///  * QoS requirements (maximum response time) per application type, not
///    per request.

#include <array>
#include <vector>

#include "trace/swf.hpp"
#include "util/rng.hpp"
#include "workload/profile.hpp"

namespace aeva::trace {

/// One prepared job request, ready for the datacenter simulator.
struct JobRequest {
  long long id = 0;
  double submit_s = 0.0;
  workload::ProfileClass profile{};
  int vm_count = 1;            ///< 1..4 VMs (all with the same profile)
  double runtime_scale = 1.0;  ///< job length relative to the canonical app
  double deadline_s = 0.0;     ///< max response time (per-type SLA)
  /// Per-type execution-time QoS handed to the allocator: a VM may be
  /// placed only where its estimated execution time stays within this
  /// multiple of the class's solo time (contention cap).
  double max_exec_stretch = 2.0;
  /// Workflow dependency: this job may start only after the job with this
  /// id completed (0 = independent). Mirrors SWF field 17 and the paper's
  /// framing of bursts as "scientific HPC workflows".
  long long depends_on = 0;
};

/// The prepared workload.
struct PreparedWorkload {
  std::vector<JobRequest> jobs;
  int total_vms = 0;

  /// VMs per profile class, for reporting.
  workload::ClassCounts vm_mix;
};

/// Preparation knobs.
struct PreparationConfig {
  /// "We assigned 1 to 4 VMs per job request" (Sect. IV-B).
  int min_vms_per_job = 1;
  int max_vms_per_job = 4;
  /// Profile-assignment burst sizing (1..5 jobs share a profile).
  int min_burst = 1;
  int max_burst = 5;
  /// Stop once this many VMs have been produced (the paper's input trace
  /// requests 10,000 VMs in total). 0 → use the whole trace.
  int target_total_vms = 10000;
  /// Runtime scale = clamp(run_s / reference_runtime_s, lo, hi).
  double reference_runtime_s = 1100.0;
  double min_runtime_scale = 0.25;
  double max_runtime_scale = 3.0;
  /// Per-type maximum response time, as a multiple of the class's solo
  /// execution time T* (index by ProfileClass).
  std::array<double, workload::kProfileClassCount> qos_factor = {8.0, 8.0,
                                                                 8.0};
  /// Per-type execution-time QoS for the allocator, as a multiple of the
  /// class's solo time (index by ProfileClass).
  std::array<double, workload::kProfileClassCount> qos_exec_stretch = {
      2.0, 2.0, 2.0};
  /// Probability that a non-first job of a burst depends on its
  /// predecessor (workflow stage chaining). 0 (default) reproduces the
  /// paper's independent-job setup.
  double workflow_chain_fraction = 0.0;
  /// Solo execution times T* used to derive the absolute deadlines
  /// (normally Table I values from the model database).
  std::array<double, workload::kProfileClassCount> solo_time_s = {1200.0,
                                                                  1000.0,
                                                                  1100.0};
};

/// Runs the preparation pipeline on a cleaned trace. Deterministic in the
/// RNG state. Jobs keep submit order; ids are renumbered from 1.
[[nodiscard]] PreparedWorkload prepare_workload(const SwfTrace& trace,
                                                const PreparationConfig& config,
                                                util::Rng& rng);

}  // namespace aeva::trace
