#pragma once

/// \file generator.hpp
/// Synthetic EGEE-like trace generation.
///
/// The paper uses production logs from the Grid Observatory (EGEE Grid).
/// Those archives are not redistributable, so we generate statistically
/// similar input: bursty submissions (scientific workflows arrive as sets
/// of jobs with identical requirements), heavy-tailed runtimes, a spread of
/// processor requests, and a realistic share of failed/cancelled/anomalous
/// entries for the cleaning stage to remove (DESIGN.md, substitution
/// table). The output is a plain SWF trace, so the downstream pipeline is
/// identical to the paper's.

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace aeva::trace {

/// Shape of the synthetic trace.
struct GeneratorConfig {
  /// Generate until at least this many jobs exist (before cleaning).
  int target_jobs = 4600;
  /// Submission window (seconds); bursts arrive Poisson within it. The
  /// default stresses the SMALLER reference cloud (offered load above the
  /// no-multiplexing first-fit capacity) without drowning every strategy.
  double span_s = 48000.0;
  /// Burst sizing: "bursts of job requests were sized (randomly) from 1 to
  /// 5" (Sect. IV-B).
  int min_burst = 1;
  int max_burst = 5;
  /// Log-normal runtime: exp(N(mu, sigma)) seconds.
  double runtime_mu = 7.1;     ///< median ≈ 1200 s
  double runtime_sigma = 0.55;
  /// Truncation of the runtime tail (seconds).
  double max_runtime_s = 14400.0;
  /// Grid-style processor requests are powers of two up to this bound.
  int max_procs = 64;
  /// Imperfections for the cleaning stage to strip.
  double failed_fraction = 0.06;
  double cancelled_fraction = 0.04;
  double anomaly_fraction = 0.02;
};

/// Generates one synthetic trace; deterministic in the RNG state.
[[nodiscard]] SwfTrace generate_egee_like(const GeneratorConfig& config,
                                          util::Rng& rng);

/// Alternative workload model in the Lublin–Feitelson tradition: a daily
/// arrival cycle (sinusoidal intensity, thinning-sampled inhomogeneous
/// Poisson) with gamma-distributed runtimes. Used by the robustness
/// extension to check that the evaluation's conclusions are not artifacts
/// of one trace shape.
struct DailyCycleConfig {
  int target_jobs = 4600;
  double days = 1.0;              ///< span, in 24 h days
  double peak_hour = 14.0;        ///< local hour of peak submission
  double peak_to_trough = 3.0;    ///< arrival-intensity ratio (≥ 1)
  double runtime_gamma_shape = 1.8;
  double runtime_gamma_scale_s = 800.0;  ///< mean runtime = shape × scale
  double max_runtime_s = 14400.0;
  int min_burst = 1;
  int max_burst = 5;
  int max_procs = 64;
  double failed_fraction = 0.06;
  double cancelled_fraction = 0.04;
};

/// Generates a daily-cycle trace; deterministic in the RNG state.
[[nodiscard]] SwfTrace generate_daily_cycle(const DailyCycleConfig& config,
                                            util::Rng& rng);

}  // namespace aeva::trace
