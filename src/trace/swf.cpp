#include "trace/swf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::trace {

namespace {

// Integer SWF fields are range-checked before the cast: a value like 1e300
// in the processor-count column must be a typed rejection, not the UB of an
// out-of-range float→int conversion (found by fuzz_swf, see
// fuzz/corpus/swf/reject_huge_procs.swf). −1 is the SWF "unknown" marker,
// so the low bound is as permissive as the type allows.
constexpr double kMaxIntField = 2147483647.0;          // INT_MAX, exact
constexpr double kMinIntField = -2147483648.0;         // INT_MIN, exact
constexpr double kMaxLongField = 9.0e18;               // < LLONG_MAX
constexpr double kMinLongField = -9.0e18;

}  // namespace

SwfTrace parse_swf(std::istream& in) {
  SwfTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) {
      continue;
    }
    if (trimmed.front() == ';') {
      trace.comments.push_back(trimmed);
      continue;
    }
    const std::vector<std::string> fields = util::split_whitespace(trimmed);
    AEVA_REQUIRE(fields.size() == 18, "SWF line ", line_no, " has ",
                 fields.size(), " fields, expected 18");
    const auto num = [&](std::size_t i) {
      const auto parsed = util::parse_double(fields[i]);
      AEVA_REQUIRE(parsed.has_value() && std::isfinite(*parsed), "SWF line ",
                   line_no, " field ", i + 1,
                   " is not a finite number: ", fields[i]);
      return *parsed;
    };
    const auto int_num = [&](std::size_t i) {
      const double value = num(i);
      AEVA_REQUIRE(value >= kMinIntField && value <= kMaxIntField,
                   "SWF line ", line_no, " field ", i + 1,
                   " out of integer range: ", fields[i]);
      return static_cast<int>(value);
    };
    const auto long_num = [&](std::size_t i) {
      const double value = num(i);
      AEVA_REQUIRE(value >= kMinLongField && value <= kMaxLongField,
                   "SWF line ", line_no, " field ", i + 1,
                   " out of id range: ", fields[i]);
      return static_cast<long long>(value);
    };
    SwfJob job;
    job.job_id = long_num(0);
    job.submit_s = num(1);
    job.wait_s = num(2);
    job.run_s = num(3);
    job.allocated_procs = int_num(4);
    job.avg_cpu_s = num(5);
    job.used_mem_kb = num(6);
    job.requested_procs = int_num(7);
    job.requested_s = num(8);
    job.requested_mem_kb = num(9);
    job.status = int_num(10);
    job.user_id = int_num(11);
    job.group_id = int_num(12);
    job.executable = int_num(13);
    job.queue = int_num(14);
    job.partition = int_num(15);
    job.preceding_job = long_num(16);
    job.think_s = num(17);
    trace.jobs.push_back(job);
  }
  return trace;
}

void write_swf(std::ostream& out, const SwfTrace& trace) {
  for (const std::string& comment : trace.comments) {
    out << comment << '\n';
  }
  for (const SwfJob& j : trace.jobs) {
    out << j.job_id << ' ' << util::format_fixed(j.submit_s, 0) << ' '
        << util::format_fixed(j.wait_s, 0) << ' '
        << util::format_fixed(j.run_s, 0) << ' ' << j.allocated_procs << ' '
        << util::format_fixed(j.avg_cpu_s, 0) << ' '
        << util::format_fixed(j.used_mem_kb, 0) << ' ' << j.requested_procs
        << ' ' << util::format_fixed(j.requested_s, 0) << ' '
        << util::format_fixed(j.requested_mem_kb, 0) << ' ' << j.status << ' '
        << j.user_id << ' ' << j.group_id << ' ' << j.executable << ' '
        << j.queue << ' ' << j.partition << ' ' << j.preceding_job << ' '
        << util::format_fixed(j.think_s, 0) << '\n';
  }
}

SwfTrace read_swf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open SWF file for reading: " + path);
  }
  return parse_swf(in);
}

void write_swf_file(const std::string& path, const SwfTrace& trace) {
  // Crash-safe publish (temp + fsync + rename); commit() throws a typed
  // util::FileWriteError naming the path on any failure, disk-full
  // included.
  util::AtomicFileWriter writer(path);
  write_swf(writer.stream(), trace);
  writer.commit();
}

SwfTrace merge_traces(const std::vector<SwfTrace>& traces) {
  AEVA_REQUIRE(!traces.empty(), "nothing to merge");
  SwfTrace merged;
  for (const SwfTrace& t : traces) {
    merged.comments.insert(merged.comments.end(), t.comments.begin(),
                           t.comments.end());
    merged.jobs.insert(merged.jobs.end(), t.jobs.begin(), t.jobs.end());
  }
  std::stable_sort(merged.jobs.begin(), merged.jobs.end(),
                   [](const SwfJob& a, const SwfJob& b) {
                     return a.submit_s < b.submit_s;
                   });
  long long id = 1;
  for (SwfJob& job : merged.jobs) {
    job.job_id = id++;
  }
  return merged;
}

CleanStats clean(SwfTrace& trace) {
  CleanStats stats;
  std::vector<SwfJob> kept;
  kept.reserve(trace.jobs.size());
  for (const SwfJob& job : trace.jobs) {
    if (job.status == static_cast<int>(SwfStatus::kFailed)) {
      ++stats.failed;
      continue;
    }
    if (job.status == static_cast<int>(SwfStatus::kCancelled)) {
      ++stats.cancelled;
      continue;
    }
    const bool anomalous = job.run_s <= 0.0 || job.submit_s < 0.0 ||
                           (job.allocated_procs <= 0 &&
                            job.requested_procs <= 0);
    if (anomalous) {
      ++stats.anomalies;
      continue;
    }
    kept.push_back(job);
  }
  trace.jobs = std::move(kept);
  return stats;
}

}  // namespace aeva::trace
