#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aeva::trace {

SwfTrace generate_egee_like(const GeneratorConfig& config, util::Rng& rng) {
  AEVA_REQUIRE(config.target_jobs >= 1, "need at least one job");
  AEVA_REQUIRE(config.span_s > 0.0, "submission window must be positive");
  AEVA_REQUIRE(config.min_burst >= 1 && config.max_burst >= config.min_burst,
               "bad burst bounds [", config.min_burst, ", ", config.max_burst,
               "]");
  AEVA_REQUIRE(config.runtime_sigma >= 0.0, "negative runtime sigma");
  AEVA_REQUIRE(config.max_procs >= 1, "need at least one processor");
  AEVA_REQUIRE(config.failed_fraction >= 0.0 &&
                   config.cancelled_fraction >= 0.0 &&
                   config.anomaly_fraction >= 0.0 &&
                   config.failed_fraction + config.cancelled_fraction +
                           config.anomaly_fraction <
                       1.0,
               "imperfection fractions must be non-negative and sum < 1");

  SwfTrace trace;
  trace.comments = {
      "; synthetic EGEE-like trace (aeva trace generator)",
      "; bursts of 1..5 jobs, log-normal runtimes, power-of-two processors",
  };

  const double mean_burst =
      0.5 * (config.min_burst + config.max_burst);
  const double burst_rate =
      static_cast<double>(config.target_jobs) / (mean_burst * config.span_s);

  long long id = 1;
  double t = 0.0;
  while (static_cast<int>(trace.jobs.size()) < config.target_jobs) {
    t += rng.exponential(burst_rate);
    if (t > config.span_s) {
      // Wrap into the window rather than stretching the span: keeps the
      // offered-load density as configured.
      t = rng.uniform(0.0, config.span_s);
    }
    const auto burst = static_cast<int>(
        rng.uniform_int(config.min_burst, config.max_burst));

    // A workflow burst: same executable, same processor request, similar
    // runtimes.
    const int executable = static_cast<int>(rng.uniform_int(1, 40));
    int procs = 1;
    const int doublings = static_cast<int>(rng.uniform_int(
        0, static_cast<std::int64_t>(std::log2(config.max_procs))));
    for (int d = 0; d < doublings; ++d) {
      procs *= 2;
    }
    const double burst_runtime =
        std::min(config.max_runtime_s,
                 rng.lognormal(config.runtime_mu, config.runtime_sigma));

    for (int k = 0; k < burst; ++k) {
      SwfJob job;
      job.job_id = id++;
      job.submit_s = t + rng.uniform(0.0, 30.0);  // seconds apart in a burst
      job.run_s = std::max(
          1.0, burst_runtime * rng.uniform(0.9, 1.1));  // per-job jitter
      job.wait_s = 0.0;
      job.allocated_procs = procs;
      job.requested_procs = procs;
      job.avg_cpu_s = job.run_s * rng.uniform(0.5, 1.0);
      job.used_mem_kb = rng.uniform(64.0, 2048.0) * 1024.0;
      job.requested_s = job.run_s * rng.uniform(1.0, 3.0);
      job.requested_mem_kb = job.used_mem_kb;
      job.user_id = static_cast<int>(rng.uniform_int(1, 200));
      job.group_id = static_cast<int>(rng.uniform_int(1, 20));
      job.executable = executable;
      job.queue = static_cast<int>(rng.uniform_int(1, 4));
      job.partition = 1;
      job.status = static_cast<int>(SwfStatus::kCompleted);

      // Imperfections, to be stripped by trace::clean.
      const double dice = rng.uniform();
      if (dice < config.failed_fraction) {
        job.status = static_cast<int>(SwfStatus::kFailed);
      } else if (dice < config.failed_fraction + config.cancelled_fraction) {
        job.status = static_cast<int>(SwfStatus::kCancelled);
        job.run_s = 0.0;
      } else if (dice < config.failed_fraction + config.cancelled_fraction +
                            config.anomaly_fraction) {
        job.run_s = 0.0;  // anomaly: completed but zero runtime
      }
      trace.jobs.push_back(job);
    }
  }

  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const SwfJob& a, const SwfJob& b) {
                     return a.submit_s < b.submit_s;
                   });
  long long renumber = 1;
  for (SwfJob& job : trace.jobs) {
    job.job_id = renumber++;
  }
  return trace;
}

SwfTrace generate_daily_cycle(const DailyCycleConfig& config,
                              util::Rng& rng) {
  AEVA_REQUIRE(config.target_jobs >= 1, "need at least one job");
  AEVA_REQUIRE(config.days > 0.0, "span must be positive");
  AEVA_REQUIRE(config.peak_to_trough >= 1.0,
               "peak-to-trough ratio must be >= 1");
  AEVA_REQUIRE(config.runtime_gamma_shape > 0.0 &&
                   config.runtime_gamma_scale_s > 0.0,
               "gamma runtime parameters must be positive");
  AEVA_REQUIRE(config.min_burst >= 1 && config.max_burst >= config.min_burst,
               "bad burst bounds");
  AEVA_REQUIRE(config.max_procs >= 1, "need at least one processor");
  AEVA_REQUIRE(config.failed_fraction >= 0.0 &&
                   config.cancelled_fraction >= 0.0 &&
                   config.failed_fraction + config.cancelled_fraction < 1.0,
               "imperfection fractions must be non-negative and sum < 1");

  SwfTrace trace;
  trace.comments = {
      "; synthetic daily-cycle trace (Lublin-Feitelson-style model)",
      "; sinusoidal arrival intensity, gamma runtimes",
  };

  const double span_s = config.days * 86400.0;
  const double mean_burst = 0.5 * (config.min_burst + config.max_burst);
  // Intensity λ(t) = base · (1 + a·sin(...)) with a chosen so that
  // max/min = peak_to_trough; thinning against λ_max samples the process.
  const double a = (config.peak_to_trough - 1.0) / (config.peak_to_trough + 1.0);
  const double base_rate =
      static_cast<double>(config.target_jobs) / (mean_burst * span_s);
  const double lambda_max = base_rate * (1.0 + a);
  const double peak_s = config.peak_hour * 3600.0;
  const auto intensity = [&](double t) {
    constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
    return base_rate *
           (1.0 + a * std::cos(kTwoPi * (t - peak_s) / 86400.0));
  };

  long long id = 1;
  double t = 0.0;
  while (static_cast<int>(trace.jobs.size()) < config.target_jobs) {
    // Thinning: candidate at rate λ_max, accept with λ(t)/λ_max.
    t += rng.exponential(lambda_max);
    if (t > span_s) {
      t = rng.uniform(0.0, span_s);  // wrap to keep density as configured
    }
    if (!rng.bernoulli(intensity(t) / lambda_max)) {
      continue;
    }
    const auto burst = static_cast<int>(
        rng.uniform_int(config.min_burst, config.max_burst));
    const int executable = static_cast<int>(rng.uniform_int(1, 40));
    int procs = 1;
    const int doublings = static_cast<int>(rng.uniform_int(
        0, static_cast<std::int64_t>(std::log2(config.max_procs))));
    for (int d = 0; d < doublings; ++d) {
      procs *= 2;
    }
    const double burst_runtime = std::min(
        config.max_runtime_s,
        rng.gamma(config.runtime_gamma_shape, config.runtime_gamma_scale_s));

    for (int k = 0; k < burst; ++k) {
      SwfJob job;
      job.job_id = id++;
      job.submit_s = t + rng.uniform(0.0, 30.0);
      job.run_s = std::max(1.0, burst_runtime * rng.uniform(0.9, 1.1));
      job.wait_s = 0.0;
      job.allocated_procs = procs;
      job.requested_procs = procs;
      job.avg_cpu_s = job.run_s * rng.uniform(0.5, 1.0);
      job.used_mem_kb = rng.uniform(64.0, 2048.0) * 1024.0;
      job.requested_s = job.run_s * rng.uniform(1.0, 3.0);
      job.requested_mem_kb = job.used_mem_kb;
      job.user_id = static_cast<int>(rng.uniform_int(1, 200));
      job.group_id = static_cast<int>(rng.uniform_int(1, 20));
      job.executable = executable;
      job.queue = static_cast<int>(rng.uniform_int(1, 4));
      job.partition = 1;
      job.status = static_cast<int>(SwfStatus::kCompleted);
      const double dice = rng.uniform();
      if (dice < config.failed_fraction) {
        job.status = static_cast<int>(SwfStatus::kFailed);
      } else if (dice <
                 config.failed_fraction + config.cancelled_fraction) {
        job.status = static_cast<int>(SwfStatus::kCancelled);
        job.run_s = 0.0;
      }
      trace.jobs.push_back(job);
    }
  }

  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const SwfJob& x, const SwfJob& y) {
                     return x.submit_s < y.submit_s;
                   });
  long long renumber = 1;
  for (SwfJob& job : trace.jobs) {
    job.job_id = renumber++;
  }
  return trace;
}

}  // namespace aeva::trace
