#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <utility>

#include "core/incremental.hpp"
#include "datacenter/topology.hpp"
#include "util/error.hpp"

namespace aeva::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical same-instant event ordering (documented contract): repairs
/// return capacity first, releases free it next, the in-flight decision
/// commits before new work is considered, and arrivals go last (scheduled
/// retries before fresh stream arrivals — the stream is drained after the
/// heap at every instant).
enum EventKind : int {
  kRepairEvent = 0,
  kReleaseEvent = 1,
  kDecisionDoneEvent = 2,
  kArrivalEvent = 3,
};

struct Event {
  double t = 0.0;
  int kind = kArrivalEvent;
  std::uint64_t seq = 0;
  // Payload (by kind): repair → server; release → group; arrival →
  // request + attempt. Decision-done carries no payload (the single
  // in-flight slot holds it).
  std::int32_t server = -1;
  std::int64_t group = -1;
  ServeRequest request;
  std::int32_t attempt = 0;
};

/// Min-heap order on (t, kind, seq).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.seq > b.seq;
  }
};

struct Resident {
  int klass = 0;
  workload::ProfileClass profile{};
  double qos_time_s = kInf;
  double release_s = kInf;
  std::vector<std::int32_t> servers;
};

struct InFlight {
  ServeRequest request;
  std::int32_t attempt = 0;
  double enqueue_s = 0.0;
  double started_s = 0.0;
  core::AllocationResult result;
  ServeMode mode = ServeMode::kNormal;
};

struct QueuedEntry {
  ServeRequest request;
  double enqueue_s = 0.0;
  std::int32_t attempt = 0;
};

/// Pre-resolved metric handles; all null when obs is disabled so the hot
/// path pays one pointer test per site (the SimObs pattern).
struct ServeObs {
  obs::Counter* arrivals = nullptr;
  obs::Counter* admitted = nullptr;
  obs::Counter* placed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* sheds = nullptr;
  obs::Counter* expired = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* breaker_trips = nullptr;
  obs::Counter* breaker_rearms = nullptr;
  obs::Counter* crashes = nullptr;
  obs::Counter* restarts = nullptr;
  obs::Counter* incremental_decisions = nullptr;
  obs::Counter* oracle_checks = nullptr;
  obs::Counter* oracle_divergences = nullptr;
  obs::Counter* fleet_resyncs = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* mode = nullptr;
  obs::Histogram* decision_latency = nullptr;

  void resolve(obs::Session* session) {
    if (session == nullptr) {
      return;
    }
    obs::MetricsRegistry& reg = session->metrics();
    arrivals = &reg.counter("serve.arrivals");
    admitted = &reg.counter("serve.admitted");
    placed = &reg.counter("serve.placed");
    rejected = &reg.counter("serve.rejected");
    sheds = &reg.counter("serve.sheds");
    expired = &reg.counter("serve.deadline.expired");
    retries = &reg.counter("serve.retries");
    breaker_trips = &reg.counter("serve.breaker.trips");
    breaker_rearms = &reg.counter("serve.breaker.rearms");
    crashes = &reg.counter("serve.crashes");
    restarts = &reg.counter("serve.restarts");
    incremental_decisions = &reg.counter("serve.incremental.decisions");
    oracle_checks = &reg.counter("serve.incremental.oracle_checks");
    oracle_divergences = &reg.counter("serve.incremental.divergences");
    fleet_resyncs = &reg.counter("serve.incremental.resyncs");
    queue_depth = &reg.gauge("serve.queue.depth");
    mode = &reg.gauge("serve.mode");
    decision_latency = &reg.histogram(
        "serve.decision.latency_s",
        {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
         5.0});
  }
};

/// Result equality for the oracle cross-check (the incremental planner
/// labels its successful primary searches kIncremental; everything else
/// must agree verbatim, doubles bitwise).
[[nodiscard]] bool plans_equal(const core::AllocationResult& a,
                               const core::AllocationResult& b) {
  const auto norm = [](core::AllocationPath path) {
    return path == core::AllocationPath::kIncremental
               ? core::AllocationPath::kPrimary
               : path;
  };
  if (a.complete != b.complete || a.satisfied_qos != b.satisfied_qos ||
      a.partitions_examined != b.partitions_examined ||
      norm(a.outcome.path) != norm(b.outcome.path) ||
      a.outcome.reason != b.outcome.reason ||
      a.outcome.search_truncated != b.outcome.search_truncated ||
      a.score.est_time_s != b.score.est_time_s ||
      a.score.est_energy_j != b.score.est_energy_j ||
      a.score.combined != b.score.combined ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    if (a.placements[i].vm_id != b.placements[i].vm_id ||
        a.placements[i].server_id != b.placements[i].server_id) {
      return false;
    }
  }
  return true;
}

void append_json_number(std::string& out, double value) {
  if (std::isinf(value)) {
    out += value > 0 ? "1e999" : "-1e999";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

void ServeConfig::validate() const {
  AEVA_REQUIRE(server_count > 0, "server_count must be positive, got ",
               server_count);
  AEVA_REQUIRE(degraded_multiplex >= 1,
               "degraded_multiplex must be >= 1, got ", degraded_multiplex);
  AEVA_REQUIRE(queue.capacity > 0, "queue capacity must be positive");
  AEVA_REQUIRE(deadline.initial_latency_s >= 0.0 &&
                   std::isfinite(deadline.initial_latency_s),
               "initial latency estimate must be finite and >= 0");
  AEVA_REQUIRE(deadline.ewma_alpha > 0.0 && deadline.ewma_alpha <= 1.0,
               "ewma_alpha must be in (0, 1], got ", deadline.ewma_alpha);
  AEVA_REQUIRE(health.queue_low <= health.queue_high,
               "queue watermarks inverted: low ", health.queue_low,
               " > high ", health.queue_high);
  AEVA_REQUIRE(health.latency_low_s <= health.latency_high_s,
               "latency watermarks inverted: low ", health.latency_low_s,
               " > high ", health.latency_high_s);
  AEVA_REQUIRE(health.trip_after >= 1, "trip_after must be >= 1, got ",
               health.trip_after);
  AEVA_REQUIRE(health.rearm_after >= 1, "rearm_after must be >= 1, got ",
               health.rearm_after);
  AEVA_REQUIRE(health.min_class_when_shedding >= 0 &&
                   health.min_class_when_shedding <= kClassCount,
               "min_class_when_shedding out of range: ",
               health.min_class_when_shedding);
  AEVA_REQUIRE(retry.max_attempts >= 0, "max_attempts must be >= 0, got ",
               retry.max_attempts);
  AEVA_REQUIRE(retry.base_s > 0.0 && std::isfinite(retry.base_s),
               "retry base must be positive and finite");
  AEVA_REQUIRE(retry.multiplier >= 1.0, "retry multiplier must be >= 1");
  AEVA_REQUIRE(retry.cap_s >= retry.base_s,
               "retry cap must be >= base, got ", retry.cap_s);
  AEVA_REQUIRE(retry.jitter >= 0.0 && retry.jitter <= 1.0,
               "retry jitter must be in [0, 1], got ", retry.jitter);
  AEVA_REQUIRE(cost.base_s > 0.0 && std::isfinite(cost.base_s),
               "decision base cost must be positive and finite");
  AEVA_REQUIRE(cost.per_partition_s >= 0.0 &&
                   std::isfinite(cost.per_partition_s),
               "per-partition cost must be finite and >= 0");
  AEVA_REQUIRE(cost.degraded_s > 0.0 && std::isfinite(cost.degraded_s),
               "degraded decision cost must be positive and finite");
  AEVA_REQUIRE(cost.incremental_s > 0.0 && std::isfinite(cost.incremental_s),
               "incremental decision cost must be positive and finite");
  AEVA_REQUIRE(incremental.oracle_every_s >= 0.0 &&
                   std::isfinite(incremental.oracle_every_s),
               "oracle period must be finite and >= 0, got ",
               incremental.oracle_every_s);
  AEVA_REQUIRE(incremental.drift_watermark >= 1,
               "drift watermark must be >= 1, got ",
               incremental.drift_watermark);
  AEVA_REQUIRE(snapshot.every_s >= 0.0, "snapshot period must be >= 0");
  if (failure.enabled) {
    failure.validate(server_count);
    // Serve has no progress model: a ToR fault's stall-without-loss
    // semantics cannot be honoured, so reject rather than misrepresent.
    AEVA_REQUIRE(failure.domains.tor_mtbf_s == 0.0,
                 "serve mode does not support ToR fault sampling; "
                 "set domains.tor_mtbf_s = 0");
    for (const datacenter::FailureEvent& ev : failure.script) {
      AEVA_REQUIRE(ev.kind != datacenter::FailureKind::kTorFault,
                   "serve mode does not support scripted ToR faults "
                   "(switch ", ev.server, " at t=", ev.at_s, ")");
    }
  }
}

AllocationService::AllocationService(const modeldb::ModelDatabase& db,
                                     ServeConfig config)
    : config_(std::move(config)),
      db_(&db),
      primary_(db,
               [this] {
                 // The primary chain shares the service's obs session
                 // unless the caller wired its own.
                 core::ProactiveConfig pc = config_.proactive;
                 if (pc.obs == nullptr) {
                   pc.obs = config_.obs;
                 }
                 return pc;
               }()),
      degraded_(config_.degraded_multiplex) {
  config_.validate();
}

std::uint64_t AllocationService::config_fingerprint() const {
  persist::Fingerprint fp;
  fp.mix_string("serve-config-v2");
  fp.mix(static_cast<std::uint64_t>(config_.server_count));
  const core::ProactiveConfig& pa = config_.proactive;
  fp.mix(static_cast<std::uint64_t>(pa.goal));
  fp.mix_double(pa.alpha);
  fp.mix(pa.enforce_qos ? 1 : 0);
  fp.mix(pa.fallback_best_effort ? 1 : 0);
  fp.mix(pa.max_partitions);
  fp.mix(static_cast<std::uint64_t>(pa.server_vm_cap));
  fp.mix(pa.degrade_to_first_fit ? 1 : 0);
  fp.mix(static_cast<std::uint64_t>(pa.fallback_multiplex));
  // Search-execution knobs are deliberately excluded: they never change
  // allocation results, so a resumed process may use a different thread
  // count (same policy as the simulator's config fingerprint).
  fp.mix(static_cast<std::uint64_t>(config_.degraded_multiplex));
  fp.mix(config_.queue.capacity);
  fp.mix(static_cast<std::uint64_t>(config_.queue.policy));
  fp.mix(config_.deadline.enforce ? 1 : 0);
  fp.mix_double(config_.deadline.initial_latency_s);
  fp.mix_double(config_.deadline.ewma_alpha);
  fp.mix(config_.health.enabled ? 1 : 0);
  fp.mix_double(config_.health.queue_high);
  fp.mix_double(config_.health.queue_low);
  fp.mix_double(config_.health.latency_high_s);
  fp.mix_double(config_.health.latency_low_s);
  fp.mix(static_cast<std::uint64_t>(config_.health.trip_after));
  fp.mix(static_cast<std::uint64_t>(config_.health.rearm_after));
  fp.mix(static_cast<std::uint64_t>(config_.health.min_class_when_shedding));
  fp.mix(config_.retry.enabled ? 1 : 0);
  fp.mix(static_cast<std::uint64_t>(config_.retry.max_attempts));
  fp.mix_double(config_.retry.base_s);
  fp.mix_double(config_.retry.multiplier);
  fp.mix_double(config_.retry.cap_s);
  fp.mix_double(config_.retry.jitter);
  fp.mix_double(config_.cost.base_s);
  fp.mix_double(config_.cost.per_partition_s);
  fp.mix_double(config_.cost.degraded_s);
  fp.mix_double(config_.cost.incremental_s);
  fp.mix(config_.incremental.enabled ? 1 : 0);
  fp.mix_double(config_.incremental.oracle_every_s);
  fp.mix(config_.incremental.oracle_every_decisions);
  fp.mix(config_.incremental.drift_watermark);
  fp.mix(config_.failure.enabled ? 1 : 0);
  if (config_.failure.enabled) {
    fp.mix(config_.failure.script.size());
    for (const datacenter::FailureEvent& ev : config_.failure.script) {
      fp.mix(static_cast<std::uint64_t>(ev.kind));
      fp.mix(static_cast<std::uint64_t>(ev.server));
      fp.mix_double(ev.at_s);
      fp.mix_double(ev.duration_s);
      fp.mix_double(ev.magnitude);
    }
    fp.mix_double(config_.failure.mtbf_s);
    fp.mix_double(config_.failure.mttr_s);
    fp.mix(config_.failure.seed);
  }
  fp.mix(config_.seed);
  return fp.value();
}

/// The deterministic event loop: one instance per run()/resume() call.
struct AllocationService::Loop {
  const AllocationService& svc;
  const ServeConfig& cfg;
  const std::vector<ServeRequest>& stream;

  // --- mutable state (everything here travels in ServeSnapshot) ----------
  double now = 0.0;
  std::size_t cursor = 0;        ///< next stream arrival
  std::uint64_t next_seq = 0;    ///< event tie-break counter
  std::int64_t next_vm_id = 1;
  double next_snapshot_s = kInf;
  double depth_changed_s = 0.0;

  std::vector<core::ServerState> servers;
  std::vector<std::uint8_t> down;  ///< per-server crash mask
  /// up_servers() scratch (not snapshotted — derived): reused across
  /// decisions so the steady-state loop builds no fleet-sized vector per
  /// call. Invalidated by the next up_servers() call.
  mutable std::vector<core::ServerState> up_scratch;
  /// Bounded admission queue: capacity-checked against
  /// cfg.queue.capacity on every admission (see admit()).
  std::deque<QueuedEntry> queue;
  std::vector<Event> heap;  ///< binary heap via std::push_heap/pop_heap
  std::map<std::int64_t, Resident> residents;  ///< id-ordered (determinism)
  std::optional<InFlight> in_flight;

  ServeMode rung = ServeMode::kNormal;
  int breach_streak = 0;
  int healthy_streak = 0;
  double latency_ewma = 0.0;
  double mode_since_s = 0.0;

  /// Incremental rung: the cached per-server planner (mirrors every
  /// committed capacity change below) plus the oracle cadence position.
  std::optional<core::FleetState> fleet;
  double next_oracle_s = kInf;
  std::uint64_t decisions_since_oracle = 0;
  std::uint64_t divergences_since_resync = 0;

  util::Rng retry_rng;
  std::optional<datacenter::FailureSchedule> failures;
  /// Scheduled client retries outstanding in the heap. Tracked separately
  /// because pending repair/release events are *not* work: once the
  /// stream, queue, retries, and residents are all drained, the run is
  /// over even though sampled failures would keep generating repairs.
  std::size_t pending_retries = 0;

  ServeMetrics metrics;
  util::RunningStats latency_stats;
  util::RunningStats wait_stats;
  double depth_integral = 0.0;
  std::vector<DecisionRecord> log;

  bool draining = false;
  ServeObs obs;

  Loop(const AllocationService& service, const std::vector<ServeRequest>& s)
      : svc(service),
        cfg(service.config_),
        stream(s),
        retry_rng(util::named_stream(cfg.seed, "serve.retry")) {
    servers.resize(static_cast<std::size_t>(cfg.server_count));
    for (int i = 0; i < cfg.server_count; ++i) {
      servers[static_cast<std::size_t>(i)].id = i;
    }
    down.assign(static_cast<std::size_t>(cfg.server_count), 0);
    if (cfg.incremental.enabled) {
      fleet.emplace(*service.db_, cfg.proactive);
      fleet->reset(servers);
      if (cfg.incremental.oracle_every_s > 0.0) {
        next_oracle_s = cfg.incremental.oracle_every_s;
      }
    }
    latency_ewma = cfg.deadline.initial_latency_s;
    if (cfg.failure.enabled) {
      failures.emplace(cfg.failure, cfg.server_count, 0.0);
    }
    if (cfg.snapshot.every_s > 0.0) {
      next_snapshot_s = cfg.snapshot.every_s;
    }
    obs.resolve(cfg.obs.get());
  }

  // --- small helpers -------------------------------------------------------

  void push_event(Event ev) {
    ev.seq = next_seq++;
    push_event_with_seq(std::move(ev));
  }

  /// Inserts an event whose seq is already assigned (resume path).
  void push_event_with_seq(Event ev) {
    if (ev.kind == kArrivalEvent) {
      ++pending_retries;
    }
    heap.push_back(std::move(ev));
    std::push_heap(heap.begin(), heap.end(), EventAfter{});
  }

  Event pop_event() {
    std::pop_heap(heap.begin(), heap.end(), EventAfter{});
    Event ev = std::move(heap.back());
    heap.pop_back();
    if (ev.kind == kArrivalEvent) {
      --pending_retries;
    }
    return ev;
  }

  /// Integrates queue depth up to `now`; call immediately *before* any
  /// push/pop mutates the queue.
  void integrate_depth() {
    depth_integral += static_cast<double>(queue.size()) * (now - depth_changed_s);
    depth_changed_s = now;
  }

  void set_rung(ServeMode next) {
    metrics.time_in_mode_s[static_cast<std::size_t>(rung)] +=
        now - mode_since_s;
    mode_since_s = now;
    rung = next;
    AEVA_OBS_IF(obs.mode, obs.mode->set(static_cast<double>(rung)));
  }

  void observe_health() {
    if (!cfg.health.enabled) {
      return;
    }
    const double depth = static_cast<double>(queue.size());
    const bool breach = depth >= cfg.health.queue_high ||
                        latency_ewma >= cfg.health.latency_high_s;
    const bool healthy = depth <= cfg.health.queue_low &&
                         latency_ewma <= cfg.health.latency_low_s;
    if (breach) {
      ++breach_streak;
      healthy_streak = 0;
      if (breach_streak >= cfg.health.trip_after &&
          rung != ServeMode::kShedding) {
        set_rung(static_cast<ServeMode>(static_cast<int>(rung) + 1));
        ++metrics.breaker_trips;
        AEVA_OBS_IF(obs.breaker_trips, obs.breaker_trips->add());
        breach_streak = 0;
      }
    } else if (healthy) {
      ++healthy_streak;
      breach_streak = 0;
      if (healthy_streak >= cfg.health.rearm_after &&
          rung != ServeMode::kNormal) {
        set_rung(static_cast<ServeMode>(static_cast<int>(rung) - 1));
        ++metrics.breaker_rearms;
        AEVA_OBS_IF(obs.breaker_rearms, obs.breaker_rearms->add());
        healthy_streak = 0;
      }
    } else {
      // Between the watermarks: both streaks are strictly consecutive.
      breach_streak = 0;
      healthy_streak = 0;
    }
  }

  void journal(DecisionRecord rec) { log.push_back(std::move(rec)); }

  // --- rejection / retry ---------------------------------------------------

  /// Journals one rejection event and, when the reason is retryable and
  /// budget remains, schedules the client's next attempt with
  /// exponential backoff and seeded jitter.
  void handle_reject(const ServeRequest& req, std::int32_t attempt,
                     core::RejectReason reason, double wait_s,
                     double latency_s) {
    AEVA_OBS_IF(obs.rejected, obs.rejected->add());
    DecisionRecord rec;
    rec.t = now;
    rec.request_id = req.id;
    rec.attempt = attempt;
    rec.klass = req.klass;
    rec.event = DecisionEvent::kRejected;
    rec.mode = rung;
    rec.path = core::AllocationPath::kRejected;
    rec.reason = reason;
    rec.wait_s = wait_s;
    rec.latency_s = latency_s;

    bool retry_scheduled = false;
    if (core::is_retryable(reason) && cfg.retry.enabled) {
      const std::int32_t next_attempt = attempt + 1;
      if (next_attempt <= cfg.retry.max_attempts) {
        double backoff = cfg.retry.base_s;
        for (std::int32_t k = 0; k < attempt && backoff < cfg.retry.cap_s;
             ++k) {
          backoff *= cfg.retry.multiplier;
        }
        backoff = std::min(backoff, cfg.retry.cap_s);
        const double delay = backoff * (1.0 + cfg.retry.jitter *
                                                  retry_rng.uniform());
        const double at = now + delay;
        if (at <= req.deadline_s) {
          Event ev;
          ev.t = at;
          ev.kind = kArrivalEvent;
          ev.request = req;
          ev.attempt = next_attempt;
          push_event(std::move(ev));
          ++metrics.retries;
          AEVA_OBS_IF(obs.retries, obs.retries->add());
          rec.retry_at_s = at;
          retry_scheduled = true;
        }
        // When the retry would land past the deadline the client gives
        // up; the journal keeps the underlying cause (the terminal
        // marker is the absent retry_at).
      } else {
        rec.reason = core::RejectReason::kRetriesExhausted;
        ++metrics.retries_exhausted;
      }
    }
    // Every rejection event is tallied exactly once, by the reason it
    // was journaled under.
    ++metrics.rejects_by_reason[static_cast<std::size_t>(rec.reason)];
    if (!retry_scheduled) {
      ++metrics.rejected_final;
    }
    journal(std::move(rec));
  }

  // --- admission -----------------------------------------------------------

  void admit(const ServeRequest& req, std::int32_t attempt) {
    ++metrics.arrivals;
    AEVA_OBS_IF(obs.arrivals, obs.arrivals->add());
    if (req.deadline_s < now) {
      ++metrics.expired;
      AEVA_OBS_IF(obs.expired, obs.expired->add());
      handle_reject(req, attempt, core::RejectReason::kDeadlineExpired, 0.0,
                    0.0);
      return;
    }
    if (rung == ServeMode::kShedding &&
        req.klass < cfg.health.min_class_when_shedding) {
      ++metrics.sheds;
      AEVA_OBS_IF(obs.sheds, obs.sheds->add());
      handle_reject(req, attempt, core::RejectReason::kAdmissionShed, 0.0,
                    0.0);
      return;
    }
    if (cfg.deadline.enforce && std::isfinite(req.deadline_s)) {
      // Deadline-aware admission: predicted completion = now + (waiters
      // ahead + this request) × the moving latency estimate. Equality
      // admits (boundary contract, pinned by deadline_boundary tests).
      const double pending = static_cast<double>(queue.size()) +
                             (in_flight.has_value() ? 1.0 : 0.0) + 1.0;
      const double predicted = now + pending * latency_ewma;
      if (predicted > req.deadline_s) {
        handle_reject(req, attempt, core::RejectReason::kDeadlineUnmeetable,
                      0.0, 0.0);
        return;
      }
    }
    if (queue.size() >= cfg.queue.capacity) {
      switch (cfg.queue.policy) {
        case ShedPolicy::kRejectNewest: {
          ++metrics.sheds;
          AEVA_OBS_IF(obs.sheds, obs.sheds->add());
          handle_reject(req, attempt, core::RejectReason::kAdmissionQueueFull,
                        0.0, 0.0);
          return;
        }
        case ShedPolicy::kRejectOldest: {
          QueuedEntry victim = std::move(queue.front());
          integrate_depth();
          queue.pop_front();
          ++metrics.sheds;
          AEVA_OBS_IF(obs.sheds, obs.sheds->add());
          handle_reject(victim.request, victim.attempt,
                        core::RejectReason::kAdmissionShed,
                        now - victim.enqueue_s, 0.0);
          break;  // fall through to admission of the arrival
        }
        case ShedPolicy::kRejectByClass: {
          // Evict the first queued entry of the lowest class strictly
          // below the arrival's class; refuse the arrival when nothing
          // outranks it.
          std::size_t victim_index = queue.size();
          int victim_class = req.klass;
          for (std::size_t i = 0; i < queue.size(); ++i) {
            if (queue[i].request.klass < victim_class) {
              victim_class = queue[i].request.klass;
              victim_index = i;
            }
          }
          if (victim_index == queue.size()) {
            ++metrics.sheds;
            AEVA_OBS_IF(obs.sheds, obs.sheds->add());
            handle_reject(req, attempt, core::RejectReason::kAdmissionShed,
                          0.0, 0.0);
            return;
          }
          QueuedEntry victim = std::move(
              queue[victim_index]);
          integrate_depth();
          queue.erase(queue.begin() +
                      static_cast<std::ptrdiff_t>(victim_index));
          ++metrics.sheds;
          AEVA_OBS_IF(obs.sheds, obs.sheds->add());
          handle_reject(victim.request, victim.attempt,
                        core::RejectReason::kAdmissionShed,
                        now - victim.enqueue_s, 0.0);
          break;
        }
      }
    }
    integrate_depth();
    queue.push_back(QueuedEntry{req, now, attempt});
    ++metrics.admitted;
    AEVA_OBS_IF(obs.admitted, obs.admitted->add());
    metrics.peak_queue_depth = std::max(
        metrics.peak_queue_depth, static_cast<double>(queue.size()));
    AEVA_OBS_IF(obs.queue_depth,
                obs.queue_depth->set(static_cast<double>(queue.size())));
    observe_health();
  }

  // --- decisions -----------------------------------------------------------

  [[nodiscard]] const std::vector<core::ServerState>& up_servers() const {
    up_scratch.clear();
    up_scratch.reserve(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (down[i] == 0) {
        up_scratch.push_back(servers[i]);
      }
    }
    return up_scratch;
  }

  void start_decision() {
    while (!in_flight.has_value() && !queue.empty() && !draining) {
      QueuedEntry entry = std::move(queue.front());
      integrate_depth();
      queue.pop_front();
      AEVA_OBS_IF(obs.queue_depth,
                  obs.queue_depth->set(static_cast<double>(queue.size())));
      if (entry.request.deadline_s < now) {
        ++metrics.expired;
        AEVA_OBS_IF(obs.expired, obs.expired->add());
        handle_reject(entry.request, entry.attempt,
                      core::RejectReason::kDeadlineExpired,
                      now - entry.enqueue_s, 0.0);
        continue;
      }
      InFlight fl;
      fl.request = entry.request;
      fl.attempt = entry.attempt;
      fl.enqueue_s = entry.enqueue_s;
      fl.started_s = now;
      fl.mode = rung;
      std::vector<core::VmRequest> vms;
      vms.reserve(static_cast<std::size_t>(entry.request.vm_count));
      for (int i = 0; i < entry.request.vm_count; ++i) {
        vms.push_back(core::VmRequest{next_vm_id++, entry.request.profile,
                                      entry.request.qos_time_s});
      }
      const std::vector<core::ServerState>& up = up_servers();
      bool used_incremental = false;
      if (rung != ServeMode::kNormal) {
        fl.result = svc.degraded_.allocate(vms, up);
      } else if (!fleet.has_value()) {
        fl.result = svc.primary_.allocate(vms, up);
      } else {
        const bool oracle_due =
            now >= next_oracle_s ||
            (cfg.incremental.oracle_every_decisions > 0 &&
             decisions_since_oracle + 1 >=
                 cfg.incremental.oracle_every_decisions);
        if (oracle_due) {
          run_oracle(fl, vms, up);
        } else {
          fl.result = fleet->plan(vms);
          ++decisions_since_oracle;
          ++metrics.decisions_incremental;
          AEVA_OBS_IF(obs.incremental_decisions,
                      obs.incremental_decisions->add());
          used_incremental = true;
        }
      }
      const double cost =
          used_incremental
              ? cfg.cost.incremental_s
              : (rung == ServeMode::kNormal
                     ? cfg.cost.base_s +
                           cfg.cost.per_partition_s *
                               static_cast<double>(
                                   fl.result.partitions_examined)
                     : cfg.cost.degraded_s);
      Event done;
      done.t = now + cost;
      done.kind = kDecisionDoneEvent;
      push_event(std::move(done));
      in_flight = std::move(fl);
    }
  }

  /// Oracle pass: the exhaustive allocator produces the authoritative
  /// answer for this decision while the incremental planner runs in its
  /// shadow. A mismatch in either the plan or the per-server capacity
  /// mirror counts one divergence; `drift_watermark` divergences since
  /// the last resync rebuild the fleet from ground truth.
  void run_oracle(InFlight& fl, const std::vector<core::VmRequest>& vms,
                  const std::vector<core::ServerState>& up) {
    ++metrics.oracle_checks;
    AEVA_OBS_IF(obs.oracle_checks, obs.oracle_checks->add());
    decisions_since_oracle = 0;
    if (cfg.incremental.oracle_every_s > 0.0) {
      while (next_oracle_s <= now) {
        next_oracle_s += cfg.incremental.oracle_every_s;
      }
    }
    const core::AllocationResult shadow = fleet->plan(vms);
    fl.result = svc.primary_.allocate(vms, up);
    if (!plans_equal(shadow, fl.result) || !fleet_in_sync()) {
      ++metrics.oracle_divergences;
      AEVA_OBS_IF(obs.oracle_divergences, obs.oracle_divergences->add());
      if (++divergences_since_resync >= cfg.incremental.drift_watermark) {
        fleet->reset(servers, &down);
        divergences_since_resync = 0;
        ++metrics.fleet_resyncs;
        AEVA_OBS_IF(obs.fleet_resyncs, obs.fleet_resyncs->add());
      }
    }
  }

  /// True when the fleet mirror matches the loop's ground-truth capacity
  /// state server for server.
  [[nodiscard]] bool fleet_in_sync() const {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const core::AllocationNode& node = fleet->node(servers[i].id);
      if (node.down != (down[i] != 0) ||
          node.powered != servers[i].powered ||
          !(node.allocated == servers[i].allocated)) {
        return false;
      }
    }
    return true;
  }

  void commit_placement(const InFlight& fl) {
    Resident res;
    res.klass = fl.request.klass;
    res.profile = fl.request.profile;
    res.qos_time_s = fl.request.qos_time_s;
    res.release_s = std::isnan(fl.request.release_at_s)
                        ? (std::isfinite(fl.request.hold_s)
                               ? now + fl.request.hold_s
                               : kInf)
                        : fl.request.release_at_s;
    res.servers.reserve(fl.result.placements.size());
    for (const core::Placement& p : fl.result.placements) {
      res.servers.push_back(p.server_id);
    }

    DecisionRecord rec;
    rec.t = now;
    rec.request_id = fl.request.id;
    rec.attempt = fl.attempt;
    rec.klass = fl.request.klass;
    rec.event = DecisionEvent::kPlaced;
    rec.mode = fl.mode;
    rec.path = fl.result.outcome.path;
    rec.reason = fl.result.outcome.reason;
    rec.wait_s = fl.started_s - fl.enqueue_s;
    rec.latency_s = now - fl.started_s;
    rec.servers = res.servers;

    ++metrics.placed;
    AEVA_OBS_IF(obs.placed, obs.placed->add());
    if (fl.result.outcome.path == core::AllocationPath::kFallbackFirstFit) {
      ++metrics.placed_fallback;
    }
    if (fl.mode != ServeMode::kNormal) {
      ++metrics.placed_degraded;
    }

    if (res.release_s <= now) {
      // Residency already over (a re-admitted group outlived its own
      // release window): the capacity returns immediately.
      journal(std::move(rec));
      return;
    }
    for (const core::Placement& p : fl.result.placements) {
      core::ServerState& server =
          servers[static_cast<std::size_t>(p.server_id)];
      ++server.allocated.of(fl.request.profile);
      server.powered = true;
      if (fleet.has_value()) {
        fleet->allocate(p.server_id, fl.request.profile);
      }
    }
    const bool is_restart = !std::isnan(fl.request.release_at_s);
    if (std::isfinite(res.release_s) && !is_restart) {
      Event ev;
      ev.t = res.release_s;
      ev.kind = kReleaseEvent;
      ev.group = fl.request.id;
      push_event(std::move(ev));
    }
    // Restarted groups reuse their original pending release event (lazy
    // release: the handler checks residency), so none is scheduled here.
    residents.emplace(fl.request.id, std::move(res));
    journal(std::move(rec));
  }

  void complete_decision() {
    AEVA_INVARIANT(in_flight.has_value(),
                   "decision-done event with no in-flight decision");
    const InFlight fl = std::move(*in_flight);
    in_flight.reset();

    const double latency = now - fl.started_s;
    latency_ewma = cfg.deadline.ewma_alpha * latency +
                   (1.0 - cfg.deadline.ewma_alpha) * latency_ewma;
    latency_stats.add(latency);
    wait_stats.add(fl.started_s - fl.enqueue_s);
    AEVA_OBS_IF(obs.decision_latency, obs.decision_latency->record(latency));

    bool targets_up = true;
    for (const core::Placement& p : fl.result.placements) {
      if (down[static_cast<std::size_t>(p.server_id)] != 0) {
        targets_up = false;
        break;
      }
    }

    if (fl.result.complete && targets_up) {
      commit_placement(fl);
    } else if (fl.result.complete) {
      // A target crashed while the decision was in flight: the placement
      // is void; the request retries like any capacity rejection.
      ++metrics.invalidated;
      handle_reject(fl.request, fl.attempt,
                    core::RejectReason::kNoFeasibleServer,
                    fl.started_s - fl.enqueue_s, latency);
    } else {
      core::RejectReason reason = fl.result.outcome.reason;
      if (reason == core::RejectReason::kNone) {
        reason = core::RejectReason::kNoFeasibleServer;
      }
      handle_reject(fl.request, fl.attempt, reason,
                    fl.started_s - fl.enqueue_s, latency);
    }
    observe_health();
  }

  // --- failures ------------------------------------------------------------

  void apply_failure(const datacenter::FailureEvent& ev) {
    switch (ev.kind) {
      case datacenter::FailureKind::kCrash:
        apply_crash(ev);
        break;
      case datacenter::FailureKind::kPduFault:
        apply_pdu_fault(ev);
        break;
      case datacenter::FailureKind::kTorFault:
        AEVA_INVARIANT(false,
                       "ToR fault reached the serve loop despite validate()");
        break;
      default:
        break;  // degrade/brownout: no effect on the serve capacity model
    }
  }

  /// A PDU feed fault is one correlated event that crashes every server
  /// on the feed (ascending id, mirroring the simulator's expansion); the
  /// groups destroyed by the expansion are tallied as correlated losses.
  void apply_pdu_fault(const datacenter::FailureEvent& ev) {
    ++metrics.correlated_failures;
    const std::uint64_t lost_before = metrics.groups_lost;
    datacenter::FailureEvent member = ev;
    member.kind = datacenter::FailureKind::kCrash;
    for (const int server :
         cfg.failure.topology->servers_on_pdu(ev.server)) {
      member.server = server;
      apply_crash(member);
    }
    metrics.groups_lost_correlated += metrics.groups_lost - lost_before;
  }

  void apply_crash(const datacenter::FailureEvent& ev) {
    if (ev.kind != datacenter::FailureKind::kCrash) {
      return;  // unreachable via apply_failure; keeps the helper total
    }
    const std::size_t s = static_cast<std::size_t>(ev.server);
    if (down[s] != 0) {
      return;  // already masked; the pending repair stands
    }
    ++metrics.crashes;
    AEVA_OBS_IF(obs.crashes, obs.crashes->add());
    down[s] = 1;
    servers[s].powered = false;
    servers[s].allocated = workload::ClassCounts{};
    if (fleet.has_value()) {
      fleet->crash(ev.server);
    }

    // Every group with any VM on the crashed server is lost whole
    // (request-granularity recovery), in id order for determinism.
    std::vector<std::int64_t> lost;
    for (const auto& [id, res] : residents) {
      for (const std::int32_t server : res.servers) {
        if (server == ev.server) {
          lost.push_back(id);
          break;
        }
      }
    }
    for (const std::int64_t id : lost) {
      auto it = residents.find(id);
      Resident res = std::move(it->second);
      residents.erase(it);
      // Free the group's slots on surviving servers (the crashed one was
      // zeroed above).
      for (const std::int32_t server : res.servers) {
        if (server != ev.server && down[static_cast<std::size_t>(server)] == 0) {
          --servers[static_cast<std::size_t>(server)].allocated.of(res.profile);
          if (fleet.has_value()) {
            fleet->deallocate(server, res.profile);
          }
        }
      }
      ++metrics.groups_lost;
      DecisionRecord rec;
      rec.t = now;
      rec.request_id = id;
      rec.klass = res.klass;
      rec.event = DecisionEvent::kLost;
      rec.mode = rung;
      rec.path = core::AllocationPath::kRejected;
      rec.servers = res.servers;
      journal(std::move(rec));

      if (res.release_s > now) {
        // Re-admit the group as a fresh obligation: no client deadline,
        // but the original absolute release instant is preserved.
        ServeRequest restart;
        restart.id = id;
        restart.arrival_s = now;
        restart.klass = res.klass;
        restart.profile = res.profile;
        restart.vm_count = static_cast<int>(res.servers.size());
        restart.qos_time_s = res.qos_time_s;
        restart.deadline_s = kInf;
        restart.hold_s = kInf;
        restart.release_at_s = res.release_s;
        ++metrics.restarts;
        AEVA_OBS_IF(obs.restarts, obs.restarts->add());
        admit(restart, 0);
      }
    }

    Event repair;
    repair.t = now + ev.duration_s;
    repair.kind = kRepairEvent;
    repair.server = ev.server;
    push_event(std::move(repair));
    failures->on_crash(ev.server);
  }

  void apply_repair(std::int32_t server) {
    const std::size_t s = static_cast<std::size_t>(server);
    down[s] = 0;  // returns cold (powered == false) and empty
    if (fleet.has_value()) {
      fleet->repair(server);
    }
    if (failures.has_value()) {
      failures->on_repair(server, now);
    }
  }

  void apply_release(std::int64_t group) {
    const auto it = residents.find(group);
    if (it == residents.end() || it->second.release_s > now) {
      return;  // lazily cancelled (lost to a crash / re-placed later)
    }
    const Resident res = std::move(it->second);
    residents.erase(it);
    for (const std::int32_t server : res.servers) {
      if (down[static_cast<std::size_t>(server)] == 0) {
        --servers[static_cast<std::size_t>(server)].allocated.of(res.profile);
        if (fleet.has_value()) {
          fleet->deallocate(server, res.profile);
        }
      }
    }
  }

  // --- snapshotting --------------------------------------------------------

  [[nodiscard]] persist::ServeSnapshot capture(
      std::uint64_t stream_fp) const {
    AEVA_INVARIANT(!in_flight.has_value(),
                   "serve snapshots are taken at decision boundaries only");
    persist::ServeSnapshot s;
    s.stream_fingerprint = stream_fp;
    s.config_fingerprint = svc.config_fingerprint();
    s.now = now;
    s.next_arrival = cursor;
    s.next_seq = next_seq;
    s.next_vm_id = next_vm_id;
    s.next_snapshot_s = next_snapshot_s;
    s.depth_changed_s = depth_changed_s;

    s.servers.reserve(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
      persist::ServeServerState server;
      server.alloc = servers[i].allocated;
      server.powered = servers[i].powered;
      server.down = down[i] != 0;
      s.servers.push_back(server);
    }

    const auto to_request_state = [](const ServeRequest& r) {
      persist::ServeRequestState out;
      out.id = r.id;
      out.arrival_s = r.arrival_s;
      out.klass = r.klass;
      out.profile = static_cast<std::int32_t>(r.profile);
      out.vm_count = r.vm_count;
      out.qos_time_s = r.qos_time_s;
      out.deadline_s = r.deadline_s;
      out.hold_s = r.hold_s;
      out.release_at_s = r.release_at_s;
      return out;
    };

    s.queue.reserve(queue.size());
    for (const QueuedEntry& q : queue) {
      persist::ServeQueuedState qs;
      qs.request = to_request_state(q.request);
      qs.enqueue_s = q.enqueue_s;
      qs.attempt = q.attempt;
      s.queue.push_back(qs);
    }

    // The heap is serialized in seq order (reinserting preserves the
    // (t, kind, seq) order, so the resumed heap pops identically).
    std::vector<Event> sorted = heap;
    std::sort(sorted.begin(), sorted.end(),
              [](const Event& a, const Event& b) { return a.seq < b.seq; });
    for (const Event& ev : sorted) {
      switch (ev.kind) {
        case kArrivalEvent: {
          persist::ServeRetryState r;
          r.request = to_request_state(ev.request);
          r.at_s = ev.t;
          r.seq = ev.seq;
          r.attempt = ev.attempt;
          s.retries.push_back(std::move(r));
          break;
        }
        case kReleaseEvent: {
          persist::ServeReleaseState r;
          r.group_id = ev.group;
          r.at_s = ev.t;
          r.seq = ev.seq;
          s.releases.push_back(r);
          break;
        }
        case kRepairEvent: {
          persist::ServeRepairState r;
          r.server = ev.server;
          r.at_s = ev.t;
          r.seq = ev.seq;
          s.repairs.push_back(r);
          break;
        }
        default:
          AEVA_INVARIANT(false, "unexpected event kind in snapshot capture");
      }
    }

    s.residents.reserve(residents.size());
    for (const auto& [id, res] : residents) {
      persist::ServeResidentState r;
      r.group_id = id;
      r.klass = res.klass;
      r.profile = static_cast<std::int32_t>(res.profile);
      r.qos_time_s = res.qos_time_s;
      r.release_s = res.release_s;
      r.servers = res.servers;
      s.residents.push_back(std::move(r));
    }

    s.health.rung = static_cast<std::int32_t>(rung);
    s.health.breach_streak = breach_streak;
    s.health.healthy_streak = healthy_streak;
    s.health.latency_ewma_s = latency_ewma;
    s.health.mode_since_s = mode_since_s;

    s.incremental.next_oracle_s = next_oracle_s;
    s.incremental.decisions_since_oracle = decisions_since_oracle;
    s.incremental.divergences_since_resync = divergences_since_resync;

    s.retry_rng = retry_rng.state();
    if (failures.has_value()) {
      const datacenter::FailureSchedule::State fs = failures->state();
      s.failure.script_next = fs.script_next;
      s.failure.streams = fs.streams;
      s.failure.sampled_next = fs.sampled_next;
      s.failure.pdu_streams = fs.pdu_streams;
      s.failure.pdu_next = fs.pdu_next;
      s.failure.tor_streams = fs.tor_streams;
      s.failure.tor_next = fs.tor_next;
    }

    persist::ServeMetricsState& m = s.metrics;
    m.offered = metrics.offered;
    m.arrivals = metrics.arrivals;
    m.admitted = metrics.admitted;
    m.placed = metrics.placed;
    m.placed_fallback = metrics.placed_fallback;
    m.placed_degraded = metrics.placed_degraded;
    m.rejected_final = metrics.rejected_final;
    m.sheds = metrics.sheds;
    m.expired = metrics.expired;
    m.retries = metrics.retries;
    m.retries_exhausted = metrics.retries_exhausted;
    m.invalidated = metrics.invalidated;
    m.breaker_trips = metrics.breaker_trips;
    m.breaker_rearms = metrics.breaker_rearms;
    m.crashes = metrics.crashes;
    m.correlated_failures = metrics.correlated_failures;
    m.groups_lost = metrics.groups_lost;
    m.groups_lost_correlated = metrics.groups_lost_correlated;
    m.restarts = metrics.restarts;
    m.decisions_incremental = metrics.decisions_incremental;
    m.oracle_checks = metrics.oracle_checks;
    m.oracle_divergences = metrics.oracle_divergences;
    m.fleet_resyncs = metrics.fleet_resyncs;
    m.rejects_by_reason.assign(metrics.rejects_by_reason.begin(),
                               metrics.rejects_by_reason.end());
    m.time_in_mode_s.assign(metrics.time_in_mode_s.begin(),
                            metrics.time_in_mode_s.end());
    m.queue_depth_integral = depth_integral;
    m.peak_queue_depth = metrics.peak_queue_depth;

    s.latency_stats = latency_stats.state();
    s.wait_stats = wait_stats.state();

    s.log.reserve(log.size());
    for (const DecisionRecord& rec : log) {
      persist::ServeDecisionState d;
      d.t = rec.t;
      d.request_id = rec.request_id;
      d.attempt = rec.attempt;
      d.klass = rec.klass;
      d.event = static_cast<std::int32_t>(rec.event);
      d.mode = static_cast<std::int32_t>(rec.mode);
      d.path = static_cast<std::int32_t>(rec.path);
      d.reason = static_cast<std::int32_t>(rec.reason);
      d.wait_s = rec.wait_s;
      d.latency_s = rec.latency_s;
      d.retry_at_s = rec.retry_at_s;
      d.servers = rec.servers;
      s.log.push_back(std::move(d));
    }
    return s;
  }

  void restore(const persist::ServeSnapshot& s, std::uint64_t stream_fp) {
    if (s.stream_fingerprint != stream_fp) {
      throw persist::SnapshotMismatchError(
          "serve snapshot was taken against a different arrival stream");
    }
    if (s.config_fingerprint != svc.config_fingerprint()) {
      throw persist::SnapshotMismatchError(
          "serve snapshot was taken under a different service config");
    }
    if (s.servers.size() != servers.size()) {
      throw persist::SnapshotMismatchError(
          "serve snapshot fleet size " + std::to_string(s.servers.size()) +
          " does not match configured " + std::to_string(servers.size()));
    }
    if (s.next_arrival > stream.size()) {
      throw persist::SnapshotMismatchError(
          "serve snapshot arrival cursor past the end of the stream");
    }

    now = s.now;
    cursor = static_cast<std::size_t>(s.next_arrival);
    next_seq = s.next_seq;
    next_vm_id = s.next_vm_id;
    // The checkpoint cadence belongs to the *resuming* process, not the
    // snapshot: a resume without periodic snapshots must not inherit a
    // finite due time (maybe_snapshot would spin advancing it by 0).
    if (cfg.snapshot.every_s > 0.0) {
      next_snapshot_s = std::isfinite(s.next_snapshot_s)
                            ? s.next_snapshot_s
                            : cfg.snapshot.every_s;
      while (next_snapshot_s <= now) {
        next_snapshot_s += cfg.snapshot.every_s;
      }
    } else {
      next_snapshot_s = kInf;
    }
    depth_changed_s = s.depth_changed_s;

    for (std::size_t i = 0; i < servers.size(); ++i) {
      servers[i].allocated = s.servers[i].alloc;
      servers[i].powered = s.servers[i].powered;
      down[i] = s.servers[i].down ? 1 : 0;
    }

    const auto from_request_state = [](const persist::ServeRequestState& r) {
      ServeRequest out;
      out.id = r.id;
      out.arrival_s = r.arrival_s;
      out.klass = r.klass;
      out.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
          r.profile)];
      out.vm_count = r.vm_count;
      out.qos_time_s = r.qos_time_s;
      out.deadline_s = r.deadline_s;
      out.hold_s = r.hold_s;
      out.release_at_s = r.release_at_s;
      return out;
    };

    queue.clear();
    for (const persist::ServeQueuedState& q : s.queue) {
      queue.push_back(
          QueuedEntry{from_request_state(q.request), q.enqueue_s, q.attempt});
    }
    if (queue.size() > cfg.queue.capacity) {
      throw persist::SnapshotMismatchError(
          "serve snapshot queue exceeds the configured capacity");
    }

    heap.clear();
    for (const persist::ServeRetryState& r : s.retries) {
      Event ev;
      ev.t = r.at_s;
      ev.kind = kArrivalEvent;
      ev.seq = r.seq;
      ev.request = from_request_state(r.request);
      ev.attempt = r.attempt;
      push_event_with_seq(std::move(ev));
    }
    for (const persist::ServeReleaseState& r : s.releases) {
      Event ev;
      ev.t = r.at_s;
      ev.kind = kReleaseEvent;
      ev.seq = r.seq;
      ev.group = r.group_id;
      push_event_with_seq(std::move(ev));
    }
    for (const persist::ServeRepairState& r : s.repairs) {
      if (r.server < 0 || r.server >= cfg.server_count) {
        throw persist::SnapshotMismatchError(
            "serve snapshot repair targets unknown server " +
            std::to_string(r.server));
      }
      Event ev;
      ev.t = r.at_s;
      ev.kind = kRepairEvent;
      ev.seq = r.seq;
      ev.server = r.server;
      push_event_with_seq(std::move(ev));
    }

    residents.clear();
    for (const persist::ServeResidentState& r : s.residents) {
      Resident res;
      res.klass = r.klass;
      res.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
          r.profile)];
      res.qos_time_s = r.qos_time_s;
      res.release_s = r.release_s;
      for (const std::int32_t server : r.servers) {
        if (server < 0 || server >= cfg.server_count) {
          throw persist::SnapshotMismatchError(
              "serve snapshot resident references unknown server " +
              std::to_string(server));
        }
        res.servers.push_back(server);
      }
      residents.emplace(r.group_id, std::move(res));
    }

    rung = static_cast<ServeMode>(s.health.rung);
    breach_streak = s.health.breach_streak;
    healthy_streak = s.health.healthy_streak;
    latency_ewma = s.health.latency_ewma_s;
    mode_since_s = s.health.mode_since_s;

    next_oracle_s = s.incremental.next_oracle_s;
    decisions_since_oracle = s.incremental.decisions_since_oracle;
    divergences_since_resync = s.incremental.divergences_since_resync;
    if (fleet.has_value()) {
      // The planner itself is rebuilt from the restored ground truth (the
      // score memo is pure, so this does not perturb later decisions).
      fleet->reset(servers, &down);
    }

    retry_rng.set_state(s.retry_rng);
    if (failures.has_value()) {
      datacenter::FailureSchedule::State fs;
      fs.script_next = static_cast<std::size_t>(s.failure.script_next);
      fs.streams = s.failure.streams;
      fs.sampled_next = s.failure.sampled_next;
      fs.pdu_streams = s.failure.pdu_streams;
      fs.pdu_next = s.failure.pdu_next;
      fs.tor_streams = s.failure.tor_streams;
      fs.tor_next = s.failure.tor_next;
      failures->restore(fs);
    }

    const persist::ServeMetricsState& m = s.metrics;
    metrics.offered = m.offered;
    metrics.arrivals = m.arrivals;
    metrics.admitted = m.admitted;
    metrics.placed = m.placed;
    metrics.placed_fallback = m.placed_fallback;
    metrics.placed_degraded = m.placed_degraded;
    metrics.rejected_final = m.rejected_final;
    metrics.sheds = m.sheds;
    metrics.expired = m.expired;
    metrics.retries = m.retries;
    metrics.retries_exhausted = m.retries_exhausted;
    metrics.invalidated = m.invalidated;
    metrics.breaker_trips = m.breaker_trips;
    metrics.breaker_rearms = m.breaker_rearms;
    metrics.crashes = m.crashes;
    metrics.correlated_failures = m.correlated_failures;
    metrics.groups_lost = m.groups_lost;
    metrics.groups_lost_correlated = m.groups_lost_correlated;
    metrics.restarts = m.restarts;
    metrics.decisions_incremental = m.decisions_incremental;
    metrics.oracle_checks = m.oracle_checks;
    metrics.oracle_divergences = m.oracle_divergences;
    metrics.fleet_resyncs = m.fleet_resyncs;
    if (m.rejects_by_reason.size() != core::kRejectReasonCount ||
        m.time_in_mode_s.size() != static_cast<std::size_t>(kServeModeCount)) {
      throw persist::SnapshotMismatchError(
          "serve snapshot tallies do not match this build's enums");
    }
    std::copy(m.rejects_by_reason.begin(), m.rejects_by_reason.end(),
              metrics.rejects_by_reason.begin());
    std::copy(m.time_in_mode_s.begin(), m.time_in_mode_s.end(),
              metrics.time_in_mode_s.begin());
    depth_integral = m.queue_depth_integral;
    metrics.peak_queue_depth = m.peak_queue_depth;

    util::RunningStats fresh_latency;
    fresh_latency.restore(s.latency_stats);
    latency_stats = fresh_latency;
    util::RunningStats fresh_wait;
    fresh_wait.restore(s.wait_stats);
    wait_stats = fresh_wait;

    log.clear();
    log.reserve(s.log.size());
    for (const persist::ServeDecisionState& d : s.log) {
      if (d.reason >= static_cast<std::int32_t>(core::kRejectReasonCount)) {
        throw persist::SnapshotMismatchError(
            "serve snapshot log carries reject reason " +
            std::to_string(d.reason) + " unknown to this build");
      }
      DecisionRecord rec;
      rec.t = d.t;
      rec.request_id = d.request_id;
      rec.attempt = d.attempt;
      rec.klass = d.klass;
      rec.event = static_cast<DecisionEvent>(d.event);
      rec.mode = static_cast<ServeMode>(d.mode);
      rec.path = static_cast<core::AllocationPath>(d.path);
      rec.reason = static_cast<core::RejectReason>(d.reason);
      rec.wait_s = d.wait_s;
      rec.latency_s = d.latency_s;
      rec.retry_at_s = d.retry_at_s;
      rec.servers = d.servers;
      log.push_back(std::move(rec));
    }
  }

  void maybe_snapshot(std::uint64_t stream_fp) {
    if (in_flight.has_value() || now < next_snapshot_s) {
      return;
    }
    while (next_snapshot_s <= now) {
      next_snapshot_s += cfg.snapshot.every_s;
    }
    emit_snapshot(stream_fp);
  }

  void emit_snapshot(std::uint64_t stream_fp) {
    if (cfg.snapshot.path.empty() && !cfg.snapshot.hook) {
      return;
    }
    const persist::ServeSnapshot snap = capture(stream_fp);
    if (!cfg.snapshot.path.empty()) {
      persist::write_serve_snapshot_file(cfg.snapshot.path, snap);
    }
    if (cfg.snapshot.hook) {
      cfg.snapshot.hook(snap);
    }
  }

  // --- the loop ------------------------------------------------------------

  ServeResult go(std::uint64_t stream_fp, bool resumed = false) {
    if (resumed) {
      // Snapshots are captured mid-instant, after the arrival phase but
      // before the decision phase — resume re-enters exactly there.
      start_decision();
    }
    while (true) {
      if (!draining && cfg.stop && cfg.stop()) {
        draining = true;
      }
      if (draining && !in_flight.has_value()) {
        break;
      }
      const double t_heap = heap.empty() ? kInf : heap.front().t;
      const double t_fail =
          failures.has_value() ? failures->next_time() : kInf;
      const double t_stream =
          (!draining && cursor < stream.size()) ? stream[cursor].arrival_s
                                                : kInf;
      // Termination: pending repairs and releases are not work by
      // themselves, and sampled failures generate crash times forever —
      // the run ends when the stream, queue, scheduled retries, and
      // resident groups (whose loss to a crash would create new work)
      // are all drained.
      const bool has_work = in_flight.has_value() || !queue.empty() ||
                            pending_retries > 0 || !residents.empty() ||
                            t_stream < kInf;
      if (!has_work) {
        break;
      }
      double t_next = std::min(t_heap, t_stream);
      if (t_fail < t_next) {
        t_next = t_fail;
      }
      if (t_next == kInf) {
        break;  // residents held forever with no event source: idle
      }
      AEVA_INVARIANT(t_next >= now, "serve event loop time went backwards");
      now = t_next;

      // Phase 1: every heap event at this instant, canonical order.
      while (!heap.empty() && heap.front().t == now) {
        const Event ev = pop_event();
        switch (ev.kind) {
          case kRepairEvent:
            apply_repair(ev.server);
            break;
          case kReleaseEvent:
            apply_release(ev.group);
            break;
          case kDecisionDoneEvent:
            complete_decision();
            break;
          case kArrivalEvent:
            admit(ev.request, ev.attempt);
            break;
          default:
            AEVA_INVARIANT(false, "unknown serve event kind");
        }
      }
      // Phase 2: faults due now.
      if (failures.has_value() && failures->next_time() <= now) {
        for (const datacenter::FailureEvent& ev : failures->pop_due(now)) {
          apply_failure(ev);
        }
      }
      // Phase 3: fresh stream arrivals at this instant.
      while (!draining && cursor < stream.size() &&
             stream[cursor].arrival_s == now) {
        ++metrics.offered;
        admit(stream[cursor], 0);
        ++cursor;
      }
      // Phase 4: checkpoint at the decision boundary, then next decision.
      maybe_snapshot(stream_fp);
      start_decision();
    }

    // Flush integrators and finalize metrics.
    integrate_depth();
    metrics.time_in_mode_s[static_cast<std::size_t>(rung)] +=
        now - mode_since_s;
    mode_since_s = now;
    metrics.duration_s = now;
    metrics.goodput_fraction =
        metrics.offered == 0
            ? 1.0
            : static_cast<double>(metrics.placed) /
                  static_cast<double>(metrics.offered);
    metrics.mean_decision_latency_s = latency_stats.mean();
    metrics.max_decision_latency_s =
        latency_stats.count() == 0 ? 0.0 : latency_stats.max();
    metrics.mean_wait_s = wait_stats.mean();
    metrics.max_wait_s = wait_stats.count() == 0 ? 0.0 : wait_stats.max();
    metrics.mean_queue_depth = now > 0.0 ? depth_integral / now : 0.0;

    if (draining) {
      // Graceful drain: persist the queue and every pending obligation so
      // a later resume() continues bit-identically.
      emit_snapshot(stream_fp);
    }

    ServeResult result;
    result.metrics = metrics;
    result.log = std::move(log);
    result.final_servers = servers;
    result.drained = draining;
    return result;
  }
};

ServeResult AllocationService::run(
    const std::vector<ServeRequest>& stream) const {
  const std::uint64_t fp = stream_fingerprint(stream);
  Loop loop(*this, stream);
  return loop.go(fp);
}

ServeResult AllocationService::resume(
    const std::vector<ServeRequest>& stream,
    const persist::ServeSnapshot& snapshot) const {
  const std::uint64_t fp = stream_fingerprint(stream);
  Loop loop(*this, stream);
  loop.restore(snapshot, fp);
  // Cold-cache mitigation, same as the simulator's resume path: re-warm
  // the estimate memo against the restored fleet (never changes results).
  (void)primary_.rewarm(loop.up_servers());
  return loop.go(fp, /*resumed=*/true);
}

std::string serve_metrics_json(const ServeMetrics& m) {
  std::string out = "{";
  const auto put_u = [&out](const char* key, std::uint64_t value,
                            bool comma = true) {
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
    if (comma) {
      out += ',';
    }
  };
  const auto put_d = [&out](const char* key, double value,
                            bool comma = true) {
    out += '"';
    out += key;
    out += "\":";
    append_json_number(out, value);
    if (comma) {
      out += ',';
    }
  };
  put_u("admitted", m.admitted);
  put_u("arrivals", m.arrivals);
  put_u("breaker_rearms", m.breaker_rearms);
  put_u("breaker_trips", m.breaker_trips);
  put_u("correlated_failures", m.correlated_failures);
  put_u("crashes", m.crashes);
  put_u("decisions_incremental", m.decisions_incremental);
  put_d("duration_s", m.duration_s);
  put_u("expired", m.expired);
  put_u("fleet_resyncs", m.fleet_resyncs);
  put_d("goodput_fraction", m.goodput_fraction);
  put_u("groups_lost", m.groups_lost);
  put_u("groups_lost_correlated", m.groups_lost_correlated);
  put_u("invalidated", m.invalidated);
  put_d("max_decision_latency_s", m.max_decision_latency_s);
  put_d("max_wait_s", m.max_wait_s);
  put_d("mean_decision_latency_s", m.mean_decision_latency_s);
  put_d("mean_queue_depth", m.mean_queue_depth);
  put_d("mean_wait_s", m.mean_wait_s);
  put_u("offered", m.offered);
  put_u("oracle_checks", m.oracle_checks);
  put_u("oracle_divergences", m.oracle_divergences);
  put_d("peak_queue_depth", m.peak_queue_depth);
  put_u("placed", m.placed);
  put_u("placed_degraded", m.placed_degraded);
  put_u("placed_fallback", m.placed_fallback);
  put_u("rejected_final", m.rejected_final);
  out += "\"rejects_by_reason\":{";
  for (std::size_t i = 0; i < core::kRejectReasonCount; ++i) {
    if (i != 0) {
      out += ',';
    }
    out += '"';
    out += core::to_string(static_cast<core::RejectReason>(i));
    out += "\":";
    out += std::to_string(m.rejects_by_reason[i]);
  }
  out += "},";
  put_u("restarts", m.restarts);
  put_u("retries", m.retries);
  put_u("retries_exhausted", m.retries_exhausted);
  put_u("sheds", m.sheds);
  out += "\"time_in_mode_s\":{";
  for (int i = 0; i < kServeModeCount; ++i) {
    if (i != 0) {
      out += ',';
    }
    out += '"';
    out += to_string(static_cast<ServeMode>(i));
    out += "\":";
    append_json_number(out, m.time_in_mode_s[static_cast<std::size_t>(i)]);
  }
  out += "}}";
  return out;
}

}  // namespace aeva::serve
