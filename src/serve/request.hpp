#pragma once

/// \file request.hpp
/// Vocabulary of the serve layer (docs/RESILIENCE.md, "Overload
/// protection"): the long-lived allocation service's request type, the
/// deterministic arrival-stream generator feeding it, and the decision-log
/// records every control-point outcome is journaled into.
///
/// Everything here is deterministic: streams derive from
/// `util::named_stream(seed, "serve.arrivals")`, the decision log renders
/// with exact `%.17g` formatting, and a log is therefore byte-comparable
/// across runs, platforms, and kill/resume boundaries (the
/// tools/kill_resume_smoke.sh serve section `cmp`s it).

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "workload/profile.hpp"

namespace aeva::serve {

/// Number of request priority classes. Higher is more important; the
/// reject-by-class shed policy and the shedding ladder rung drop the
/// lowest classes first. 0 = batch, 1 = interactive, 2 = system.
inline constexpr int kClassCount = 3;

/// One allocation request arriving at the service.
struct ServeRequest {
  std::int64_t id = 0;
  double arrival_s = 0.0;  ///< submission instant (sim time)
  int klass = 0;           ///< priority class, [0, kClassCount)
  workload::ProfileClass profile = workload::ProfileClass::kCpu;
  int vm_count = 1;        ///< VMs in the request (all same profile)
  /// QoS guarantee forwarded to the allocator (per-VM max execution
  /// time); +inf = no guarantee.
  double qos_time_s = std::numeric_limits<double>::infinity();
  /// Absolute decision deadline: the client stops caring past this
  /// instant. Deadline-aware admission refuses requests predicted to
  /// miss it; +inf = no deadline.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Residency: placed VMs release their capacity this long after the
  /// decision commits; +inf = held forever (the batch-equivalence mode).
  double hold_s = std::numeric_limits<double>::infinity();
  /// Crash-recovery plumbing (service-internal): a group re-admitted
  /// after losing its server keeps its *absolute* release instant, so its
  /// residency window never stretches. NaN (the default for client
  /// requests) derives the release from `hold_s` at commit time.
  double release_at_s = std::numeric_limits<double>::quiet_NaN();
};

/// Synthetic open-loop arrival stream: Poisson arrivals, weighted priority
/// classes, uniform request sizes, exponential holds. The same
/// (config, seed) always yields the same stream, bit for bit.
struct ArrivalStreamConfig {
  std::size_t count = 2000;   ///< number of requests
  double rate_rps = 20.0;     ///< mean arrival rate (requests / sim second)
  /// Mean residency after placement (exponential); <= 0 → infinite hold.
  double hold_mean_s = 60.0;
  /// Mean decision-deadline slack after arrival (uniform in
  /// [0.5, 1.5] × this); <= 0 → no deadlines.
  double deadline_slack_s = 0.0;
  /// Per-VM QoS execution-time guarantee; +inf = none.
  double qos_time_s = std::numeric_limits<double>::infinity();
  int min_vms = 1;  ///< request size bounds (paper: 1–4 VMs per request)
  int max_vms = 4;
  /// Relative weights of the priority classes (batch, interactive,
  /// system); must be non-negative with a positive sum.
  std::array<double, kClassCount> class_weights = {0.70, 0.25, 0.05};

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Generates `config.count` requests with ids 1..count in arrival order.
[[nodiscard]] std::vector<ServeRequest> generate_stream(
    const ArrivalStreamConfig& config, std::uint64_t seed);

/// Order-sensitive 64-bit fingerprint of a stream; stored in serve
/// snapshots so resume refuses a snapshot taken against different input.
[[nodiscard]] std::uint64_t stream_fingerprint(
    const std::vector<ServeRequest>& stream);

/// Rung of the degradation ladder (docs/RESILIENCE.md). The hysteresis
/// health controller moves one rung at a time: consecutive watermark
/// breaches demote, a cooldown of consecutive healthy observations
/// promotes back.
enum class ServeMode {
  kNormal = 0,    ///< full proactive search (primary → fallback chain)
  kDegraded = 1,  ///< circuit breaker open: first-fit placement only
  kShedding = 2,  ///< degraded *and* low-priority arrivals refused
};

/// Number of ladder rungs.
inline constexpr int kServeModeCount = 3;

[[nodiscard]] constexpr const char* to_string(ServeMode mode) noexcept {
  switch (mode) {
    case ServeMode::kNormal: return "normal";
    case ServeMode::kDegraded: return "degraded";
    case ServeMode::kShedding: return "shedding";
  }
  return "?";
}

/// What a decision-log record describes.
enum class DecisionEvent {
  kPlaced = 0,    ///< request committed to servers
  kRejected = 1,  ///< turned away (retry_at_s >= 0 → a retry is scheduled)
  kLost = 2,      ///< a *placed* group was lost to a server crash
};

[[nodiscard]] constexpr const char* to_string(DecisionEvent event) noexcept {
  switch (event) {
    case DecisionEvent::kPlaced: return "placed";
    case DecisionEvent::kRejected: return "rejected";
    case DecisionEvent::kLost: return "lost";
  }
  return "?";
}

/// One journaled service outcome. The log is the service's ground truth:
/// determinism suites and the kill/resume smoke compare rendered logs
/// byte for byte.
struct DecisionRecord {
  double t = 0.0;              ///< event instant (sim time)
  std::int64_t request_id = 0;
  std::int32_t attempt = 0;    ///< 0 = first submission, 1+ = retries
  std::int32_t klass = 0;
  DecisionEvent event = DecisionEvent::kRejected;
  ServeMode mode = ServeMode::kNormal;  ///< ladder rung at the instant
  core::AllocationPath path = core::AllocationPath::kRejected;
  core::RejectReason reason = core::RejectReason::kNone;
  double wait_s = 0.0;     ///< enqueue → decision (0 for admission rejects)
  double latency_s = 0.0;  ///< decision service time (0 when none ran)
  double retry_at_s = -1.0;  ///< >= 0: client retry scheduled at this time
  std::vector<std::int32_t> servers;  ///< target server per VM (placed)
};

/// Renders records one per line with exact `%.17g` numeric formatting —
/// byte-stable across platforms; equal logs ⇔ equal byte streams.
[[nodiscard]] std::string render_decision_log(
    const std::vector<DecisionRecord>& records);

}  // namespace aeva::serve
