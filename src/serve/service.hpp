#pragma once

/// \file service.hpp
/// The long-lived allocation service (docs/RESILIENCE.md, "Overload
/// protection"): wraps the batch allocator chain (proactive → first-fit →
/// reject, core/proactive.hpp) behind a deterministic request loop with
/// full overload protection —
///
///  * a **bounded admission queue** with a configurable capacity and
///    load-shedding policy (reject-newest / reject-oldest /
///    reject-by-class);
///  * **deadline-aware admission**: requests predicted to miss their
///    decision deadline (queue depth × a moving decision-latency
///    estimate) are refused at the door instead of wasting queue space;
///  * an optional **incremental rung ahead of the proactive search**
///    (IncrementalConfig): normal-rung decisions run against a cached
///    per-server `core::FleetState` — bit-identical placements with no
///    per-decision fleet scan — while the exhaustive allocator demotes
///    to a periodic oracle that cross-checks and resynchronizes it;
///  * a **degradation ladder** driven by a hysteresis health controller:
///    consecutive breaches of the queue-depth / latency watermarks trip a
///    circuit breaker one rung down (normal → degraded → shedding),
///    demoting the expensive proactive search to first-fit placement; a
///    cooldown of consecutive healthy observations re-arms one rung up;
///  * **client-side retry** of retryable rejections
///    (core::is_retryable) with exponential backoff and deterministic
///    seeded jitter;
///  * **graceful drain** (`ServeConfig::stop`: in-flight decisions
///    finish, the queue is preserved in a final snapshot) and **crash
///    recovery**: periodic "AEVASRV" snapshots via
///    persist/serve_snapshot.hpp; a SIGKILLed service resumed from its
///    last snapshot reproduces the uninterrupted run's decision log and
///    metrics bit for bit.
///
/// Time is simulated: the decision latency of the allocator is modeled
/// deterministically from its reported search effort
/// (DecisionCostConfig), so the whole service — including breaker trips
/// and retry schedules — is bit-reproducible from the seed. An unloaded
/// service (no deadlines, infinite holds, breaker disabled) makes exactly
/// the placements of the batch allocator chain on the same request
/// sequence (bench/serve_overload hard-gates both properties).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "core/types.hpp"
#include "datacenter/failure.hpp"
#include "modeldb/database.hpp"
#include "obs/session.hpp"
#include "persist/serve_snapshot.hpp"
#include "serve/request.hpp"

namespace aeva::serve {

/// What the bounded admission queue does when it is full and a new
/// request arrives.
enum class ShedPolicy {
  kRejectNewest = 0,  ///< refuse the arriving request
  kRejectOldest = 1,  ///< evict the head (oldest waiter), admit the arrival
  /// Evict the first queued request of the lowest priority class below
  /// the arrival's class; refuse the arrival when nothing outranks it.
  kRejectByClass = 2,
};

[[nodiscard]] constexpr const char* to_string(ShedPolicy policy) noexcept {
  switch (policy) {
    case ShedPolicy::kRejectNewest: return "reject-newest";
    case ShedPolicy::kRejectOldest: return "reject-oldest";
    case ShedPolicy::kRejectByClass: return "reject-by-class";
  }
  return "?";
}

/// Bounded admission queue tuning.
struct QueueConfig {
  std::size_t capacity = 64;  ///< hard bound on queued requests (> 0)
  ShedPolicy policy = ShedPolicy::kRejectNewest;
};

/// Deadline-aware admission tuning. The decision-latency estimate is an
/// EWMA over observed (simulated) decision service times, seeded with
/// `initial_latency_s` before the first observation.
struct DeadlineConfig {
  bool enforce = true;
  double initial_latency_s = 0.02;
  double ewma_alpha = 0.2;  ///< weight of the newest observation, (0, 1]
};

/// Hysteresis health controller / degradation-ladder tuning. A breach is
/// `depth >= queue_high || ewma >= latency_high_s`; a healthy observation
/// is `depth <= queue_low && ewma <= latency_low_s`; observations between
/// the watermarks reset both streaks (they are strictly consecutive).
struct HealthConfig {
  bool enabled = true;
  double queue_high = 48.0;       ///< depth breach watermark
  double queue_low = 8.0;         ///< depth healthy watermark (<= high)
  double latency_high_s = 0.25;   ///< EWMA breach watermark
  double latency_low_s = 0.05;    ///< EWMA healthy watermark (<= high)
  int trip_after = 3;    ///< consecutive breaches per rung down (>= 1)
  int rearm_after = 16;  ///< consecutive healthy per rung up (>= 1)
  /// Shedding rung: arrivals with klass below this are refused outright.
  int min_class_when_shedding = 1;
};

/// Client-side retry contract for retryable rejections: attempt k
/// (0-based) retries after `min(cap_s, base_s·multiplier^k) · (1 + jitter·u)`
/// where u ~ U[0,1) from the dedicated "serve.retry" stream. Terminal
/// rejections (core::is_retryable == false), exhausted budgets, and
/// retries that would land past the request deadline give up instead.
struct RetryConfig {
  bool enabled = true;
  int max_attempts = 3;  ///< retries after the first attempt (>= 0)
  double base_s = 0.5;
  double multiplier = 2.0;
  double cap_s = 30.0;
  double jitter = 0.2;  ///< in [0, 1]: max relative jitter
};

/// Deterministic model of decision service time, derived from the
/// allocator's reported effort so degraded mode genuinely relieves the
/// service: normal-rung decisions cost
/// `base_s + per_partition_s × partitions_examined`, degraded/shedding
/// decisions (first-fit) cost `degraded_s`.
struct DecisionCostConfig {
  double base_s = 0.01;
  double per_partition_s = 2e-5;
  double degraded_s = 0.002;
  /// Cost of an incremental-rung decision (core::FleetState::plan): no
  /// per-fleet setup, group-index lookups only — far below base_s.
  double incremental_s = 5e-4;
};

/// Incremental fleet planner tuning (the serve half of
/// core/incremental.hpp; docs/ARCHITECTURE.md "Rebalancer as oracle").
/// When enabled, normal-rung decisions run against the cached
/// `core::FleetState` — bit-identical placements to the exhaustive
/// search at `DecisionCostConfig::incremental_s` per decision — and the
/// exhaustive `ProactiveAllocator` demotes to a periodic *oracle*: every
/// `oracle_every_s` sim-seconds and/or every `oracle_every_decisions`
/// decisions, one decision runs both planners, takes the exhaustive
/// answer as authoritative, and cross-checks the fleet's plan and mirror
/// state. `drift_watermark` divergences since the last resync force a
/// full `FleetState::reset` from the authoritative fleet.
struct IncrementalConfig {
  bool enabled = false;  ///< default-off: existing behaviour bit-identical
  /// Sim-seconds between periodic oracle decisions; 0 disables the clock.
  double oracle_every_s = 0.0;
  /// Decisions between oracle decisions; 0 disables the counter. With
  /// both triggers 0 the oracle never runs (pure incremental serving).
  std::uint64_t oracle_every_decisions = 0;
  /// Oracle divergences since the last resync that force a resync (>= 1).
  std::uint64_t drift_watermark = 1;
};

/// Periodic service checkpointing (mirrors datacenter::SnapshotConfig).
struct ServeSnapshotConfig {
  /// Checkpoint period in sim seconds; 0 disables periodic snapshots.
  double every_s = 0.0;
  /// Atomic write target; empty = no file (hook-only).
  std::string path;
  /// In-process observer of every captured snapshot (tests, custom
  /// sinks); may be null.
  std::function<void(const persist::ServeSnapshot&)> hook;
};

/// Full service configuration.
struct ServeConfig {
  int server_count = 60;
  /// Primary allocator tuning (the normal-rung chain; set
  /// degrade_to_first_fit there for the in-allocator fallback leg).
  core::ProactiveConfig proactive;
  /// First-fit multiplex of the degraded rung's allocator.
  int degraded_multiplex = 2;

  QueueConfig queue;
  DeadlineConfig deadline;
  HealthConfig health;
  RetryConfig retry;
  DecisionCostConfig cost;
  IncrementalConfig incremental;

  /// Fault injection. Crashes lose the server's resident groups — each is
  /// journaled as `lost` and re-admitted — and mask it until repair; PDU
  /// faults expand to a crash of every server on the feed (scripted `pdu`
  /// events and `domains.pdu_mtbf_s` sampling both need `topology` wired);
  /// degrade/brownout events are ignored by the serve capacity model. ToR
  /// faults are rejected at validate(): serve has no progress model, so
  /// the simulator's stall-without-loss semantics cannot be honoured.
  datacenter::FailureConfig failure;

  std::uint64_t seed = 2026;  ///< retry-jitter stream seed

  /// Cooperative drain trigger, polled at decision boundaries: once it
  /// returns true the service stops admitting work from the stream,
  /// finishes the in-flight decision, captures a final snapshot (when
  /// configured), and returns with `ServeResult::drained` set. Wire a
  /// SIGTERM flag here for graceful shutdown; may be null.
  std::function<bool()> stop;

  ServeSnapshotConfig snapshot;

  /// Observability session (null = disabled = bit-identical, as
  /// everywhere else).
  std::shared_ptr<obs::Session> obs;

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Aggregated service metrics (all sim-time; deterministic).
struct ServeMetrics {
  std::uint64_t offered = 0;    ///< stream arrivals
  std::uint64_t arrivals = 0;   ///< offered + retries + crash re-admissions
  std::uint64_t admitted = 0;   ///< entered the queue
  std::uint64_t placed = 0;     ///< committed placements (final successes)
  std::uint64_t placed_fallback = 0;  ///< via the in-chain first-fit leg
  std::uint64_t placed_degraded = 0;  ///< decided on a degraded rung
  std::uint64_t rejected_final = 0;   ///< terminal rejections
  std::uint64_t sheds = 0;      ///< shed-policy / shedding-rung refusals
  std::uint64_t expired = 0;    ///< deadline passed (at door or in queue)
  std::uint64_t retries = 0;    ///< client retries scheduled
  std::uint64_t retries_exhausted = 0;
  std::uint64_t invalidated = 0;  ///< decisions voided by a mid-flight crash
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_rearms = 0;
  std::uint64_t crashes = 0;
  /// Domain-level faults applied (each may crash several servers).
  std::uint64_t correlated_failures = 0;
  std::uint64_t groups_lost = 0;  ///< placed groups lost to crashes
  /// Subset of groups_lost destroyed by one correlated fault — the serve
  ///-level blast radius (docs/RESILIENCE.md, correlated failure domains).
  std::uint64_t groups_lost_correlated = 0;
  std::uint64_t restarts = 0;     ///< lost groups re-admitted
  /// Incremental rung (zero unless IncrementalConfig::enabled).
  std::uint64_t decisions_incremental = 0;  ///< served from FleetState
  std::uint64_t oracle_checks = 0;          ///< exhaustive cross-checks run
  std::uint64_t oracle_divergences = 0;     ///< cross-checks that disagreed
  std::uint64_t fleet_resyncs = 0;          ///< drift-watermark full rebuilds
  /// Every rejection event tallied by its immediate reason (index =
  /// core::RejectReason value; includes non-final, later-retried ones).
  std::array<std::uint64_t, core::kRejectReasonCount> rejects_by_reason{};
  std::array<double, kServeModeCount> time_in_mode_s{};
  double duration_s = 0.0;
  double goodput_fraction = 1.0;  ///< placed / offered
  double mean_decision_latency_s = 0.0;
  double max_decision_latency_s = 0.0;
  double mean_wait_s = 0.0;
  double max_wait_s = 0.0;
  double mean_queue_depth = 0.0;
  double peak_queue_depth = 0.0;
};

/// Outcome of one service run.
struct ServeResult {
  ServeMetrics metrics;
  std::vector<DecisionRecord> log;  ///< complete decision journal
  std::vector<core::ServerState> final_servers;
  bool drained = false;  ///< true when `ServeConfig::stop` ended the run
};

/// The long-lived allocation service. Construction validates the config
/// and builds the allocator chain; `run`/`resume` then drive the
/// deterministic event loop over an arrival stream (sorted by
/// `arrival_s`; ids unique). The database must outlive the service.
class AllocationService {
 public:
  AllocationService(const modeldb::ModelDatabase& db, ServeConfig config);

  /// Serves the whole stream from t = 0 (or until `stop` fires).
  [[nodiscard]] ServeResult run(const std::vector<ServeRequest>& stream) const;

  /// Resumes a killed/drained service from a snapshot taken against the
  /// same stream and config; throws persist::SnapshotMismatchError when
  /// the fingerprints or shapes do not match. The completed run's log
  /// and metrics are bit-identical to an uninterrupted `run`.
  [[nodiscard]] ServeResult resume(const std::vector<ServeRequest>& stream,
                                   const persist::ServeSnapshot& snapshot) const;

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// Fingerprint of the service configuration (stored in snapshots).
  [[nodiscard]] std::uint64_t config_fingerprint() const;

 private:
  struct Loop;  // the event loop lives in service.cpp

  ServeConfig config_;
  /// Kept for the incremental rung: each run's Loop builds its
  /// core::FleetState against the same database as the primary chain.
  const modeldb::ModelDatabase* db_ = nullptr;
  core::ProactiveAllocator primary_;
  core::FirstFitAllocator degraded_;
};

/// Byte-stable JSON rendering of the metrics (exact %.17g doubles,
/// name-sorted keys) — the serve analogue of datacenter_sim's
/// final-metrics JSON; kill/resume smokes `cmp` it.
[[nodiscard]] std::string serve_metrics_json(const ServeMetrics& metrics);

}  // namespace aeva::serve
