#include "serve/request.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace aeva::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact shortest-round-trip rendering of a double; "inf"/"-inf" for
/// infinities so logs stay readable.
std::string render_double(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void ArrivalStreamConfig::validate() const {
  AEVA_REQUIRE(rate_rps > 0.0 && std::isfinite(rate_rps),
               "arrival rate must be positive and finite, got ", rate_rps);
  AEVA_REQUIRE(min_vms >= 1, "min_vms must be >= 1, got ", min_vms);
  AEVA_REQUIRE(max_vms >= min_vms, "max_vms (", max_vms,
               ") must be >= min_vms (", min_vms, ")");
  AEVA_REQUIRE(!(qos_time_s <= 0.0) && !std::isnan(qos_time_s),
               "qos_time_s must be positive (or +inf), got ", qos_time_s);
  double weight_sum = 0.0;
  for (const double w : class_weights) {
    AEVA_REQUIRE(w >= 0.0 && std::isfinite(w),
                 "class weights must be finite and non-negative, got ", w);
    weight_sum += w;
  }
  AEVA_REQUIRE(weight_sum > 0.0, "class weights must not all be zero");
}

std::vector<ServeRequest> generate_stream(const ArrivalStreamConfig& config,
                                          std::uint64_t seed) {
  config.validate();
  util::Rng rng = util::named_stream(seed, "serve.arrivals");
  double weight_sum = 0.0;
  for (const double w : config.class_weights) {
    weight_sum += w;
  }

  std::vector<ServeRequest> stream;
  stream.reserve(config.count);
  double now = 0.0;
  for (std::size_t i = 0; i < config.count; ++i) {
    now += rng.exponential(config.rate_rps);
    ServeRequest req;
    req.id = static_cast<std::int64_t>(i) + 1;
    req.arrival_s = now;
    // Weighted class pick: one uniform draw against the cumulative
    // weights, highest class last so rounding residue lands there.
    const double pick = rng.uniform() * weight_sum;
    double cumulative = 0.0;
    req.klass = kClassCount - 1;
    for (int k = 0; k < kClassCount; ++k) {
      cumulative += config.class_weights[static_cast<std::size_t>(k)];
      if (pick < cumulative) {
        req.klass = k;
        break;
      }
    }
    req.profile = workload::kAllProfileClasses[static_cast<std::size_t>(
        rng.uniform_int(0, workload::kProfileClassCount - 1))];
    req.vm_count = static_cast<int>(
        rng.uniform_int(config.min_vms, config.max_vms));
    req.qos_time_s = config.qos_time_s;
    req.deadline_s = config.deadline_slack_s > 0.0
                         ? now + config.deadline_slack_s * rng.uniform(0.5, 1.5)
                         : kInf;
    req.hold_s = config.hold_mean_s > 0.0
                     ? rng.exponential(1.0 / config.hold_mean_s)
                     : kInf;
    stream.push_back(req);
  }
  return stream;
}

std::uint64_t stream_fingerprint(const std::vector<ServeRequest>& stream) {
  // Order-sensitive splitmix64 mix over every field of every request
  // (same scheme as persist::Fingerprint, inlined to keep this library
  // below persist in the layering).
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto mix = [&state](std::uint64_t value) {
    state ^= value;
    (void)util::splitmix64(state);
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(stream.size());
  for (const ServeRequest& req : stream) {
    mix(static_cast<std::uint64_t>(req.id));
    mix_double(req.arrival_s);
    mix(static_cast<std::uint64_t>(req.klass));
    mix(static_cast<std::uint64_t>(req.profile));
    mix(static_cast<std::uint64_t>(req.vm_count));
    mix_double(req.qos_time_s);
    mix_double(req.deadline_s);
    mix_double(req.hold_s);
  }
  return state;
}

std::string render_decision_log(const std::vector<DecisionRecord>& records) {
  std::string out;
  out.reserve(records.size() * 96);
  for (const DecisionRecord& rec : records) {
    out += "t=";
    out += render_double(rec.t);
    out += " id=";
    out += std::to_string(rec.request_id);
    out += " attempt=";
    out += std::to_string(rec.attempt);
    out += " class=";
    out += std::to_string(rec.klass);
    out += " event=";
    out += to_string(rec.event);
    out += " mode=";
    out += to_string(rec.mode);
    out += " path=";
    out += core::to_string(rec.path);
    out += " reason=";
    out += core::to_string(rec.reason);
    out += " wait=";
    out += render_double(rec.wait_s);
    out += " latency=";
    out += render_double(rec.latency_s);
    out += " retry_at=";
    out += rec.retry_at_s >= 0.0 ? render_double(rec.retry_at_s) : "-";
    out += " servers=";
    for (std::size_t i = 0; i < rec.servers.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      out += std::to_string(rec.servers[i]);
    }
    if (rec.servers.empty()) {
      out += '-';
    }
    out += '\n';
  }
  return out;
}

}  // namespace aeva::serve
