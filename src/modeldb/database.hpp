#pragma once

/// \file database.hpp
/// The empirical allocation-model database (Sect. III-C).
///
/// Records are kept sorted by the (Ncpu, Nmem, Nio) key and located with
/// binary search in O(log num_tests), exactly as the paper describes.
/// Persistence is a plain-text CSV file plus an auxiliary file holding the
/// base-test parameters (OS*/T*), mirroring the paper's storage choice.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "modeldb/record.hpp"
#include "util/csv.hpp"
#include "workload/profile.hpp"

namespace aeva::modeldb {

/// Immutable, sorted, binary-searched model database.
class ModelDatabase {
 public:
  /// Builds from measured records (any order; duplicates by key rejected)
  /// and the base-test parameters.
  ModelDatabase(std::vector<Record> records, BaseParameters base);

  /// Exact lookup via binary search; nullptr when the key was not measured.
  [[nodiscard]] const Record* find(workload::ClassCounts key) const noexcept;

  /// Paper lookup semantics: exact hit when measured, otherwise "use the
  /// matching values proportionally" — the key is clamped to the measured
  /// grid and time/energy are scaled by the total-VM ratio (DESIGN.md §6).
  /// Throws std::invalid_argument for an empty key (no VMs).
  [[nodiscard]] Record estimate(workload::ClassCounts key) const;

  /// Alternative off-grid estimator (ablation): separable per-axis linear
  /// extrapolation. For each class whose count exceeds the measured box,
  /// the growth rate of time/energy along that axis (finite difference at
  /// the box edge) extends the estimate, capturing contention slopes that
  /// plain proportional scaling flattens. Exact hits are returned as-is.
  [[nodiscard]] Record estimate_extrapolated(workload::ClassCounts key) const;

  /// True when the exact key was measured.
  [[nodiscard]] bool measured(workload::ClassCounts key) const noexcept {
    return find(key) != nullptr;
  }

  /// Largest measured count per class over all records (grid extent).
  [[nodiscard]] workload::ClassCounts grid_extent() const noexcept {
    return extent_;
  }

  /// True when measured energy is monotone non-decreasing along every
  /// class axis (each record's energy ≥ that of every measured unit-step
  /// predecessor, with all predecessors present). Computed once at
  /// construction. The proactive allocator's branch-and-bound pruning may
  /// include the energy term in its lower bound only when this holds —
  /// otherwise a later block could carry negative marginal energy and the
  /// partial sum would not bound the final score (docs/PERFORMANCE.md).
  [[nodiscard]] bool energy_monotone() const noexcept {
    return energy_monotone_;
  }

  [[nodiscard]] const BaseParameters& base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // --- persistence --------------------------------------------------------

  /// Serializes the records to a CSV table (Table II schema + extensions).
  [[nodiscard]] util::CsvTable to_csv() const;

  /// Serializes the auxiliary base-parameter file.
  [[nodiscard]] util::CsvTable aux_to_csv() const;

  /// Reconstructs a database from the two CSV tables; validates schema.
  [[nodiscard]] static ModelDatabase from_csv(const util::CsvTable& records,
                                              const util::CsvTable& aux);

  /// Writes `<path>` (records) and `<aux_path>` (base parameters).
  void save(const std::string& path, const std::string& aux_path) const;

  /// Loads a database previously written with `save`.
  [[nodiscard]] static ModelDatabase load(const std::string& path,
                                          const std::string& aux_path);

 private:
  std::vector<Record> records_;  // sorted by key
  BaseParameters base_;
  workload::ClassCounts extent_;
  bool energy_monotone_ = false;
};

}  // namespace aeva::modeldb
