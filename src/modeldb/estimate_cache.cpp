#include "modeldb/estimate_cache.hpp"

#include <array>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace aeva::modeldb {

namespace {

/// Packs a non-negative (cpu, mem, io) triple into one 64-bit key.
std::uint64_t pack_key(workload::ClassCounts key) noexcept {
  return static_cast<std::uint64_t>(key.cpu) << 42 |
         static_cast<std::uint64_t>(key.mem) << 21 |
         static_cast<std::uint64_t>(key.io);
}

/// Thread-local L1: direct-mapped, no synchronization. Slots are tagged
/// with the owning cache's never-reused instance id (0 = empty), so hits
/// can never cross caches, and a hit is valid forever — a cached record is
/// an immutable pure function of (database, key).
constexpr std::size_t kL1Slots = 1024;  // power of two

struct L1Entry {
  std::uint64_t tag = 0;
  std::uint64_t packed = 0;
  Record record;
};

std::array<L1Entry, kL1Slots>& local_l1() {
  static thread_local std::array<L1Entry, kL1Slots> l1;
  return l1;
}

std::uint64_t next_instance_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EstimateCache::EstimateCache(const ModelDatabase& db, std::size_t shard_count,
                             std::size_t max_entries_per_shard)
    : db_(&db),
      max_entries_per_shard_(max_entries_per_shard),
      instance_id_(next_instance_id()) {
  AEVA_REQUIRE(shard_count >= 1, "need at least one shard");
  AEVA_REQUIRE(max_entries_per_shard >= 1,
               "each shard must hold at least one entry");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

EstimateCache::Shard& EstimateCache::shard_for(
    std::uint64_t mixed) const noexcept {
  return *shards_[static_cast<std::size_t>(mixed % shards_.size())];
}

Record EstimateCache::estimate(workload::ClassCounts key) const {
  AEVA_REQUIRE(key.total() > 0, "cannot estimate an empty allocation");
  AEVA_REQUIRE(key.cpu >= 0 && key.mem >= 0 && key.io >= 0,
               "negative class count");
  const std::uint64_t packed = pack_key(key);
  // splitmix64 scrambles the packed triple so adjacent keys spread across
  // both the L1 slots and the mutex stripes instead of piling up.
  std::uint64_t state = packed;
  const std::uint64_t mixed = util::splitmix64(state);

  L1Entry& slot =
      local_l1()[(mixed ^ instance_id_ * 0x9e3779b97f4a7c15ULL) &
                 (kL1Slots - 1)];
  if (slot.tag == instance_id_ && slot.packed == packed) {
    shard_for(mixed).l1_hits.fetch_add(1, std::memory_order_relaxed);
    return slot.record;
  }

  Shard& shard = shard_for(mixed);
  {
    const util::MutexGuard lock(shard.mutex);
    const auto it = shard.entries.find(packed);
    if (it != shard.entries.end()) {
      ++shard.hits;
      slot = L1Entry{instance_id_, packed, it->second};
      return slot.record;
    }
  }
  // Miss path: look up outside the lock so a slow binary search never
  // blocks other keys of the same stripe. Two threads may race on the same
  // key; both compute the identical record, and the second insert is a
  // no-op.
  const Record record = db_->estimate(key);
  {
    const util::MutexGuard lock(shard.mutex);
    ++shard.misses;
    if (shard.entries.size() >= max_entries_per_shard_) {
      shard.evictions += shard.entries.size();
      shard.entries.clear();
    }
    shard.entries.emplace(packed, record);
  }
  slot = L1Entry{instance_id_, packed, record};
  return record;
}

EstimateCache::Stats EstimateCache::stats() const {
  Stats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const util::MutexGuard lock(shard->mutex);
    total.hits += shard->hits + shard->l1_hits.load(std::memory_order_relaxed);
    total.misses += shard->misses;
    total.evictions += shard->evictions;
    total.entries += shard->entries.size();
  }
  return total;
}

void EstimateCache::clear() const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const util::MutexGuard lock(shard->mutex);
    shard->evictions += shard->entries.size();
    shard->entries.clear();
  }
}

}  // namespace aeva::modeldb
