#pragma once

/// \file learned_model.hpp
/// Learned allocation model — the paper's stated research direction of
/// "using machine learning techniques to extract on-the-fly a model out of
/// the … data collected from offline experiments" (Sect. V).
///
/// The regressor is inverse-distance-weighted k-nearest-neighbours over
/// the measured (Ncpu, Nmem, Nio) keys. Intensive quantities (per-VM time,
/// per-VM energy, per-class times, peak power) are interpolated and the
/// extensive record is reconstructed, which lets the model generalize
/// across mix sizes far better than raw-field interpolation. Exact
/// training keys reproduce their measurements bit-for-bit, so a learned
/// model is a drop-in superset of the lookup database.

#include <vector>

#include "modeldb/database.hpp"
#include "modeldb/record.hpp"
#include "workload/profile.hpp"

namespace aeva::modeldb {

/// k-NN regression settings.
struct LearnedModelConfig {
  int neighbours = 4;       ///< k
  double distance_power = 2.0;  ///< IDW exponent
};

/// Leave-one-out cross-validation summary.
struct LooStats {
  double time_mape = 0.0;    ///< mean |error| / truth on Time
  double energy_mape = 0.0;  ///< mean |error| / truth on Energy
  std::size_t samples = 0;
};

/// The learned model. Holds a copy of the training records; independent of
/// the source database's lifetime.
class LearnedModel {
 public:
  /// Trains on every record of `db`. Throws on a degenerate config.
  LearnedModel(const ModelDatabase& db, LearnedModelConfig config = {});

  /// Predicts the outcome of an arbitrary mix (exact training keys return
  /// their measured record). Throws std::invalid_argument on an empty key.
  [[nodiscard]] Record predict(workload::ClassCounts key) const;

  /// Materializes predictions over the full box [0..extent] (excluding the
  /// empty key) into a standard ModelDatabase, so the whole allocator /
  /// simulator stack can run on learned estimates alone.
  [[nodiscard]] ModelDatabase materialize(workload::ClassCounts extent) const;

  /// Leave-one-out cross-validation over the training set.
  [[nodiscard]] LooStats leave_one_out() const;

  [[nodiscard]] std::size_t training_size() const noexcept {
    return records_.size();
  }
  [[nodiscard]] const BaseParameters& base() const noexcept { return base_; }

 private:
  [[nodiscard]] Record predict_excluding(workload::ClassCounts key,
                                         std::ptrdiff_t excluded) const;

  std::vector<Record> records_;
  BaseParameters base_;
  LearnedModelConfig config_;
};

}  // namespace aeva::modeldb
