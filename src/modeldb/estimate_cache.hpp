#pragma once

/// \file estimate_cache.hpp
/// Thread-safe memoization of ModelDatabase::estimate lookups.
///
/// The proactive allocator's partition search asks the database for the
/// same (Ncpu, Nmem, Nio) keys over and over — across the candidates of
/// one allocation call *and* across consecutive calls, because a cluster's
/// reachable mixes form a small set (the OS box). Each lookup is a binary
/// search plus clamp/scale arithmetic; this cache collapses repeats into a
/// sharded hash probe so concurrent search workers hit memory instead.
///
/// Two levels. A thread-local direct-mapped L1 serves the common case with
/// no synchronization at all: a cached record is an immutable pure
/// function of (database, key), so a thread may keep private copies
/// indefinitely — even across `clear()` — without ever observing a stale
/// value. L1 slots are tagged with a process-unique, never-reused cache
/// instance id, so a slot can never alias a different cache (including one
/// later constructed at the same address). L1 misses fall through to the
/// shared level: the key hash selects one of `shard_count` independently
/// mutex-striped maps, so workers probing different keys rarely contend on
/// the same lock. Results are bit-identical to the uncached path — the
/// cache stores the exact `Record` the database returned.
///
/// Eviction is coarse by design: when a shard reaches its entry cap it is
/// emptied wholesale (an epoch flush, counted in `Stats::evictions`). The
/// reachable-key set is tiny in practice (≤ a few thousand), so eviction
/// exists only to bound memory under adversarial key streams, not as a
/// tuned replacement policy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "modeldb/database.hpp"
#include "modeldb/record.hpp"
#include "util/mutex.hpp"
#include "workload/profile.hpp"

namespace aeva::modeldb {

/// Sharded, mutex-striped memo of `ModelDatabase::estimate`.
class EstimateCache {
 public:
  /// `db` must outlive the cache. `shard_count` ≥ 1 lock stripes;
  /// `max_entries_per_shard` ≥ 1 bounds each shard before its epoch flush.
  explicit EstimateCache(const ModelDatabase& db, std::size_t shard_count = 8,
                         std::size_t max_entries_per_shard = 4096);

  /// As `ModelDatabase::estimate(key)`, memoized. Thread-safe; throws the
  /// database's std::invalid_argument for an empty key without caching it.
  [[nodiscard]] Record estimate(workload::ClassCounts key) const;

  /// Monotonically-increasing counters (aggregated over shards).
  struct Stats {
    std::uint64_t hits = 0;       ///< served from cache (L1 or shard level)
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< entries dropped by epoch flushes
    std::size_t entries = 0;      ///< currently resident shard entries
  };
  [[nodiscard]] Stats stats() const;

  /// Drops every resident shard entry (counted as evictions). Thread-local
  /// L1 copies survive — they stay correct forever (records are immutable),
  /// so lookups after a clear() may still count as hits.
  void clear() const;

  [[nodiscard]] const ModelDatabase& db() const noexcept { return *db_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard {
    mutable util::Mutex mutex;
    std::unordered_map<std::uint64_t, Record> entries AEVA_GUARDED_BY(mutex);
    std::uint64_t hits AEVA_GUARDED_BY(mutex) = 0;
    std::uint64_t misses AEVA_GUARDED_BY(mutex) = 0;
    std::uint64_t evictions AEVA_GUARDED_BY(mutex) = 0;
    /// Lock-free tally of thread-local L1 hits landing on this stripe.
    std::atomic<std::uint64_t> l1_hits{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t mixed) const noexcept;

  const ModelDatabase* db_;
  std::size_t max_entries_per_shard_;
  /// Process-unique tag for thread-local L1 slots; never reused.
  std::uint64_t instance_id_;
  /// unique_ptr keeps Shard addresses stable and the cache movable even
  /// though Shard itself (holding a mutex) is not.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aeva::modeldb
