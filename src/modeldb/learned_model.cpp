#include "modeldb/learned_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aeva::modeldb {

using workload::ClassCounts;

LearnedModel::LearnedModel(const ModelDatabase& db, LearnedModelConfig config)
    : records_(db.records()), base_(db.base()), config_(config) {
  AEVA_REQUIRE(config_.neighbours >= 1, "k must be >= 1");
  AEVA_REQUIRE(config_.distance_power > 0.0, "IDW exponent must be positive");
  AEVA_REQUIRE(!records_.empty(), "no training records");
}

namespace {

double key_distance(ClassCounts a, ClassCounts b) {
  const double dc = a.cpu - b.cpu;
  const double dm = a.mem - b.mem;
  const double di = a.io - b.io;
  return std::sqrt(dc * dc + dm * dm + di * di);
}

/// Intensive (per-VM / size-free) view of a record.
struct Intensive {
  double avg_time = 0.0;
  double energy_per_vm = 0.0;
  double max_power = 0.0;
  double time_cpu = 0.0;
  double time_mem = 0.0;
  double time_io = 0.0;
};

Intensive to_intensive(const Record& r) {
  Intensive out;
  out.avg_time = r.avg_time_vm_s;
  out.energy_per_vm = r.energy_per_vm_j();
  out.max_power = r.max_power_w;
  // Per-class times normalized by the mix's average time so they stay
  // meaningful when blended across neighbours of different sizes.
  const double avg = r.avg_time_vm_s > 0.0 ? r.avg_time_vm_s : 1.0;
  out.time_cpu = r.time_cpu_s > 0.0 ? r.time_cpu_s / avg : 0.0;
  out.time_mem = r.time_mem_s > 0.0 ? r.time_mem_s / avg : 0.0;
  out.time_io = r.time_io_s > 0.0 ? r.time_io_s / avg : 0.0;
  return out;
}

}  // namespace

Record LearnedModel::predict_excluding(ClassCounts key,
                                       std::ptrdiff_t excluded) const {
  AEVA_REQUIRE(key.total() > 0, "cannot predict an empty mix");

  // Exact training hit reproduces the measurement.
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == excluded) {
      continue;
    }
    if (records_[i].key == key) {
      return records_[i];
    }
  }

  // k nearest neighbours by key distance (deterministic tie-break on the
  // training order, which is the database sort order).
  struct Scored {
    double distance;
    std::size_t index;
  };
  std::vector<Scored> scored;
  scored.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (static_cast<std::ptrdiff_t>(i) == excluded) {
      continue;
    }
    scored.push_back(Scored{key_distance(key, records_[i].key), i});
  }
  AEVA_INVARIANT(!scored.empty(), "no usable training records");
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(config_.neighbours),
                            scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });

  Intensive blended;
  double weight_sum = 0.0;
  double class_w[3] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < k; ++i) {
    const Record& r = records_[scored[i].index];
    const double w =
        1.0 / std::pow(scored[i].distance, config_.distance_power);
    const Intensive v = to_intensive(r);
    blended.avg_time += w * v.avg_time;
    blended.energy_per_vm += w * v.energy_per_vm;
    blended.max_power += w * v.max_power;
    // Class columns blend only over neighbours that actually contain the
    // class, with their own weight mass.
    if (v.time_cpu > 0.0) {
      blended.time_cpu += w * v.time_cpu;
      class_w[0] += w;
    }
    if (v.time_mem > 0.0) {
      blended.time_mem += w * v.time_mem;
      class_w[1] += w;
    }
    if (v.time_io > 0.0) {
      blended.time_io += w * v.time_io;
      class_w[2] += w;
    }
    weight_sum += w;
  }
  AEVA_INVARIANT(weight_sum > 0.0, "zero IDW weight mass");
  blended.avg_time /= weight_sum;
  blended.energy_per_vm /= weight_sum;
  blended.max_power /= weight_sum;
  blended.time_cpu = class_w[0] > 0.0 ? blended.time_cpu / class_w[0] : 0.0;
  blended.time_mem = class_w[1] > 0.0 ? blended.time_mem / class_w[1] : 0.0;
  blended.time_io = class_w[2] > 0.0 ? blended.time_io / class_w[2] : 0.0;

  // Reconstruct the extensive record for this mix size.
  Record out;
  out.key = key;
  const double n = key.total();
  out.avg_time_vm_s = blended.avg_time;
  out.time_s = blended.avg_time * n;
  out.energy_j = blended.energy_per_vm * n;
  out.max_power_w = blended.max_power;
  out.edp = out.energy_j * out.time_s;
  // The normalized class ratios multiply the predicted average time.
  out.time_cpu_s = key.cpu > 0 && blended.time_cpu > 0.0
                       ? blended.time_cpu * out.avg_time_vm_s
                       : 0.0;
  out.time_mem_s = key.mem > 0 && blended.time_mem > 0.0
                       ? blended.time_mem * out.avg_time_vm_s
                       : 0.0;
  out.time_io_s = key.io > 0 && blended.time_io > 0.0
                      ? blended.time_io * out.avg_time_vm_s
                      : 0.0;
  return out;
}

Record LearnedModel::predict(ClassCounts key) const {
  return predict_excluding(key, -1);
}

ModelDatabase LearnedModel::materialize(ClassCounts extent) const {
  AEVA_REQUIRE(extent.cpu >= 0 && extent.mem >= 0 && extent.io >= 0,
               "negative extent");
  AEVA_REQUIRE(extent.total() > 0, "empty extent");
  std::vector<Record> predicted;
  for (int a = 0; a <= extent.cpu; ++a) {
    for (int b = 0; b <= extent.mem; ++b) {
      for (int c = 0; c <= extent.io; ++c) {
        const ClassCounts key{a, b, c};
        if (key.total() == 0) {
          continue;
        }
        predicted.push_back(predict(key));
      }
    }
  }
  return ModelDatabase(std::move(predicted), base_);
}

LooStats LearnedModel::leave_one_out() const {
  LooStats stats;
  if (records_.size() < 2) {
    return stats;
  }
  double time_err = 0.0;
  double energy_err = 0.0;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record truth = records_[i];
    const Record guess =
        predict_excluding(truth.key, static_cast<std::ptrdiff_t>(i));
    time_err += std::abs(guess.time_s - truth.time_s) / truth.time_s;
    energy_err += std::abs(guess.energy_j - truth.energy_j) / truth.energy_j;
    ++stats.samples;
  }
  stats.time_mape = time_err / static_cast<double>(stats.samples);
  stats.energy_mape = energy_err / static_cast<double>(stats.samples);
  return stats;
}

}  // namespace aeva::modeldb
