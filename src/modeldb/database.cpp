#include "modeldb/database.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::modeldb {

using workload::ClassCounts;

namespace {

bool key_less(const Record& a, const Record& b) { return a.key < b.key; }

int l1_distance(ClassCounts a, ClassCounts b) {
  return std::abs(a.cpu - b.cpu) + std::abs(a.mem - b.mem) +
         std::abs(a.io - b.io);
}

}  // namespace

ModelDatabase::ModelDatabase(std::vector<Record> records, BaseParameters base)
    : records_(std::move(records)), base_(base) {
  AEVA_REQUIRE(!records_.empty(), "model database needs at least one record");
  std::sort(records_.begin(), records_.end(), key_less);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    AEVA_REQUIRE(r.key.total() > 0, "record with empty key");
    AEVA_REQUIRE(r.key.cpu >= 0 && r.key.mem >= 0 && r.key.io >= 0,
                 "record with negative key component");
    AEVA_REQUIRE(r.time_s > 0.0 && r.energy_j > 0.0,
                 "record with non-positive time/energy for key (", r.key.cpu,
                 ",", r.key.mem, ",", r.key.io, ")");
    if (i > 0) {
      AEVA_REQUIRE(records_[i - 1].key < r.key,
                   "duplicate database key (", r.key.cpu, ",", r.key.mem, ",",
                   r.key.io, ")");
    }
    extent_.cpu = std::max(extent_.cpu, r.key.cpu);
    extent_.mem = std::max(extent_.mem, r.key.mem);
    extent_.io = std::max(extent_.io, r.key.io);
  }
  energy_monotone_ = [&] {
    for (const Record& r : records_) {
      for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
        if (r.key.of(profile) == 0) {
          continue;
        }
        ClassCounts pred = r.key;
        --pred.of(profile);
        if (pred.total() == 0) {
          continue;  // energy_j > 0 already validated above
        }
        const Record* below = find(pred);
        // A missing predecessor means the grid has holes (hand-built
        // databases); claim nothing rather than an unsound bound.
        if (below == nullptr || r.energy_j < below->energy_j) {
          return false;
        }
      }
    }
    return true;
  }();
}

const Record* ModelDatabase::find(ClassCounts key) const noexcept {
  Record probe;
  probe.key = key;
  const auto it =
      std::lower_bound(records_.begin(), records_.end(), probe, key_less);
  if (it != records_.end() && it->key == key) {
    return &*it;
  }
  return nullptr;
}

namespace {

/// Clamps a key into the measured grid: pure keys clamp to the base-test
/// extent, mixed keys to the combination box [0..OSC]×[0..OSM]×[0..OSI].
ClassCounts clamp_to_grid(ClassCounts key, ClassCounts extent,
                          const BaseParameters& base) {
  ClassCounts clamped = key;
  const int nonzero = (key.cpu > 0 ? 1 : 0) + (key.mem > 0 ? 1 : 0) +
                      (key.io > 0 ? 1 : 0);
  if (nonzero == 1) {
    clamped.cpu = std::min(clamped.cpu, extent.cpu);
    clamped.mem = std::min(clamped.mem, extent.mem);
    clamped.io = std::min(clamped.io, extent.io);
  } else {
    clamped.cpu = std::min(clamped.cpu, base.cpu.os());
    clamped.mem = std::min(clamped.mem, base.mem.os());
    clamped.io = std::min(clamped.io, base.io.os());
  }
  return clamped;
}

}  // namespace

Record ModelDatabase::estimate(ClassCounts key) const {
  AEVA_REQUIRE(key.total() > 0, "cannot estimate an empty allocation");
  AEVA_REQUIRE(key.cpu >= 0 && key.mem >= 0 && key.io >= 0,
               "negative VM count in key");
  if (const Record* exact = find(key)) {
    return *exact;
  }

  const ClassCounts clamped = clamp_to_grid(key, extent_, base_);
  const Record* anchor = find(clamped);
  if (anchor == nullptr) {
    // Hole in the grid: fall back to the nearest measured key by L1
    // distance (ties resolved by the sort order, i.e. the first record).
    int best = std::numeric_limits<int>::max();
    for (const Record& r : records_) {
      const int d = l1_distance(r.key, key);
      if (d < best) {
        best = d;
        anchor = &r;
      }
    }
  }
  AEVA_INVARIANT(anchor != nullptr, "no anchor record found");

  // "Use the matching values proportionally": scale the anchor outcome by
  // the total-VM ratio.
  const double scale = static_cast<double>(key.total()) /
                       static_cast<double>(anchor->key.total());
  Record out = *anchor;
  out.key = key;
  out.time_s = anchor->time_s * scale;
  out.energy_j = anchor->energy_j * scale;
  out.avg_time_vm_s = out.time_s / key.total();
  out.edp = out.energy_j * out.time_s;
  out.time_cpu_s = anchor->time_cpu_s * scale;
  out.time_mem_s = anchor->time_mem_s * scale;
  out.time_io_s = anchor->time_io_s * scale;
  return out;
}

Record ModelDatabase::estimate_extrapolated(ClassCounts key) const {
  AEVA_REQUIRE(key.total() > 0, "cannot estimate an empty allocation");
  AEVA_REQUIRE(key.cpu >= 0 && key.mem >= 0 && key.io >= 0,
               "negative VM count in key");
  if (const Record* exact = find(key)) {
    return *exact;
  }
  const ClassCounts clamped = clamp_to_grid(key, extent_, base_);
  const Record* anchor = find(clamped);
  if (anchor == nullptr) {
    return estimate(key);  // grid hole: proportional fallback
  }

  // Per-axis multiplicative extrapolation from the finite-difference
  // growth ratio at the grid edge.
  double time_factor = 1.0;
  double energy_factor = 1.0;
  for (const workload::ProfileClass profile : workload::kAllProfileClasses) {
    const int over = key.of(profile) - clamped.of(profile);
    if (over <= 0) {
      continue;
    }
    ClassCounts below_key = clamped;
    --below_key.of(profile);
    const Record* below =
        below_key.total() > 0 ? find(below_key) : nullptr;
    double time_ratio;
    double energy_ratio;
    if (below != nullptr && below->time_s > 0.0 && below->energy_j > 0.0) {
      // Contention slope at the edge; never below linear-per-VM growth.
      const double linear =
          static_cast<double>(clamped.total() + 1) / clamped.total();
      time_ratio = std::max(linear, anchor->time_s / below->time_s);
      energy_ratio = std::max(linear, anchor->energy_j / below->energy_j);
    } else {
      const double linear =
          static_cast<double>(clamped.total() + 1) / clamped.total();
      time_ratio = linear;
      energy_ratio = linear;
    }
    time_factor *= std::pow(time_ratio, over);
    energy_factor *= std::pow(energy_ratio, over);
  }

  Record out = *anchor;
  out.key = key;
  out.time_s = anchor->time_s * time_factor;
  out.energy_j = anchor->energy_j * energy_factor;
  out.avg_time_vm_s = out.time_s / key.total();
  out.edp = out.energy_j * out.time_s;
  out.time_cpu_s = anchor->time_cpu_s * time_factor;
  out.time_mem_s = anchor->time_mem_s * time_factor;
  out.time_io_s = anchor->time_io_s * time_factor;
  return out;
}

util::CsvTable ModelDatabase::to_csv() const {
  util::CsvTable table;
  table.header = {"Ncpu",   "Nmem",     "Nio",     "Time",    "avgTimeVM",
                  "Energy", "MaxPower", "EDP",     "timeCpu", "timeMem",
                  "timeIo"};
  for (const Record& r : records_) {
    table.rows.push_back({
        std::to_string(r.key.cpu),
        std::to_string(r.key.mem),
        std::to_string(r.key.io),
        util::format_fixed(r.time_s, 3),
        util::format_fixed(r.avg_time_vm_s, 3),
        util::format_fixed(r.energy_j, 1),
        util::format_fixed(r.max_power_w, 2),
        util::format_fixed(r.edp, 1),
        util::format_fixed(r.time_cpu_s, 3),
        util::format_fixed(r.time_mem_s, 3),
        util::format_fixed(r.time_io_s, 3),
    });
  }
  return table;
}

util::CsvTable ModelDatabase::aux_to_csv() const {
  util::CsvTable table;
  table.header = {"param", "value"};
  const auto put = [&](const std::string& name, double value) {
    table.rows.push_back({name, util::format_fixed(value, 3)});
  };
  put("OSPC", base_.cpu.osp);
  put("OSEC", base_.cpu.ose);
  put("TC", base_.cpu.solo_time_s);
  put("OSPM", base_.mem.osp);
  put("OSEM", base_.mem.ose);
  put("TM", base_.mem.solo_time_s);
  put("OSPI", base_.io.osp);
  put("OSEI", base_.io.ose);
  put("TI", base_.io.solo_time_s);
  return table;
}

namespace {

double cell_double(const util::CsvTable& table, const util::CsvRow& row,
                   const std::string& column) {
  const auto parsed = util::parse_double(row[table.column(column)]);
  // Non-finite cells are rejected here rather than propagated: an `inf`
  // energy would silently poison every downstream EDP/rank computation
  // (found by fuzz_modeldb, corpus/modeldb/reject_inf_energy.csv).
  AEVA_REQUIRE(parsed.has_value() && std::isfinite(*parsed),
               "bad numeric cell in column ", column);
  return *parsed;
}

/// Largest admissible VM count per class in a loaded key. Far above any
/// real testbed (the paper's cap is 16 VMs/server) while keeping
/// ClassCounts::total() and L1 distances free of signed overflow for any
/// combination of loaded keys (found by fuzz_modeldb,
/// corpus/modeldb/reject_huge_count.csv).
constexpr long long kMaxClassCount = 1000000;

int cell_count(const util::CsvTable& table, const util::CsvRow& row,
               const std::string& column) {
  const auto parsed = util::parse_int(row[table.column(column)]);
  AEVA_REQUIRE(parsed.has_value(), "bad integer cell in column ", column);
  AEVA_REQUIRE(*parsed >= 0 && *parsed <= kMaxClassCount, "VM count in column ",
               column, " out of range [0, ", kMaxClassCount, "]: ", *parsed);
  return static_cast<int>(*parsed);
}

}  // namespace

ModelDatabase ModelDatabase::from_csv(const util::CsvTable& records,
                                      const util::CsvTable& aux) {
  std::vector<Record> parsed;
  parsed.reserve(records.rows.size());
  for (const auto& row : records.rows) {
    Record r;
    r.key.cpu = cell_count(records, row, "Ncpu");
    r.key.mem = cell_count(records, row, "Nmem");
    r.key.io = cell_count(records, row, "Nio");
    r.time_s = cell_double(records, row, "Time");
    r.avg_time_vm_s = cell_double(records, row, "avgTimeVM");
    r.energy_j = cell_double(records, row, "Energy");
    r.max_power_w = cell_double(records, row, "MaxPower");
    r.edp = cell_double(records, row, "EDP");
    if (records.has_column("timeCpu")) {
      r.time_cpu_s = cell_double(records, row, "timeCpu");
      r.time_mem_s = cell_double(records, row, "timeMem");
      r.time_io_s = cell_double(records, row, "timeIo");
    }
    parsed.push_back(r);
  }

  BaseParameters base;
  for (const auto& row : aux.rows) {
    const std::string& name = row[aux.column("param")];
    const double value = cell_double(aux, row, "value");
    // OS*/T* counts feed int fields: bound before the cast (an oversized
    // double→int conversion is UB, not a wrap).
    const auto count = [&]() {
      AEVA_REQUIRE(value >= 0.0 && value <= static_cast<double>(kMaxClassCount),
                   "auxiliary parameter ", name, " out of range [0, ",
                   kMaxClassCount, "]: ", value);
      return static_cast<int>(value);
    };
    if (name == "OSPC") base.cpu.osp = count();
    else if (name == "OSEC") base.cpu.ose = count();
    else if (name == "TC") base.cpu.solo_time_s = value;
    else if (name == "OSPM") base.mem.osp = count();
    else if (name == "OSEM") base.mem.ose = count();
    else if (name == "TM") base.mem.solo_time_s = value;
    else if (name == "OSPI") base.io.osp = count();
    else if (name == "OSEI") base.io.ose = count();
    else if (name == "TI") base.io.solo_time_s = value;
    else AEVA_REQUIRE(false, "unknown auxiliary parameter: ", name);
  }
  return ModelDatabase(std::move(parsed), base);
}

void ModelDatabase::save(const std::string& path,
                         const std::string& aux_path) const {
  util::write_csv_file(path, to_csv());
  util::write_csv_file(aux_path, aux_to_csv());
}

ModelDatabase ModelDatabase::load(const std::string& path,
                                  const std::string& aux_path) {
  return from_csv(util::read_csv_file(path), util::read_csv_file(aux_path));
}

}  // namespace aeva::modeldb
