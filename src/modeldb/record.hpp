#pragma once

/// \file record.hpp
/// Rows of the empirical allocation-model database.
///
/// Field set follows Table II of the paper — `Ncpu`, `Nmem`, `Nio`, `Time`,
/// `avgTimeVM`, `Energy`, `MaxPower`, `EDP` — plus clearly-marked extension
/// columns with per-class average completion times, which the paper's
/// Fig. 4 accounting implicitly requires (DESIGN.md §6).

#include "workload/profile.hpp"

namespace aeva::modeldb {

/// One measured (or estimated) outcome for a VM mix on one server.
struct Record {
  /// (Ncpu, Nmem, Nio): the database search key (sorted ascending).
  workload::ClassCounts key;

  /// Total execution time of the outcome — latest VM completion (seconds).
  double time_s = 0.0;

  /// Average execution time per VM: time_s / (Ncpu+Nmem+Nio).
  double avg_time_vm_s = 0.0;

  /// Energy consumed to run the outcome (Joules).
  double energy_j = 0.0;

  /// Maximum power dissipation measured (Watts).
  double max_power_w = 0.0;

  /// Energy-delay product (Joules × seconds).
  double edp = 0.0;

  /// Extension columns: mean completion time of the VMs of each class in
  /// this mix; 0 when the class is absent.
  double time_cpu_s = 0.0;
  double time_mem_s = 0.0;
  double time_io_s = 0.0;

  /// Mean power over the outcome (W); 0 for a zero-length outcome.
  [[nodiscard]] double avg_power_w() const noexcept {
    return time_s > 0.0 ? energy_j / time_s : 0.0;
  }

  /// Per-class mean completion time; falls back to `avg_time_vm_s` when the
  /// class column was not populated.
  [[nodiscard]] double time_of(workload::ProfileClass profile) const noexcept;

  /// Energy per VM (J); the base-test energy-optimum criterion.
  [[nodiscard]] double energy_per_vm_j() const noexcept {
    const int n = key.total();
    return n > 0 ? energy_j / n : 0.0;
  }
};

/// Table I of the paper: parameters derived from the base tests.
struct BaseParameters {
  struct PerClass {
    int osp = 1;            ///< #VMs minimizing avg execution time (OSP*)
    int ose = 1;            ///< #VMs minimizing energy per VM (OSE*)
    double solo_time_s = 0; ///< runtime of a single test on 1 VM (T*)

    /// OS* = max(OSP*, OSE*) — the combination-grid bound (Sect. III-B).
    [[nodiscard]] int os() const noexcept { return osp > ose ? osp : ose; }
  };

  PerClass cpu;
  PerClass mem;
  PerClass io;

  [[nodiscard]] const PerClass& of(workload::ProfileClass profile) const;
  [[nodiscard]] PerClass& of(workload::ProfileClass profile);

  /// Number of combination experiments the campaign must run:
  /// (OSC+1)(OSM+1)(OSI+1) − (1+OSC+OSM+OSI).
  [[nodiscard]] long long combination_experiment_count() const noexcept;
};

}  // namespace aeva::modeldb
