#include "modeldb/campaign.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/registry.hpp"

namespace aeva::modeldb {

using workload::ClassCounts;
using workload::ProfileClass;

Campaign::Campaign(CampaignConfig config)
    : config_(config), sim_(config.server) {
  AEVA_REQUIRE(config_.max_base_vms >= 1, "base tests need at least 1 VM");
}

Record Campaign::measure_mix(const std::vector<testbed::VmRun>& vms,
                             ClassCounts key) const {
  const testbed::SimResult run = sim_.run(vms);

  Record record;
  record.key = key;
  record.time_s = run.makespan_s;
  record.avg_time_vm_s = run.avg_time_per_vm_s();

  if (config_.meter_noise) {
    // Derive a per-experiment noise stream so every experiment is
    // independently metered yet the whole campaign stays deterministic.
    const auto label = static_cast<std::uint64_t>(key.cpu) << 40 ^
                       static_cast<std::uint64_t>(key.mem) << 20 ^
                       static_cast<std::uint64_t>(key.io);
    metering::PowerMeter meter(config_.meter, config_.meter_seed ^ label);
    const metering::MeterReading reading = meter.measure(run.power_w);
    record.energy_j = reading.energy_j;
    record.max_power_w = reading.max_power_w;
  } else {
    record.energy_j = run.energy_j;
    record.max_power_w = run.max_power_w;
  }
  record.edp = record.energy_j * record.time_s;

  // Extension columns: per-class mean completion time.
  util::RunningStats per_class[workload::kProfileClassCount];
  for (const auto& vm : run.vms) {
    per_class[static_cast<int>(vm.profile)].add(vm.runtime_s());
  }
  record.time_cpu_s =
      per_class[static_cast<int>(ProfileClass::kCpu)].count() > 0
          ? per_class[static_cast<int>(ProfileClass::kCpu)].mean()
          : 0.0;
  record.time_mem_s =
      per_class[static_cast<int>(ProfileClass::kMem)].count() > 0
          ? per_class[static_cast<int>(ProfileClass::kMem)].mean()
          : 0.0;
  record.time_io_s =
      per_class[static_cast<int>(ProfileClass::kIo)].count() > 0
          ? per_class[static_cast<int>(ProfileClass::kIo)].mean()
          : 0.0;
  return record;
}

Record Campaign::measure(ClassCounts key) const {
  AEVA_REQUIRE(key.total() > 0, "cannot measure an empty allocation");
  std::vector<testbed::VmRun> vms;
  vms.reserve(static_cast<std::size_t>(key.total()));
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const workload::AppSpec& app = workload::canonical_app(profile);
    for (int i = 0; i < key.of(profile); ++i) {
      vms.push_back(testbed::VmRun{app, 0.0});
    }
  }
  return measure_mix(vms, key);
}

std::vector<Record> Campaign::scaling_curve(const workload::AppSpec& app,
                                            int max_vms) const {
  AEVA_REQUIRE(max_vms >= 1, "scaling curve needs at least 1 VM");
  app.validate();
  std::vector<Record> curve;
  curve.reserve(static_cast<std::size_t>(max_vms));
  for (int n = 1; n <= max_vms; ++n) {
    ClassCounts key;
    key.of(app.profile) = n;
    std::vector<testbed::VmRun> vms(
        static_cast<std::size_t>(n), testbed::VmRun{app, 0.0});
    curve.push_back(measure_mix(vms, key));
  }
  return curve;
}

std::vector<BaseCurve> Campaign::run_base_tests() const {
  std::vector<BaseCurve> curves;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    BaseCurve curve;
    curve.profile = profile;
    curve.by_count =
        scaling_curve(workload::canonical_app(profile), config_.max_base_vms);
    curves.push_back(std::move(curve));
  }
  return curves;
}

BaseParameters Campaign::derive_parameters(
    const std::vector<BaseCurve>& curves) {
  AEVA_REQUIRE(!curves.empty(), "no base curves");
  BaseParameters base;
  for (const BaseCurve& curve : curves) {
    AEVA_REQUIRE(!curve.by_count.empty(), "empty base curve");
    BaseParameters::PerClass& entry = base.of(curve.profile);
    entry.solo_time_s = curve.by_count.front().time_s;
    double best_time = curve.by_count.front().avg_time_vm_s;
    double best_energy = curve.by_count.front().energy_per_vm_j();
    entry.osp = 1;
    entry.ose = 1;
    for (std::size_t i = 1; i < curve.by_count.size(); ++i) {
      const Record& r = curve.by_count[i];
      const int n = static_cast<int>(i) + 1;
      AEVA_REQUIRE(r.key.total() == n, "base curve out of order at n=", n);
      if (r.avg_time_vm_s < best_time) {
        best_time = r.avg_time_vm_s;
        entry.osp = n;
      }
      if (r.energy_per_vm_j() < best_energy) {
        best_energy = r.energy_per_vm_j();
        entry.ose = n;
      }
    }
  }
  return base;
}

std::vector<Record> Campaign::run_combinations(
    const BaseParameters& base) const {
  std::vector<ClassCounts> keys;
  const int osc = base.cpu.os();
  const int osm = base.mem.os();
  const int osi = base.io.os();
  for (int a = 0; a <= osc; ++a) {
    for (int b = 0; b <= osm; ++b) {
      for (int c = 0; c <= osi; ++c) {
        const int nonzero = (a > 0 ? 1 : 0) + (b > 0 ? 1 : 0) + (c > 0 ? 1 : 0);
        if (nonzero <= 1) {
          continue;  // the all-zero key and the pure base tests
        }
        keys.push_back(ClassCounts{a, b, c});
      }
    }
  }

  // Experiments are independent and meter streams are key-derived, so the
  // sweep parallelizes with bit-identical results for any worker count.
  std::vector<Record> records(keys.size());
  const std::size_t workers = std::min<std::size_t>(
      keys.size(), util::ThreadPool::recommended_workers(
                       config_.threads > 0
                           ? static_cast<std::size_t>(config_.threads)
                           : 0));
  if (workers <= 1) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      records[i] = measure(keys[i]);
    }
  } else {
    // util::ThreadPool instead of raw std::thread fan-out (aeva_check
    // `raw-thread`): each task writes its own slot, so the result is
    // bit-identical for any worker count, and a throwing experiment
    // surfaces deterministically through wait().
    util::ThreadPool pool(workers);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      pool.submit([this, &records, &keys, i] {
        records[i] = measure(keys[i]);
      });
    }
    pool.wait();
  }

  AEVA_INVARIANT(static_cast<long long>(records.size()) ==
                  base.combination_experiment_count(),
              "combination count mismatch: ran ", records.size(),
              ", formula says ", base.combination_experiment_count());
  return records;
}

ModelDatabase Campaign::build() const {
  const std::vector<BaseCurve> curves = run_base_tests();
  const BaseParameters base = derive_parameters(curves);
  std::vector<Record> records = run_combinations(base);
  for (const BaseCurve& curve : curves) {
    records.insert(records.end(), curve.by_count.begin(),
                   curve.by_count.end());
  }
  return ModelDatabase(std::move(records), base);
}

}  // namespace aeva::modeldb
