#pragma once

/// \file campaign.hpp
/// The benchmarking campaign that creates the empirical model
/// (Sect. III-B): base tests with 1..16 same-type VMs per server, followed
/// by all combinations of workload types inside the optimal-scenario box,
/// every run metered with the simulated wall-power meter.
///
/// This module plays the role of "a platform that we developed to
/// automatically run the benchmarks and process the data" from the paper.

#include <cstdint>
#include <vector>

#include "metering/power_meter.hpp"
#include "modeldb/database.hpp"
#include "modeldb/record.hpp"
#include "testbed/microsim.hpp"
#include "workload/app_spec.hpp"
#include "workload/profile.hpp"

namespace aeva::modeldb {

/// Campaign parameters.
struct CampaignConfig {
  testbed::ServerConfig server;       ///< the testbed hardware
  int max_base_vms = 16;              ///< base tests sweep 1..N VMs
  metering::MeterSpec meter;          ///< wall-meter characteristics
  bool meter_noise = true;            ///< false → noise-free integration
  std::uint64_t meter_seed = 0x5eedULL;  ///< meter noise stream
  /// Worker threads for the combination sweep. Every experiment is
  /// independent and its meter stream is derived from its key, so the
  /// results are bit-identical for any thread count. 0 → one thread per
  /// hardware core.
  int threads = 1;
};

/// One base-test curve: records for n = 1..max_base_vms of a single class.
struct BaseCurve {
  workload::ProfileClass profile{};
  std::vector<Record> by_count;  ///< index i holds the (i+1)-VM outcome
};

/// Runs the measurement campaign on the (simulated) testbed and assembles
/// the model database.
class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Runs a homogeneous scaling sweep of an arbitrary application
  /// (1..max_vms instances started together) — this is how Fig. 2's FFTW
  /// curve is produced. The records' keys use the app's profile class.
  [[nodiscard]] std::vector<Record> scaling_curve(const workload::AppSpec& app,
                                                  int max_vms) const;

  /// Base tests for the three canonical class workloads.
  [[nodiscard]] std::vector<BaseCurve> run_base_tests() const;

  /// Derives Table I (OSP*/OSE*/T*) from the base curves.
  [[nodiscard]] static BaseParameters derive_parameters(
      const std::vector<BaseCurve>& curves);

  /// Runs every combination in the optimal-scenario box, excluding the
  /// all-zero key and the pure base tests —
  /// (OSC+1)(OSM+1)(OSI+1) − (1+OSC+OSM+OSI) experiments.
  [[nodiscard]] std::vector<Record> run_combinations(
      const BaseParameters& base) const;

  /// Full pipeline: base tests → parameters → combinations → database.
  [[nodiscard]] ModelDatabase build() const;

  /// Measures a single mixed allocation (used by the ground-truth
  /// accounting ablation as well as the campaign itself).
  [[nodiscard]] Record measure(workload::ClassCounts key) const;

  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] Record measure_mix(
      const std::vector<testbed::VmRun>& vms,
      workload::ClassCounts key) const;

  CampaignConfig config_;
  testbed::MicroSim sim_;
};

}  // namespace aeva::modeldb
