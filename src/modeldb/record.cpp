#include "modeldb/record.hpp"

#include <stdexcept>

namespace aeva::modeldb {

using workload::ProfileClass;

double Record::time_of(ProfileClass profile) const noexcept {
  double value = 0.0;
  switch (profile) {
    case ProfileClass::kCpu:
      value = time_cpu_s;
      break;
    case ProfileClass::kMem:
      value = time_mem_s;
      break;
    case ProfileClass::kIo:
      value = time_io_s;
      break;
  }
  return value > 0.0 ? value : avg_time_vm_s;
}

const BaseParameters::PerClass& BaseParameters::of(
    ProfileClass profile) const {
  switch (profile) {
    case ProfileClass::kCpu:
      return cpu;
    case ProfileClass::kMem:
      return mem;
    case ProfileClass::kIo:
      return io;
  }
  throw std::invalid_argument("unknown profile class");
}

BaseParameters::PerClass& BaseParameters::of(ProfileClass profile) {
  switch (profile) {
    case ProfileClass::kCpu:
      return cpu;
    case ProfileClass::kMem:
      return mem;
    case ProfileClass::kIo:
      return io;
  }
  throw std::invalid_argument("unknown profile class");
}

long long BaseParameters::combination_experiment_count() const noexcept {
  const long long osc = cpu.os();
  const long long osm = mem.os();
  const long long osi = io.os();
  return (osc + 1) * (osm + 1) * (osi + 1) - (1 + osc + osm + osi);
}

}  // namespace aeva::modeldb
