#include "partition/typed_partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aeva::partition {

using workload::ClassCounts;

namespace {

/// Descending lexicographic comparison used for the canonical block order.
bool lex_greater(ClassCounts a, ClassCounts b) noexcept {
  return b < a;
}

struct Enumerator {
  const std::function<bool(const ClassCounts&)>& block_ok;
  const std::function<bool(const TypedPartition&)>& visit;
  std::size_t max_blocks;
  TypedPartition acc;
  std::size_t visited = 0;

  /// Extends the partition with blocks lexicographically ≤ `prev`;
  /// returns false when the visitor requested an early stop.
  bool recurse(ClassCounts rem, ClassCounts prev) {
    if (rem.total() == 0) {
      ++visited;
      return visit(acc);
    }
    if (acc.size() >= max_blocks) {
      return true;  // pruned: no room for another block
    }
    const int cpu_hi = std::min(rem.cpu, prev.cpu);
    for (int a = cpu_hi; a >= 0; --a) {
      const int mem_hi = (a == prev.cpu) ? std::min(rem.mem, prev.mem)
                                         : rem.mem;
      for (int b = mem_hi; b >= 0; --b) {
        const int io_hi = (a == prev.cpu && b == prev.mem)
                              ? std::min(rem.io, prev.io)
                              : rem.io;
        for (int c = io_hi; c >= 0; --c) {
          const ClassCounts block{a, b, c};
          if (block.total() == 0) {
            continue;
          }
          if (!block_ok(block)) {
            continue;
          }
          acc.push_back(block);
          const bool keep_going = recurse(rem - block, block);
          acc.pop_back();
          if (!keep_going) {
            return false;
          }
        }
      }
    }
    return true;
  }
};

}  // namespace

std::size_t for_each_typed_partition(
    ClassCounts total,
    const std::function<bool(const ClassCounts&)>& block_ok,
    const std::function<bool(const TypedPartition&)>& visit) {
  return for_each_typed_partition(
      total, block_ok, static_cast<std::size_t>(total.total()), visit);
}

std::size_t for_each_typed_partition(
    ClassCounts total,
    const std::function<bool(const ClassCounts&)>& block_ok,
    std::size_t max_blocks,
    const std::function<bool(const TypedPartition&)>& visit) {
  AEVA_REQUIRE(total.total() > 0, "cannot partition an empty VM multiset");
  AEVA_REQUIRE(total.cpu >= 0 && total.mem >= 0 && total.io >= 0,
               "negative class count");
  AEVA_REQUIRE(max_blocks >= 1, "need room for at least one block");
  AEVA_REQUIRE(static_cast<bool>(block_ok) && static_cast<bool>(visit),
               "null callback");
  Enumerator e{block_ok, visit, max_blocks, {}, 0};
  e.recurse(total, total);
  return e.visited;
}

std::size_t for_each_typed_partition(
    ClassCounts total, const std::function<bool(const TypedPartition&)>& visit) {
  return for_each_typed_partition(
      total, [](const ClassCounts&) { return true; }, visit);
}

std::size_t count_typed_partitions(
    ClassCounts total,
    const std::function<bool(const ClassCounts&)>& block_ok) {
  return for_each_typed_partition(
      total, block_ok, [](const TypedPartition&) { return true; });
}

std::size_t for_each_typed_partition_chunk(
    ClassCounts total,
    const std::function<bool(const ClassCounts&)>& block_ok,
    std::size_t max_blocks, std::size_t chunk_size,
    const std::function<bool(std::vector<TypedPartition>&&)>& visit_chunk) {
  AEVA_REQUIRE(chunk_size >= 1, "chunk size must be >= 1");
  AEVA_REQUIRE(static_cast<bool>(visit_chunk), "null callback");
  std::vector<TypedPartition> chunk;
  chunk.reserve(chunk_size);
  bool stopped = false;
  const std::size_t generated = for_each_typed_partition(
      total, block_ok, max_blocks, [&](const TypedPartition& partition) {
        chunk.push_back(partition);
        if (chunk.size() < chunk_size) {
          return true;
        }
        std::vector<TypedPartition> full;
        full.reserve(chunk_size);
        full.swap(chunk);
        const bool keep_going = visit_chunk(std::move(full));
        stopped = !keep_going;
        return keep_going;
      });
  if (!stopped && !chunk.empty()) {
    static_cast<void>(visit_chunk(std::move(chunk)));
  }
  return generated;
}

std::vector<TypedPartition> collect_typed_partitions(
    ClassCounts total,
    const std::function<bool(const ClassCounts&)>& block_ok,
    std::size_t max_blocks, std::size_t limit) {
  AEVA_REQUIRE(limit >= 1, "need room for at least one partition");
  std::vector<TypedPartition> out;
  static_cast<void>(for_each_typed_partition(
      total, block_ok, max_blocks, [&](const TypedPartition& partition) {
        out.push_back(partition);
        return out.size() < limit;
      }));
  return out;
}

TypedPartition canonicalize(TypedPartition partition) {
  std::sort(partition.begin(), partition.end(), lex_greater);
  return partition;
}

}  // namespace aeva::partition
