#pragma once

/// \file set_partition.hpp
/// Efficient generation of set partitions.
///
/// The paper's brute-force allocation search enumerates partitions of the
/// input VM set "using the search algorithm discussed in [21], which is
/// efficient in terms of complexity" — M. Orlov, *Efficient Generation of
/// Set Partitions* (2002). That scheme encodes a partition of an n-element
/// set as a restricted growth string (RGS) κ with auxiliary maxima M and
/// steps through all partitions in lexicographic order with O(n) work per
/// step and no recursion. This file implements it, plus Bell numbers for
/// counting and a blockwise materialization.

#include <cstdint>
#include <functional>
#include <vector>

namespace aeva::partition {

/// One block: indices of the elements it contains (ascending).
using Block = std::vector<int>;

/// A partition: disjoint blocks covering {0, …, n−1}, ordered by their
/// smallest element (the canonical RGS block order).
using Partition = std::vector<Block>;

/// Iterates the set partitions of {0, …, n−1} in lexicographic RGS order.
///
/// Usage:
///   SetPartitionGenerator gen(n);
///   do { use(gen.partition()); } while (gen.next());
class SetPartitionGenerator {
 public:
  /// n must be in [1, 25] (Bell(26) overflows 64 bits and enumeration
  /// beyond that is hopeless anyway).
  explicit SetPartitionGenerator(int n);

  /// Advances to the next partition; false when exhausted (the generator
  /// then stays on the last partition). Discarding the result loses the
  /// only wrap-around signal, hence [[nodiscard]].
  [[nodiscard]] bool next();

  /// The current restricted growth string: element i belongs to block
  /// rgs()[i].
  [[nodiscard]] const std::vector<int>& rgs() const noexcept { return kappa_; }

  /// Materializes the current partition as blocks.
  [[nodiscard]] Partition partition() const;

  /// Number of blocks in the current partition.
  [[nodiscard]] int block_count() const noexcept;

  [[nodiscard]] int size() const noexcept { return n_; }

 private:
  int n_;
  std::vector<int> kappa_;  ///< RGS
  std::vector<int> max_;    ///< M[i] = max(κ[0..i])
};

/// Bell number B(n) — the number of set partitions; n in [0, 25].
[[nodiscard]] std::uint64_t bell_number(int n);

/// Visits every partition of {0, …, n−1}; the visitor returns false to stop
/// early. Returns the number of partitions visited.
[[nodiscard]] std::size_t for_each_partition(
    int n, const std::function<bool(const Partition&)>& visit);

/// Converts an RGS to blocks (shared by the generator and tests).
[[nodiscard]] Partition rgs_to_partition(const std::vector<int>& rgs);

}  // namespace aeva::partition
