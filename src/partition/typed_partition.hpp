#pragma once

/// \file typed_partition.hpp
/// Partition enumeration over *typed* VM multisets.
///
/// The allocation model only distinguishes VMs by their profile class, so
/// two partitions whose blocks have identical (Ncpu, Nmem, Nio) signatures
/// are equivalent for scoring. Enumerating partitions of the multiset
/// (a, b, c) instead of the underlying set collapses the search space from
/// Bell(a+b+c) to the (much smaller) number of multiset partitions — an
/// exact optimization of the paper's brute-force search, not a heuristic.

#include <functional>
#include <vector>

#include "workload/profile.hpp"

namespace aeva::partition {

/// A typed partition: an unordered multiset of non-empty blocks, each a
/// ClassCounts, summing componentwise to the input counts. Canonical form:
/// blocks sorted in non-increasing lexicographic order.
using TypedPartition = std::vector<workload::ClassCounts>;

/// Enumerates every typed partition of `total` whose blocks all satisfy
/// `block_ok` (e.g. "fits on one server"). The visitor returns false to
/// stop early. Returns the number of partitions visited (including a
/// partial count when stopped early).
///
/// When some block of a partition fails `block_ok`, that partition is
/// pruned (its refinements with smaller blocks are still generated).
/// Throws std::invalid_argument on an empty multiset or null callbacks.
[[nodiscard]] std::size_t for_each_typed_partition(
    workload::ClassCounts total,
    const std::function<bool(const workload::ClassCounts&)>& block_ok,
    const std::function<bool(const TypedPartition&)>& visit);

/// As above with an additional bound on the number of blocks — partitions
/// with more than `max_blocks` parts are pruned during generation (an
/// allocator cannot use more blocks than it has servers). `max_blocks`
/// must be ≥ 1.
[[nodiscard]] std::size_t for_each_typed_partition(
    workload::ClassCounts total,
    const std::function<bool(const workload::ClassCounts&)>& block_ok,
    std::size_t max_blocks,
    const std::function<bool(const TypedPartition&)>& visit);

/// Convenience overload admitting every non-empty block.
[[nodiscard]] std::size_t for_each_typed_partition(
    workload::ClassCounts total,
    const std::function<bool(const TypedPartition&)>& visit);

/// Counts typed partitions without visiting (same pruning semantics).
[[nodiscard]] std::size_t count_typed_partitions(
    workload::ClassCounts total,
    const std::function<bool(const workload::ClassCounts&)>& block_ok);

/// Chunked enumeration for parallel fan-out: partitions are generated in
/// the same canonical order as `for_each_typed_partition` but delivered in
/// batches of up to `chunk_size`, so a search can hand each batch to a
/// worker while the generator keeps producing. The visitor returns false
/// to stop after the current chunk (the final chunk may be short).
/// Returns the number of partitions generated. `chunk_size` must be ≥ 1.
[[nodiscard]] std::size_t for_each_typed_partition_chunk(
    workload::ClassCounts total,
    const std::function<bool(const workload::ClassCounts&)>& block_ok,
    std::size_t max_blocks, std::size_t chunk_size,
    const std::function<bool(std::vector<TypedPartition>&&)>& visit_chunk);

/// Materializes the first `limit` typed partitions, in enumeration order —
/// the candidate list a parallel search scores by index range.
[[nodiscard]] std::vector<TypedPartition> collect_typed_partitions(
    workload::ClassCounts total,
    const std::function<bool(const workload::ClassCounts&)>& block_ok,
    std::size_t max_blocks, std::size_t limit);

/// Signature of an element-level partition: the multiset of per-block
/// class counts, canonically sorted. Used by tests to prove the typed
/// enumeration is exactly the quotient of the set enumeration.
[[nodiscard]] TypedPartition canonicalize(TypedPartition partition);

}  // namespace aeva::partition
