#include "partition/set_partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aeva::partition {

SetPartitionGenerator::SetPartitionGenerator(int n)
    : n_(n),
      kappa_(static_cast<std::size_t>(std::max(n, 0)), 0),
      max_(static_cast<std::size_t>(std::max(n, 0)), 0) {
  AEVA_REQUIRE(n >= 1 && n <= 25, "set size must be in [1, 25], got ", n);
}

bool SetPartitionGenerator::next() {
  // Orlov's successor rule: find the rightmost position (excluding 0, which
  // is pinned to block 0) that can be incremented without breaking the
  // restricted-growth property κ[i] ≤ M[i−1] + 1, increment it, and reset
  // everything to its right to block 0.
  for (int i = n_ - 1; i > 0; --i) {
    const auto ui = static_cast<std::size_t>(i);
    if (kappa_[ui] <= max_[ui - 1]) {
      ++kappa_[ui];
      max_[ui] = std::max(max_[ui - 1], kappa_[ui]);
      for (int j = i + 1; j < n_; ++j) {
        const auto uj = static_cast<std::size_t>(j);
        kappa_[uj] = 0;
        max_[uj] = max_[ui];
      }
      return true;
    }
  }
  return false;
}

Partition SetPartitionGenerator::partition() const {
  return rgs_to_partition(kappa_);
}

int SetPartitionGenerator::block_count() const noexcept {
  return max_[static_cast<std::size_t>(n_ - 1)] + 1;
}

std::uint64_t bell_number(int n) {
  AEVA_REQUIRE(n >= 0 && n <= 25, "Bell number argument out of [0, 25]: ", n);
  // Bell triangle.
  std::vector<std::uint64_t> row = {1};
  for (int i = 0; i < n; ++i) {
    std::vector<std::uint64_t> next_row;
    next_row.reserve(row.size() + 1);
    next_row.push_back(row.back());
    for (const std::uint64_t v : row) {
      next_row.push_back(next_row.back() + v);
    }
    row = std::move(next_row);
  }
  return row.front();
}

std::size_t for_each_partition(
    int n, const std::function<bool(const Partition&)>& visit) {
  AEVA_REQUIRE(static_cast<bool>(visit), "null visitor");
  SetPartitionGenerator gen(n);
  std::size_t visited = 0;
  do {
    ++visited;
    if (!visit(gen.partition())) {
      return visited;
    }
  } while (gen.next());
  return visited;
}

Partition rgs_to_partition(const std::vector<int>& rgs) {
  AEVA_REQUIRE(!rgs.empty(), "empty RGS");
  int blocks = 0;
  for (std::size_t i = 0; i < rgs.size(); ++i) {
    AEVA_REQUIRE(rgs[i] >= 0 && rgs[i] <= blocks,
                 "not a restricted growth string at position ", i);
    blocks = std::max(blocks, rgs[i] + 1);
  }
  Partition out(static_cast<std::size_t>(blocks));
  for (std::size_t i = 0; i < rgs.size(); ++i) {
    out[static_cast<std::size_t>(rgs[i])].push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace aeva::partition
