#pragma once

/// \file app_spec.hpp
/// Phase-based synthetic models of HPC benchmark applications.
///
/// The paper runs real benchmarks (HPL Linpack, FFTW, sysbench, b_eff_io,
/// bonnie++) on a physical testbed; we model each as a sequence of phases
/// with explicit per-subsystem demands (DESIGN.md, substitution table).
/// "An application usually demands the services of a given subsystem in
/// discrete time windows" (Sect. III-A) — phases are those windows.

#include <string>
#include <vector>

#include "workload/profile.hpp"

namespace aeva::workload {

/// Instantaneous resource demand of one VM during a phase.
///
/// `cpu_cores` is the vCPU demand in physical-core units; the paper assumes
/// a single process per VM, so it never exceeds 1.0. Bandwidth demands are
/// in MB/s against the server's shared subsystem capacities.
struct Demand {
  double cpu_cores = 0.0;
  double mem_bw_share = 0.0;  ///< fraction of server memory bandwidth
  double disk_mbps = 0.0;
  double net_mbps = 0.0;
};

/// One execution phase: a demand vector plus the time the phase takes when
/// every demand is fully granted (`nominal_s`). Under contention the phase
/// stretches by the reciprocal of its most-throttled resource share.
struct Phase {
  std::string name;
  Demand demand;
  double nominal_s = 0.0;
};

/// A complete synthetic application model.
struct AppSpec {
  std::string name;          ///< benchmark identifier, e.g. "fftw"
  ProfileClass profile{};    ///< class label used by the model database
  double mem_footprint_mb = 0.0;  ///< resident set while running
  std::vector<Phase> phases;

  /// End-to-end runtime with all demands granted (sum of phase nominals).
  [[nodiscard]] double nominal_runtime_s() const noexcept;

  /// Time-weighted average demand across phases.
  [[nodiscard]] Demand average_demand() const;

  /// Returns a copy whose phase durations are multiplied by `factor` (> 0);
  /// used to instantiate trace jobs of varying lengths from one benchmark
  /// shape.
  [[nodiscard]] AppSpec scaled_runtime(double factor) const;

  /// Validates invariants (non-empty phases, positive durations, demands in
  /// range); throws std::invalid_argument on violation.
  void validate() const;
};

}  // namespace aeva::workload
