#include "workload/registry.hpp"

#include "util/error.hpp"

namespace aeva::workload {

namespace {

AppSpec make_linpack() {
  AppSpec app;
  app.name = "linpack";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 300.0;
  app.phases = {
      Phase{"factorize", Demand{0.92, 0.12, 0.0, 0.0}, 1200.0},
  };
  return app;
}

AppSpec make_fftw() {
  AppSpec app;
  app.name = "fftw";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 330.0;
  // "single thread, with long initialization phase" (Sect. III-B). The
  // transform itself is memory-latency bound, so its effective core demand
  // sits well below one full core — this is what lets ~9 single-threaded
  // FFTW VMs share 4 cores productively before contention wins (Fig. 2).
  app.phases = {
      Phase{"init", Demand{0.30, 0.02, 15.0, 0.0}, 180.0},
      Phase{"transform", Demand{0.30, 0.07, 0.0, 0.0}, 720.0},
  };
  return app;
}

AppSpec make_sysbench() {
  AppSpec app;
  app.name = "sysbench";
  app.profile = ProfileClass::kMem;
  app.mem_footprint_mb = 380.0;
  app.phases = {
      Phase{"prepare", Demand{0.60, 0.10, 20.0, 0.0}, 60.0},
      Phase{"oltp", Demand{0.50, 0.22, 8.0, 0.0}, 940.0},
  };
  return app;
}

AppSpec make_stream() {
  AppSpec app;
  app.name = "stream";
  app.profile = ProfileClass::kMem;
  app.mem_footprint_mb = 420.0;
  app.phases = {
      Phase{"triad", Demand{0.30, 0.30, 0.0, 0.0}, 800.0},
  };
  return app;
}

AppSpec make_beffio() {
  AppSpec app;
  app.name = "beffio";
  app.profile = ProfileClass::kIo;
  app.mem_footprint_mb = 160.0;
  // b_eff_io is an MPI-I/O benchmark: disk-dominant with a visible
  // network component from the MPI exchanges.
  app.phases = {
      Phase{"write", Demand{0.18, 0.03, 45.0, 12.0}, 600.0},
      Phase{"read", Demand{0.20, 0.03, 50.0, 12.0}, 500.0},
  };
  return app;
}

AppSpec make_bonnie() {
  AppSpec app;
  app.name = "bonnie";
  app.profile = ProfileClass::kIo;
  app.mem_footprint_mb = 128.0;
  app.phases = {
      Phase{"create", Demand{0.20, 0.02, 60.0, 0.0}, 300.0},
      Phase{"rewrite", Demand{0.15, 0.02, 70.0, 0.0}, 400.0},
      Phase{"read", Demand{0.22, 0.02, 65.0, 0.0}, 300.0},
  };
  return app;
}

AppSpec make_mpicompute() {
  AppSpec app;
  app.name = "mpicompute";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 256.0;
  // CPU- cum network-intensive workload of Fig. 1 (right): compute bursts
  // alternate with MPI exchange windows.
  for (int iteration = 0; iteration < 12; ++iteration) {
    const std::string tag = std::to_string(iteration);
    app.phases.push_back(
        Phase{"compute" + tag, Demand{0.95, 0.12, 0.0, 0.0}, 40.0});
    app.phases.push_back(
        Phase{"exchange" + tag, Demand{0.30, 0.02, 0.0, 60.0}, 15.0});
  }
  return app;
}

AppSpec make_montecarlo() {
  AppSpec app;
  app.name = "montecarlo";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 64.0;
  // Embarrassingly parallel sampling kernel: saturates its core, touches
  // almost nothing else.
  app.phases = {
      Phase{"sample", Demand{0.98, 0.02, 0.0, 0.0}, 950.0},
  };
  return app;
}

AppSpec make_cg() {
  AppSpec app;
  app.name = "cg";
  app.profile = ProfileClass::kMem;
  app.mem_footprint_mb = 500.0;
  // NAS CG archetype: sparse matrix-vector products, latency-bound on the
  // memory subsystem with moderate core usage.
  app.phases = {
      Phase{"spmv", Demand{0.40, 0.28, 0.0, 0.0}, 1050.0},
  };
  return app;
}

AppSpec make_ft() {
  AppSpec app;
  app.name = "ft";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 384.0;
  // NAS FT archetype: compute-heavy FFT stages punctuated by all-to-all
  // transposes on the interconnect.
  for (int iteration = 0; iteration < 8; ++iteration) {
    const std::string tag = std::to_string(iteration);
    app.phases.push_back(
        Phase{"fft" + tag, Demand{0.90, 0.15, 0.0, 0.0}, 90.0});
    app.phases.push_back(
        Phase{"transpose" + tag, Demand{0.40, 0.10, 0.0, 70.0}, 30.0});
  }
  return app;
}

std::vector<AppSpec> make_all() {
  std::vector<AppSpec> apps = {
      make_linpack(), make_fftw(),   make_sysbench(),   make_stream(),
      make_beffio(),  make_bonnie(), make_mpicompute(), make_montecarlo(),
      make_cg(),      make_ft(),
  };
  for (const auto& app : apps) {
    app.validate();
  }
  return apps;
}

}  // namespace

const std::vector<AppSpec>& builtin_apps() {
  static const std::vector<AppSpec> apps = make_all();
  return apps;
}

std::vector<std::string> builtin_app_names() {
  std::vector<std::string> names;
  names.reserve(builtin_apps().size());
  for (const auto& app : builtin_apps()) {
    names.push_back(app.name);
  }
  return names;
}

const AppSpec& find_app(std::string_view name) {
  for (const auto& app : builtin_apps()) {
    if (app.name == name) {
      return app;
    }
  }
  throw std::invalid_argument("unknown benchmark: " + std::string(name));
}

const AppSpec& canonical_app(ProfileClass profile) {
  switch (profile) {
    case ProfileClass::kCpu:
      return find_app("linpack");
    case ProfileClass::kMem:
      return find_app("sysbench");
    case ProfileClass::kIo:
      return find_app("beffio");
  }
  throw std::invalid_argument("unknown profile class");
}

}  // namespace aeva::workload
