#include "workload/app_spec.hpp"

#include "util/error.hpp"

namespace aeva::workload {

double AppSpec::nominal_runtime_s() const noexcept {
  double total = 0.0;
  for (const auto& phase : phases) {
    total += phase.nominal_s;
  }
  return total;
}

Demand AppSpec::average_demand() const {
  const double total = nominal_runtime_s();
  AEVA_REQUIRE(total > 0.0, "app ", name, " has zero nominal runtime");
  Demand avg;
  for (const auto& phase : phases) {
    const double w = phase.nominal_s / total;
    avg.cpu_cores += w * phase.demand.cpu_cores;
    avg.mem_bw_share += w * phase.demand.mem_bw_share;
    avg.disk_mbps += w * phase.demand.disk_mbps;
    avg.net_mbps += w * phase.demand.net_mbps;
  }
  return avg;
}

AppSpec AppSpec::scaled_runtime(double factor) const {
  AEVA_REQUIRE(factor > 0.0, "runtime scale must be positive, got ", factor);
  AppSpec out = *this;
  for (auto& phase : out.phases) {
    phase.nominal_s *= factor;
  }
  return out;
}

void AppSpec::validate() const {
  AEVA_REQUIRE(!name.empty(), "app spec needs a name");
  AEVA_REQUIRE(!phases.empty(), "app ", name, " has no phases");
  AEVA_REQUIRE(mem_footprint_mb >= 0.0, "app ", name,
               " has negative memory footprint");
  for (const auto& phase : phases) {
    AEVA_REQUIRE(phase.nominal_s > 0.0, "app ", name, " phase ", phase.name,
                 " has non-positive duration");
    const Demand& d = phase.demand;
    AEVA_REQUIRE(d.cpu_cores >= 0.0 && d.cpu_cores <= 1.0, "app ", name,
                 " phase ", phase.name,
                 " cpu demand out of [0,1] (single process per VM): ",
                 d.cpu_cores);
    AEVA_REQUIRE(d.mem_bw_share >= 0.0 && d.mem_bw_share <= 1.0, "app ", name,
                 " phase ", phase.name, " memory-bandwidth share out of [0,1]");
    AEVA_REQUIRE(d.disk_mbps >= 0.0, "app ", name, " phase ", phase.name,
                 " negative disk demand");
    AEVA_REQUIRE(d.net_mbps >= 0.0, "app ", name, " phase ", phase.name,
                 " negative network demand");
  }
}

}  // namespace aeva::workload
