#include "workload/profile.hpp"

namespace aeva::workload {

std::string_view to_string(Subsystem subsystem) noexcept {
  switch (subsystem) {
    case Subsystem::kCpu:
      return "cpu";
    case Subsystem::kMemory:
      return "memory";
    case Subsystem::kDisk:
      return "disk";
    case Subsystem::kNetwork:
      return "network";
  }
  return "unknown";
}

std::string_view to_string(ProfileClass profile) noexcept {
  switch (profile) {
    case ProfileClass::kCpu:
      return "CPU";
    case ProfileClass::kMem:
      return "MEM";
    case ProfileClass::kIo:
      return "IO";
  }
  return "unknown";
}

std::optional<ProfileClass> parse_profile_class(
    std::string_view text) noexcept {
  if (text == "CPU") return ProfileClass::kCpu;
  if (text == "MEM") return ProfileClass::kMem;
  if (text == "IO") return ProfileClass::kIo;
  return std::nullopt;
}

}  // namespace aeva::workload
