#pragma once

/// \file registry.hpp
/// Built-in catalogue of synthetic HPC benchmark models.
///
/// Mirrors the benchmark suite of Sect. III-A:
///  * CPU-intensive:    `linpack` (HPL), `fftw` (single-threaded, long
///                      initialization phase), `mpicompute` (CPU- cum
///                      network-intensive, Fig. 1 right)
///  * memory-intensive: `sysbench`, `stream`
///  * I/O-intensive:    `beffio` (b_eff_io, MPI-I/O), `bonnie` (bonnie++)
///
/// The demand numbers are calibrated against the paper's testbed (quad-core
/// Xeon X3220, 4 GB RAM, 2 disks, 2×1GbE) so the base-test curves exhibit
/// the published behaviour — in particular the FFTW average-execution-time
/// optimum near 9 VMs with sharp degradation past 11 (Fig. 2).

#include <string>
#include <string_view>
#include <vector>

#include "workload/app_spec.hpp"

namespace aeva::workload {

/// All built-in benchmark models, validated.
[[nodiscard]] const std::vector<AppSpec>& builtin_apps();

/// Names of all built-in benchmarks, registry order.
[[nodiscard]] std::vector<std::string> builtin_app_names();

/// Looks up a benchmark by name; throws std::invalid_argument if unknown.
[[nodiscard]] const AppSpec& find_app(std::string_view name);

/// The representative benchmark per profile class used for the model
/// database campaign (CPU → linpack, MEM → sysbench, IO → beffio),
/// matching the paper's choice of one canonical workload per class for the
/// combination tests.
[[nodiscard]] const AppSpec& canonical_app(ProfileClass profile);

}  // namespace aeva::workload
