#pragma once

/// \file profile.hpp
/// Application profile taxonomy.
///
/// The paper classifies each application (and hence each VM) as CPU-,
/// memory-, or I/O-intensive based on its usage of four server subsystems:
/// CPU, memory, disk (storage), and network interface (Sect. III-A). The
/// model database is keyed by counts of the three classes; the profiler
/// reports intensity along all four subsystem dimensions (an application
/// may be intensive along several, e.g. CPU *and* network — Fig. 1 right).

#include <array>
#include <optional>
#include <string_view>

namespace aeva::workload {

/// The four profiled server subsystems.
enum class Subsystem { kCpu = 0, kMemory = 1, kDisk = 2, kNetwork = 3 };

/// Number of profiled subsystems.
inline constexpr int kSubsystemCount = 4;

/// All subsystems, for iteration.
inline constexpr std::array<Subsystem, kSubsystemCount> kAllSubsystems = {
    Subsystem::kCpu, Subsystem::kMemory, Subsystem::kDisk,
    Subsystem::kNetwork};

/// The paper's three workload classes used as the model-database key.
enum class ProfileClass { kCpu = 0, kMem = 1, kIo = 2 };

/// Number of workload classes.
inline constexpr int kProfileClassCount = 3;

/// All profile classes, for iteration.
inline constexpr std::array<ProfileClass, kProfileClassCount>
    kAllProfileClasses = {ProfileClass::kCpu, ProfileClass::kMem,
                          ProfileClass::kIo};

/// Human-readable subsystem name ("cpu", "memory", "disk", "network").
[[nodiscard]] std::string_view to_string(Subsystem subsystem) noexcept;

/// Human-readable class name ("CPU", "MEM", "IO").
[[nodiscard]] std::string_view to_string(ProfileClass profile) noexcept;

/// Parses a class name (case-sensitive: "CPU", "MEM", "IO").
[[nodiscard]] std::optional<ProfileClass> parse_profile_class(
    std::string_view text) noexcept;

/// Count of VMs per profile class: the model-database key
/// (Ncpu, Nmem, Nio) of Table II.
struct ClassCounts {
  int cpu = 0;
  int mem = 0;
  int io = 0;

  [[nodiscard]] int total() const noexcept { return cpu + mem + io; }

  [[nodiscard]] int of(ProfileClass profile) const noexcept {
    switch (profile) {
      case ProfileClass::kCpu:
        return cpu;
      case ProfileClass::kMem:
        return mem;
      case ProfileClass::kIo:
        return io;
    }
    return 0;
  }

  /// Mutable access by class.
  int& of(ProfileClass profile) noexcept {
    switch (profile) {
      case ProfileClass::kMem:
        return mem;
      case ProfileClass::kIo:
        return io;
      case ProfileClass::kCpu:
      default:
        return cpu;
    }
  }

  friend ClassCounts operator+(ClassCounts a, ClassCounts b) noexcept {
    return ClassCounts{a.cpu + b.cpu, a.mem + b.mem, a.io + b.io};
  }

  friend ClassCounts operator-(ClassCounts a, ClassCounts b) noexcept {
    return ClassCounts{a.cpu - b.cpu, a.mem - b.mem, a.io - b.io};
  }

  friend bool operator==(ClassCounts a, ClassCounts b) noexcept {
    return a.cpu == b.cpu && a.mem == b.mem && a.io == b.io;
  }

  /// Lexicographic order on (cpu, mem, io): the database sort key
  /// (Sect. III-C).
  friend bool operator<(ClassCounts a, ClassCounts b) noexcept {
    if (a.cpu != b.cpu) return a.cpu < b.cpu;
    if (a.mem != b.mem) return a.mem < b.mem;
    return a.io < b.io;
  }
};

}  // namespace aeva::workload
