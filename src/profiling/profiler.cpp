#include "profiling/profiler.hpp"

#include "util/error.hpp"

namespace aeva::profiling {

using workload::ProfileClass;
using workload::Subsystem;

std::vector<Subsystem> ApplicationProfile::intensive_subsystems() const {
  std::vector<Subsystem> out;
  for (const auto& report : subsystems) {
    if (report.intensive) {
      out.push_back(report.subsystem);
    }
  }
  return out;
}

Profiler::Profiler(testbed::ServerConfig server, CollectorSpec collector,
                   ClassifierThresholds thresholds)
    : sim_(server), collector_(collector), thresholds_(thresholds) {
  AEVA_REQUIRE(collector_.period_s > 0.0,
               "collector period must be positive");
  AEVA_REQUIRE(thresholds_.cpu_cores > 0.0 && thresholds_.mem_bw_share > 0.0 &&
                   thresholds_.disk_mbps > 0.0 && thresholds_.net_mbps > 0.0,
               "classifier thresholds must be positive");
}

Profiler::Profiler()
    : Profiler(testbed::testbed_server(), CollectorSpec{},
               ClassifierThresholds{}) {}

ProfileClass map_to_class(bool cpu, bool mem, bool disk, bool net) {
  if (disk || (net && !cpu)) {
    return ProfileClass::kIo;
  }
  if (mem) {
    return ProfileClass::kMem;
  }
  return ProfileClass::kCpu;
}

ApplicationProfile Profiler::profile(const workload::AppSpec& app) const {
  app.validate();
  const testbed::SimResult run =
      sim_.run({testbed::VmRun{app, 0.0}});

  ApplicationProfile out;
  out.app_name = app.name;
  out.runtime_s = run.vms.front().runtime_s();

  const auto& cfg = sim_.config();
  // Conversion from busy-share utilization to natural units per subsystem.
  const auto natural_scale = [&](Subsystem s) {
    switch (s) {
      case Subsystem::kCpu:
        return static_cast<double>(cfg.cores);  // share → cores
      case Subsystem::kMemory:
        return cfg.mem_bw_capacity;  // share → reference-bus units
      case Subsystem::kDisk:
        return cfg.disk_capacity_mbps();  // share → MB/s
      case Subsystem::kNetwork:
        return cfg.net_capacity_mbps();  // share → MB/s
    }
    return 1.0;
  };
  const auto threshold = [&](Subsystem s) {
    switch (s) {
      case Subsystem::kCpu:
        return thresholds_.cpu_cores;
      case Subsystem::kMemory:
        return thresholds_.mem_bw_share;
      case Subsystem::kDisk:
        return thresholds_.disk_mbps;
      case Subsystem::kNetwork:
        return thresholds_.net_mbps;
    }
    return 0.0;
  };

  for (std::size_t i = 0; i < workload::kAllSubsystems.size(); ++i) {
    const Subsystem sub = workload::kAllSubsystems[i];
    SubsystemReport report;
    report.subsystem = sub;
    report.utilization = run.utilization.of(sub).resample(collector_.period_s);
    const double scale = natural_scale(sub);
    report.mean_natural =
        run.utilization.of(sub).time_weighted_mean() * scale;
    report.peak_natural = run.utilization.of(sub).max_value() * scale;
    report.intensive = report.mean_natural >= threshold(sub);
    out.subsystems[i] = std::move(report);
  }

  const auto flagged = [&](Subsystem s) {
    return out.subsystems[static_cast<std::size_t>(s)].intensive;
  };
  out.mapped_class =
      map_to_class(flagged(Subsystem::kCpu), flagged(Subsystem::kMemory),
                   flagged(Subsystem::kDisk), flagged(Subsystem::kNetwork));
  return out;
}

}  // namespace aeva::profiling
