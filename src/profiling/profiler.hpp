#pragma once

/// \file profiler.hpp
/// Application profiling along the four subsystem dimensions.
///
/// Emulates the paper's profiling workflow (Sect. III-A): run the
/// application on an otherwise idle server while OS-level collectors
/// sample subsystem activity — `mpstat` for CPU, `perfctr`/PAPI L2-miss
/// counters for memory activity, `iostat` for disk, `netstat` for the
/// network — then label the application X-intensive for every subsystem X
/// whose *average* demand is significant, and map the labels onto the three
/// model-database classes (CPU / MEM / IO).

#include <array>
#include <string>
#include <vector>

#include "testbed/microsim.hpp"
#include "util/time_series.hpp"
#include "workload/app_spec.hpp"
#include "workload/profile.hpp"

namespace aeva::profiling {

/// Sampling cadence of the collectors (the paper's tools report at ~1 Hz).
struct CollectorSpec {
  double period_s = 1.0;
};

/// "Significant average demand" thresholds, in natural per-subsystem units:
/// CPU in cores, memory in bandwidth share, disk and network in MB/s.
struct ClassifierThresholds {
  double cpu_cores = 0.35;
  double mem_bw_share = 0.15;
  double disk_mbps = 25.0;
  double net_mbps = 10.0;
};

/// Measured behaviour of one subsystem while the application ran.
struct SubsystemReport {
  workload::Subsystem subsystem{};
  util::TimeSeries utilization;  ///< sampled busy share of capacity, [0,1]
  double mean_natural = 0.0;     ///< mean demand in natural units (see above)
  double peak_natural = 0.0;     ///< peak demand in natural units
  bool intensive = false;        ///< mean demand ≥ classifier threshold
};

/// Full profiling outcome for one application.
struct ApplicationProfile {
  std::string app_name;
  double runtime_s = 0.0;  ///< solo runtime on the idle server
  std::array<SubsystemReport, workload::kSubsystemCount> subsystems;

  /// The model-database class the intensity labels map to.
  workload::ProfileClass mapped_class{};

  /// Subsystems flagged intensive, in enum order.
  [[nodiscard]] std::vector<workload::Subsystem> intensive_subsystems() const;
};

/// Profiles applications by running them solo on a simulated testbed
/// server and sampling the subsystem collectors.
class Profiler {
 public:
  Profiler(testbed::ServerConfig server, CollectorSpec collector,
           ClassifierThresholds thresholds);

  /// Convenience: default collectors/thresholds on the default testbed.
  Profiler();

  /// Runs `app` alone on the server and produces its profile.
  [[nodiscard]] ApplicationProfile profile(const workload::AppSpec& app) const;

  [[nodiscard]] const ClassifierThresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  testbed::MicroSim sim_;
  CollectorSpec collector_;
  ClassifierThresholds thresholds_;
};

/// Maps intensity flags onto the paper's three classes:
/// disk-intensive (or network-intensive without CPU intensity) → IO,
/// otherwise memory-intensive → MEM, otherwise → CPU.
[[nodiscard]] workload::ProfileClass map_to_class(bool cpu, bool mem,
                                                  bool disk, bool net);

}  // namespace aeva::profiling
