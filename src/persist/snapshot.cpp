#include "persist/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "persist/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"

namespace aeva::persist {

namespace {

using wire::kHeaderSize;
using wire::put_bool;
using wire::put_class_counts;
using wire::put_f64;
using wire::put_failure_state;
using wire::put_i32;
using wire::put_i64;
using wire::put_stats_state;
using wire::put_u32;
using wire::put_u64;
using wire::read_class_counts;
using wire::read_failure_state;
using wire::read_profile;
using wire::read_stats_state;
using wire::Reader;

constexpr char kMagic[8] = {'A', 'E', 'V', 'A', 'S', 'N', 'A', 'P'};

void encode_payload(std::string& out, const SimSnapshot& s) {
  put_u64(out, s.workload_fingerprint);
  put_u64(out, s.config_fingerprint);
  put_f64(out, s.t0);
  put_f64(out, s.now);
  put_u64(out, s.next_job);
  put_i64(out, s.next_vm_id);
  put_u64(out, s.guard);
  put_f64(out, s.busy_server_time);
  put_f64(out, s.useful_work_s);
  put_f64(out, s.next_sweep);
  put_u64(out, s.parked);

  put_u64(out, s.servers.size());
  for (const ServerPersistState& server : s.servers) {
    put_class_counts(out, server.alloc);
    put_f64(out, server.busy_power_w);
    put_bool(out, server.powered);
    put_bool(out, server.down);
    put_f64(out, server.repair_s);
    put_f64(out, server.degrade_until);
    put_f64(out, server.degrade_mult);
    put_f64(out, server.brownout_until);
    put_f64(out, server.brownout_cap_w);
    put_bool(out, server.ever_powered);
    put_bool(out, server.isolated);
  }

  put_u64(out, s.running.size());
  for (const VmState& vm : s.running) {
    put_i64(out, vm.vm_id);
    put_u64(out, vm.job_index);
    put_i32(out, vm.profile);
    put_f64(out, vm.runtime_scale);
    put_i32(out, vm.server);
    put_f64(out, vm.start_s);
    put_f64(out, vm.remaining);
    put_f64(out, vm.rate);
    put_bool(out, vm.migrating);
    put_f64(out, vm.migration_done_s);
    put_i32(out, vm.dest_server);
    put_i32(out, vm.retries);
    put_f64(out, vm.ckpt_done);
    put_f64(out, vm.next_ckpt_s);
  }

  put_u64(out, s.queue.size());
  for (const std::uint64_t j : s.queue) {
    put_u64(out, j);
  }

  put_u64(out, s.restarts.size());
  for (const RestartState& r : s.restarts) {
    put_u64(out, r.job_index);
    put_f64(out, r.resume_done);
    put_i32(out, r.retries);
  }

  put_u64(out, s.vms_left.size());
  for (const std::int32_t v : s.vms_left) {
    put_i32(out, v);
  }

  put_u64(out, s.job_done.size());
  for (const std::uint8_t d : s.job_done) {
    put_bool(out, d != 0);
  }

  put_u64(out, s.dependents.size());
  for (const std::vector<std::uint64_t>& deps : s.dependents) {
    put_u64(out, deps.size());
    for (const std::uint64_t d : deps) {
      put_u64(out, d);
    }
  }

  const MetricsState& m = s.metrics;
  put_f64(out, m.makespan_s);
  put_f64(out, m.energy_j);
  put_f64(out, m.sla_violation_pct);
  put_u64(out, m.jobs);
  put_u64(out, m.vms);
  put_u64(out, m.sla_violations);
  put_f64(out, m.mean_response_s);
  put_f64(out, m.mean_wait_s);
  put_f64(out, m.mean_job_wait_s);
  put_f64(out, m.mean_busy_servers);
  put_f64(out, m.peak_busy_servers);
  put_u64(out, m.servers_powered);
  put_u64(out, m.migrations);
  put_f64(out, m.migration_transfer_s);
  put_u64(out, m.failures);
  put_u64(out, m.vm_restarts);
  put_u64(out, m.vms_abandoned);
  put_f64(out, m.lost_work_s);
  put_f64(out, m.goodput_fraction);
  put_u64(out, m.fallback_allocations);
  put_u64(out, m.correlated_failures);
  put_u64(out, m.blast_radius_vms_max);
  put_f64(out, m.blast_radius_vm_sum);
  put_f64(out, m.lost_work_correlated_s);
  put_u64(out, m.rejects_by_reason.size());
  for (const std::uint64_t n : m.rejects_by_reason) {
    put_u64(out, n);
  }
  put_u64(out, m.completions.size());
  for (const CompletionState& c : m.completions) {
    put_i64(out, c.vm_id);
    put_i64(out, c.job_id);
    put_i32(out, c.profile);
    put_i32(out, c.server);
    put_f64(out, c.submit_s);
    put_f64(out, c.start_s);
    put_f64(out, c.finish_s);
  }

  put_stats_state(out, s.response_stats);
  put_stats_state(out, s.wait_stats);
  put_stats_state(out, s.job_wait_stats);

  put_failure_state(out, s.failure);
  wire::put_f64_vector(out, s.tor_heal_s);
}

SimSnapshot decode_payload(Reader& in) {
  SimSnapshot s;
  s.workload_fingerprint = in.u64();
  s.config_fingerprint = in.u64();
  s.t0 = in.f64();
  s.now = in.f64();
  s.next_job = in.u64();
  s.next_vm_id = in.i64();
  s.guard = in.u64();
  s.busy_server_time = in.f64();
  s.useful_work_s = in.f64();
  s.next_sweep = in.f64();
  s.parked = in.u64();

  const std::size_t n_servers = in.count(12 + 8 * 6 + 4);
  s.servers.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    ServerPersistState server;
    server.alloc = read_class_counts(in);
    server.busy_power_w = in.f64();
    server.powered = in.boolean();
    server.down = in.boolean();
    server.repair_s = in.f64();
    server.degrade_until = in.f64();
    server.degrade_mult = in.f64();
    server.brownout_until = in.f64();
    server.brownout_cap_w = in.f64();
    server.ever_powered = in.boolean();
    server.isolated = in.boolean();
    s.servers.push_back(server);
  }

  const std::size_t n_running = in.count(8 * 9 + 4 * 4 + 1);
  s.running.reserve(n_running);
  for (std::size_t i = 0; i < n_running; ++i) {
    VmState vm;
    vm.vm_id = in.i64();
    vm.job_index = in.u64();
    vm.profile = read_profile(in);
    vm.runtime_scale = in.f64();
    vm.server = in.i32();
    vm.start_s = in.f64();
    vm.remaining = in.f64();
    vm.rate = in.f64();
    vm.migrating = in.boolean();
    vm.migration_done_s = in.f64();
    vm.dest_server = in.i32();
    vm.retries = in.i32();
    vm.ckpt_done = in.f64();
    vm.next_ckpt_s = in.f64();
    s.running.push_back(vm);
  }

  const std::size_t n_queue = in.count(8);
  s.queue.reserve(n_queue);
  for (std::size_t i = 0; i < n_queue; ++i) {
    s.queue.push_back(in.u64());
  }

  const std::size_t n_restarts = in.count(8 + 8 + 4);
  s.restarts.reserve(n_restarts);
  for (std::size_t i = 0; i < n_restarts; ++i) {
    RestartState r;
    r.job_index = in.u64();
    r.resume_done = in.f64();
    r.retries = in.i32();
    s.restarts.push_back(r);
  }

  const std::size_t n_vms_left = in.count(4);
  s.vms_left.reserve(n_vms_left);
  for (std::size_t i = 0; i < n_vms_left; ++i) {
    s.vms_left.push_back(in.i32());
  }

  const std::size_t n_job_done = in.count(1);
  s.job_done.reserve(n_job_done);
  for (std::size_t i = 0; i < n_job_done; ++i) {
    s.job_done.push_back(in.boolean() ? 1 : 0);
  }

  const std::size_t n_dependents = in.count(8);
  s.dependents.reserve(n_dependents);
  for (std::size_t i = 0; i < n_dependents; ++i) {
    const std::size_t n_deps = in.count(8);
    std::vector<std::uint64_t> deps;
    deps.reserve(n_deps);
    for (std::size_t d = 0; d < n_deps; ++d) {
      deps.push_back(in.u64());
    }
    s.dependents.push_back(std::move(deps));
  }

  MetricsState& m = s.metrics;
  m.makespan_s = in.f64();
  m.energy_j = in.f64();
  m.sla_violation_pct = in.f64();
  m.jobs = in.u64();
  m.vms = in.u64();
  m.sla_violations = in.u64();
  m.mean_response_s = in.f64();
  m.mean_wait_s = in.f64();
  m.mean_job_wait_s = in.f64();
  m.mean_busy_servers = in.f64();
  m.peak_busy_servers = in.f64();
  m.servers_powered = in.u64();
  m.migrations = in.u64();
  m.migration_transfer_s = in.f64();
  m.failures = in.u64();
  m.vm_restarts = in.u64();
  m.vms_abandoned = in.u64();
  m.lost_work_s = in.f64();
  m.goodput_fraction = in.f64();
  m.fallback_allocations = in.u64();
  m.correlated_failures = in.u64();
  m.blast_radius_vms_max = in.u64();
  m.blast_radius_vm_sum = in.f64();
  m.lost_work_correlated_s = in.f64();
  const std::size_t n_reject_reasons = in.count(8);
  m.rejects_by_reason.reserve(n_reject_reasons);
  for (std::size_t i = 0; i < n_reject_reasons; ++i) {
    m.rejects_by_reason.push_back(in.u64());
  }
  const std::size_t n_completions = in.count(8 * 5 + 4 * 2);
  m.completions.reserve(n_completions);
  for (std::size_t i = 0; i < n_completions; ++i) {
    CompletionState c;
    c.vm_id = in.i64();
    c.job_id = in.i64();
    c.profile = read_profile(in);
    c.server = in.i32();
    c.submit_s = in.f64();
    c.start_s = in.f64();
    c.finish_s = in.f64();
    m.completions.push_back(c);
  }

  s.response_stats = read_stats_state(in);
  s.wait_stats = read_stats_state(in);
  s.job_wait_stats = read_stats_state(in);

  s.failure = read_failure_state(in);
  s.tor_heal_s = wire::read_f64_vector(in);

  return s;
}

}  // namespace

SnapshotVersionError::SnapshotVersionError(std::uint32_t found,
                                           std::uint32_t expected)
    : SnapshotError("snapshot format version " + std::to_string(found) +
                    " is not the supported version " +
                    std::to_string(expected) +
                    (found > expected ? " (written by a newer build?)" : "")),
      found_(found) {}

void Fingerprint::mix(std::uint64_t value) noexcept {
  std::uint64_t s = state_ ^ value;
  state_ = util::splitmix64(s);
}

void Fingerprint::mix_double(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  mix(bits);
}

void Fingerprint::mix_string(std::string_view value) noexcept {
  mix(value.size());
  for (const char c : value) {
    mix(static_cast<std::uint8_t>(c));
  }
}

std::string encode_snapshot(const SimSnapshot& snapshot) {
  std::string payload;
  payload.reserve(1024 + snapshot.servers.size() * 64 +
                  snapshot.running.size() * 96);
  encode_payload(payload, snapshot);

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kSnapshotVersion);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  out += payload;
  return out;
}

SimSnapshot decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    throw SnapshotFormatError("snapshot shorter than its " +
                              std::to_string(kHeaderSize) + "-byte header (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotFormatError("snapshot magic mismatch (not AEVASNAP)");
  }
  Reader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotVersionError(version, kSnapshotVersion);
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t checksum = header.u32();
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload_size != payload.size()) {
    throw SnapshotFormatError(
        "snapshot payload length mismatch: header says " +
        std::to_string(payload_size) + ", file carries " +
        std::to_string(payload.size()));
  }
  if (util::crc32(payload) != checksum) {
    throw SnapshotFormatError("snapshot checksum mismatch (corrupt payload)");
  }
  Reader in(payload);
  SimSnapshot snapshot = decode_payload(in);
  if (in.remaining() != 0) {
    throw SnapshotFormatError("snapshot payload has " +
                              std::to_string(in.remaining()) +
                              " trailing bytes");
  }
  return snapshot;
}

void write_snapshot_file(const std::string& path, const SimSnapshot& snapshot) {
  try {
    util::write_file_atomic(path, encode_snapshot(snapshot));
  } catch (const util::FileWriteError& error) {
    throw SnapshotIoError(std::string("cannot write snapshot: ") +
                          error.what());
  }
}

SimSnapshot read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotIoError("cannot read snapshot: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw SnapshotIoError("error while reading snapshot: " + path);
  }
  return decode_snapshot(buffer.str());
}

}  // namespace aeva::persist
