#pragma once

/// \file serve_snapshot.hpp
/// Crash-safe durability for the long-lived allocation service
/// (src/serve/, docs/RESILIENCE.md "Overload protection").
///
/// A `ServeSnapshot` is a complete copy of `serve::AllocationService`'s
/// mutable state at a decision boundary (no decision in flight): the
/// fleet, the bounded admission queue, every resident placement and its
/// pending release, scheduled client retries, the health controller /
/// degradation-ladder state, the retry-jitter RNG position, the failure
/// schedule cursor, the half-built metrics, and the decision log so far.
/// Restoring it into `AllocationService::resume` continues the run
/// **bit-identically**: the resumed run's final decision log and metrics
/// match the uninterrupted run byte for byte (the serve section of
/// tools/kill_resume_smoke.sh SIGKILLs a live service to prove it).
///
/// On disk the format mirrors AEVASNAP with its own magic:
///
///     magic "AEVASRV\0" (8) | version u32 | payload length u64 |
///     CRC-32 of payload u32 | payload (little-endian)
///
/// written atomically (temp + fsync + rename), decoded fully
/// bounds-checked; corrupt or mismatched inputs raise the same typed
/// `SnapshotError` hierarchy as simulator snapshots (snapshot.hpp).
///
/// Like SimSnapshot, this header sits *below* the serve layer: mirror
/// structs only — serve converts its internal state to and from them.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "persist/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/profile.hpp"

namespace aeva::persist {

/// Current serve-snapshot format version (exact-match policy, as with
/// kSnapshotVersion). Bump on any layout change.
/// v2: incremental-planner oracle state + counters, 4-valued path enum.
/// v3: FailureScheduleState gained the correlated-domain (PDU/ToR)
///     sampling streams (shared wire helper with the sim snapshot), and
///     the metrics block gained the correlated-failure counters.
inline constexpr std::uint32_t kServeSnapshotVersion = 3;

/// One request, as carried in queues / pending retries.
struct ServeRequestState {
  std::int64_t id = 0;
  double arrival_s = 0.0;
  std::int32_t klass = 0;
  std::int32_t profile = 0;  ///< workload::ProfileClass, validated 0..2
  std::int32_t vm_count = 1;
  double qos_time_s = 0.0;
  double deadline_s = 0.0;
  double hold_s = 0.0;
  double release_at_s = 0.0;  ///< NaN = derive from hold_s (see serve)
};

/// One admission-queue entry, FCFS order.
struct ServeQueuedState {
  ServeRequestState request;
  double enqueue_s = 0.0;
  std::int32_t attempt = 0;
};

/// One scheduled client retry (a future arrival event).
struct ServeRetryState {
  ServeRequestState request;
  double at_s = 0.0;
  std::uint64_t seq = 0;  ///< event tie-break sequence number
  std::int32_t attempt = 0;
};

/// One pending capacity release of a placed group.
struct ServeReleaseState {
  std::int64_t group_id = 0;
  double at_s = 0.0;
  std::uint64_t seq = 0;
};

/// One pending server repair.
struct ServeRepairState {
  std::int32_t server = 0;
  double at_s = 0.0;
  std::uint64_t seq = 0;
};

/// One resident placed group (capacity holder).
struct ServeResidentState {
  std::int64_t group_id = 0;
  std::int32_t klass = 0;
  std::int32_t profile = 0;
  double qos_time_s = 0.0;
  double release_s = 0.0;  ///< absolute release instant (+inf = forever)
  std::vector<std::int32_t> servers;  ///< one entry per VM
};

/// One server of the service fleet.
struct ServeServerState {
  workload::ClassCounts alloc;
  bool powered = false;
  bool down = false;
};

/// Hysteresis health controller / degradation ladder state.
struct ServeHealthState {
  std::int32_t rung = 0;  ///< serve::ServeMode, validated 0..2
  std::int32_t breach_streak = 0;
  std::int32_t healthy_streak = 0;
  double latency_ewma_s = 0.0;
  double mode_since_s = 0.0;
};

/// Incremental fleet planner / oracle-rebalancer state (the FleetState
/// itself is rebuilt from the server mirror on restore; only the oracle
/// cadence position travels).
struct ServeIncrementalState {
  double next_oracle_s = 0.0;  ///< next periodic oracle due time (+inf = off)
  std::uint64_t decisions_since_oracle = 0;
  std::uint64_t divergences_since_resync = 0;
};

/// One journaled decision-log record (mirror of serve::DecisionRecord).
struct ServeDecisionState {
  double t = 0.0;
  std::int64_t request_id = 0;
  std::int32_t attempt = 0;
  std::int32_t klass = 0;
  std::int32_t event = 0;   ///< serve::DecisionEvent, validated 0..2
  std::int32_t mode = 0;    ///< serve::ServeMode, validated 0..2
  std::int32_t path = 0;    ///< core::AllocationPath, validated 0..2
  std::int32_t reason = 0;  ///< core::RejectReason, validated
  double wait_s = 0.0;
  double latency_s = 0.0;
  double retry_at_s = -1.0;
  std::vector<std::int32_t> servers;
};

/// The half-built serve metrics (mirror of serve::ServeMetrics).
struct ServeMetricsState {
  std::uint64_t offered = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t placed = 0;
  std::uint64_t placed_fallback = 0;
  std::uint64_t placed_degraded = 0;
  std::uint64_t rejected_final = 0;
  std::uint64_t sheds = 0;
  std::uint64_t expired = 0;
  std::uint64_t retries = 0;
  std::uint64_t retries_exhausted = 0;
  std::uint64_t invalidated = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_rearms = 0;
  std::uint64_t crashes = 0;
  std::uint64_t correlated_failures = 0;
  std::uint64_t groups_lost = 0;
  std::uint64_t groups_lost_correlated = 0;
  std::uint64_t restarts = 0;
  std::uint64_t decisions_incremental = 0;
  std::uint64_t oracle_checks = 0;
  std::uint64_t oracle_divergences = 0;
  std::uint64_t fleet_resyncs = 0;
  std::vector<std::uint64_t> rejects_by_reason;  ///< core::kRejectReasonCount
  std::vector<double> time_in_mode_s;            ///< serve::kServeModeCount
  double queue_depth_integral = 0.0;
  double peak_queue_depth = 0.0;
};

/// Complete service state at one decision boundary.
struct ServeSnapshot {
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;

  double now = 0.0;              ///< sim time of the checkpoint
  std::uint64_t next_arrival = 0;  ///< cursor into the arrival stream
  std::uint64_t next_seq = 0;      ///< event tie-break counter
  std::int64_t next_vm_id = 1;     ///< next VM id handed to the allocator
  double next_snapshot_s = 0.0;    ///< next periodic checkpoint due time
  double depth_changed_s = 0.0;    ///< last queue-depth change instant

  std::vector<ServeServerState> servers;
  std::vector<ServeQueuedState> queue;
  std::vector<ServeRetryState> retries;
  std::vector<ServeReleaseState> releases;
  std::vector<ServeRepairState> repairs;
  std::vector<ServeResidentState> residents;

  ServeHealthState health;
  ServeIncrementalState incremental;
  util::Rng::State retry_rng;
  FailureScheduleState failure;
  ServeMetricsState metrics;
  util::RunningStats::State latency_stats;
  util::RunningStats::State wait_stats;
  std::vector<ServeDecisionState> log;
};

/// Serializes a serve snapshot to the on-disk byte format.
[[nodiscard]] std::string encode_serve_snapshot(const ServeSnapshot& snapshot);

/// Parses serve-snapshot bytes; throws SnapshotFormatError /
/// SnapshotVersionError exactly as decode_snapshot does. Never UB on
/// arbitrary bytes (fuzz/fuzz_serve_snapshot exercises this).
[[nodiscard]] ServeSnapshot decode_serve_snapshot(std::string_view bytes);

/// Atomically writes `snapshot` to `path`; throws SnapshotIoError.
void write_serve_snapshot_file(const std::string& path,
                               const ServeSnapshot& snapshot);

/// Reads and decodes a serve snapshot file; throws SnapshotIoError when
/// unreadable, plus everything decode_serve_snapshot throws.
[[nodiscard]] ServeSnapshot read_serve_snapshot_file(const std::string& path);

}  // namespace aeva::persist
