#pragma once

/// \file wire.hpp
/// Shared little-endian wire primitives of the snapshot codecs
/// (persist-internal). Both the simulator snapshot ("AEVASNAP",
/// snapshot.cpp) and the serve snapshot ("AEVASRV\0", serve_snapshot.cpp)
/// encode through these writers and decode through the bounds-checked
/// `Reader`, so the two formats can never drift in primitive layout and
/// a corrupt input of either kind fails with the same typed
/// `SnapshotError` hierarchy instead of undefined behaviour.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "persist/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/profile.hpp"

namespace aeva::persist::wire {

/// Fixed header layout shared by both formats:
/// magic (8) | version u32 | payload length u64 | payload CRC-32 u32.
inline constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

// --- little-endian primitives ----------------------------------------------

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline void put_bool(std::string& out, bool v) {
  out.push_back(v ? '\x01' : '\x00');
}

/// Bounds-checked sequential reader over the payload. Every accessor
/// throws SnapshotFormatError instead of reading out of range, so a
/// decoder fed arbitrary bytes can only ever fail cleanly.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
               data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) {
      throw SnapshotFormatError("snapshot boolean field holds " +
                                std::to_string(v));
    }
    return v == 1;
  }

  /// Element count of a variable-length section; rejected up front when
  /// even minimally-sized elements could not fit in the remaining bytes,
  /// so a corrupt count can never trigger a huge allocation.
  [[nodiscard]] std::size_t count(std::size_t min_element_size) {
    const std::uint64_t n = u64();
    const std::size_t limit =
        min_element_size == 0 ? remaining() : remaining() / min_element_size;
    if (n > limit) {
      throw SnapshotFormatError(
          "snapshot section claims " + std::to_string(n) +
          " elements but only " + std::to_string(remaining()) +
          " bytes remain");
    }
    return static_cast<std::size_t>(n);
  }

 private:
  void need(std::size_t bytes) const {
    if (remaining() < bytes) {
      throw SnapshotFormatError("snapshot payload truncated at byte " +
                                std::to_string(pos_));
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- compound fields --------------------------------------------------------

inline std::int32_t read_profile(Reader& in) {
  const std::int32_t p = in.i32();
  if (p < 0 || p >= static_cast<std::int32_t>(workload::kProfileClassCount)) {
    throw SnapshotFormatError("snapshot profile class " + std::to_string(p) +
                              " out of range");
  }
  return p;
}

inline void put_class_counts(std::string& out, const workload::ClassCounts& c) {
  put_i32(out, c.cpu);
  put_i32(out, c.mem);
  put_i32(out, c.io);
}

inline workload::ClassCounts read_class_counts(Reader& in) {
  workload::ClassCounts c;
  c.cpu = in.i32();
  c.mem = in.i32();
  c.io = in.i32();
  if (c.cpu < 0 || c.mem < 0 || c.io < 0) {
    throw SnapshotFormatError("snapshot class counts are negative");
  }
  return c;
}

inline void put_rng_state(std::string& out, const util::Rng::State& s) {
  for (const std::uint64_t word : s.words) {
    put_u64(out, word);
  }
  put_f64(out, s.cached_normal);
  put_bool(out, s.has_cached_normal);
}

inline util::Rng::State read_rng_state(Reader& in) {
  util::Rng::State s;
  for (std::uint64_t& word : s.words) {
    word = in.u64();
  }
  s.cached_normal = in.f64();
  s.has_cached_normal = in.boolean();
  return s;
}

inline void put_stats_state(std::string& out,
                            const util::RunningStats::State& s) {
  put_u64(out, s.count);
  put_f64(out, s.mean);
  put_f64(out, s.m2);
  put_f64(out, s.sum);
  put_f64(out, s.min);
  put_f64(out, s.max);
}

inline util::RunningStats::State read_stats_state(Reader& in) {
  util::RunningStats::State s;
  s.count = static_cast<std::size_t>(in.u64());
  s.mean = in.f64();
  s.m2 = in.f64();
  s.sum = in.f64();
  s.min = in.f64();
  s.max = in.f64();
  return s;
}

inline void put_rng_states(std::string& out,
                           const std::vector<util::Rng::State>& streams) {
  put_u64(out, streams.size());
  for (const util::Rng::State& stream : streams) {
    put_rng_state(out, stream);
  }
}

inline std::vector<util::Rng::State> read_rng_states(Reader& in) {
  const std::size_t n = in.count(8 * 5 + 1);
  std::vector<util::Rng::State> streams;
  streams.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    streams.push_back(read_rng_state(in));
  }
  return streams;
}

inline void put_f64_vector(std::string& out, const std::vector<double>& v) {
  put_u64(out, v.size());
  for (const double x : v) {
    put_f64(out, x);
  }
}

inline std::vector<double> read_f64_vector(Reader& in) {
  const std::size_t n = in.count(8);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(in.f64());
  }
  return v;
}

inline void put_failure_state(std::string& out, const FailureScheduleState& f) {
  put_u64(out, f.script_next);
  put_rng_states(out, f.streams);
  put_f64_vector(out, f.sampled_next);
  put_rng_states(out, f.pdu_streams);
  put_f64_vector(out, f.pdu_next);
  put_rng_states(out, f.tor_streams);
  put_f64_vector(out, f.tor_next);
}

inline FailureScheduleState read_failure_state(Reader& in) {
  FailureScheduleState f;
  f.script_next = in.u64();
  f.streams = read_rng_states(in);
  f.sampled_next = read_f64_vector(in);
  f.pdu_streams = read_rng_states(in);
  f.pdu_next = read_f64_vector(in);
  f.tor_streams = read_rng_states(in);
  f.tor_next = read_f64_vector(in);
  return f;
}

}  // namespace aeva::persist::wire
