#include "persist/serve_snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/wire.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"

namespace aeva::persist {

namespace {

using wire::kHeaderSize;
using wire::put_bool;
using wire::put_class_counts;
using wire::put_f64;
using wire::put_failure_state;
using wire::put_i32;
using wire::put_i64;
using wire::put_rng_state;
using wire::put_stats_state;
using wire::put_u32;
using wire::put_u64;
using wire::read_class_counts;
using wire::read_failure_state;
using wire::read_profile;
using wire::read_rng_state;
using wire::read_stats_state;
using wire::Reader;

constexpr char kMagic[8] = {'A', 'E', 'V', 'A', 'S', 'R', 'V', '\0'};

std::int32_t read_small_enum(Reader& in, std::int32_t limit,
                             const char* what) {
  const std::int32_t v = in.i32();
  if (v < 0 || v >= limit) {
    throw SnapshotFormatError(std::string("serve snapshot ") + what + " " +
                              std::to_string(v) + " out of range");
  }
  return v;
}

void put_request(std::string& out, const ServeRequestState& r) {
  put_i64(out, r.id);
  put_f64(out, r.arrival_s);
  put_i32(out, r.klass);
  put_i32(out, r.profile);
  put_i32(out, r.vm_count);
  put_f64(out, r.qos_time_s);
  put_f64(out, r.deadline_s);
  put_f64(out, r.hold_s);
  put_f64(out, r.release_at_s);
}

constexpr std::size_t kRequestWireSize = 8 + 4 * 3 + 8 * 5;

ServeRequestState read_request(Reader& in) {
  ServeRequestState r;
  r.id = in.i64();
  r.arrival_s = in.f64();
  r.klass = read_small_enum(in, 16, "priority class");
  r.profile = read_profile(in);
  r.vm_count = in.i32();
  if (r.vm_count < 1) {
    throw SnapshotFormatError("serve snapshot request carries vm_count " +
                              std::to_string(r.vm_count));
  }
  r.qos_time_s = in.f64();
  r.deadline_s = in.f64();
  r.hold_s = in.f64();
  r.release_at_s = in.f64();
  return r;
}

void encode_payload(std::string& out, const ServeSnapshot& s) {
  put_u64(out, s.stream_fingerprint);
  put_u64(out, s.config_fingerprint);
  put_f64(out, s.now);
  put_u64(out, s.next_arrival);
  put_u64(out, s.next_seq);
  put_i64(out, s.next_vm_id);
  put_f64(out, s.next_snapshot_s);
  put_f64(out, s.depth_changed_s);

  put_u64(out, s.servers.size());
  for (const ServeServerState& server : s.servers) {
    put_class_counts(out, server.alloc);
    put_bool(out, server.powered);
    put_bool(out, server.down);
  }

  put_u64(out, s.queue.size());
  for (const ServeQueuedState& q : s.queue) {
    put_request(out, q.request);
    put_f64(out, q.enqueue_s);
    put_i32(out, q.attempt);
  }

  put_u64(out, s.retries.size());
  for (const ServeRetryState& r : s.retries) {
    put_request(out, r.request);
    put_f64(out, r.at_s);
    put_u64(out, r.seq);
    put_i32(out, r.attempt);
  }

  put_u64(out, s.releases.size());
  for (const ServeReleaseState& r : s.releases) {
    put_i64(out, r.group_id);
    put_f64(out, r.at_s);
    put_u64(out, r.seq);
  }

  put_u64(out, s.repairs.size());
  for (const ServeRepairState& r : s.repairs) {
    put_i32(out, r.server);
    put_f64(out, r.at_s);
    put_u64(out, r.seq);
  }

  put_u64(out, s.residents.size());
  for (const ServeResidentState& r : s.residents) {
    put_i64(out, r.group_id);
    put_i32(out, r.klass);
    put_i32(out, r.profile);
    put_f64(out, r.qos_time_s);
    put_f64(out, r.release_s);
    put_u64(out, r.servers.size());
    for (const std::int32_t server : r.servers) {
      put_i32(out, server);
    }
  }

  put_i32(out, s.health.rung);
  put_i32(out, s.health.breach_streak);
  put_i32(out, s.health.healthy_streak);
  put_f64(out, s.health.latency_ewma_s);
  put_f64(out, s.health.mode_since_s);

  put_f64(out, s.incremental.next_oracle_s);
  put_u64(out, s.incremental.decisions_since_oracle);
  put_u64(out, s.incremental.divergences_since_resync);

  put_rng_state(out, s.retry_rng);
  put_failure_state(out, s.failure);

  const ServeMetricsState& m = s.metrics;
  put_u64(out, m.offered);
  put_u64(out, m.arrivals);
  put_u64(out, m.admitted);
  put_u64(out, m.placed);
  put_u64(out, m.placed_fallback);
  put_u64(out, m.placed_degraded);
  put_u64(out, m.rejected_final);
  put_u64(out, m.sheds);
  put_u64(out, m.expired);
  put_u64(out, m.retries);
  put_u64(out, m.retries_exhausted);
  put_u64(out, m.invalidated);
  put_u64(out, m.breaker_trips);
  put_u64(out, m.breaker_rearms);
  put_u64(out, m.crashes);
  put_u64(out, m.correlated_failures);
  put_u64(out, m.groups_lost);
  put_u64(out, m.groups_lost_correlated);
  put_u64(out, m.restarts);
  put_u64(out, m.decisions_incremental);
  put_u64(out, m.oracle_checks);
  put_u64(out, m.oracle_divergences);
  put_u64(out, m.fleet_resyncs);
  put_u64(out, m.rejects_by_reason.size());
  for (const std::uint64_t n : m.rejects_by_reason) {
    put_u64(out, n);
  }
  put_u64(out, m.time_in_mode_s.size());
  for (const double t : m.time_in_mode_s) {
    put_f64(out, t);
  }
  put_f64(out, m.queue_depth_integral);
  put_f64(out, m.peak_queue_depth);

  put_stats_state(out, s.latency_stats);
  put_stats_state(out, s.wait_stats);

  put_u64(out, s.log.size());
  for (const ServeDecisionState& rec : s.log) {
    put_f64(out, rec.t);
    put_i64(out, rec.request_id);
    put_i32(out, rec.attempt);
    put_i32(out, rec.klass);
    put_i32(out, rec.event);
    put_i32(out, rec.mode);
    put_i32(out, rec.path);
    put_i32(out, rec.reason);
    put_f64(out, rec.wait_s);
    put_f64(out, rec.latency_s);
    put_f64(out, rec.retry_at_s);
    put_u64(out, rec.servers.size());
    for (const std::int32_t server : rec.servers) {
      put_i32(out, server);
    }
  }
}

ServeSnapshot decode_payload(Reader& in) {
  ServeSnapshot s;
  s.stream_fingerprint = in.u64();
  s.config_fingerprint = in.u64();
  s.now = in.f64();
  s.next_arrival = in.u64();
  s.next_seq = in.u64();
  s.next_vm_id = in.i64();
  s.next_snapshot_s = in.f64();
  s.depth_changed_s = in.f64();

  const std::size_t n_servers = in.count(12 + 2);
  s.servers.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    ServeServerState server;
    server.alloc = read_class_counts(in);
    server.powered = in.boolean();
    server.down = in.boolean();
    s.servers.push_back(server);
  }

  const std::size_t n_queue = in.count(kRequestWireSize + 8 + 4);
  s.queue.reserve(n_queue);
  for (std::size_t i = 0; i < n_queue; ++i) {
    ServeQueuedState q;
    q.request = read_request(in);
    q.enqueue_s = in.f64();
    q.attempt = in.i32();
    s.queue.push_back(q);
  }

  const std::size_t n_retries = in.count(kRequestWireSize + 8 + 8 + 4);
  s.retries.reserve(n_retries);
  for (std::size_t i = 0; i < n_retries; ++i) {
    ServeRetryState r;
    r.request = read_request(in);
    r.at_s = in.f64();
    r.seq = in.u64();
    r.attempt = in.i32();
    s.retries.push_back(r);
  }

  const std::size_t n_releases = in.count(8 * 3);
  s.releases.reserve(n_releases);
  for (std::size_t i = 0; i < n_releases; ++i) {
    ServeReleaseState r;
    r.group_id = in.i64();
    r.at_s = in.f64();
    r.seq = in.u64();
    s.releases.push_back(r);
  }

  const std::size_t n_repairs = in.count(4 + 8 + 8);
  s.repairs.reserve(n_repairs);
  for (std::size_t i = 0; i < n_repairs; ++i) {
    ServeRepairState r;
    r.server = in.i32();
    r.at_s = in.f64();
    r.seq = in.u64();
    s.repairs.push_back(r);
  }

  const std::size_t n_residents = in.count(8 + 4 * 2 + 8 * 2 + 8);
  s.residents.reserve(n_residents);
  for (std::size_t i = 0; i < n_residents; ++i) {
    ServeResidentState r;
    r.group_id = in.i64();
    r.klass = read_small_enum(in, 16, "priority class");
    r.profile = read_profile(in);
    r.qos_time_s = in.f64();
    r.release_s = in.f64();
    const std::size_t n_vm = in.count(4);
    r.servers.reserve(n_vm);
    for (std::size_t v = 0; v < n_vm; ++v) {
      r.servers.push_back(in.i32());
    }
    s.residents.push_back(std::move(r));
  }

  s.health.rung = read_small_enum(in, 3, "ladder rung");
  s.health.breach_streak = in.i32();
  s.health.healthy_streak = in.i32();
  s.health.latency_ewma_s = in.f64();
  s.health.mode_since_s = in.f64();

  s.incremental.next_oracle_s = in.f64();
  s.incremental.decisions_since_oracle = in.u64();
  s.incremental.divergences_since_resync = in.u64();

  s.retry_rng = read_rng_state(in);
  s.failure = read_failure_state(in);

  ServeMetricsState& m = s.metrics;
  m.offered = in.u64();
  m.arrivals = in.u64();
  m.admitted = in.u64();
  m.placed = in.u64();
  m.placed_fallback = in.u64();
  m.placed_degraded = in.u64();
  m.rejected_final = in.u64();
  m.sheds = in.u64();
  m.expired = in.u64();
  m.retries = in.u64();
  m.retries_exhausted = in.u64();
  m.invalidated = in.u64();
  m.breaker_trips = in.u64();
  m.breaker_rearms = in.u64();
  m.crashes = in.u64();
  m.correlated_failures = in.u64();
  m.groups_lost = in.u64();
  m.groups_lost_correlated = in.u64();
  m.restarts = in.u64();
  m.decisions_incremental = in.u64();
  m.oracle_checks = in.u64();
  m.oracle_divergences = in.u64();
  m.fleet_resyncs = in.u64();
  const std::size_t n_reasons = in.count(8);
  m.rejects_by_reason.reserve(n_reasons);
  for (std::size_t i = 0; i < n_reasons; ++i) {
    m.rejects_by_reason.push_back(in.u64());
  }
  const std::size_t n_modes = in.count(8);
  m.time_in_mode_s.reserve(n_modes);
  for (std::size_t i = 0; i < n_modes; ++i) {
    m.time_in_mode_s.push_back(in.f64());
  }
  m.queue_depth_integral = in.f64();
  m.peak_queue_depth = in.f64();

  s.latency_stats = read_stats_state(in);
  s.wait_stats = read_stats_state(in);

  const std::size_t n_log = in.count(8 * 5 + 4 * 6 + 8);
  s.log.reserve(n_log);
  for (std::size_t i = 0; i < n_log; ++i) {
    ServeDecisionState rec;
    rec.t = in.f64();
    rec.request_id = in.i64();
    rec.attempt = in.i32();
    rec.klass = in.i32();
    rec.event = read_small_enum(in, 3, "decision event");
    rec.mode = read_small_enum(in, 3, "decision mode");
    rec.path = read_small_enum(in, 4, "allocation path");
    // 16 is a generous structural bound; the serve layer re-validates the
    // value against core::kRejectReasonCount on restore (persist stays
    // below core in the layering).
    rec.reason = read_small_enum(in, 16, "reject reason");
    rec.wait_s = in.f64();
    rec.latency_s = in.f64();
    rec.retry_at_s = in.f64();
    const std::size_t n_srv = in.count(4);
    rec.servers.reserve(n_srv);
    for (std::size_t v = 0; v < n_srv; ++v) {
      rec.servers.push_back(in.i32());
    }
    s.log.push_back(std::move(rec));
  }

  return s;
}

}  // namespace

std::string encode_serve_snapshot(const ServeSnapshot& snapshot) {
  std::string payload;
  payload.reserve(1024 + snapshot.servers.size() * 16 +
                  snapshot.queue.size() * 64 + snapshot.log.size() * 96);
  encode_payload(payload, snapshot);

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kServeSnapshotVersion);
  put_u64(out, payload.size());
  put_u32(out, util::crc32(payload));
  out += payload;
  return out;
}

ServeSnapshot decode_serve_snapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    throw SnapshotFormatError("serve snapshot shorter than its " +
                              std::to_string(kHeaderSize) + "-byte header (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotFormatError("serve snapshot magic mismatch (not AEVASRV)");
  }
  Reader header(bytes.substr(sizeof(kMagic)));
  const std::uint32_t version = header.u32();
  if (version != kServeSnapshotVersion) {
    throw SnapshotVersionError(version, kServeSnapshotVersion);
  }
  const std::uint64_t payload_size = header.u64();
  const std::uint32_t checksum = header.u32();
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload_size != payload.size()) {
    throw SnapshotFormatError(
        "serve snapshot payload length mismatch: header says " +
        std::to_string(payload_size) + ", file carries " +
        std::to_string(payload.size()));
  }
  if (util::crc32(payload) != checksum) {
    throw SnapshotFormatError(
        "serve snapshot checksum mismatch (corrupt payload)");
  }
  Reader in(payload);
  ServeSnapshot snapshot = decode_payload(in);
  if (in.remaining() != 0) {
    throw SnapshotFormatError("serve snapshot payload has " +
                              std::to_string(in.remaining()) +
                              " trailing bytes");
  }
  return snapshot;
}

void write_serve_snapshot_file(const std::string& path,
                               const ServeSnapshot& snapshot) {
  try {
    util::write_file_atomic(path, encode_serve_snapshot(snapshot));
  } catch (const util::FileWriteError& error) {
    throw SnapshotIoError(std::string("cannot write serve snapshot: ") +
                          error.what());
  }
}

ServeSnapshot read_serve_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SnapshotIoError("cannot read serve snapshot: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw SnapshotIoError("error while reading serve snapshot: " + path);
  }
  return decode_serve_snapshot(buffer.str());
}

}  // namespace aeva::persist
