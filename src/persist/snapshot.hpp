#pragma once

/// \file snapshot.hpp
/// Process-level durability for long simulations (docs/RESILIENCE.md,
/// "Process-level durability").
///
/// A `SimSnapshot` is a complete, self-contained copy of the discrete-event
/// simulator's mutable state at a loop boundary: the fleet, every resident
/// VM, the FCFS/backfill queue, restart and workflow bookkeeping, the
/// half-built `SimMetrics`, the accounting accumulators, and the position
/// of every RNG stream the run consumes. Restoring a snapshot into
/// `Simulator::resume` continues the run **bit-identically**: killing a
/// run at any checkpoint and resuming it yields, field for field, the same
/// `SimMetrics` as the uninterrupted run.
///
/// On disk a snapshot is a versioned little-endian binary blob:
///
///     magic "AEVASNAP" (8) | version u32 | payload length u64 |
///     CRC-32 of payload u32 | payload
///
/// written atomically (temp file + fsync + rename via
/// `util::AtomicFileWriter`), so a crash mid-write leaves the previous
/// snapshot intact. Decoding is fully bounds-checked: corrupt, truncated,
/// bit-flipped, or version-mismatched inputs raise a typed `SnapshotError`
/// subclass, never undefined behaviour (fuzz/fuzz_snapshot exercises this).
///
/// This library sits *below* the simulator: it depends only on util and
/// the header-only workload value types, and the simulator converts its
/// internal state to and from these mirror structs.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/profile.hpp"

namespace aeva::persist {

/// Current snapshot format version. The policy is exact-match: the decoder
/// rejects every other version (older *and* newer) with a
/// SnapshotVersionError — resuming is only defined against the binary
/// layout the writer used. Bump on any layout change.
/// v2: MetricsState gained per-reason rejection tallies.
/// v3: MetricsState gained mean_job_wait_s and SimSnapshot gained
///     job_wait_stats (per-job queue-wait accumulator — the per-VM
///     wait_stats weights a 16-VM job 16 times; see SimMetrics docs).
/// v4: correlated failure domains (docs/RESILIENCE.md): servers gained
///     the ToR-isolation flag, FailureScheduleState gained the PDU/ToR
///     sampling streams, SimSnapshot gained the per-switch heal times,
///     and MetricsState gained the correlated-failure tallies.
inline constexpr std::uint32_t kSnapshotVersion = 4;

/// Base of every snapshot failure; catch this to handle "could not load a
/// snapshot" uniformly.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The snapshot file could not be read or written.
class SnapshotIoError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// The bytes are not a well-formed snapshot (bad magic, truncation,
/// checksum mismatch, out-of-range field, trailing garbage).
class SnapshotFormatError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// Well-formed header, but a format version this build does not speak.
class SnapshotVersionError : public SnapshotError {
 public:
  SnapshotVersionError(std::uint32_t found, std::uint32_t expected);

  [[nodiscard]] std::uint32_t found() const noexcept { return found_; }

 private:
  std::uint32_t found_;
};

/// A structurally valid snapshot that does not belong to this run: the
/// workload or cloud/allocator configuration fingerprint differs, or an
/// index refers outside the restored run's jobs/servers.
class SnapshotMismatchError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// Order-sensitive 64-bit fingerprint accumulator (splitmix64-based).
/// `Simulator` fingerprints the workload and the cloud/allocator
/// configuration into every snapshot, and `resume` refuses a snapshot
/// whose fingerprints do not match — a snapshot is only meaningful against
/// the exact run that wrote it.
class Fingerprint {
 public:
  void mix(std::uint64_t value) noexcept;
  void mix_double(double value) noexcept;  ///< exact bit pattern
  void mix_string(std::string_view value) noexcept;

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

/// One resident VM (mirror of the simulator's internal record).
struct VmState {
  std::int64_t vm_id = 0;
  std::uint64_t job_index = 0;
  std::int32_t profile = 0;  ///< workload::ProfileClass, validated 0..2
  double runtime_scale = 1.0;
  std::int32_t server = 0;
  double start_s = 0.0;
  double remaining = 1.0;
  double rate = 0.0;
  bool migrating = false;
  double migration_done_s = 0.0;
  std::int32_t dest_server = -1;
  std::int32_t retries = 0;
  double ckpt_done = 0.0;
  double next_ckpt_s = 0.0;
};

/// One server's runtime state.
struct ServerPersistState {
  workload::ClassCounts alloc;
  double busy_power_w = 0.0;
  bool powered = false;
  bool down = false;
  double repair_s = 0.0;
  double degrade_until = 0.0;
  double degrade_mult = 1.0;
  double brownout_until = 0.0;
  double brownout_cap_w = 0.0;
  bool ever_powered = false;
  /// Rack isolated by a ToR fault: residents stall, server masked.
  bool isolated = false;
};

/// One VM lost to a crash, waiting to be re-placed.
struct RestartState {
  std::uint64_t job_index = 0;
  double resume_done = 0.0;
  std::int32_t retries = 0;
};

/// One completed VM (mirror of datacenter::VmCompletion; captured only
/// when the run records completions).
struct CompletionState {
  std::int64_t vm_id = 0;
  std::int64_t job_id = 0;
  std::int32_t profile = 0;
  std::int32_t server = 0;
  double submit_s = 0.0;
  double start_s = 0.0;
  double finish_s = 0.0;
};

/// The half-built SimMetrics (mirror of datacenter::SimMetrics).
struct MetricsState {
  double makespan_s = 0.0;
  double energy_j = 0.0;
  double sla_violation_pct = 0.0;
  std::uint64_t jobs = 0;
  std::uint64_t vms = 0;
  std::uint64_t sla_violations = 0;
  double mean_response_s = 0.0;
  double mean_wait_s = 0.0;
  double mean_job_wait_s = 0.0;
  double mean_busy_servers = 0.0;
  double peak_busy_servers = 0.0;
  std::uint64_t servers_powered = 0;
  std::uint64_t migrations = 0;
  double migration_transfer_s = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t vm_restarts = 0;
  std::uint64_t vms_abandoned = 0;
  double lost_work_s = 0.0;
  double goodput_fraction = 1.0;
  std::uint64_t fallback_allocations = 0;
  // Correlated failure domains (docs/RESILIENCE.md).
  std::uint64_t correlated_failures = 0;
  std::uint64_t blast_radius_vms_max = 0;
  /// Running sum of per-fault blast radii (the mean divides this by
  /// correlated_failures at run end, so the sum is what must travel).
  double blast_radius_vm_sum = 0.0;
  double lost_work_correlated_s = 0.0;
  /// Admission rejections by core::RejectReason (index = enum value).
  std::vector<std::uint64_t> rejects_by_reason;
  std::vector<CompletionState> completions;
};

/// Mutable fault-injection state (mirror of FailureSchedule::State; the
/// script itself is re-derived from the restored run's config).
struct FailureScheduleState {
  std::uint64_t script_next = 0;
  std::vector<util::Rng::State> streams;
  std::vector<double> sampled_next;
  // Correlated-domain sampling (empty when no topology is wired).
  std::vector<util::Rng::State> pdu_streams;
  std::vector<double> pdu_next;
  std::vector<util::Rng::State> tor_streams;
  std::vector<double> tor_next;
};

/// Complete simulator state at one event-loop boundary.
struct SimSnapshot {
  std::uint64_t workload_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;

  double t0 = 0.0;   ///< first submission (run origin)
  double now = 0.0;  ///< simulated time of the checkpoint

  std::uint64_t next_job = 0;    ///< arrival cursor into the workload
  std::int64_t next_vm_id = 1;   ///< next VM id to hand out
  std::uint64_t guard = 0;       ///< event-budget counter
  double busy_server_time = 0.0; ///< ∫ busy_count dt so far
  double useful_work_s = 0.0;    ///< solo-equivalent completed work
  double next_sweep = 0.0;       ///< next migration sweep (+inf when off)
  std::uint64_t parked = 0;      ///< jobs waiting on a dependency

  std::vector<ServerPersistState> servers;
  std::vector<VmState> running;
  std::vector<std::uint64_t> queue;  ///< job indices, FCFS order
  std::vector<RestartState> restarts;
  std::vector<std::int32_t> vms_left;       ///< per job
  std::vector<std::uint8_t> job_done;       ///< per job, 0/1
  std::vector<std::vector<std::uint64_t>> dependents;  ///< per job

  MetricsState metrics;
  util::RunningStats::State response_stats;
  util::RunningStats::State wait_stats;
  util::RunningStats::State job_wait_stats;
  FailureScheduleState failure;
  /// Pending ToR-isolation heal instants, one per switch (+inf when the
  /// switch is healthy); empty when the run has no topology.
  std::vector<double> tor_heal_s;
};

/// Serializes a snapshot to the on-disk byte format (header + payload).
[[nodiscard]] std::string encode_snapshot(const SimSnapshot& snapshot);

/// Parses snapshot bytes. Throws SnapshotFormatError on any malformed
/// input and SnapshotVersionError on a version this build does not speak;
/// never exhibits undefined behaviour on arbitrary bytes.
[[nodiscard]] SimSnapshot decode_snapshot(std::string_view bytes);

/// Atomically writes `snapshot` to `path` (temp + fsync + rename); the
/// previous file survives any crash mid-write. Throws SnapshotIoError.
void write_snapshot_file(const std::string& path, const SimSnapshot& snapshot);

/// Reads and decodes a snapshot file. Throws SnapshotIoError when the file
/// cannot be read, plus everything decode_snapshot throws.
[[nodiscard]] SimSnapshot read_snapshot_file(const std::string& path);

}  // namespace aeva::persist
