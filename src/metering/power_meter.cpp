#include "metering/power_meter.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace aeva::metering {

PowerMeter::PowerMeter(MeterSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  AEVA_REQUIRE(spec_.sample_period_s > 0.0,
               "meter sampling period must be positive");
  AEVA_REQUIRE(spec_.accuracy_fraction >= 0.0, "negative meter accuracy");
}

MeterReading PowerMeter::measure(const util::TimeSeries& true_power_w) {
  AEVA_REQUIRE(!true_power_w.empty(), "cannot meter an empty power trace");
  MeterReading reading;
  // 95% of gaussian mass lies within ±1.96σ; scale σ so the stated
  // accuracy band is the 95% envelope.
  const double sigma = spec_.accuracy_fraction / 1.96;
  const util::TimeSeries grid = true_power_w.resample(spec_.sample_period_s);
  for (const auto& sample : grid.samples()) {
    const double gain = 1.0 + rng_.normal(0.0, sigma);
    const double value = std::max(0.0, sample.value * gain);
    reading.samples.append(sample.time_s, value);
    reading.max_power_w = std::max(reading.max_power_w, value);
  }
  reading.energy_j = reading.samples.integrate();
  return reading;
}

}  // namespace aeva::metering
