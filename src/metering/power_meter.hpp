#pragma once

/// \file power_meter.hpp
/// Simulated wall-socket power meter.
///
/// Models the "Watts Up? .NET" meter the authors mounted between the wall
/// outlet and the server (Sect. III-B): 1 Hz sampling, accuracy ±1.5 % of
/// the measured power. Energy is estimated exactly the way the paper does —
/// "by integrating the actual power measures over time".

#include <cstdint>

#include "util/rng.hpp"
#include "util/time_series.hpp"

namespace aeva::metering {

/// Meter characteristics.
struct MeterSpec {
  double sample_period_s = 1.0;    ///< 1 Hz
  double accuracy_fraction = 0.015;  ///< ±1.5 % of reading
};

/// Result of metering one run.
struct MeterReading {
  util::TimeSeries samples{"metered power", "W"};
  double energy_j = 0.0;     ///< trapezoidal integral of the samples
  double max_power_w = 0.0;  ///< largest sampled value
};

/// Samples a ground-truth power trace at the meter's rate, applying
/// multiplicative gaussian noise scaled so ~95 % of readings fall within
/// the stated accuracy band.
class PowerMeter {
 public:
  /// `seed` drives the noise stream; identical seeds → identical readings.
  explicit PowerMeter(MeterSpec spec, std::uint64_t seed);

  /// Meters a (piecewise-linear) true power trace. Throws on an empty
  /// trace or a non-positive sampling period.
  [[nodiscard]] MeterReading measure(const util::TimeSeries& true_power_w);

  [[nodiscard]] const MeterSpec& spec() const noexcept { return spec_; }

 private:
  MeterSpec spec_;
  util::Rng rng_;
};

}  // namespace aeva::metering
