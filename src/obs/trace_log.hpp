#pragma once

/// \file trace_log.hpp
/// Structured event tracing for the observability layer
/// (docs/OBSERVABILITY.md).
///
/// A `TraceEvent` carries two time axes:
///
///  * **simulated time** (`ts_sim_s` / `dur_sim_s`) — read from the
///    simulator clock by the instrumentation site. Deterministic: the same
///    seed yields the same simulated timeline, bit for bit.
///  * **real time** (`real_us`) — wall-clock duration measured with a
///    monotonic clock inside this module. Nondeterministic by nature; it
///    is tagged as such in every export and MUST NOT appear in golden
///    outputs (the determinism contract in docs/OBSERVABILITY.md). This
///    file is the only place outside src/obs/ tooling allowed to read a
///    clock — `tools/lint/aeva_lint.py` enforces the boundary.
///
/// `TraceLog` is a bounded, thread-safe append log: when the cap is
/// reached further events are dropped (and counted), so a runaway
/// instrumentation site degrades observability instead of memory.
/// `Span` is the scoped helper that measures a real-time duration and
/// records one complete event on close.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"

namespace aeva::obs {

/// One structured trace record (Chrome trace-event flavoured).
struct TraceEvent {
  std::string name;  ///< what happened, e.g. "allocate"
  std::string cat;   ///< subsystem, e.g. "sim" / "proactive" / "failure"
  char phase = 'X';  ///< 'X' complete span, 'i' instant event
  double ts_sim_s = 0.0;   ///< simulated start time (seconds)
  double dur_sim_s = 0.0;  ///< simulated duration ('X' only)
  /// Wall-clock duration in microseconds; < 0 when not measured.
  /// NONDETERMINISTIC — excluded from golden outputs.
  double real_us = -1.0;
  std::uint64_t seq = 0;  ///< deterministic total order (assigned by the log)
  /// Small deterministic key/value payload (job ids, outcomes, counts).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Bounded thread-safe append-only event log.
class TraceLog {
 public:
  explicit TraceLog(std::size_t max_events = 1 << 20);

  /// Appends one event (assigning its sequence number); drops and counts
  /// it when the log is full.
  void record(TraceEvent event) AEVA_EXCLUDES(mutex_);

  /// Copy of the events recorded so far, in sequence order.
  [[nodiscard]] std::vector<TraceEvent> events() const AEVA_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const AEVA_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const AEVA_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t max_events() const noexcept {
    return max_events_;
  }

 private:
  std::size_t max_events_;
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ AEVA_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ AEVA_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ AEVA_GUARDED_BY(mutex_) = 0;
};

/// Scoped span: captures a monotonic-clock timestamp at construction and
/// records one complete ('X') event into the log on `close()` (or on
/// destruction, using the begin time as the end time when the caller
/// never closed it). Simulated begin/end times are passed in by the
/// instrumentation site — this class never invents simulated time.
class Span {
 public:
  /// A null `log` makes the span a no-op (the disabled path).
  Span(TraceLog* log, std::string name, std::string cat, double sim_begin_s);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Attaches one key/value argument (no-op when disabled).
  void arg(std::string key, std::string value);

  /// Records the event with the given simulated end time. Idempotent:
  /// only the first close emits.
  void close(double sim_end_s);

  /// Discards the span without emitting anything (e.g. the operation it
  /// wrapped did not happen after all). Idempotent.
  void cancel() noexcept { closed_ = true; }

 private:
  TraceLog* log_;
  TraceEvent event_;
  std::uint64_t real_begin_ns_ = 0;
  bool closed_ = false;
};

/// Monotonic wall-clock nanoseconds (std::chrono::steady_clock). The one
/// sanctioned clock read in the codebase; see the file comment.
[[nodiscard]] std::uint64_t monotonic_now_ns();

}  // namespace aeva::obs
