#pragma once

/// \file metrics.hpp
/// Metric primitives for the observability layer (docs/OBSERVABILITY.md).
///
/// Three shapes, mirroring production metric systems:
///
///  * `Counter`  — monotonically increasing unsigned tally (relaxed atomic;
///                 the hot path is one uncontended fetch_add).
///  * `Gauge`    — last-written double (relaxed atomic store).
///  * `Histogram`— fixed-bucket distribution plus Welford summary stats.
///                 Recording lands on one of several thread-striped shards
///                 (thread-id hash picks the stripe, as in
///                 modeldb::EstimateCache), so concurrent search workers
///                 almost never touch the same lock; `snapshot()` merges
///                 the shards with `util::RunningStats::merge`.
///
/// Metric objects are created by and owned by a `MetricsRegistry`;
/// references returned by the registry stay valid for the registry's
/// lifetime, so instrumented components resolve their handles once and
/// pay only the update cost afterwards. Everything here is thread-safe.
/// None of it reads any clock — metrics are deterministic given a
/// deterministic workload (CONTRIBUTING.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/stats.hpp"

namespace aeva::obs {

/// Monotonically increasing tally. Updates are relaxed atomics: counts
/// never order anything, they are only read at snapshot time.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a cache hit rate or a worker count).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Welford summary statistics.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bucket bounds; a value lands
  /// in the first bucket whose bound is >= value, or in the implicit
  /// overflow bucket past the last bound (so there are bounds.size() + 1
  /// buckets). Throws std::invalid_argument on unsorted bounds.
  explicit Histogram(std::vector<double> bounds, std::size_t shard_count = 8);

  /// Records one observation (thread-safe, stripe-local lock).
  void record(double value) noexcept;

  /// Merged view of all shards.
  struct Snapshot {
    util::RunningStats stats;
    std::vector<double> bounds;           ///< upper bounds, ascending
    std::vector<std::uint64_t> buckets;   ///< bounds.size() + 1 counts
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  struct Shard {
    mutable util::Mutex mutex;
    util::RunningStats stats AEVA_GUARDED_BY(mutex);
    std::vector<std::uint64_t> buckets AEVA_GUARDED_BY(mutex);
  };

  std::vector<double> bounds_;
  /// unique_ptr keeps shard addresses stable (Shard holds a mutex).
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Named metric store. Lookup by name takes a registry-wide lock and is
/// meant for handle resolution at setup time, not for hot paths; the
/// returned references are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter.
  [[nodiscard]] Counter& counter(const std::string& name)
      AEVA_EXCLUDES(mutex_);

  /// Finds or creates the named gauge.
  [[nodiscard]] Gauge& gauge(const std::string& name) AEVA_EXCLUDES(mutex_);

  /// Finds or creates the named histogram. On first creation the bucket
  /// bounds are taken from `bounds`; later calls return the existing
  /// histogram regardless of the bounds passed.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds)
      AEVA_EXCLUDES(mutex_);

  /// Point-in-time copy of every metric, name-sorted (deterministic).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const AEVA_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;  ///< guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_
      AEVA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      AEVA_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      AEVA_GUARDED_BY(mutex_);
};

}  // namespace aeva::obs
