#pragma once

/// \file session.hpp
/// The observability session: one `MetricsRegistry` plus one `TraceLog`
/// behind a single handle that instrumented subsystems share
/// (docs/OBSERVABILITY.md).
///
/// The enable/disable contract:
///
///  * Configs (`core::ProactiveConfig::obs`, `datacenter::CloudConfig::obs`)
///    carry a `std::shared_ptr<Session>`. **Null means disabled** — there
///    is no half-enabled state, no runtime flag to re-check, and the
///    instrumentation sites compile down to a pointer test (the
///    `AEVA_OBS_IF` macro / pre-resolved null handles).
///  * With a null session, instrumented code takes no locks, allocates
///    nothing, reads no clocks, and produces bit-identical outputs to the
///    uninstrumented code (regression-tested; `bench/obs_overhead`
///    measures the residual cost of the pointer tests).
///  * `Session::create(config)` returns null when `config.enabled` is
///    false, so call sites plumb one ObsConfig and never branch.

#include <cstddef>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"

namespace aeva::obs {

/// User-facing observability knob, plumbed through the bench/CLI
/// harnesses. Paths are optional: an enabled session with no paths still
/// collects (tests and in-process consumers read the registry directly);
/// `export_files()` writes whichever paths are set.
struct ObsConfig {
  bool enabled = false;
  /// JSON Lines structured event dump (one TraceEvent per line).
  std::string trace_jsonl_path;
  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto).
  std::string chrome_trace_path;
  /// Metrics snapshot JSON (counters / gauges / histograms).
  std::string metrics_json_path;
  /// Trace-log capacity; past it events are dropped and counted.
  std::size_t max_trace_events = 1 << 20;
};

/// Shared metrics + tracing context of one run.
class Session {
 public:
  explicit Session(ObsConfig config);

  /// Null when `config.enabled` is false — the universal disabled state.
  [[nodiscard]] static std::shared_ptr<Session> create(
      const ObsConfig& config);

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] TraceLog& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceLog& trace() const noexcept { return trace_; }
  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }

  /// Writes every configured export path (see obs/export.hpp); paths left
  /// empty are skipped. Throws std::runtime_error when a file cannot be
  /// written.
  void export_files() const;

 private:
  ObsConfig config_;
  MetricsRegistry metrics_;
  TraceLog trace_;
};

}  // namespace aeva::obs

/// Runs `...` only when `obs` (any pointer-like to obs::Session) is
/// non-null. The disabled path is exactly one pointer test — keep hot-path
/// instrumentation behind this (or behind pre-resolved null handles).
#define AEVA_OBS_IF(obs, ...)  \
  do {                         \
    if ((obs) != nullptr) {    \
      __VA_ARGS__;             \
    }                          \
  } while (false)
