#include "obs/session.hpp"

#include "obs/export.hpp"

namespace aeva::obs {

Session::Session(ObsConfig config)
    : config_(std::move(config)), trace_(config_.max_trace_events) {}

std::shared_ptr<Session> Session::create(const ObsConfig& config) {
  if (!config.enabled) {
    return nullptr;
  }
  return std::make_shared<Session>(config);
}

void Session::export_files() const {
  if (!config_.trace_jsonl_path.empty()) {
    write_text_file(config_.trace_jsonl_path, to_jsonl(trace_));
  }
  if (!config_.chrome_trace_path.empty()) {
    write_text_file(config_.chrome_trace_path, to_chrome_trace(trace_));
  }
  if (!config_.metrics_json_path.empty()) {
    write_text_file(config_.metrics_json_path,
                    metrics_to_json(metrics_.snapshot()));
  }
}

}  // namespace aeva::obs
