#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <thread>

#include "util/error.hpp"

namespace aeva::obs {

Histogram::Histogram(std::vector<double> bounds, std::size_t shard_count)
    : bounds_(std::move(bounds)) {
  AEVA_REQUIRE(shard_count >= 1, "histogram needs at least one shard");
  AEVA_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->buckets.assign(bounds_.size() + 1, 0);
    shards_.push_back(std::move(shard));
  }
}

void Histogram::record(double value) noexcept {
  // Thread-id hash picks the stripe: the same thread always lands on the
  // same shard, so writer threads contend only with the (rare) snapshot.
  const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  Shard& shard = *shards_[stripe];
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  const util::MutexGuard lock(shard.mutex);
  shard.stats.add(value);
  ++shard.buckets[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.bounds = bounds_;
  out.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    const util::MutexGuard lock(shard->mutex);
    out.stats.merge(shard->stats);
    for (std::size_t b = 0; b < out.buckets.size(); ++b) {
      out.buckets[b] += shard->buckets[b];
    }
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const util::MutexGuard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const util::MutexGuard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const util::MutexGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const util::MutexGuard lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

}  // namespace aeva::obs
