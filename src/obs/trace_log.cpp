#include "obs/trace_log.hpp"

#include <chrono>

#include "util/error.hpp"

namespace aeva::obs {

std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceLog::TraceLog(std::size_t max_events) : max_events_(max_events) {
  AEVA_REQUIRE(max_events_ >= 1, "trace log needs room for at least 1 event");
}

void TraceLog::record(TraceEvent event) {
  const util::MutexGuard lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceLog::events() const {
  const util::MutexGuard lock(mutex_);
  return events_;
}

std::size_t TraceLog::size() const {
  const util::MutexGuard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceLog::dropped() const {
  const util::MutexGuard lock(mutex_);
  return dropped_;
}

Span::Span(TraceLog* log, std::string name, std::string cat,
           double sim_begin_s)
    : log_(log) {
  if (log_ == nullptr) {
    return;
  }
  event_.name = std::move(name);
  event_.cat = std::move(cat);
  event_.phase = 'X';
  event_.ts_sim_s = sim_begin_s;
  real_begin_ns_ = monotonic_now_ns();
}

Span::~Span() {
  if (log_ != nullptr && !closed_) {
    close(event_.ts_sim_s);
  }
}

void Span::arg(std::string key, std::string value) {
  if (log_ == nullptr || closed_) {
    return;
  }
  event_.args.emplace_back(std::move(key), std::move(value));
}

void Span::close(double sim_end_s) {
  if (log_ == nullptr || closed_) {
    return;
  }
  closed_ = true;
  event_.dur_sim_s = sim_end_s - event_.ts_sim_s;
  event_.real_us =
      static_cast<double>(monotonic_now_ns() - real_begin_ns_) / 1000.0;
  log_->record(std::move(event_));
}

}  // namespace aeva::obs
