#pragma once

/// \file export.hpp
/// Serializers for the observability layer (docs/OBSERVABILITY.md):
///
///  * `to_jsonl`        — one JSON object per TraceEvent per line; the
///                        machine-readable dump validated in CI against
///                        tools/obs/trace_schema.json.
///  * `to_chrome_trace` — Chrome trace-event JSON (`{"traceEvents": [...]}`)
///                        with simulated time on the timeline axis; open in
///                        chrome://tracing or https://ui.perfetto.dev.
///  * `metrics_to_json` — counters / gauges / histograms snapshot.
///  * `metrics_summary_table` — fixed-width text table
///                        (util::TablePrinter) of every counter and gauge,
///                        for terminal consumption. Deterministic: contains
///                        no wall-clock-derived values.
///
/// Determinism contract: every serialization is byte-deterministic except
/// for the `real_us` field of trace events, which carries wall-clock
/// durations and is explicitly tagged nondeterministic — golden outputs
/// must use the summary table or strip `real_us` (see
/// docs/OBSERVABILITY.md).

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"

namespace aeva::obs {

/// JSON Lines dump of the whole log, in sequence order. The final line is
/// a `{"meta": ...}` record with the event/drop totals.
[[nodiscard]] std::string to_jsonl(const TraceLog& log);

/// Chrome trace-event format; `ts`/`dur` are simulated microseconds, the
/// wall-clock duration rides along as `args.real_us`.
[[nodiscard]] std::string to_chrome_trace(const TraceLog& log);

/// Metrics snapshot as one JSON object.
[[nodiscard]] std::string metrics_to_json(
    const MetricsRegistry::Snapshot& snapshot);

/// Plain-text summary: counters and gauges as a two-column table, one
/// histogram line each (count/mean/min/max).
[[nodiscard]] std::string metrics_summary_table(
    const MetricsRegistry::Snapshot& snapshot);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Writes `content` to `path`, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace aeva::obs
