#include "obs/export.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"

namespace aeva::obs {

namespace {

/// Shortest round-trip decimal form of a double (JSON-safe: no inf/nan —
/// callers only serialize finite values; non-finite turns into null).
std::string json_number(double value) {
  if (!(value == value) || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return "null";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void append_event_json(std::ostringstream& out, const TraceEvent& event) {
  out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
      << json_escape(event.cat) << "\",\"ph\":\"" << event.phase
      << "\",\"seq\":" << event.seq
      << ",\"ts_sim_s\":" << json_number(event.ts_sim_s)
      << ",\"dur_sim_s\":" << json_number(event.dur_sim_s)
      << ",\"real_us\":" << json_number(event.real_us)
      << ",\"nondeterministic\":[\"real_us\"]";
  if (!event.args.empty()) {
    out << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : event.args) {
      out << (first ? "" : ",") << "\"" << json_escape(key) << "\":\""
          << json_escape(value) << "\"";
      first = false;
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_jsonl(const TraceLog& log) {
  std::ostringstream out;
  const std::vector<TraceEvent> events = log.events();
  for (const TraceEvent& event : events) {
    append_event_json(out, event);
    out << "\n";
  }
  out << "{\"meta\":{\"events\":" << events.size()
      << ",\"dropped\":" << log.dropped() << "}}\n";
  return out.str();
}

std::string to_chrome_trace(const TraceLog& log) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : log.events()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
        << json_escape(event.cat) << "\",\"ph\":\"" << event.phase
        << "\",\"pid\":1,\"tid\":1"
        << ",\"ts\":" << json_number(event.ts_sim_s * 1e6);
    if (event.phase == 'X') {
      out << ",\"dur\":" << json_number(event.dur_sim_s * 1e6);
    }
    out << ",\"args\":{\"seq\":" << event.seq
        << ",\"real_us\":" << json_number(event.real_us);
    for (const auto& [key, value] : event.args) {
      out << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
          << "\"";
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

std::string metrics_to_json(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "" : ",") << "\"" << json_escape(name) << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "" : ",") << "\"" << json_escape(name)
        << "\":" << json_number(value);
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out << (first ? "" : ",") << "\"" << json_escape(name) << "\":{"
        << "\"count\":" << hist.stats.count();
    if (hist.stats.count() > 0) {
      out << ",\"mean\":" << json_number(hist.stats.mean())
          << ",\"stddev\":" << json_number(hist.stats.stddev())
          << ",\"min\":" << json_number(hist.stats.min())
          << ",\"max\":" << json_number(hist.stats.max());
    }
    out << ",\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      out << (i > 0 ? "," : "") << json_number(hist.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      out << (i > 0 ? "," : "") << hist.buckets[i];
    }
    out << "]}";
    first = false;
  }
  out << "}}\n";
  return out.str();
}

std::string metrics_summary_table(const MetricsRegistry::Snapshot& snapshot) {
  util::TablePrinter table({"metric", "kind", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    table.add_row({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    table.add_row({name, "gauge", util::format_fixed(value, 4)});
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string cell = "n=" + std::to_string(hist.stats.count());
    if (hist.stats.count() > 0) {
      cell += " mean=" + util::format_fixed(hist.stats.mean(), 3) +
              " min=" + util::format_fixed(hist.stats.min(), 3) +
              " max=" + util::format_fixed(hist.stats.max(), 3);
    }
    table.add_row({name, "histogram", cell});
  }
  return table.to_string();
}

void write_text_file(const std::string& path, const std::string& content) {
  // Crash-safe publish (temp + fsync + rename); throws a typed
  // util::FileWriteError naming the path on any failure, disk-full
  // included — a torn or silently-dropped export can no longer masquerade
  // as a successful run.
  util::write_file_atomic(path, content);
}

}  // namespace aeva::obs
