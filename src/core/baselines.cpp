#include "core/baselines.hpp"

#include <algorithm>

#include "testbed/server_config.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "workload/registry.hpp"

namespace aeva::core {

using workload::ClassCounts;
using workload::ProfileClass;

namespace {

/// Spread-quota mask shared by the baseline scans: true when placing one
/// more of the request's VMs on `server_id` would break the per-domain cap
/// (inert when the config is disabled or the server is unmapped).
bool spread_blocked(const SpreadConfig& spread,
                    const std::vector<int>& domain_used, int server_id) {
  if (!spread.enabled) {
    return false;
  }
  const int domain = spread.domain_of(server_id);
  return domain >= 0 && domain_used[static_cast<std::size_t>(domain)] >=
                            spread.max_vms_per_domain;
}

/// Records one placed VM against its server's failure domain.
void spread_note(const SpreadConfig& spread, std::vector<int>& domain_used,
                 int server_id) {
  if (!spread.enabled) {
    return;
  }
  const int domain = spread.domain_of(server_id);
  if (domain >= 0) {
    ++domain_used[static_cast<std::size_t>(domain)];
  }
}

}  // namespace

// --- SlotFitAllocator -------------------------------------------------------

SlotFitAllocator::SlotFitAllocator(Policy policy, int multiplex,
                                   int cpus_per_server)
    : policy_(policy), multiplex_(multiplex), cpus_per_server_(cpus_per_server) {
  AEVA_REQUIRE(multiplex >= 1, "multiplex factor must be >= 1");
  AEVA_REQUIRE(cpus_per_server >= 1, "servers need at least one CPU");
}

AllocationResult SlotFitAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }
  if (!spread_.feasible_width(vms.size())) {
    result.outcome = AllocationOutcome{AllocationPath::kRejected,
                                       RejectReason::kSpreadInfeasible};
    return result;
  }
  std::vector<int> free_slots;
  free_slots.reserve(servers.size());
  for (const ServerState& server : servers) {
    free_slots.push_back(server_capacity() - server.allocated.total());
  }
  std::vector<int> domain_used(
      spread_.enabled ? static_cast<std::size_t>(spread_.domain_count) : 0, 0);
  for (const VmRequest& vm : vms) {
    std::size_t chosen = servers.size();
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (free_slots[s] <= 0 ||
          spread_blocked(spread_, domain_used, servers[s].id)) {
        continue;
      }
      if (chosen == servers.size()) {
        chosen = s;
        continue;
      }
      const bool better = policy_ == Policy::kBestFit
                              ? free_slots[s] < free_slots[chosen]
                              : free_slots[s] > free_slots[chosen];
      if (better) {
        chosen = s;
      }
    }
    if (chosen == servers.size()) {
      result.placements.clear();  // all-or-nothing
      result.outcome = AllocationOutcome{
          AllocationPath::kRejected,
          servers.empty() ? RejectReason::kNoServers
                          : RejectReason::kNoFeasibleServer};
      return result;
    }
    result.placements.push_back(Placement{vm.id, servers[chosen].id});
    --free_slots[chosen];
    spread_note(spread_, domain_used, servers[chosen].id);
  }
  result.complete = true;
  return result;
}

std::string SlotFitAllocator::name() const {
  const std::string base = policy_ == Policy::kBestFit ? "BF" : "WF";
  return multiplex_ == 1 ? base : base + "-" + std::to_string(multiplex_);
}

// --- RandomFitAllocator -----------------------------------------------------

RandomFitAllocator::RandomFitAllocator(std::uint64_t seed, int multiplex,
                                       int cpus_per_server)
    : seed_(seed), multiplex_(multiplex), cpus_per_server_(cpus_per_server) {
  AEVA_REQUIRE(multiplex >= 1, "multiplex factor must be >= 1");
  AEVA_REQUIRE(cpus_per_server >= 1, "servers need at least one CPU");
}

AllocationResult RandomFitAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }
  if (!spread_.feasible_width(vms.size())) {
    result.outcome = AllocationOutcome{AllocationPath::kRejected,
                                       RejectReason::kSpreadInfeasible};
    return result;
  }
  // Derive a per-request stream so identical calls are reproducible while
  // distinct requests diverge.
  std::uint64_t mix = seed_;
  for (const VmRequest& vm : vms) {
    mix ^= util::splitmix64(mix) + static_cast<std::uint64_t>(vm.id);
  }
  util::Rng rng(mix);

  const int capacity = multiplex_ * cpus_per_server_;
  std::vector<int> free_slots;
  free_slots.reserve(servers.size());
  for (const ServerState& server : servers) {
    free_slots.push_back(capacity - server.allocated.total());
  }
  std::vector<int> domain_used(
      spread_.enabled ? static_cast<std::size_t>(spread_.domain_count) : 0, 0);
  for (const VmRequest& vm : vms) {
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (free_slots[s] > 0 &&
          !spread_blocked(spread_, domain_used, servers[s].id)) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty()) {
      result.placements.clear();
      result.outcome = AllocationOutcome{
          AllocationPath::kRejected,
          servers.empty() ? RejectReason::kNoServers
                          : RejectReason::kNoFeasibleServer};
      return result;
    }
    const std::size_t pick = candidates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
    result.placements.push_back(Placement{vm.id, servers[pick].id});
    --free_slots[pick];
    spread_note(spread_, domain_used, servers[pick].id);
  }
  result.complete = true;
  return result;
}

std::string RandomFitAllocator::name() const {
  return multiplex_ == 1 ? "RAND" : "RAND-" + std::to_string(multiplex_);
}

// --- VectorFitAllocator -----------------------------------------------------

VectorFitAllocator::VectorFitAllocator(
    std::array<DemandVector, workload::kProfileClassCount> demands,
    double overcommit)
    : demands_(demands), overcommit_(overcommit) {
  AEVA_REQUIRE(overcommit_ >= 1.0, "overcommit must be >= 1, got ",
               overcommit_);
  for (const DemandVector& d : demands_) {
    AEVA_REQUIRE(d.cpu >= 0.0 && d.mem >= 0.0 && d.disk >= 0.0 &&
                     d.net >= 0.0,
                 "negative demand component");
    AEVA_REQUIRE(d.cpu > 0.0 || d.mem > 0.0 || d.disk > 0.0 || d.net > 0.0,
                 "all-zero demand vector");
  }
}

VectorFitAllocator VectorFitAllocator::from_registry(double overcommit) {
  const testbed::ServerConfig server = testbed::testbed_server();
  std::array<DemandVector, workload::kProfileClassCount> demands{};
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const workload::AppSpec& app = workload::canonical_app(profile);
    const workload::Demand avg = app.average_demand();
    DemandVector& d = demands[static_cast<std::size_t>(profile)];
    d.cpu = avg.cpu_cores / server.cores;
    d.mem = app.mem_footprint_mb / server.guest_mem_mb();
    d.disk = avg.disk_mbps / server.disk_capacity_mbps();
    d.net = avg.net_mbps / server.net_capacity_mbps();
  }
  return VectorFitAllocator(demands, overcommit);
}

namespace {

DemandVector used_vector(
    const ClassCounts& counts,
    const std::array<DemandVector, workload::kProfileClassCount>& demands) {
  DemandVector used;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const DemandVector& d = demands[static_cast<std::size_t>(profile)];
    const double n = counts.of(profile);
    used.cpu += n * d.cpu;
    used.mem += n * d.mem;
    used.disk += n * d.disk;
    used.net += n * d.net;
  }
  return used;
}

}  // namespace

AllocationResult VectorFitAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }
  if (!spread_.feasible_width(vms.size())) {
    result.outcome = AllocationOutcome{AllocationPath::kRejected,
                                       RejectReason::kSpreadInfeasible};
    return result;
  }
  std::vector<DemandVector> used;
  used.reserve(servers.size());
  for (const ServerState& server : servers) {
    used.push_back(used_vector(server.allocated, demands_));
  }
  std::vector<int> domain_used(
      spread_.enabled ? static_cast<std::size_t>(spread_.domain_count) : 0, 0);
  for (const VmRequest& vm : vms) {
    const DemandVector& d = demands_[static_cast<std::size_t>(vm.profile)];
    std::size_t chosen = servers.size();
    double best_dot = -1.0;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (spread_blocked(spread_, domain_used, servers[s].id)) {
        continue;
      }
      const DemandVector& u = used[s];
      const bool fits = u.cpu + d.cpu <= overcommit_ &&
                        u.mem + d.mem <= overcommit_ &&
                        u.disk + d.disk <= overcommit_ &&
                        u.net + d.net <= overcommit_;
      if (!fits) {
        continue;
      }
      // Dot-product heuristic: align the VM with the server whose residual
      // capacity is largest along the VM's heavy dimensions.
      const double dot = d.cpu * (overcommit_ - u.cpu) +
                         d.mem * (overcommit_ - u.mem) +
                         d.disk * (overcommit_ - u.disk) +
                         d.net * (overcommit_ - u.net);
      if (dot > best_dot + 1e-15) {
        best_dot = dot;
        chosen = s;
      }
    }
    if (chosen == servers.size()) {
      result.placements.clear();
      result.outcome = AllocationOutcome{
          AllocationPath::kRejected,
          servers.empty() ? RejectReason::kNoServers
                          : RejectReason::kNoFeasibleServer};
      return result;
    }
    result.placements.push_back(Placement{vm.id, servers[chosen].id});
    used[chosen].cpu += d.cpu;
    used[chosen].mem += d.mem;
    used[chosen].disk += d.disk;
    used[chosen].net += d.net;
    spread_note(spread_, domain_used, servers[chosen].id);
  }
  result.complete = true;
  return result;
}

std::string VectorFitAllocator::name() const {
  return overcommit_ == 1.0
             ? "VEC"
             : "VEC-" + util::format_fixed(overcommit_, 1);
}

}  // namespace aeva::core
