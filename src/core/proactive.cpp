#include "core/proactive.hpp"

#include <algorithm>
#include <optional>

#include "partition/typed_partition.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::core {

using workload::ClassCounts;
using workload::ProfileClass;

ProactiveAllocator::ProactiveAllocator(const modeldb::ModelDatabase& db,
                                       ProactiveConfig config)
    : ProactiveAllocator(std::vector<const modeldb::ModelDatabase*>{&db},
                         config) {}

ProactiveAllocator::ProactiveAllocator(
    std::vector<const modeldb::ModelDatabase*> dbs, ProactiveConfig config)
    : config_(config) {
  AEVA_REQUIRE(config_.alpha >= 0.0 && config_.alpha <= 1.0,
               "alpha must be in [0, 1], got ", config_.alpha);
  AEVA_REQUIRE(config_.max_partitions >= 1, "partition budget must be >= 1");
  AEVA_REQUIRE(!dbs.empty(), "need at least one model database");
  models_.reserve(dbs.size());
  for (const modeldb::ModelDatabase* db : dbs) {
    AEVA_REQUIRE(db != nullptr, "null model database");
    models_.emplace_back(*db, config.server_vm_cap);
  }
  if (config_.degrade_to_first_fit) {
    AEVA_REQUIRE(config_.fallback_multiplex >= 1,
                 "fallback multiplex factor must be >= 1, got ",
                 config_.fallback_multiplex);
    // Testbed servers have 4 CPUs regardless of hardware class.
    fallback_.emplace(config_.fallback_multiplex,
                      std::vector<int>(models_.size(), 4));
  }
}

const CostModel& ProactiveAllocator::cost_model(int hardware) const {
  AEVA_REQUIRE(hardware >= 0 &&
                   static_cast<std::size_t>(hardware) < models_.size(),
               "unknown hardware class ", hardware, " (have ",
               models_.size(), ")");
  return models_[static_cast<std::size_t>(hardware)];
}

namespace {

/// One placed block with its estimation context.
struct PlacedBlock {
  ClassCounts block;
  std::size_t server_index = 0;
  double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
  double marginal_energy_j = 0.0;
};

/// A fully evaluated candidate partition.
struct Candidate {
  std::vector<PlacedBlock> blocks;
  double est_time_s = 0.0;
  double est_energy_j = 0.0;
  double combined = 0.0;
  bool qos_ok = true;
};

}  // namespace

AllocationResult ProactiveAllocator::allocate(
    const std::vector<VmRequest>& vms,
    const std::vector<ServerState>& servers) const {
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }

  ClassCounts request;
  for (const VmRequest& vm : vms) {
    ++request.of(vm.profile);
  }
  const double n_vms = static_cast<double>(vms.size());
  // Normalization references always come from hardware class 0 so ranks
  // stay comparable across a heterogeneous fleet.
  const double time_ref = models_.front().time_reference_s(request);
  const double energy_ref = models_.front().energy_reference_j(request);
  const double alpha = config_.alpha;

  // Current allocations and their standalone energies (cached: the
  // marginal energy of the first block landing on a busy server needs it).
  std::vector<ClassCounts> base_alloc;
  std::vector<double> base_energy;
  base_alloc.reserve(servers.size());
  base_energy.reserve(servers.size());
  for (const ServerState& server : servers) {
    base_alloc.push_back(server.allocated);
    base_energy.push_back(
        cost_model(server.hardware).mix_energy_j(server.allocated));
  }

  // Deadlines per class, tightest first, used by the QoS check.
  std::vector<double> deadlines[workload::kProfileClassCount];
  for (const VmRequest& vm : vms) {
    deadlines[static_cast<int>(vm.profile)].push_back(vm.max_exec_time_s);
  }
  for (auto& list : deadlines) {
    std::sort(list.begin(), list.end());
  }

  // Evaluates one typed partition: greedy marginal-cost server choice per
  // block (ties → first server of the list, as in the paper), then the
  // aggregate α-weighted rank and the QoS feasibility check.
  const auto evaluate =
      [&](const partition::TypedPartition& blocks) -> std::optional<Candidate> {
    Candidate cand;
    std::vector<ClassCounts> alloc = base_alloc;
    std::vector<double> energy_before = base_energy;
    // A partition's blocks are per-server groups by definition: two blocks
    // sharing a server would be the coarser partition with those blocks
    // merged, which the enumeration visits separately. Keeping servers
    // distinct also keeps every block's estimate valid for the final mix.
    std::vector<bool> used(servers.size(), false);

    for (const ClassCounts& block : blocks) {
      // Prefer servers where the block's estimated times respect every
      // affected class's tightest deadline; fall back to QoS-violating
      // options only when no server passes (the candidate then fails the
      // final QoS check and can only be selected via the relaxed path).
      std::optional<std::size_t> best_server;
      bool best_qos_pass = false;
      double best_rank = 0.0;
      PlacedBlock best_placed;
      for (std::size_t s = 0; s < servers.size(); ++s) {
        if (used[s]) {
          continue;
        }
        const CostModel& model = cost_model(servers[s].hardware);
        const ClassCounts combined = alloc[s] + block;
        if (!model.feasible(combined)) {
          continue;
        }
        const modeldb::Record rec = model.estimate(combined);
        double time_contrib = 0.0;
        bool qos_pass = true;
        PlacedBlock placed;
        placed.block = block;
        placed.server_index = s;
        for (const ProfileClass profile : workload::kAllProfileClasses) {
          const int ci = static_cast<int>(profile);
          const double t =
              block.of(profile) > 0 ? rec.time_of(profile) : 0.0;
          placed.time_per_class[ci] = t;
          time_contrib += block.of(profile) * t;
          if (block.of(profile) > 0 && !deadlines[ci].empty() &&
              t > deadlines[ci].front()) {
            qos_pass = false;
          }
        }
        // Marginal energy over the server's existing commitment. Record
        // energies include the 125 W powered-on baseline, so placing on an
        // empty (off) server pays its full wake-up cost while co-locating
        // on a busy server pays only the increment — the consolidation
        // incentive of the energy goal.
        placed.marginal_energy_j = rec.energy_j - energy_before[s];
        const double energy_norm =
            placed.marginal_energy_j / (n_vms * energy_ref);
        const double time_norm = time_contrib / block.total() / time_ref;
        const double rank =
            config_.goal == ProactiveGoal::kEnergyDelayProduct
                ? std::max(energy_norm, 0.0) * time_norm
                : alpha * energy_norm + (1.0 - alpha) * time_norm;
        const bool better =
            !best_server.has_value() ||
            (qos_pass && !best_qos_pass) ||
            (qos_pass == best_qos_pass && rank < best_rank);
        if (better) {
          best_server = s;
          best_qos_pass = qos_pass;
          best_rank = rank;
          best_placed = placed;
        }
      }
      if (!best_server.has_value()) {
        return std::nullopt;  // no server can host this block
      }
      const std::size_t s = *best_server;
      alloc[s] = alloc[s] + block;
      used[s] = true;
      cand.blocks.push_back(best_placed);
    }

    double time_sum = 0.0;
    double energy_sum = 0.0;
    for (const PlacedBlock& placed : cand.blocks) {
      for (const ProfileClass profile : workload::kAllProfileClasses) {
        time_sum += placed.block.of(profile) *
                    placed.time_per_class[static_cast<int>(profile)];
      }
      energy_sum += placed.marginal_energy_j;
    }
    cand.est_time_s = time_sum / n_vms;
    cand.est_energy_j = energy_sum;
    const double total_energy_norm = energy_sum / (n_vms * energy_ref);
    const double total_time_norm = cand.est_time_s / time_ref;
    cand.combined =
        config_.goal == ProactiveGoal::kEnergyDelayProduct
            ? std::max(total_energy_norm, 0.0) * total_time_norm
            : alpha * total_energy_norm + (1.0 - alpha) * total_time_norm;

    // QoS: for each class, the k-th smallest estimated time must fit under
    // the k-th tightest deadline (optimal matching by exchange argument).
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      const int ci = static_cast<int>(profile);
      if (deadlines[ci].empty()) {
        continue;
      }
      std::vector<double> times;
      for (const PlacedBlock& placed : cand.blocks) {
        for (int k = 0; k < placed.block.of(profile); ++k) {
          times.push_back(placed.time_per_class[ci]);
        }
      }
      std::sort(times.begin(), times.end());
      for (std::size_t k = 0; k < times.size(); ++k) {
        if (times[k] > deadlines[ci][k]) {
          cand.qos_ok = false;
          break;
        }
      }
      if (!cand.qos_ok) {
        break;
      }
    }
    return cand;
  };

  // Brute-force search over typed partitions (quotient of Orlov's set
  // partition enumeration — see src/partition).
  std::optional<Candidate> best_any;
  std::optional<Candidate> best_qos;
  std::size_t examined = 0;
  const std::size_t visited = partition::for_each_typed_partition(
      request,
      [&](const ClassCounts& block) {
        // A block is worth enumerating if some hardware class can host it.
        for (const CostModel& model : models_) {
          if (model.feasible(block)) {
            return true;
          }
        }
        return false;
      },
      std::max<std::size_t>(servers.size(), 1),  // one server per block
      [&](const partition::TypedPartition& blocks) {
        ++examined;
        const std::optional<Candidate> cand = evaluate(blocks);
        if (cand.has_value()) {
          if (!best_any.has_value() || cand->combined < best_any->combined) {
            best_any = cand;
          }
          if (cand->qos_ok &&
              (!best_qos.has_value() || cand->combined < best_qos->combined)) {
            best_qos = cand;
          }
        }
        return examined < config_.max_partitions;
      });
  AEVA_INVARIANT(visited == examined,
                 "partition enumeration visited ", visited,
                 " but the scorer saw ", examined);
  result.partitions_examined = examined;

  std::optional<Candidate> chosen;
  if (!config_.enforce_qos) {
    chosen = best_any;
  } else if (best_qos.has_value()) {
    chosen = best_qos;
  } else if (config_.fallback_best_effort) {
    chosen = best_any;
  }
  if (!chosen.has_value()) {
    // Classify why the primary search failed before degrading: callers and
    // tests branch on the reason instead of inferring it from `complete`.
    RejectReason reason = RejectReason::kNoFeasibleServer;
    if (servers.empty()) {
      reason = RejectReason::kNoServers;  // all masked or failed
    } else if (!best_any.has_value() &&
               examined >= config_.max_partitions) {
      reason = RejectReason::kSearchBudgetExhausted;
    } else if (best_any.has_value()) {
      reason = RejectReason::kQosInfeasible;
    }
    if (fallback_.has_value()) {
      AllocationResult fb = fallback_->allocate(vms, servers);
      if (fb.complete) {
        fb.partitions_examined = examined;
        fb.satisfied_qos = false;  // the slot-based fallback is QoS-blind
        fb.outcome =
            AllocationOutcome{AllocationPath::kFallbackFirstFit, reason};
        return fb;
      }
    }
    // Nothing could place the request: it stays queued, with the reason on
    // record.
    result.outcome = AllocationOutcome{AllocationPath::kRejected, reason};
    return result;
  }
  result.satisfied_qos = chosen->qos_ok;
  result.score.est_time_s = chosen->est_time_s;
  result.score.est_energy_j = chosen->est_energy_j;
  result.score.combined = chosen->combined;

  // Map typed blocks back onto concrete VMs: per class, the VM with the
  // tightest deadline goes to the block slot with the smallest estimated
  // time (the matching the QoS check assumed).
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const int ci = static_cast<int>(profile);
    std::vector<const VmRequest*> class_vms;
    for (const VmRequest& vm : vms) {
      if (vm.profile == profile) {
        class_vms.push_back(&vm);
      }
    }
    if (class_vms.empty()) {
      continue;
    }
    std::stable_sort(class_vms.begin(), class_vms.end(),
                     [](const VmRequest* a, const VmRequest* b) {
                       return a->max_exec_time_s < b->max_exec_time_s;
                     });
    struct Slot {
      double time = 0.0;
      std::size_t server_index = 0;
    };
    std::vector<Slot> slots;
    for (const PlacedBlock& placed : chosen->blocks) {
      for (int k = 0; k < placed.block.of(profile); ++k) {
        slots.push_back(Slot{placed.time_per_class[ci], placed.server_index});
      }
    }
    AEVA_INVARIANT(slots.size() == class_vms.size(),
                "block slots do not cover the request for class ",
                workload::to_string(profile));
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& a, const Slot& b) {
                       return a.time < b.time;
                     });
    for (std::size_t k = 0; k < class_vms.size(); ++k) {
      result.placements.push_back(
          Placement{class_vms[k]->id, servers[slots[k].server_index].id});
    }
  }
  result.complete = true;
  return result;
}

std::string ProactiveAllocator::name() const {
  const std::string suffix = fallback_.has_value() ? "+FF" : "";
  if (config_.goal == ProactiveGoal::kEnergyDelayProduct) {
    return "PA-EDP" + suffix;
  }
  const double alpha = config_.alpha;
  if (alpha == 0.0) return "PA-0" + suffix;
  if (alpha == 1.0) return "PA-1" + suffix;
  std::string text = util::format_fixed(alpha, 2);
  while (!text.empty() && text.back() == '0') {
    text.pop_back();
  }
  if (!text.empty() && text.back() == '.') {
    text.pop_back();
  }
  return "PA-" + text + suffix;
}

}  // namespace aeva::core
