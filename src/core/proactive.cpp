#include "core/proactive.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "partition/typed_partition.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace aeva::core {

using workload::ClassCounts;
using workload::ProfileClass;

/// Lazily-created worker pool shared by const allocate() calls. Lives
/// behind a shared_ptr so allocator copies share one pool and the
/// allocator type stays movable.
struct ProactiveAllocator::SearchRuntime {
  util::Mutex mutex;
  /// Guarded creation; the returned pool reference is safe to use outside
  /// the lock because the pool is never destroyed or replaced once built
  /// (it lives until the SearchRuntime itself dies).
  std::unique_ptr<util::ThreadPool> pool AEVA_GUARDED_BY(mutex);

  util::ThreadPool& ensure_pool(std::size_t workers) AEVA_EXCLUDES(mutex) {
    const util::MutexGuard lock(mutex);
    if (pool == nullptr) {
      pool = std::make_unique<util::ThreadPool>(workers);
    }
    return *pool;
  }
};

ProactiveAllocator::ProactiveAllocator(const modeldb::ModelDatabase& db,
                                       ProactiveConfig config)
    : ProactiveAllocator(std::vector<const modeldb::ModelDatabase*>{&db},
                         config) {}

ProactiveAllocator::ProactiveAllocator(
    std::vector<const modeldb::ModelDatabase*> dbs, ProactiveConfig config)
    : config_(config), runtime_(std::make_shared<SearchRuntime>()) {
  AEVA_REQUIRE(config_.alpha >= 0.0 && config_.alpha <= 1.0,
               "alpha must be in [0, 1], got ", config_.alpha);
  AEVA_REQUIRE(config_.max_partitions >= 1, "partition budget must be >= 1");
  AEVA_REQUIRE(config_.search_threads >= 0,
               "search_threads must be >= 0 (0 = hardware), got ",
               config_.search_threads);
  AEVA_REQUIRE(config_.search_chunk >= 1, "search chunk must be >= 1");
  AEVA_REQUIRE(!dbs.empty(), "need at least one model database");
  models_.reserve(dbs.size());
  for (const modeldb::ModelDatabase* db : dbs) {
    AEVA_REQUIRE(db != nullptr, "null model database");
    models_.emplace_back(*db, config.server_vm_cap);
    if (config_.memoize_estimates && !config_.force_serial) {
      auto memo = std::make_shared<modeldb::EstimateCache>(*db);
      models_.back().set_estimate_cache(memo);
      memos_.push_back(std::move(memo));
    }
  }
  if (config_.spread.enabled) {
    AEVA_REQUIRE(config_.spread.max_vms_per_domain >= 1,
                 "spread cap must be >= 1, got ",
                 config_.spread.max_vms_per_domain);
    AEVA_REQUIRE(config_.spread.domain_count >= 1,
                 "spread needs at least one failure domain");
  }
  if (config_.degrade_to_first_fit) {
    AEVA_REQUIRE(config_.fallback_multiplex >= 1,
                 "fallback multiplex factor must be >= 1, got ",
                 config_.fallback_multiplex);
    // Testbed servers have 4 CPUs regardless of hardware class.
    fallback_.emplace(config_.fallback_multiplex,
                      std::vector<int>(models_.size(), 4));
    // The degradation leg enforces the same spread constraint, so no path
    // out of this allocator can over-concentrate a request.
    fallback_->set_spread(config_.spread);
  }
  if (config_.obs != nullptr) {
    // Resolve every metric handle once; allocate() then guards on one
    // pointer and pays no name lookups (docs/OBSERVABILITY.md).
    obs::MetricsRegistry& m = config_.obs->metrics();
    obs_.calls = &m.counter("pa.allocate.calls");
    obs_.candidates = &m.counter("pa.search.candidates");
    obs_.evaluated = &m.counter("pa.search.evaluated");
    obs_.pruned_bound = &m.counter("pa.search.pruned_bound");
    obs_.pruned_infeasible = &m.counter("pa.search.pruned_infeasible");
    obs_.placed_primary = &m.counter("pa.alloc.primary");
    obs_.placed_fallback = &m.counter("pa.alloc.fallback");
    obs_.rejected = &m.counter("pa.alloc.rejected");
    obs_.budget_truncated = &m.counter("pa.search.budget_truncated");
    obs_.candidates_per_call = &m.histogram(
        "pa.search.candidates_per_call",
        {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0});
    obs_.chunk_evaluated = &m.histogram(
        "pa.search.chunk_evaluated", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
    obs_.workers = &m.gauge("pa.search.workers");
    obs_.memo_hits = &m.gauge("pa.memo.hits");
    obs_.memo_misses = &m.gauge("pa.memo.misses");
    obs_.memo_hit_rate = &m.gauge("pa.memo.hit_rate");
    obs_.memo_entries = &m.gauge("pa.memo.entries");
  }
}

const CostModel& ProactiveAllocator::cost_model(int hardware) const {
  AEVA_REQUIRE(hardware >= 0 &&
                   static_cast<std::size_t>(hardware) < models_.size(),
               "unknown hardware class ", hardware, " (have ",
               models_.size(), ")");
  return models_[static_cast<std::size_t>(hardware)];
}

modeldb::EstimateCache::Stats ProactiveAllocator::memo_stats() const {
  modeldb::EstimateCache::Stats total;
  for (const auto& memo : memos_) {
    const modeldb::EstimateCache::Stats s = memo->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
  }
  return total;
}

std::size_t ProactiveAllocator::rewarm(
    std::span<const ServerState> servers) const {
  if (memos_.empty()) {
    return 0;  // memoization off (or force_serial): nothing to warm
  }
  std::size_t warmed = 0;
  for (const ServerState& server : servers) {
    if (server.allocated.total() == 0 || server.hardware < 0) {
      continue;
    }
    const auto hw = static_cast<std::size_t>(server.hardware);
    if (hw >= memos_.size()) {
      continue;
    }
    (void)memos_[hw]->estimate(server.allocated);
    ++warmed;
  }
  return warmed;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One placed block with its estimation context.
struct PlacedBlock {
  ClassCounts block;
  std::size_t server_index = 0;
  double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
  double marginal_energy_j = 0.0;
};

/// A fully evaluated candidate partition.
struct Candidate {
  std::vector<PlacedBlock> blocks;
  double est_time_s = 0.0;
  double est_energy_j = 0.0;
  double combined = 0.0;
  bool qos_ok = true;
};

/// Scalar outcome of one evaluation; the placement detail stays in the
/// scratch buffer and is copied out only when the candidate improves on
/// the incumbent — most candidates never allocate.
struct EvalOutcome {
  double est_time_s = 0.0;
  double est_energy_j = 0.0;
  double combined = 0.0;
  bool qos_ok = true;
};

/// Per-worker reusable buffers: one instance per serial loop or pool
/// chunk, so candidate evaluation performs no steady-state heap work.
struct EvalScratch {
  std::vector<char> used;
  std::vector<PlacedBlock> blocks;
  std::vector<double> times;        ///< QoS sort buffer
  std::vector<int> domain_used;     ///< request VMs per failure domain
};

/// Per-evaluator candidate-outcome tallies, flushed into the observability
/// registry after the search (stack counters on the hot path; the flush is
/// guarded, so a disabled session costs nothing beyond the increments).
/// Tallying never feeds back into the search — results are unchanged.
struct SearchTallies {
  std::uint64_t evaluated = 0;         ///< reached finalize()
  std::uint64_t pruned_bound = 0;      ///< abandoned by branch-and-bound
  std::uint64_t pruned_infeasible = 0; ///< some block had no host

  void merge(const SearchTallies& other) noexcept {
    evaluated += other.evaluated;
    pruned_bound += other.pruned_bound;
    pruned_infeasible += other.pruned_infeasible;
  }
};

/// Lock-free running minimum (monotonically decreasing, so a stale read is
/// always an over-estimate — pruning against it stays sound).
void atomic_fetch_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Read-only evaluation context of one allocate() call, shared by every
/// search worker.
struct SearchContext {
  const ProactiveConfig& config;
  const std::vector<CostModel>& models;
  std::span<const ServerState> servers;
  std::vector<ClassCounts> base_alloc;
  std::vector<double> base_energy;
  /// Deadlines per class, tightest first, used by the QoS check.
  std::vector<double> deadlines[workload::kProfileClassCount];
  double n_vms = 0.0;
  double time_ref = 0.0;
  double energy_ref = 0.0;
  /// Branch-and-bound is armed only when the per-block partial sum is a
  /// sound lower bound of the final rank (docs/PERFORMANCE.md): the
  /// α-weighted goal's rank is a sum of per-block terms whose time part is
  /// always ≥ 0 and whose energy part is ≥ 0 exactly when every database
  /// is energy-monotone. The EDP goal is a product of totals — not
  /// separable — so it never prunes.
  bool prune_enabled = false;
  /// Per-job failure-domain spread constraint; null when disabled, so the
  /// hot paths guard on one pointer and the spread-free search stays
  /// bit-identical to the pre-spread model (docs/RESILIENCE.md).
  const SpreadConfig* spread = nullptr;
  /// Servers grouped by identical (hardware, base allocation, domain)
  /// state (domain joins the key only when spread is armed) —
  /// members of a group yield bitwise-identical placed_on results for any
  /// block, so the optimized paths estimate once per group and resolve the
  /// winner to its first unused member (the same tie the plain index-order
  /// scan keeps). Member lists are ascending; built only for the
  /// optimized paths (empty under force_serial).
  std::vector<std::vector<std::size_t>> groups;

  SearchContext(const ProactiveConfig& config_in,
                const std::vector<CostModel>& models_in,
                std::span<const ServerState> servers_in)
      : config(config_in), models(models_in), servers(servers_in) {}

  /// Failure domain of a server slot (only called with `spread` armed);
  /// -1 = unmapped, treated as unconstrained.
  [[nodiscard]] int domain_of(std::size_t server) const {
    return spread->domain_of(servers[server].id);
  }

  /// Marginal blast penalty of landing a `block_total`-VM block in
  /// `domain` given the request's VMs already there: blast_penalty ×
  /// ((n_d + b)² − n_d²) / n². The marginals telescope to the finalize()
  /// Herfindahl term, so steering the greedy server choice by them keeps
  /// the per-server ordering consistent with the candidate score. Only
  /// called with `spread` armed; an unmapped server is its own singleton
  /// domain (n_d = 0 — a server hosts at most one block per candidate).
  [[nodiscard]] double blast_marginal(
      int domain, int block_total,
      const std::vector<int>& domain_used) const {
    if (spread->blast_penalty <= 0.0) {
      return 0.0;
    }
    const double prior =
        domain >= 0
            ? static_cast<double>(domain_used[static_cast<std::size_t>(domain)])
            : 0.0;
    const double b = static_cast<double>(block_total);
    return spread->blast_penalty * (2.0 * prior * b + b * b) /
           (n_vms * n_vms);
  }

  [[nodiscard]] const CostModel& model_of(std::size_t server) const {
    const int hardware = servers[server].hardware;
    AEVA_REQUIRE(hardware >= 0 &&
                     static_cast<std::size_t>(hardware) < models.size(),
                 "unknown hardware class ", hardware, " (have ",
                 models.size(), ")");
    return models[static_cast<std::size_t>(hardware)];
  }

  /// Estimation of `block` landing on server `s`: the per-class times, the
  /// marginal energy, the block's summed time and its per-VM QoS pass.
  /// Returns nullopt when the combined mix is infeasible there. Both
  /// place_block and the branch-and-bound block minima build PlacedBlocks
  /// through this one helper, so their doubles are bitwise comparable.
  [[nodiscard]] std::optional<PlacedBlock> placed_on(const ClassCounts& block,
                                                     std::size_t s,
                                                     double& time_contrib,
                                                     bool& qos_pass) const;

  /// The per-VM rank place_block orders servers by (energy vs normalized
  /// mean block time). One definition shared by the plain scan and the
  /// grouped fast path so both compare the same doubles.
  [[nodiscard]] double selection_rank(const PlacedBlock& placed,
                                      double time_contrib) const;

  /// Greedy marginal-cost server choice for one block given the servers
  /// already taken (ties → first server of the list, as in the paper) and
  /// the request's running per-domain VM tally (spread constraint; empty
  /// and ignored when `spread` is null). Pure: depends only on `block`,
  /// `used` and `domain_used`, so the placement of a block sequence is a
  /// function of its prefix. Returns nullopt when no unused server can
  /// host the block.
  [[nodiscard]] std::optional<PlacedBlock> place_block(
      const ClassCounts& block, const std::vector<char>& used,
      const std::vector<int>& domain_used) const;

  /// The chosen block's exact contribution to the final α-rank (the rank
  /// is the sum of these over all blocks, so partial sums are lower bounds
  /// whenever every term is ≥ 0).
  [[nodiscard]] double rank_contribution(const PlacedBlock& placed) const;

  /// Aggregate rank and QoS feasibility of a fully placed candidate.
  [[nodiscard]] EvalOutcome finalize(const std::vector<PlacedBlock>& blocks,
                                     std::vector<double>& times) const;

  /// Evaluates one typed partition: greedy placement per block, then the
  /// aggregate rank and the QoS feasibility check. Returns nullopt when
  /// some block fits nowhere, or — with pruning armed — as soon as the
  /// partial lower bound exceeds `prune_above` (only candidates strictly
  /// worse than an already-complete one are ever abandoned, so the search
  /// result is unchanged). On success `scratch.blocks` holds the placed
  /// blocks until the next call.
  [[nodiscard]] std::optional<EvalOutcome> evaluate(
      const partition::TypedPartition& blocks, double prune_above,
      EvalScratch& scratch, SearchTallies& tally) const;
};

std::optional<PlacedBlock> SearchContext::placed_on(const ClassCounts& block,
                                                    std::size_t s,
                                                    double& time_contrib,
                                                    bool& qos_pass) const {
  const CostModel& model = model_of(s);
  const ClassCounts combined = base_alloc[s] + block;
  if (!model.feasible(combined)) {
    return std::nullopt;
  }
  const modeldb::Record rec = model.estimate(combined);
  time_contrib = 0.0;
  qos_pass = true;
  PlacedBlock placed;
  placed.block = block;
  placed.server_index = s;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const auto ci = static_cast<std::size_t>(profile);
    AEVA_INVARIANT(ci < workload::kProfileClassCount,
                   "profile class out of range");
    const double t = block.of(profile) > 0 ? rec.time_of(profile) : 0.0;
    placed.time_per_class[ci] = t;
    time_contrib += block.of(profile) * t;
    if (block.of(profile) > 0 && !deadlines[ci].empty() &&
        t > deadlines[ci].front()) {
      qos_pass = false;
    }
  }
  // Marginal energy over the server's existing commitment. Record
  // energies include the 125 W powered-on baseline, so placing on an
  // empty (off) server pays its full wake-up cost while co-locating
  // on a busy server pays only the increment — the consolidation
  // incentive of the energy goal.
  placed.marginal_energy_j = rec.energy_j - base_energy[s];
  return placed;
}

double SearchContext::selection_rank(const PlacedBlock& placed,
                                     double time_contrib) const {
  const double energy_norm =
      placed.marginal_energy_j / (n_vms * energy_ref);
  const double time_norm =
      time_contrib / placed.block.total() / time_ref;
  return config.goal == ProactiveGoal::kEnergyDelayProduct
             ? std::max(energy_norm, 0.0) * time_norm
             : config.alpha * energy_norm + (1.0 - config.alpha) * time_norm;
}

std::optional<PlacedBlock> SearchContext::place_block(
    const ClassCounts& block, const std::vector<char>& used,
    const std::vector<int>& domain_used) const {
  // Prefer servers where the block's estimated times respect every
  // affected class's tightest deadline; fall back to QoS-violating
  // options only when no server passes (the candidate then fails the
  // final QoS check and can only be selected via the relaxed path).
  std::optional<std::size_t> best_server;
  bool best_qos_pass = false;
  double best_rank = 0.0;
  PlacedBlock best_placed;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (used[s] != 0) {
      continue;
    }
    int domain = -1;
    if (spread != nullptr) {
      domain = domain_of(s);
      if (domain >= 0 &&
          domain_used[static_cast<std::size_t>(domain)] + block.total() >
              spread->max_vms_per_domain) {
        continue;  // the block would push the request past its domain cap
      }
    }
    double time_contrib = 0.0;
    bool qos_pass = true;
    const std::optional<PlacedBlock> placed =
        placed_on(block, s, time_contrib, qos_pass);
    if (!placed.has_value()) {
      continue;
    }
    const double rank =
        selection_rank(*placed, time_contrib) +
        (spread != nullptr
             ? blast_marginal(domain, block.total(), domain_used)
             : 0.0);
    const bool better =
        !best_server.has_value() ||
        (qos_pass && !best_qos_pass) ||
        (qos_pass == best_qos_pass && rank < best_rank);
    if (better) {
      best_server = s;
      best_qos_pass = qos_pass;
      best_rank = rank;
      best_placed = *placed;
    }
  }
  if (!best_server.has_value()) {
    return std::nullopt;  // no server can host this block
  }
  return best_placed;
}

double SearchContext::rank_contribution(const PlacedBlock& placed) const {
  double block_time = 0.0;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    block_time += placed.block.of(profile) *
                  placed.time_per_class[static_cast<int>(profile)];
  }
  return config.alpha * placed.marginal_energy_j / (n_vms * energy_ref) +
         (1.0 - config.alpha) * block_time / (n_vms * time_ref);
}

EvalOutcome SearchContext::finalize(const std::vector<PlacedBlock>& blocks,
                                    std::vector<double>& times) const {
  EvalOutcome out;
  double time_sum = 0.0;
  double energy_sum = 0.0;
  for (const PlacedBlock& placed : blocks) {
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      time_sum += placed.block.of(profile) *
                  placed.time_per_class[static_cast<int>(profile)];
    }
    energy_sum += placed.marginal_energy_j;
  }
  out.est_time_s = time_sum / n_vms;
  out.est_energy_j = energy_sum;
  const double total_energy_norm = energy_sum / (n_vms * energy_ref);
  const double total_time_norm = out.est_time_s / time_ref;
  out.combined =
      config.goal == ProactiveGoal::kEnergyDelayProduct
          ? std::max(total_energy_norm, 0.0) * total_time_norm
          : config.alpha * total_energy_norm +
                (1.0 - config.alpha) * total_time_norm;

  if (spread != nullptr && spread->blast_penalty > 0.0) {
    // Expected blast-radius fraction Σ_d (n_d / n)² of the candidate (the
    // Herfindahl concentration of types.hpp SpreadConfig): a first-
    // occurrence O(b²) scan over the placed blocks — no allocation, and
    // the penalty is ≥ 0, so the branch-and-bound partial sums stay lower
    // bounds of the final rank. An unmapped server (domain -1) counts as
    // its own singleton domain.
    double herfindahl = 0.0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const int di = domain_of(blocks[i].server_index);
      bool counted_earlier = false;
      double in_domain = 0.0;
      for (std::size_t j = 0; j < blocks.size(); ++j) {
        const bool same_domain =
            di >= 0 ? domain_of(blocks[j].server_index) == di : i == j;
        if (!same_domain) {
          continue;
        }
        if (j < i) {
          counted_earlier = true;
          break;
        }
        in_domain += blocks[j].block.total();
      }
      if (!counted_earlier) {
        const double fraction = in_domain / n_vms;
        herfindahl += fraction * fraction;
      }
    }
    out.combined += spread->blast_penalty * herfindahl;
  }

  // QoS: for each class, the k-th smallest estimated time must fit under
  // the k-th tightest deadline (optimal matching by exchange argument).
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const int ci = static_cast<int>(profile);
    if (deadlines[ci].empty()) {
      continue;
    }
    times.clear();
    for (const PlacedBlock& placed : blocks) {
      for (int k = 0; k < placed.block.of(profile); ++k) {
        times.push_back(placed.time_per_class[ci]);
      }
    }
    std::sort(times.begin(), times.end());
    for (std::size_t k = 0; k < times.size(); ++k) {
      if (times[k] > deadlines[ci][k]) {
        out.qos_ok = false;
        break;
      }
    }
    if (!out.qos_ok) {
      break;
    }
  }
  return out;
}

std::optional<EvalOutcome> SearchContext::evaluate(
    const partition::TypedPartition& blocks, double prune_above,
    EvalScratch& scratch, SearchTallies& tally) const {
  // A partition's blocks are per-server groups by definition: two blocks
  // sharing a server would be the coarser partition with those blocks
  // merged, which the enumeration visits separately. Keeping servers
  // distinct also keeps every block's estimate valid for the final mix —
  // and means a used server is never revisited, so each server's
  // allocation and standalone energy stay at their base values for the
  // whole evaluation (read straight from the context, no copies).
  scratch.used.assign(servers.size(), 0);
  scratch.blocks.clear();
  if (spread != nullptr) {
    scratch.domain_used.assign(
        static_cast<std::size_t>(spread->domain_count), 0);
  }
  double bound = 0.0;  // partial lower bound on the final rank

  for (const ClassCounts& block : blocks) {
    std::optional<PlacedBlock> placed =
        place_block(block, scratch.used, scratch.domain_used);
    if (!placed.has_value()) {
      ++tally.pruned_infeasible;
      return std::nullopt;  // no server can host this block
    }
    scratch.used[placed->server_index] = 1;
    if (spread != nullptr) {
      const int domain = domain_of(placed->server_index);
      if (domain >= 0) {
        scratch.domain_used[static_cast<std::size_t>(domain)] +=
            block.total();
      }
    }
    scratch.blocks.push_back(*placed);

    if (prune_enabled) {
      // Remaining blocks can only add ≥ 0, so the partial sum of exact
      // contributions is a lower bound on the final rank.
      bound += rank_contribution(scratch.blocks.back());
      if (bound > prune_above) {
        ++tally.pruned_bound;
        return std::nullopt;  // cannot beat the best complete candidate
      }
    }
  }
  ++tally.evaluated;
  return finalize(scratch.blocks, scratch.times);
}

/// Prefix-incremental evaluation for the optimized search paths. The
/// enumeration emits candidates in canonical lex order, so consecutive
/// candidates share long block prefixes — and a block's greedy placement
/// is a pure function of the blocks before it (place_block). The
/// evaluator keeps the previous candidate's placement stack and re-places
/// only the suffix that differs, which skips most per-candidate server
/// scans. Server scans themselves collapse onto the context's equivalence
/// groups: placed_on depends only on a server's (hardware, base
/// allocation), so each (block shape, group) pair is estimated once per
/// allocate() call and replayed from a memo afterwards. Values are
/// bit-identical to SearchContext::evaluate: reused prefixes and memoized
/// group entries carry the exact PlacedBlock and rank doubles the plain
/// scorer would recompute.
class IncrementalEvaluator {
 public:
  explicit IncrementalEvaluator(const SearchContext& ctx)
      : ctx_(ctx), used_(ctx.servers.size(), 0),
        domain_used_(ctx.spread != nullptr
                         ? static_cast<std::size_t>(ctx.spread->domain_count)
                         : 0,
                     0) {}

  /// As SearchContext::evaluate. Pruning decisions are at least as strong
  /// as the plain scorer's: the per-block partial bounds are the same
  /// doubles, the threshold is re-checked against the current
  /// `prune_above` even on reused prefixes (the threshold only tightens
  /// over a search, so a previously pruned prefix stays pruned), and the
  /// memoized per-shape block minima sharpen the bound with the cheapest
  /// possible cost of the blocks not yet placed — often rejecting a
  /// candidate before any server scan.
  [[nodiscard]] std::optional<EvalOutcome> evaluate(
      const partition::TypedPartition& blocks, double prune_above) {
    // Longest reusable prefix: blocks equal to the previous candidate's,
    // and actually placed last time (an abandoned evaluation keeps only
    // the blocks up to the abandonment point).
    std::size_t keep = 0;
    const std::size_t max_keep = std::min(placed_.size(), blocks.size());
    while (keep < max_keep && blocks[keep] == prefix_[keep]) {
      ++keep;
    }
    for (std::size_t i = placed_.size(); i > keep; --i) {
      used_[placed_[i - 1].server_index] = 0;
      if (ctx_.spread != nullptr) {
        const int domain = ctx_.domain_of(placed_[i - 1].server_index);
        if (domain >= 0) {
          domain_used_[static_cast<std::size_t>(domain)] -=
              placed_[i - 1].block.total();
        }
      }
    }
    placed_.resize(keep);
    bound_after_.resize(keep);
    prefix_.assign(blocks.begin(), blocks.end());

    double remaining_min = 0.0;
    if (ctx_.prune_enabled) {
      // Every unplaced block will cost at least its cheapest-anywhere
      // contribution (min over ALL servers, so removing used ones can
      // only increase the actual). A block with no feasible server at all
      // sinks the candidate outright — place_block could never host it.
      for (std::size_t i = keep; i < blocks.size(); ++i) {
        const double block_min = min_contribution(blocks[i]);
        if (block_min == kInf) {
          ++tallies_.pruned_infeasible;
          return std::nullopt;  // infeasible on every server, even unused
        }
        remaining_min += block_min;
      }
      const double prefix_bound = keep > 0 ? bound_after_[keep - 1] : 0.0;
      if (prefix_bound + remaining_min > prune_above) {
        // The partial bounds are monotone (every term ≥ 0 when pruning is
        // armed): the plain scorer would have abandoned this candidate no
        // later than its last block.
        ++tallies_.pruned_bound;
        return std::nullopt;
      }
    }
    for (std::size_t i = keep; i < blocks.size(); ++i) {
      if (ctx_.prune_enabled) {
        remaining_min -= min_contribution(blocks[i]);  // memoized, exact
      }
      std::optional<PlacedBlock> placed = place_grouped(blocks[i]);
      if (!placed.has_value()) {
        ++tallies_.pruned_infeasible;
        return std::nullopt;  // no unused server can host this block
      }
      used_[placed->server_index] = 1;
      if (ctx_.spread != nullptr) {
        const int domain = ctx_.domain_of(placed->server_index);
        if (domain >= 0) {
          domain_used_[static_cast<std::size_t>(domain)] +=
              placed->block.total();
        }
      }
      placed_.push_back(*placed);
      const double bound =
          (placed_.size() > 1 ? bound_after_.back() : 0.0) +
          ctx_.rank_contribution(placed_.back());
      bound_after_.push_back(bound);
      if (ctx_.prune_enabled && bound + remaining_min > prune_above) {
        ++tallies_.pruned_bound;
        return std::nullopt;  // cannot beat the best complete candidate
      }
    }
    ++tallies_.evaluated;
    return ctx_.finalize(placed_, times_);
  }

  /// The placement behind the last successful evaluate().
  [[nodiscard]] const std::vector<PlacedBlock>& blocks() const {
    return placed_;
  }

  /// Candidate-outcome tallies accumulated over this evaluator's life.
  [[nodiscard]] const SearchTallies& tallies() const noexcept {
    return tallies_;
  }

 private:
  /// One server-equivalence group's evaluation of a block shape. Every
  /// member of the group would produce exactly this PlacedBlock (modulo
  /// server_index) and these ranks, so the entry is computed once from the
  /// group's first member and replayed for the whole allocate() call.
  struct GroupEval {
    std::optional<PlacedBlock> placed;  ///< nullopt: infeasible for group
    bool qos_pass = true;
    double sel_rank = 0.0;      ///< place_block's server-ordering rank
    double contribution = 0.0;  ///< rank_contribution (bound arithmetic)
  };

  /// Per-group evaluations of `block`, memoized by shape.
  [[nodiscard]] const std::vector<GroupEval>& shape_evals(
      const ClassCounts& block) {
    const std::uint64_t key = static_cast<std::uint64_t>(block.cpu) << 42 |
                              static_cast<std::uint64_t>(block.mem) << 21 |
                              static_cast<std::uint64_t>(block.io);
    const auto [it, inserted] = shape_evals_.try_emplace(key);
    if (!inserted) {
      return it->second;
    }
    std::vector<GroupEval>& evals = it->second;
    evals.reserve(ctx_.groups.size());
    for (const std::vector<std::size_t>& members : ctx_.groups) {
      GroupEval eval;
      double time_contrib = 0.0;
      bool qos_pass = true;
      eval.placed =
          ctx_.placed_on(block, members.front(), time_contrib, qos_pass);
      if (eval.placed.has_value()) {
        eval.qos_pass = qos_pass;
        eval.sel_rank = ctx_.selection_rank(*eval.placed, time_contrib);
        eval.contribution = ctx_.rank_contribution(*eval.placed);
      }
      evals.push_back(std::move(eval));
    }
    return it->second;
  }

  /// As SearchContext::place_block, resolved over groups: the winning
  /// (qos desc, rank asc) entry — ties broken by the smallest unused
  /// member index across groups, which is exactly the server the plain
  /// index-order scan would have kept.
  [[nodiscard]] std::optional<PlacedBlock> place_grouped(
      const ClassCounts& block) {
    const std::vector<GroupEval>& evals = shape_evals(block);
    const GroupEval* best = nullptr;
    double best_rank = 0.0;
    std::size_t best_index = 0;
    for (std::size_t g = 0; g < evals.size(); ++g) {
      const GroupEval& eval = evals[g];
      if (!eval.placed.has_value()) {
        continue;
      }
      int domain = -1;
      if (ctx_.spread != nullptr) {
        // The group key includes the failure domain, so one check masks
        // every member — exactly the servers the plain scan would skip.
        domain = ctx_.domain_of(ctx_.groups[g].front());
        if (domain >= 0 &&
            domain_used_[static_cast<std::size_t>(domain)] + block.total() >
                ctx_.spread->max_vms_per_domain) {
          continue;
        }
      }
      std::size_t index = ctx_.servers.size();
      for (const std::size_t s : ctx_.groups[g]) {
        if (used_[s] == 0) {
          index = s;
          break;
        }
      }
      if (index == ctx_.servers.size()) {
        continue;  // every member already hosts a block
      }
      // The memoized sel_rank is domain-usage-free; the blast marginal
      // depends on the running per-domain tally, so it is added here —
      // the same sum the plain scan computes, bit for bit.
      const double rank =
          eval.sel_rank +
          (ctx_.spread != nullptr
               ? ctx_.blast_marginal(domain, block.total(), domain_used_)
               : 0.0);
      const bool better =
          best == nullptr || (eval.qos_pass && !best->qos_pass) ||
          (eval.qos_pass == best->qos_pass &&
           (rank < best_rank || (rank == best_rank && index < best_index)));
      if (better) {
        best = &eval;
        best_rank = rank;
        best_index = index;
      }
    }
    if (best == nullptr) {
      return std::nullopt;
    }
    PlacedBlock placed = *best->placed;
    placed.server_index = best_index;
    return placed;
  }

  /// Cheapest contribution of `block` over all servers (ignoring `used`),
  /// read off the memoized group entries; kInf when no server can host it
  /// at all. Built from the same placed_on doubles as real placements, so
  /// the minimum is bitwise ≤ any contribution place_grouped can produce.
  [[nodiscard]] double min_contribution(const ClassCounts& block) {
    double best = kInf;
    for (const GroupEval& eval : shape_evals(block)) {
      if (eval.placed.has_value()) {
        best = std::min(best, eval.contribution);
      }
    }
    return best;
  }

  const SearchContext& ctx_;
  std::vector<ClassCounts> prefix_;
  std::vector<PlacedBlock> placed_;
  std::vector<double> bound_after_;
  std::vector<char> used_;
  std::vector<int> domain_used_;  ///< request VMs per failure domain
  std::vector<double> times_;
  std::unordered_map<std::uint64_t, std::vector<GroupEval>> shape_evals_;
  SearchTallies tallies_;
};

/// Running optima of a search, with the deterministic tie-break: strictly
/// smaller rank wins; equal ranks keep the earlier candidate in canonical
/// enumeration order — exactly what a serial first-wins scan produces.
struct SearchBest {
  std::optional<Candidate> any;
  std::optional<Candidate> qos;
  std::size_t any_index = 0;
  std::size_t qos_index = 0;

  void consider(const EvalOutcome& out,
                const std::vector<PlacedBlock>& blocks, std::size_t index) {
    const bool better_any =
        !any.has_value() || out.combined < any->combined ||
        (out.combined == any->combined && index < any_index);
    const bool better_qos =
        out.qos_ok &&
        (!qos.has_value() || out.combined < qos->combined ||
         (out.combined == qos->combined && index < qos_index));
    if (!better_any && !better_qos) {
      return;  // the common case: no Candidate is ever materialized
    }
    Candidate cand;
    cand.blocks = blocks;
    cand.est_time_s = out.est_time_s;
    cand.est_energy_j = out.est_energy_j;
    cand.combined = out.combined;
    cand.qos_ok = out.qos_ok;
    if (better_any) {
      any = cand;
      any_index = index;
    }
    if (better_qos) {
      qos = std::move(cand);
      qos_index = index;
    }
  }

  void merge(SearchBest&& other) {
    if (other.any.has_value()) {
      if (!any.has_value() || other.any->combined < any->combined ||
          (other.any->combined == any->combined &&
           other.any_index < any_index)) {
        any = std::move(other.any);
        any_index = other.any_index;
      }
    }
    if (other.qos.has_value()) {
      if (!qos.has_value() || other.qos->combined < qos->combined ||
          (other.qos->combined == qos->combined &&
           other.qos_index < qos_index)) {
        qos = std::move(other.qos);
        qos_index = other.qos_index;
      }
    }
  }
};

}  // namespace

AllocationResult ProactiveAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }
  if (!config_.spread.feasible_width(vms.size())) {
    // Terminal: the declared failure domains cannot absorb a request this
    // wide under the per-domain cap — no search, retry, or fallback can
    // change that (the degradation leg enforces the same constraint).
    result.outcome = AllocationOutcome{AllocationPath::kRejected,
                                       RejectReason::kSpreadInfeasible,
                                       false};
    if (obs_.calls != nullptr) {
      obs_.calls->add();
      obs_.rejected->add();
    }
    return result;
  }

  ClassCounts request;
  for (const VmRequest& vm : vms) {
    ++request.of(vm.profile);
  }

  SearchContext ctx(config_, models_, servers);
  if (config_.spread.enabled) {
    ctx.spread = &config_.spread;
  }
  ctx.n_vms = static_cast<double>(vms.size());
  // Normalization references always come from hardware class 0 so ranks
  // stay comparable across a heterogeneous fleet.
  ctx.time_ref = models_.front().time_reference_s(request);
  ctx.energy_ref = models_.front().energy_reference_j(request);

  // Current allocations and their standalone energies (cached: the
  // marginal energy of the first block landing on a busy server needs it).
  ctx.base_alloc.reserve(servers.size());
  ctx.base_energy.reserve(servers.size());
  for (const ServerState& server : servers) {
    ctx.base_alloc.push_back(server.allocated);
    ctx.base_energy.push_back(
        cost_model(server.hardware).mix_energy_j(server.allocated));
  }

  for (const VmRequest& vm : vms) {
    ctx.deadlines[static_cast<int>(vm.profile)].push_back(vm.max_exec_time_s);
  }
  for (auto& list : ctx.deadlines) {
    std::sort(list.begin(), list.end());
  }

  if (!config_.force_serial) {
    // Server-equivalence groups for the optimized paths: placed_on reads
    // only a server's hardware class and base allocation, so servers that
    // agree on both are interchangeable up to the index tie-break.
    std::map<std::tuple<int, int, int, int, int>, std::size_t> group_ids;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      const ClassCounts& alloc = ctx.base_alloc[s];
      // The spread quota masks whole domains mid-evaluation, so members of
      // a group must share one (unmapped servers are all unconstrained and
      // keep sharing the -1 key). With spread off the key degenerates to
      // the original 4-tuple grouping.
      const int domain =
          ctx.spread != nullptr ? ctx.spread->domain_of(servers[s].id) : -1;
      const auto key = std::make_tuple(servers[s].hardware, alloc.cpu,
                                       alloc.mem, alloc.io, domain);
      const auto [it, inserted] =
          group_ids.try_emplace(key, ctx.groups.size());
      if (inserted) {
        ctx.groups.emplace_back();
      }
      ctx.groups[it->second].push_back(s);
    }
  }

  if (config_.prune_search && !config_.force_serial &&
      config_.goal == ProactiveGoal::kAlphaWeighted) {
    bool energy_bounded = true;
    for (const CostModel& model : models_) {
      energy_bounded = energy_bounded && model.db().energy_monotone();
    }
    // α = 0 needs no energy bound: the rank is pure (non-negative) time.
    ctx.prune_enabled = config_.alpha == 0.0 || energy_bounded;
  }

  // A block is worth enumerating if some hardware class can host it.
  const auto block_ok = [&](const ClassCounts& block) {
    for (const CostModel& model : models_) {
      if (model.feasible(block)) {
        return true;
      }
    }
    return false;
  };
  const std::size_t max_blocks = std::max<std::size_t>(servers.size(), 1);

  SearchBest best;
  SearchTallies tally;
  std::size_t examined = 0;

  const std::size_t workers = config_.force_serial
                                  ? 1
                                  : util::ThreadPool::recommended_workers(
                                        static_cast<std::size_t>(
                                            config_.search_threads));
  if (workers <= 1) {
    // Serial scoring on the calling thread, candidates streamed straight
    // out of the enumeration (no materialization). The pruning threshold
    // tracks the running optima exactly like the parallel path's shared
    // atomics do. force_serial pins the plain per-candidate scorer; the
    // optimized serial path evaluates prefix-incrementally.
    EvalScratch scratch;
    std::optional<IncrementalEvaluator> inc;
    if (!config_.force_serial) {
      inc.emplace(ctx);
    }
    const std::size_t visited = partition::for_each_typed_partition(
        request, block_ok, max_blocks,
        [&](const partition::TypedPartition& blocks) {
          const std::size_t index = examined++;
          double prune_above = kInf;
          if (ctx.prune_enabled) {
            if (config_.enforce_qos) {
              prune_above = best.qos.has_value() ? best.qos->combined : kInf;
            } else {
              prune_above = best.any.has_value() ? best.any->combined : kInf;
            }
          }
          const std::optional<EvalOutcome> out =
              inc.has_value()
                  ? inc->evaluate(blocks, prune_above)
                  : ctx.evaluate(blocks, prune_above, scratch, tally);
          if (out.has_value()) {
            best.consider(*out, inc.has_value() ? inc->blocks()
                                                : scratch.blocks,
                          index);
          }
          return examined < config_.max_partitions;
        });
    AEVA_INVARIANT(visited == examined,
                   "partition enumeration visited ", visited,
                   " but the scorer saw ", examined);
    if (inc.has_value()) {
      tally.merge(inc->tallies());
    }
  } else {
    // Parallel fan-out: materialize the candidate stream (bounded by the
    // budget), dispatch fixed-size index ranges to the pool, reduce the
    // per-chunk optima in chunk order. Workers publish their best ranks
    // through monotonically-decreasing atomics that other workers read as
    // pruning bounds — stale reads only make pruning less aggressive,
    // never unsound, and the final reduction does not depend on them.
    const std::vector<partition::TypedPartition> candidates =
        partition::collect_typed_partitions(request, block_ok, max_blocks,
                                            config_.max_partitions);
    examined = candidates.size();
    const std::size_t chunk = config_.search_chunk;
    const std::size_t chunk_count = (candidates.size() + chunk - 1) / chunk;
    if (chunk_count <= 1) {
      // Too little work to amortize a dispatch; score inline. Thresholds
      // behave identically, so the result is unchanged.
      IncrementalEvaluator inc(ctx);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        double prune_above = kInf;
        if (ctx.prune_enabled) {
          if (config_.enforce_qos) {
            prune_above = best.qos.has_value() ? best.qos->combined : kInf;
          } else {
            prune_above = best.any.has_value() ? best.any->combined : kInf;
          }
        }
        const std::optional<EvalOutcome> out =
            inc.evaluate(candidates[i], prune_above);
        if (out.has_value()) {
          best.consider(*out, inc.blocks(), i);
        }
      }
      tally.merge(inc.tallies());
    } else {
      util::ThreadPool& pool = runtime_->ensure_pool(workers);
      std::atomic<double> best_any_rank{kInf};
      std::atomic<double> best_qos_rank{kInf};
      std::vector<SearchBest> chunk_best(chunk_count);
      std::vector<SearchTallies> chunk_tallies(chunk_count);
      for (std::size_t c = 0; c < chunk_count; ++c) {
        pool.submit([&, c] {
          const std::size_t begin = c * chunk;
          const std::size_t end =
              std::min(begin + chunk, candidates.size());
          SearchBest local;
          IncrementalEvaluator inc(ctx);
          for (std::size_t i = begin; i < end; ++i) {
            double prune_above = kInf;
            if (ctx.prune_enabled) {
              prune_above =
                  config_.enforce_qos
                      ? best_qos_rank.load(std::memory_order_relaxed)
                      : best_any_rank.load(std::memory_order_relaxed);
            }
            const std::optional<EvalOutcome> out =
                inc.evaluate(candidates[i], prune_above);
            if (out.has_value()) {
              local.consider(*out, inc.blocks(), i);
              atomic_fetch_min(best_any_rank, out->combined);
              if (out->qos_ok) {
                atomic_fetch_min(best_qos_rank, out->combined);
              }
            }
          }
          chunk_best[c] = std::move(local);
          chunk_tallies[c] = inc.tallies();
        });
      }
      pool.wait();
      for (SearchBest& local : chunk_best) {
        best.merge(std::move(local));
      }
      for (const SearchTallies& chunk_tally : chunk_tallies) {
        tally.merge(chunk_tally);
        if (obs_.chunk_evaluated != nullptr) {
          obs_.chunk_evaluated->record(
              static_cast<double>(chunk_tally.evaluated));
        }
      }
    }
  }
  result.partitions_examined = examined;

  // Budget truncation: the enumeration stopped at `max_partitions`, so
  // whatever is returned below is the best of the *examined* candidates,
  // not provably the best of the space. Recorded on the outcome of every
  // exit path (conservative: when the space holds exactly max_partitions
  // candidates the search did cover it, but the enumeration cannot tell).
  const bool search_truncated = examined >= config_.max_partitions;

  // Metrics flush (no-op when observability is off). Called once on every
  // exit path below with the counter matching the outcome; reads the
  // search state but never influences the decision.
  const auto obs_flush = [&](obs::Counter* outcome_counter) {
    if (obs_.calls == nullptr) {
      return;
    }
    obs_.calls->add();
    obs_.candidates->add(examined);
    obs_.evaluated->add(tally.evaluated);
    obs_.pruned_bound->add(tally.pruned_bound);
    obs_.pruned_infeasible->add(tally.pruned_infeasible);
    obs_.candidates_per_call->record(static_cast<double>(examined));
    obs_.workers->set(static_cast<double>(workers));
    if (search_truncated) {
      obs_.budget_truncated->add();
    }
    if (outcome_counter != nullptr) {
      outcome_counter->add();
    }
    const modeldb::EstimateCache::Stats memo = memo_stats();
    obs_.memo_hits->set(static_cast<double>(memo.hits));
    obs_.memo_misses->set(static_cast<double>(memo.misses));
    obs_.memo_entries->set(static_cast<double>(memo.entries));
    const double lookups = static_cast<double>(memo.hits + memo.misses);
    obs_.memo_hit_rate->set(
        lookups > 0.0 ? static_cast<double>(memo.hits) / lookups : 0.0);
  };

  std::optional<Candidate>& best_any = best.any;
  std::optional<Candidate>& best_qos = best.qos;
  std::optional<Candidate> chosen;
  if (!config_.enforce_qos) {
    chosen = std::move(best_any);
  } else if (best_qos.has_value()) {
    chosen = std::move(best_qos);
  } else if (config_.fallback_best_effort) {
    chosen = std::move(best_any);
  }
  if (!chosen.has_value()) {
    // Classify why the primary search failed before degrading: callers and
    // tests branch on the reason instead of inferring it from `complete`.
    RejectReason reason = RejectReason::kNoFeasibleServer;
    if (servers.empty()) {
      reason = RejectReason::kNoServers;  // all masked or failed
    } else if (!best.any.has_value() &&
               examined >= config_.max_partitions) {
      reason = RejectReason::kSearchBudgetExhausted;
    } else if (best.any.has_value()) {
      reason = RejectReason::kQosInfeasible;
    }
    if (fallback_.has_value()) {
      AllocationResult fb = fallback_->allocate(vms, servers);
      if (fb.complete) {
        fb.partitions_examined = examined;
        fb.satisfied_qos = false;  // the slot-based fallback is QoS-blind
        fb.outcome = AllocationOutcome{AllocationPath::kFallbackFirstFit,
                                       reason, search_truncated};
        obs_flush(obs_.placed_fallback);
        return fb;
      }
    }
    // Nothing could place the request: it stays queued, with the reason on
    // record.
    result.outcome = AllocationOutcome{AllocationPath::kRejected, reason,
                                       search_truncated};
    obs_flush(obs_.rejected);
    return result;
  }
  result.satisfied_qos = chosen->qos_ok;
  result.score.est_time_s = chosen->est_time_s;
  result.score.est_energy_j = chosen->est_energy_j;
  result.score.combined = chosen->combined;

  // Map typed blocks back onto concrete VMs: per class, the VM with the
  // tightest deadline goes to the block slot with the smallest estimated
  // time (the matching the QoS check assumed).
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const int ci = static_cast<int>(profile);
    std::vector<const VmRequest*> class_vms;
    for (const VmRequest& vm : vms) {
      if (vm.profile == profile) {
        class_vms.push_back(&vm);
      }
    }
    if (class_vms.empty()) {
      continue;
    }
    std::stable_sort(class_vms.begin(), class_vms.end(),
                     [](const VmRequest* a, const VmRequest* b) {
                       return a->max_exec_time_s < b->max_exec_time_s;
                     });
    struct Slot {
      double time = 0.0;
      std::size_t server_index = 0;
    };
    std::vector<Slot> slots;
    for (const PlacedBlock& placed : chosen->blocks) {
      for (int k = 0; k < placed.block.of(profile); ++k) {
        slots.push_back(Slot{placed.time_per_class[ci], placed.server_index});
      }
    }
    AEVA_INVARIANT(slots.size() == class_vms.size(),
                "block slots do not cover the request for class ",
                workload::to_string(profile));
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Slot& a, const Slot& b) {
                       return a.time < b.time;
                     });
    for (std::size_t k = 0; k < class_vms.size(); ++k) {
      result.placements.push_back(
          Placement{class_vms[k]->id, servers[slots[k].server_index].id});
    }
  }
  result.complete = true;
  result.outcome.search_truncated = search_truncated;
  obs_flush(obs_.placed_primary);
  return result;
}

std::string ProactiveAllocator::name() const {
  const std::string suffix = fallback_.has_value() ? "+FF" : "";
  if (config_.goal == ProactiveGoal::kEnergyDelayProduct) {
    return "PA-EDP" + suffix;
  }
  const double alpha = config_.alpha;
  if (alpha == 0.0) return "PA-0" + suffix;
  if (alpha == 1.0) return "PA-1" + suffix;
  std::string text = util::format_fixed(alpha, 2);
  while (!text.empty() && text.back() == '0') {
    text.pop_back();
  }
  if (!text.empty() && text.back() == '.') {
    text.pop_back();
  }
  return "PA-" + text + suffix;
}

}  // namespace aeva::core
