#pragma once

/// \file types.hpp
/// Common vocabulary of the allocation layer.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "workload/profile.hpp"

namespace aeva::core {

/// One VM awaiting placement: its application profile (assumed known in
/// advance, e.g. specified in the job definition — Sect. III) and its QoS
/// guarantee (maximum execution time).
struct VmRequest {
  std::int64_t id = 0;
  workload::ProfileClass profile{};
  double max_exec_time_s = std::numeric_limits<double>::infinity();
};

/// A physical server and its current allocation, summarized as class
/// counts (all the model database needs), plus whether it has been powered
/// on. Servers power on at first use and stay on for the rest of the run
/// (Sect. IV-A fixes a 125 W draw for a powered-on server); an energy-aware
/// allocator therefore pays a premium for waking a cold server.
struct ServerState {
  int id = 0;
  workload::ClassCounts allocated;
  bool powered = false;
  /// Hardware class index (heterogeneous-fleet extension): selects which
  /// empirical model describes this machine. 0 is the default testbed.
  int hardware = 0;

  [[nodiscard]] bool empty() const noexcept { return allocated.total() == 0; }
};

/// One placement decision: VM → server.
struct Placement {
  std::int64_t vm_id = 0;
  int server_id = 0;
};

/// Per-job failure-domain spread constraint (docs/RESILIENCE.md,
/// "Correlated failure domains"): at most `max_vms_per_domain` VMs of a
/// single request may land on servers sharing a failure domain (typically
/// a rack — datacenter::spread_by_rack builds the map from a Topology).
/// Enforced uniformly by every allocator through the shared span entry
/// points; a request wider than max_vms_per_domain × domain_count is
/// structurally unplaceable and rejects with the terminal
/// RejectReason::kSpreadInfeasible. When disabled (the default) every
/// field is inert and allocator behaviour is bit-identical to the
/// spread-free model.
struct SpreadConfig {
  bool enabled = false;
  /// Cap on one request's VMs per failure domain (>= 1 when enabled).
  int max_vms_per_domain = 1;
  /// Dense server-id → domain-id map; must cover every server id the
  /// allocator can see, with domain ids in [0, domain_count).
  std::vector<int> domain_of_server;
  /// Number of distinct failure domains (the structural-feasibility
  /// bound: a request of n VMs needs n <= max_vms_per_domain × this).
  int domain_count = 0;
  /// Weight of the expected-lost-work concentration penalty the
  /// proactive score adds on top of the α-weighted rank: blast_penalty ×
  /// Σ_d (n_d / n)², where n_d counts the request's VMs in domain d. The
  /// sum is the probability two of the job's VMs share a failing domain
  /// (a Herfindahl index in (0, 1]), so the term is the job's expected
  /// blast-radius fraction under a single-domain fault. 0 disables the
  /// penalty while keeping the hard cap.
  double blast_penalty = 0.0;

  /// Domain of one server id, or -1 when the id is outside the map
  /// (callers treat unmapped servers as unconstrained).
  [[nodiscard]] int domain_of(int server_id) const noexcept {
    if (server_id < 0 ||
        static_cast<std::size_t>(server_id) >= domain_of_server.size()) {
      return -1;
    }
    return domain_of_server[static_cast<std::size_t>(server_id)];
  }

  /// Structural feasibility of an n-VM request under the cap.
  [[nodiscard]] bool feasible_width(std::size_t n_vms) const noexcept {
    if (!enabled) return true;
    const auto cap = static_cast<std::size_t>(max_vms_per_domain) *
                     static_cast<std::size_t>(domain_count);
    return n_vms <= cap;
  }
};

/// Estimated cost of an accepted allocation.
struct AllocationScore {
  double est_time_s = 0.0;    ///< mean estimated per-VM execution time
  double est_energy_j = 0.0;  ///< total marginal energy across servers
  double combined = 0.0;      ///< α-weighted rank (lower is better)
};

/// Which leg of the degradation chain produced the result. Production
/// allocators degrade along an explicit chain (primary strategy →
/// first-fit fallback → reject-with-reason) instead of silently handing
/// back worst-case placements or empty results.
enum class AllocationPath {
  kPrimary,          ///< the strategy's own search placed the request
  kFallbackFirstFit, ///< primary failed; a first-fit fallback placed it
  kRejected,         ///< nothing could place it — see `reason`
  kIncremental,      ///< the incremental fleet planner placed it
                     ///< (core::FleetState — same search, cached state)
};

/// Why the primary strategy could not place a request (also attached to
/// fallback results, recording what the fallback recovered from). The
/// serve layer (src/serve/) extends the taxonomy with admission-level
/// rejections — a request can be turned away before any allocator runs.
enum class RejectReason {
  kNone,                   ///< placed by the primary path
  kNoServers,              ///< empty server list — all masked or failed
  kNoFeasibleServer,       ///< capacity/feasibility exhausted everywhere
  kSearchBudgetExhausted,  ///< partition budget hit before any candidate
  kQosInfeasible,          ///< candidates exist, all violate a deadline
  kGuardRejected,          ///< a decorator (power cap, …) vetoed the result
  // --- admission-level rejections (src/serve/, docs/RESILIENCE.md) ---------
  kAdmissionQueueFull,     ///< bounded admission queue at capacity
  kAdmissionShed,          ///< load-shedding policy evicted/refused it
  kDeadlineUnmeetable,     ///< predicted queueing delay exceeds the deadline
  kDeadlineExpired,        ///< the deadline had already passed
  kRetriesExhausted,       ///< retryable rejections, but no retry budget left
  /// The request structurally cannot satisfy its failure-domain spread
  /// constraint: more VMs than max_vms_per_domain × domain count
  /// (SpreadConfig below, docs/RESILIENCE.md "Correlated failure
  /// domains"). Terminal — no amount of freed capacity changes the
  /// arithmetic; the job must be resubmitted narrower or the constraint
  /// relaxed.
  kSpreadInfeasible,
};

/// Number of RejectReason values (array-index bound for per-reason tallies).
inline constexpr std::size_t kRejectReasonCount = 12;

/// Retryable/terminal classification of a rejection (docs/RESILIENCE.md,
/// "Overload protection"). **Retryable** means the condition is
/// load-dependent: capacity frees up, servers repair, contention drops, a
/// power cap lifts, the queue drains — a client-side retry with backoff
/// (serve::RetryConfig) is meaningful. **Terminal** means retrying the
/// same request cannot help: its deadline is gone or its retry budget is
/// spent. `kNone` is not a rejection and classifies as terminal so nothing
/// ever retries a placed request.
[[nodiscard]] constexpr bool is_retryable(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNoServers:
    case RejectReason::kNoFeasibleServer:
    case RejectReason::kSearchBudgetExhausted:
    case RejectReason::kQosInfeasible:
    case RejectReason::kGuardRejected:
    case RejectReason::kAdmissionQueueFull:
    case RejectReason::kAdmissionShed:
    case RejectReason::kDeadlineUnmeetable:
      return true;
    case RejectReason::kNone:
    case RejectReason::kDeadlineExpired:
    case RejectReason::kRetriesExhausted:
    case RejectReason::kSpreadInfeasible:
      return false;
  }
  return false;
}

/// Degradation record of one allocation call: which path produced the
/// placements and, when the primary failed, why. Callers and tests assert
/// on this instead of inferring behaviour from `complete` alone.
struct AllocationOutcome {
  AllocationPath path = AllocationPath::kPrimary;
  RejectReason reason = RejectReason::kNone;
  /// True when the search stopped at its partition budget
  /// (ProactiveConfig::max_partitions) before exhausting the candidate
  /// space: the placement is the best of what was examined, not provably
  /// the best overall. Degraded-quality allocations are thereby
  /// distinguishable from exhaustive ones (obs counter
  /// `pa.search.budget_truncated` aggregates them per run).
  bool search_truncated = false;
};

[[nodiscard]] constexpr const char* to_string(AllocationPath path) noexcept {
  switch (path) {
    case AllocationPath::kPrimary: return "primary";
    case AllocationPath::kFallbackFirstFit: return "fallback-first-fit";
    case AllocationPath::kRejected: return "rejected";
    case AllocationPath::kIncremental: return "incremental";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kNoServers: return "no-servers";
    case RejectReason::kNoFeasibleServer: return "no-feasible-server";
    case RejectReason::kSearchBudgetExhausted:
      return "search-budget-exhausted";
    case RejectReason::kQosInfeasible: return "qos-infeasible";
    case RejectReason::kGuardRejected: return "guard-rejected";
    case RejectReason::kAdmissionQueueFull: return "admission-queue-full";
    case RejectReason::kAdmissionShed: return "admission-shed";
    case RejectReason::kDeadlineUnmeetable: return "deadline-unmeetable";
    case RejectReason::kDeadlineExpired: return "deadline-expired";
    case RejectReason::kRetriesExhausted: return "retries-exhausted";
    case RejectReason::kSpreadInfeasible: return "spread-infeasible";
  }
  return "?";
}

/// "retryable" / "terminal" label for report tables (datacenter_sim,
/// aeva_serve) — pairs with is_retryable() above.
[[nodiscard]] constexpr const char* retry_class(RejectReason reason) noexcept {
  return is_retryable(reason) ? "retryable" : "terminal";
}

/// Outcome of one allocation call.
struct AllocationResult {
  std::vector<Placement> placements;
  AllocationScore score;
  bool complete = false;       ///< every requested VM was placed
  bool satisfied_qos = true;   ///< no estimated deadline violations
  std::size_t partitions_examined = 0;  ///< search effort (proactive only)
  AllocationOutcome outcome;   ///< degradation-chain record
};

/// Strategy interface shared by the proactive allocator and the first-fit
/// baselines; the datacenter simulator drives either uniformly.
///
/// Both entry points take spans, so callers hand over whatever contiguous
/// view they already own — a vector, a reused scratch buffer, or the
/// simulator's incrementally maintained fleet view — without materializing
/// a fresh container per decision (docs/PERFORMANCE.md "Event-loop
/// throughput").
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Places `vms` onto `servers` (whose states reflect current residency).
  /// Implementations never mutate `servers`; the caller applies the
  /// returned placements. When the cluster lacks room, `complete` is false
  /// and `placements` is empty — allocation is all-or-nothing per request,
  /// matching the paper's per-job-request granularity.
  [[nodiscard]] virtual AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const = 0;

  /// Allocation-reusing variant for hot callers (the simulator's event
  /// loop): writes the result into `out`, whose `placements` capacity is
  /// retained across calls. The default delegates to allocate(); cheap
  /// strategies (FirstFitAllocator) override it to fill `out` in place so
  /// a warm steady-state admission performs zero heap allocations.
  virtual void allocate_into(std::span<const VmRequest> vms,
                             std::span<const ServerState> servers,
                             AllocationResult& out) const {
    out = allocate(vms, servers);
  }

  /// Display name, e.g. "FF-2" or "PA-0.5".
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace aeva::core
