#pragma once

/// \file proactive.hpp
/// The paper's contribution: proactive application-centric energy-aware VM
/// allocation (Sect. III-D, Fig. 3).
///
/// Given the empirical model database, an optimization goal α (1 → minimize
/// energy, 0 → minimize execution time, in between → weighted tradeoff), a
/// set of servers with their current allocations, and a set of VMs with
/// profiles and QoS deadlines, the allocator brute-force searches the set
/// partitions of the VM set (via the Orlov-style typed enumeration in
/// src/partition), scores every feasible partition by a database lookup,
/// and returns the placement that best matches the goal while satisfying
/// the QoS constraints. Ties between servers of equal rank resolve to the
/// first server of the list, as in the paper.
///
/// The candidate scoring fans out over a fixed worker pool with memoized
/// database lookups and branch-and-bound pruning; the reduction is
/// deterministic (min by score, ties to the earliest candidate in
/// canonical enumeration order), so every execution mode returns the same
/// bits as the serial reference — see the search-execution knobs on
/// ProactiveConfig and docs/PERFORMANCE.md.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost_model.hpp"
#include "core/first_fit.hpp"
#include "core/types.hpp"
#include "modeldb/database.hpp"
#include "modeldb/estimate_cache.hpp"
#include "obs/session.hpp"

namespace aeva::core {

/// Optimization goal shape.
enum class ProactiveGoal {
  /// The paper's α-weighted blend of energy and time.
  kAlphaWeighted,
  /// Minimize the energy-delay product (the database's EDP column):
  /// scale-free, parameterless middle ground between the two extremes.
  kEnergyDelayProduct,
};

/// Tuning of the proactive allocator.
struct ProactiveConfig {
  /// Goal shape; α applies only to the weighted form.
  ProactiveGoal goal = ProactiveGoal::kAlphaWeighted;
  /// Energy-vs-performance tradeoff: weight α on energy, 1−α on time.
  double alpha = 0.5;
  /// When true (default — "disregarding the QoS guarantees … might be not
  /// acceptable for production systems"), partitions whose estimated VM
  /// execution times violate a deadline are rejected; if *every* partition
  /// violates QoS, the allocation fails and the request stays queued.
  bool enforce_qos = true;
  /// With `enforce_qos`, permits falling back to the best QoS-violating
  /// placement instead of failing — the "relaxed" variant of Sect. III-D.
  bool fallback_best_effort = false;
  /// Brute-force budget: the search stops after examining this many
  /// partitions and returns the best found so far. The paper's requests
  /// carry 1–4 VMs, far below this bound.
  std::size_t max_partitions = 200000;
  /// Per-server VM cap (testbed benchmarked up to 16 VMs).
  int server_vm_cap = 16;
  /// Graceful degradation: when the proactive search cannot place a
  /// request (budget exhausted, every candidate violates QoS, or every
  /// compatible server is masked), retry it through a slot-based first-fit
  /// before rejecting. The result records which leg placed the request and
  /// why the primary failed (AllocationOutcome), so no allocation path can
  /// fail silently.
  bool degrade_to_first_fit = false;
  /// Multiplex factor of the first-fit fallback (VMs per CPU).
  int fallback_multiplex = 2;
  /// Per-job failure-domain spread constraint (docs/RESILIENCE.md,
  /// "Correlated failure domains"): hard per-domain cap on one request's
  /// VMs plus the optional blast-radius concentration penalty folded into
  /// the candidate rank. Disabled by default — placements are then
  /// bit-identical to the spread-free model. The first-fit degradation
  /// leg inherits the same constraint.
  SpreadConfig spread;

  // --- search execution (docs/PERFORMANCE.md) ------------------------------
  // The knobs below change only how fast the search runs, never what it
  // returns: parallel, memoized, and pruned searches are bit-identical to
  // the serial reference (regression-tested, including under TSan).
  /// Worker threads scoring candidates: 1 → score on the calling thread;
  /// 0 → one worker per hardware thread; N → a pool of N workers (created
  /// lazily on first use, reused across allocate() calls).
  int search_threads = 1;
  /// Candidates per work unit handed to a pool worker. Larger chunks
  /// amortize dispatch; smaller chunks spread uneven candidate costs.
  std::size_t search_chunk = 64;
  /// Memoize model-database estimates in a sharded, mutex-striped cache
  /// (modeldb::EstimateCache) shared by all workers and re-used across
  /// allocate() calls — repeated (Ncpu, Nmem, Nio) lookups hit memory
  /// instead of binary search.
  bool memoize_estimates = true;
  /// Branch-and-bound: abandon a candidate as soon as a sound lower bound
  /// on its final rank exceeds the best complete candidate found so far.
  /// Automatically inert when no sound bound exists (EDP goal, or an
  /// energy-non-monotone database under α > 0) — see docs/PERFORMANCE.md.
  bool prune_search = true;
  /// Escape hatch: force the plain single-threaded reference scorer (no
  /// pool, no memo cache, no pruning), ignoring the three knobs above.
  /// The equality tests pin the optimized paths to this one.
  bool force_serial = false;

  // --- observability (docs/OBSERVABILITY.md) -------------------------------
  /// Metrics/tracing session shared with the rest of the run. Null (the
  /// default) disables instrumentation entirely: the allocator resolves no
  /// metric handles and the search pays only dead branch tests — outputs
  /// and placement decisions are bit-identical either way (the session is
  /// strictly read-only with respect to the search).
  std::shared_ptr<obs::Session> obs;
};

/// The proactive allocator (strategies PA-1 / PA-0 / PA-0.5 of Sect. IV-D
/// are instances with α = 1, 0, 0.5).
class ProactiveAllocator final : public Allocator {
 public:
  /// Homogeneous fleet: one empirical model for every server. The database
  /// must outlive the allocator.
  ProactiveAllocator(const modeldb::ModelDatabase& db, ProactiveConfig config);

  /// Heterogeneous fleet (the paper's future work i): one model per
  /// hardware class; `ServerState::hardware` indexes into `dbs`. All
  /// databases must outlive the allocator; `dbs` must be non-empty and
  /// contain no nulls. Cost normalization references come from class 0.
  ProactiveAllocator(std::vector<const modeldb::ModelDatabase*> dbs,
                     ProactiveConfig config);

  /// Thread-safe and re-entrant: concurrent calls (e.g. through decorator
  /// guards) are safe — the memo cache is internally synchronized and the
  /// worker pool serializes its fan-out phases, so every caller still gets
  /// the bit-exact serial-reference answer.
  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ProactiveConfig& config() const noexcept {
    return config_;
  }
  /// The hardware-class-0 cost model (homogeneous callers' view).
  [[nodiscard]] const CostModel& cost_model() const noexcept {
    return models_.front();
  }
  /// Cost model of a hardware class; throws on an unknown class.
  [[nodiscard]] const CostModel& cost_model(int hardware) const;

  /// Aggregated memo-cache statistics over all hardware classes (zeros
  /// when `memoize_estimates` is off or `force_serial` is on).
  [[nodiscard]] modeldb::EstimateCache::Stats memo_stats() const;

  /// Re-warms the per-hardware-class estimate memo caches against a fleet
  /// — one estimate() per occupied server — and returns how many entries
  /// were touched. A process restored from a snapshot
  /// (docs/RESILIENCE.md) calls this with the restored server states so
  /// its first admissions after resume do not pay cold-cache latency.
  /// No-op (returns 0) when memoization is off or `force_serial` is set;
  /// never changes any allocation decision (the cache is semantically
  /// transparent).
  std::size_t rewarm(std::span<const ServerState> servers) const;

 private:
  /// Mutable search machinery shared by const allocate() calls (and by
  /// copies of the allocator): the worker pool is created lazily under the
  /// mutex on the first parallel search and reused afterwards.
  struct SearchRuntime;

  /// Pre-resolved metric handles (all null when `config_.obs` is null, so
  /// the hot path guards on one pointer). Resolved once at construction;
  /// the registry owns the metrics and outlives us via `config_.obs`.
  struct ObsHandles {
    obs::Counter* calls = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Counter* evaluated = nullptr;
    obs::Counter* pruned_bound = nullptr;
    obs::Counter* pruned_infeasible = nullptr;
    obs::Counter* placed_primary = nullptr;
    obs::Counter* placed_fallback = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* budget_truncated = nullptr;
    obs::Histogram* candidates_per_call = nullptr;
    obs::Histogram* chunk_evaluated = nullptr;
    obs::Gauge* workers = nullptr;
    obs::Gauge* memo_hits = nullptr;
    obs::Gauge* memo_misses = nullptr;
    obs::Gauge* memo_hit_rate = nullptr;
    obs::Gauge* memo_entries = nullptr;
  };

  ProactiveConfig config_;
  std::vector<CostModel> models_;
  /// Per-hardware-class memo caches (engaged with `memoize_estimates`;
  /// attached to the corresponding CostModel).
  std::vector<std::shared_ptr<modeldb::EstimateCache>> memos_;
  std::shared_ptr<SearchRuntime> runtime_;
  /// Degradation leg (engaged only with `degrade_to_first_fit`).
  std::optional<FirstFitAllocator> fallback_;
  ObsHandles obs_;
};

}  // namespace aeva::core
