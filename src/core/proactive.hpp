#pragma once

/// \file proactive.hpp
/// The paper's contribution: proactive application-centric energy-aware VM
/// allocation (Sect. III-D, Fig. 3).
///
/// Given the empirical model database, an optimization goal α (1 → minimize
/// energy, 0 → minimize execution time, in between → weighted tradeoff), a
/// set of servers with their current allocations, and a set of VMs with
/// profiles and QoS deadlines, the allocator brute-force searches the set
/// partitions of the VM set (via the Orlov-style typed enumeration in
/// src/partition), scores every feasible partition by a database lookup,
/// and returns the placement that best matches the goal while satisfying
/// the QoS constraints. Ties between servers of equal rank resolve to the
/// first server of the list, as in the paper.

#include <cstddef>
#include <optional>

#include "core/cost_model.hpp"
#include "core/first_fit.hpp"
#include "core/types.hpp"
#include "modeldb/database.hpp"

namespace aeva::core {

/// Optimization goal shape.
enum class ProactiveGoal {
  /// The paper's α-weighted blend of energy and time.
  kAlphaWeighted,
  /// Minimize the energy-delay product (the database's EDP column):
  /// scale-free, parameterless middle ground between the two extremes.
  kEnergyDelayProduct,
};

/// Tuning of the proactive allocator.
struct ProactiveConfig {
  /// Goal shape; α applies only to the weighted form.
  ProactiveGoal goal = ProactiveGoal::kAlphaWeighted;
  /// Energy-vs-performance tradeoff: weight α on energy, 1−α on time.
  double alpha = 0.5;
  /// When true (default — "disregarding the QoS guarantees … might be not
  /// acceptable for production systems"), partitions whose estimated VM
  /// execution times violate a deadline are rejected; if *every* partition
  /// violates QoS, the allocation fails and the request stays queued.
  bool enforce_qos = true;
  /// With `enforce_qos`, permits falling back to the best QoS-violating
  /// placement instead of failing — the "relaxed" variant of Sect. III-D.
  bool fallback_best_effort = false;
  /// Brute-force budget: the search stops after examining this many
  /// partitions and returns the best found so far. The paper's requests
  /// carry 1–4 VMs, far below this bound.
  std::size_t max_partitions = 200000;
  /// Per-server VM cap (testbed benchmarked up to 16 VMs).
  int server_vm_cap = 16;
  /// Graceful degradation: when the proactive search cannot place a
  /// request (budget exhausted, every candidate violates QoS, or every
  /// compatible server is masked), retry it through a slot-based first-fit
  /// before rejecting. The result records which leg placed the request and
  /// why the primary failed (AllocationOutcome), so no allocation path can
  /// fail silently.
  bool degrade_to_first_fit = false;
  /// Multiplex factor of the first-fit fallback (VMs per CPU).
  int fallback_multiplex = 2;
};

/// The proactive allocator (strategies PA-1 / PA-0 / PA-0.5 of Sect. IV-D
/// are instances with α = 1, 0, 0.5).
class ProactiveAllocator final : public Allocator {
 public:
  /// Homogeneous fleet: one empirical model for every server. The database
  /// must outlive the allocator.
  ProactiveAllocator(const modeldb::ModelDatabase& db, ProactiveConfig config);

  /// Heterogeneous fleet (the paper's future work i): one model per
  /// hardware class; `ServerState::hardware` indexes into `dbs`. All
  /// databases must outlive the allocator; `dbs` must be non-empty and
  /// contain no nulls. Cost normalization references come from class 0.
  ProactiveAllocator(std::vector<const modeldb::ModelDatabase*> dbs,
                     ProactiveConfig config);

  [[nodiscard]] AllocationResult allocate(
      const std::vector<VmRequest>& vms,
      const std::vector<ServerState>& servers) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const ProactiveConfig& config() const noexcept {
    return config_;
  }
  /// The hardware-class-0 cost model (homogeneous callers' view).
  [[nodiscard]] const CostModel& cost_model() const noexcept {
    return models_.front();
  }
  /// Cost model of a hardware class; throws on an unknown class.
  [[nodiscard]] const CostModel& cost_model(int hardware) const;

 private:
  ProactiveConfig config_;
  std::vector<CostModel> models_;
  /// Degradation leg (engaged only with `degrade_to_first_fit`).
  std::optional<FirstFitAllocator> fallback_;
};

}  // namespace aeva::core
