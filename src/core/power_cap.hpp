#pragma once

/// \file power_cap.hpp
/// Cluster power budgeting.
///
/// Datacenters are routinely provisioned against a branch-circuit power
/// budget; an energy-aware allocator must be able to respect one. This
/// decorator predicts the cluster's total draw from the empirical model
/// (each busy server draws its mix's mean power) and refuses placements
/// that would exceed the cap — the request stays queued until load drains,
/// exactly like a QoS rejection.

#include <memory>

#include "core/types.hpp"
#include "modeldb/database.hpp"

namespace aeva::core {

/// Wraps any strategy with a cluster-wide power cap.
class PowerCapAllocator final : public Allocator {
 public:
  /// `inner` is owned; `db` must outlive the guard; `cap_w` > 0 is the
  /// total budget across all busy servers (idle-off machines draw 0).
  PowerCapAllocator(std::unique_ptr<Allocator> inner,
                    const modeldb::ModelDatabase& db, double cap_w);

  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

  /// Predicted cluster draw for the given states (busy servers only).
  [[nodiscard]] double predicted_power_w(
      std::span<const ServerState> servers) const;

  [[nodiscard]] double cap_w() const noexcept { return cap_w_; }

 private:
  std::unique_ptr<Allocator> inner_;
  const modeldb::ModelDatabase* db_;
  double cap_w_;
};

}  // namespace aeva::core
