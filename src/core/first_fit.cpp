#include "core/first_fit.hpp"

#include "util/error.hpp"

namespace aeva::core {

FirstFitAllocator::FirstFitAllocator(int multiplex, int cpus_per_server)
    : FirstFitAllocator(multiplex, std::vector<int>{cpus_per_server}) {}
// Ctors run once per allocator; allocate() reuses thread_local scratch.
FirstFitAllocator::FirstFitAllocator(int multiplex,
                                     std::vector<int> cpus_by_hardware)
    : multiplex_(multiplex), cpus_by_hardware_(std::move(cpus_by_hardware)) {
  AEVA_REQUIRE(multiplex >= 1, "multiplex factor must be >= 1, got ",
               multiplex);
  AEVA_REQUIRE(!cpus_by_hardware_.empty(), "need at least one hardware class");
  for (const int cpus : cpus_by_hardware_) {
    AEVA_REQUIRE(cpus >= 1, "servers need at least one CPU");
  }
}

int FirstFitAllocator::server_capacity(int hardware) const {
  AEVA_REQUIRE(hardware >= 0 && static_cast<std::size_t>(hardware) <
                                    cpus_by_hardware_.size(),
               "unknown hardware class ", hardware);
  return multiplex_ * cpus_by_hardware_[static_cast<std::size_t>(hardware)];
}

AllocationResult FirstFitAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result;
  allocate_into(vms, servers, result);
  return result;
}

void FirstFitAllocator::allocate_into(std::span<const VmRequest> vms,
                                      std::span<const ServerState> servers,
                                      AllocationResult& out) const {
  out.placements.clear();
  out.score = AllocationScore{};
  out.complete = false;
  out.satisfied_qos = true;
  out.partitions_examined = 0;
  out.outcome = AllocationOutcome{};
  if (vms.empty()) {
    out.complete = true;
    return;
  }
  if (!spread_.feasible_width(vms.size())) {
    // No split of this request across the declared domains can respect the
    // per-domain cap — terminal, not a capacity wait (docs/RESILIENCE.md).
    out.outcome = AllocationOutcome{AllocationPath::kRejected,
                                    RejectReason::kSpreadInfeasible};
    return;
  }

  // Track residual capacity without mutating the caller's states. The
  // scratch is thread_local so the const interface stays thread-safe while
  // warm calls reuse its capacity (zero heap allocations in steady state).
  thread_local std::vector<int> free_slots;
  free_slots.clear();
  free_slots.reserve(servers.size());
  for (const ServerState& server : servers) {
    free_slots.push_back(server_capacity(server.hardware) -
                         server.allocated.total());
  }
  // This request's VMs per failure domain (spread constraint only;
  // unmapped servers stay unconstrained).
  thread_local std::vector<int> domain_used;
  const bool spread_on = spread_.enabled;
  if (spread_on) {
    domain_used.assign(static_cast<std::size_t>(spread_.domain_count), 0);
  }

  for (const VmRequest& vm : vms) {
    bool placed = false;
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (free_slots[s] <= 0) {
        continue;
      }
      int domain = -1;
      if (spread_on) {
        domain = spread_.domain_of(servers[s].id);
        if (domain >= 0 &&
            domain_used[static_cast<std::size_t>(domain)] >=
                spread_.max_vms_per_domain) {
          continue;  // the request is already at its cap in this domain
        }
      }
      out.placements.push_back(Placement{vm.id, servers[s].id});
      --free_slots[s];
      if (domain >= 0) {
        ++domain_used[static_cast<std::size_t>(domain)];
      }
      placed = true;
      break;
    }
    if (!placed) {
      // All-or-nothing: the job request waits for capacity.
      out.placements.clear();
      out.complete = false;
      out.outcome = AllocationOutcome{
          AllocationPath::kRejected,
          servers.empty() ? RejectReason::kNoServers
                          : RejectReason::kNoFeasibleServer};
      return;
    }
  }
  out.complete = true;
}

std::string FirstFitAllocator::name() const {
  return multiplex_ == 1 ? "FF" : "FF-" + std::to_string(multiplex_);
}

}  // namespace aeva::core
