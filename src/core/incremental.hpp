#pragma once

/// \file incremental.hpp
/// Incremental per-server allocator state for serve mode (ROADMAP item 1).
///
/// `ProactiveAllocator::allocate` is a pure batch search: every call
/// rebuilds its evaluation context from the full server list — one model
/// estimate per server for the base energies, a fresh equivalence-group
/// index, a fresh per-shape score memo. That per-call O(fleet) setup is
/// what caps the serve loop's steady-state decision rate, not the
/// partition search itself (requests carry 1–4 VMs, so the candidate
/// space is tiny).
///
/// `FleetState` keeps that context alive between decisions, in the style
/// of redpanda's `partition_allocator` (SNIPPETS.md #2): one
/// `AllocationNode` per server carrying its cached allocation vector and
/// liveness, a **persistent equivalence-group index** (servers keyed by
/// identical (hardware class, resident mix) — the same quotient the batch
/// search rebuilds per call) with O(log n) membership updates on every
/// `allocate()`/`deallocate()` delta, and a **persistent score memo**
/// keyed by (hardware, base mix, block shape). Because the batch search's
/// per-block evaluation (`placed_on`) is a pure function of exactly that
/// key and the model database, the memo entries replay bit-for-bit across
/// decisions and never need invalidation.
///
/// `plan()` then reproduces the exhaustive search **exactly** — same
/// canonical partition enumeration, same greedy per-block server choice
/// with the same tie-breaks, same reject taxonomy and first-fit fallback
/// leg, the same doubles everywhere — while touching only the group index
/// (|groups| ≪ fleet) instead of the fleet. Steady-state decisions are
/// therefore independent of fleet size, and the exhaustive allocator
/// demotes to a periodic *oracle*: the serve layer re-runs it every N
/// sim-seconds / decisions to cross-check the incremental plan and
/// resynchronize on drift (serve::IncrementalConfig,
/// docs/ARCHITECTURE.md "Rebalancer as oracle").
///
/// Not thread-safe: one FleetState belongs to one (single-threaded) serve
/// loop, mirroring its committed state. bench/serve_latency gates the
/// p50/p99 decision-latency win and the placement/energy/makespan parity
/// against the batch search.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/cost_model.hpp"
#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "core/types.hpp"
#include "modeldb/database.hpp"
#include "workload/profile.hpp"

namespace aeva::core {

/// Cached per-server allocation state (the redpanda `allocation_node`
/// idiom): the resident class-count vector plus liveness, maintained by
/// deltas instead of being re-derived from a server list on every
/// decision.
struct AllocationNode {
  int id = 0;
  int hardware = 0;
  workload::ClassCounts allocated;
  bool powered = false;
  bool down = false;  ///< crash-masked: invisible to plan() until repair

  [[nodiscard]] bool empty() const noexcept { return allocated.total() == 0; }
};

/// Counters of the incremental planner (reset() zeroes them).
struct FleetStats {
  std::uint64_t plans = 0;          ///< plan() calls
  std::uint64_t allocs = 0;         ///< allocate() delta updates
  std::uint64_t deallocs = 0;       ///< deallocate() delta updates
  std::uint64_t memo_hits = 0;      ///< score-memo hits across plans
  std::uint64_t memo_misses = 0;    ///< score-memo fills (model estimates)
  std::uint64_t resyncs = 0;        ///< full reset() rebuilds
  /// up_servers() scratch reallocations. Grows only while the scratch
  /// capacity catches up with the fleet size; a steady-state window in
  /// which this stays flat proves the view costs zero heap allocations
  /// per call (tests/core/incremental_test.cpp pins it).
  std::uint64_t up_scratch_grows = 0;
  std::size_t groups = 0;           ///< live equivalence groups
  std::size_t memo_entries = 0;     ///< persistent score-memo size
};

/// The incremental fleet: per-server `AllocationNode`s, the persistent
/// equivalence-group index, and the persistent score memo. See the file
/// comment for the design; docs/API.md for the contract table.
class FleetState {
 public:
  /// Homogeneous fleet. The database must outlive the fleet state.
  FleetState(const modeldb::ModelDatabase& db, ProactiveConfig config);

  /// Heterogeneous fleet: one model per hardware class, exactly as the
  /// batch allocator's heterogeneous constructor. `dbs` must be non-empty
  /// and contain no nulls; all databases must outlive the fleet state.
  FleetState(std::vector<const modeldb::ModelDatabase*> dbs,
             ProactiveConfig config);

  ~FleetState();
  FleetState(FleetState&&) noexcept;
  FleetState& operator=(FleetState&&) noexcept;

  /// Rebuilds every node and the group index from authoritative server
  /// states (initial sync, snapshot restore, oracle-driven resync).
  /// Server ids must be unique; the optional `down` mask is indexed
  /// positionally and must match `servers` in size when present. The
  /// score memo survives (it is a pure function of the model database).
  void reset(std::span<const ServerState> servers,
             const std::vector<std::uint8_t>* down = nullptr);

  /// Delta update: one VM of `profile` committed to / released from the
  /// server. O(log n) group-index maintenance; throws on unknown ids,
  /// down servers, or a release that would drive a count negative.
  void allocate(int server_id, workload::ProfileClass profile, int count = 1);
  void deallocate(int server_id, workload::ProfileClass profile,
                  int count = 1);

  /// Crash masking: the server drops out of the group index (and
  /// plan()'s world) with its residents zeroed — the serve loop journals
  /// and re-admits the lost groups itself. repair() returns it cold and
  /// empty, exactly as the serve capacity model does.
  void crash(int server_id);
  void repair(int server_id);

  /// Domain-granular masking for correlated faults (docs/RESILIENCE.md,
  /// "Correlated failure domains"): crash/repair every listed server in
  /// one call — e.g. datacenter::Topology::servers_on_pdu() when a PDU
  /// feed trips. Equivalent to calling crash()/repair() per id in order —
  /// including the single-server calls' tolerance of already-masked
  /// (resp. already healthy) members, so overlapping faults compose.
  void crash_domain(std::span<const int> server_ids);
  void repair_domain(std::span<const int> server_ids);

  /// Plans a request against the cached state: bit-identical placements,
  /// score, outcome, and search effort to
  /// `ProactiveAllocator::allocate(vms, up_servers())` under the same
  /// config — with `AllocationPath::kIncremental` marking results the
  /// incremental primary search produced (the fallback/reject legs keep
  /// their batch labels). Non-const: the score memo fills lazily.
  [[nodiscard]] AllocationResult plan(std::span<const VmRequest> vms);

  /// The live (non-down) servers, in id order — the exact view the batch
  /// allocator would receive. O(fleet) to fill but allocation-free once
  /// the internal scratch has grown to fleet size: the reference aims at
  /// a reused member buffer, invalidated by the next up_servers() call
  /// (copy it if you need to hold it across fleet mutations).
  [[nodiscard]] const std::vector<ServerState>& up_servers() const;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t up_count() const noexcept { return up_count_; }
  [[nodiscard]] const AllocationNode& node(int server_id) const;
  [[nodiscard]] const ProactiveConfig& config() const noexcept {
    return config_;
  }
  /// Counters (groups/memo_entries refreshed on read).
  [[nodiscard]] FleetStats stats() const;

 private:
  /// Group key: (hardware class, resident mix) — two live servers with
  /// equal keys are interchangeable for any block up to the id tie-break.
  struct GroupKey {
    int hardware = 0;
    workload::ClassCounts mix;

    friend bool operator<(const GroupKey& a, const GroupKey& b) noexcept {
      if (a.hardware != b.hardware) return a.hardware < b.hardware;
      return a.mix < b.mix;
    }
  };

  /// Request-independent evaluation of one block shape on one group:
  /// the exact doubles `SearchContext::placed_on` would produce. A pure
  /// function of (hardware, base mix, block shape) and the database —
  /// cached forever, never invalidated.
  struct MemoEntry {
    bool feasible = false;
    double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
    /// Σ block.of(c) · time_per_class[c], summed in class order at fill
    /// time — the exact double the batch evaluator's per-block time loop
    /// produces, hoisted out of the hot path.
    double block_time = 0.0;
    double marginal_energy_j = 0.0;
  };

  /// One equivalence group: the live members (ascending id) plus the
  /// group's slice of the persistent score memo, keyed by the packed
  /// block shape. Both sides are flat sorted vectors: lookups dominate
  /// the steady-state decision cost, and contiguous binary searches /
  /// indexed member access beat node-based containers by several times
  /// (docs/PERFORMANCE.md), while updates are rare O(n) memmoves over
  /// small arrays. A slot whose members drain empty is kept — its memo is
  /// a pure function of (key, database) and stays valid if the mix ever
  /// recurs; plan() skips member-less slots.
  struct GroupSlot {
    std::vector<int> members;  ///< sorted ascending
    std::vector<std::pair<std::uint64_t, MemoEntry>> memo;
    std::uint32_t ordinal = 0;  ///< creation index (slot_order_ position)
    /// The base mix's absolute energy, filled on the slot's first memo
    /// fill: every shape's marginal energy subtracts the same base, so
    /// caching it halves the model estimates a new group costs.
    double base_energy_j = 0.0;
    bool base_known = false;
  };

  struct Planner;  // per-plan() search state, in incremental.cpp

  [[nodiscard]] const CostModel& model_of(int hardware) const;
  [[nodiscard]] AllocationNode& node_mut(int server_id);
  void index_insert(const AllocationNode& node);
  void index_erase(const AllocationNode& node);
  [[nodiscard]] const MemoEntry& memo_entry(const GroupKey& group,
                                            GroupSlot& slot,
                                            std::uint64_t shape_key,
                                            const workload::ClassCounts& block);

  ProactiveConfig config_;
  std::vector<CostModel> models_;
  /// Largest per-class time any feasible mix can estimate to, measured by
  /// the constructor's warmup sweep: a request whose class deadlines all
  /// sit at or above this bound provably passes every per-block QoS
  /// check, letting plan() take the QoS-free fold.
  double max_time_s_ = 0.0;
  bool prune_enabled_ = false;  ///< same arming condition as the batch search
  /// Degradation leg, mirroring the batch allocator's fallback chain.
  std::optional<FirstFitAllocator> fallback_;

  std::vector<AllocationNode> nodes_;
  std::map<int, std::size_t> by_id_;  ///< server id → nodes_ index
  std::size_t up_count_ = 0;
  /// The persistent group index: ordered members, ascending id — the
  /// "first unused member" a candidate's greedy scan must pick is always
  /// the k-th smallest (earlier blocks of a candidate consume a prefix).
  /// Each slot carries its own memo slice so the hot path's lookups are
  /// small integer-keyed maps, not one big composite-keyed map
  /// (docs/PERFORMANCE.md "Decision latency").
  std::map<GroupKey, GroupSlot> groups_;
  /// Creation-ordered view of every slot — the group-key *universe*,
  /// which only ever grows (slots are never erased). Positions are the
  /// stable ordinals the planner's cross-plan caches are indexed by:
  /// when a never-seen mix appears the caches extend append-only, and
  /// membership churn, drains, and revivals invalidate nothing (drained
  /// groups are skipped by the availability check). Pointers target
  /// std::map nodes, so they stay valid across insertions and moves.
  std::vector<std::pair<const GroupKey*, GroupSlot*>> slot_order_;
  /// members.size() per slot ordinal, maintained O(1) on every delta: a
  /// contiguous availability array, so the planner's candidate walk skips
  /// drained or saturated groups without chasing into map nodes.
  std::vector<std::uint32_t> member_count_;
  /// members.front() per slot ordinal (0 when drained): the planner's
  /// common case — a group not yet used by the candidate under
  /// evaluation — reads its tie-break id from this dense array instead
  /// of chasing into the map node.
  std::vector<int> head_id_;
  /// The ordinals with members right now, in arbitrary order (swap-remove
  /// maintenance via live_pos_). The planner's candidate fold touches
  /// exactly these |live| ≪ |universe| groups, and its lazy evaluation
  /// only ever computes cells for mixes that are actually resident.
  std::vector<std::uint32_t> live_order_;
  std::vector<std::uint32_t> live_pos_;  ///< ordinal → live_order_ index
  /// Bumped whenever the live set *gains* an ordinal (a drain never adds
  /// uncovered work): the planner's per-shape coverage stamp.
  std::uint64_t live_grow_stamp_ = 0;
  /// Lazily created, reused across plan() calls: every scratch vector
  /// keeps its capacity, so a warm decision allocates nothing.
  std::unique_ptr<Planner> scratch_;
  /// up_servers() view buffer, reused across calls (capacity retained;
  /// growth events are counted in FleetStats::up_scratch_grows).
  mutable std::vector<ServerState> up_scratch_;
  mutable FleetStats stats_;
};

}  // namespace aeva::core
