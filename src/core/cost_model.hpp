#pragma once

/// \file cost_model.hpp
/// Cost estimation on top of the empirical model database: feasibility of a
/// per-server mix, estimated per-VM execution times, marginal energy, and
/// the normalization references used by the α-weighted rank.

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "modeldb/database.hpp"
#include "modeldb/estimate_cache.hpp"
#include "workload/profile.hpp"

namespace aeva::core {

/// Thin, cache-friendly view over the model database used by the proactive
/// allocator and the datacenter accountant. Holds a reference — the
/// database must outlive the model.
class CostModel {
 public:
  /// `server_vm_cap` bounds the total VMs per server (the testbed was
  /// benchmarked up to 16); `idle_power_w` is the fixed draw of a powered
  /// server (125 W in the paper's evaluation), used to separate dynamic
  /// from baseline energy.
  explicit CostModel(const modeldb::ModelDatabase& db, int server_vm_cap = 16,
                     double idle_power_w = 125.0);

  /// A mix is an admissible allocation candidate when its total is within
  /// the per-server cap and each class count is within the measured
  /// optimal-scenario box [0..OSC]×[0..OSM]×[0..OSI].
  [[nodiscard]] bool feasible(workload::ClassCounts mix) const noexcept;

  /// Estimated outcome of running `mix` on one server (paper lookup
  /// semantics — exact or proportional). Routed through the memo cache
  /// when one is attached; results are bit-identical either way.
  [[nodiscard]] modeldb::Record estimate(workload::ClassCounts mix) const {
    return memo_ != nullptr ? memo_->estimate(mix) : db_->estimate(mix);
  }

  /// Attaches a shared memo cache (must wrap the same database; thread-
  /// safe, so one cache may serve many models and search workers). Pass
  /// nullptr to detach.
  void set_estimate_cache(std::shared_ptr<const modeldb::EstimateCache> memo);

  /// Estimated execution time of one VM of `profile` inside `mix`.
  [[nodiscard]] double vm_time_s(workload::ProfileClass profile,
                                 workload::ClassCounts mix) const;

  /// Energy of running `mix` to completion on one server; 0 for an empty
  /// mix.
  [[nodiscard]] double mix_energy_j(workload::ClassCounts mix) const;

  /// Energy of `mix` above the idle baseline: E − idle_power · T. This is
  /// the quantity the energy goal (α → 1) must minimize in a datacenter
  /// whose powered servers dissipate the baseline regardless of placement
  /// (Sect. IV-A); ranking by total energy would reward slow, dense
  /// packings whose idle-time cost the cluster pays anyway.
  [[nodiscard]] double dynamic_energy_j(workload::ClassCounts mix) const;

  /// Solo execution time T* of the class (Table I).
  [[nodiscard]] double solo_time_s(workload::ProfileClass profile) const;

  /// Solo energy of one VM of the class (pure single-VM database entry).
  [[nodiscard]] double solo_energy_j(workload::ProfileClass profile) const;

  /// Solo *dynamic* energy of one VM of the class.
  [[nodiscard]] double solo_dynamic_energy_j(
      workload::ProfileClass profile) const;

  /// Mean solo time over a request mix — the time-normalization reference.
  [[nodiscard]] double time_reference_s(workload::ClassCounts request) const;

  /// Mean solo dynamic energy per VM over a request mix — the energy
  /// normalization reference of the α-weighted rank.
  [[nodiscard]] double energy_reference_j(workload::ClassCounts request) const;

  [[nodiscard]] int server_vm_cap() const noexcept { return cap_; }
  [[nodiscard]] double idle_power_w() const noexcept { return idle_power_w_; }
  [[nodiscard]] const modeldb::ModelDatabase& db() const noexcept {
    return *db_;
  }

 private:
  const modeldb::ModelDatabase* db_;
  int cap_;
  double idle_power_w_;
  std::shared_ptr<const modeldb::EstimateCache> memo_;
};

}  // namespace aeva::core
