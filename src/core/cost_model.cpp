#include "core/cost_model.hpp"

#include "util/error.hpp"

namespace aeva::core {

using workload::ClassCounts;
using workload::ProfileClass;

CostModel::CostModel(const modeldb::ModelDatabase& db, int server_vm_cap,
                     double idle_power_w)
    : db_(&db), cap_(server_vm_cap), idle_power_w_(idle_power_w) {
  AEVA_REQUIRE(server_vm_cap >= 1, "per-server VM cap must be >= 1");
  AEVA_REQUIRE(idle_power_w >= 0.0, "negative idle power");
}

void CostModel::set_estimate_cache(
    std::shared_ptr<const modeldb::EstimateCache> memo) {
  AEVA_REQUIRE(memo == nullptr || &memo->db() == db_,
               "memo cache wraps a different database");
  memo_ = std::move(memo);
}

bool CostModel::feasible(ClassCounts mix) const noexcept {
  if (mix.cpu < 0 || mix.mem < 0 || mix.io < 0) {
    return false;
  }
  const int total = mix.total();
  if (total == 0) {
    return true;  // an empty server is always fine
  }
  if (total > cap_) {
    return false;
  }
  // Allocation candidates are confined to the measured optimal-scenario
  // box [0..OSC]×[0..OSM]×[0..OSI] (Sect. III-B): the campaign never
  // benchmarks beyond OS* per class, and the base tests show that denser
  // same-type packings degrade individual completion times even where the
  // avgTimeVM metric stays flat.
  const modeldb::BaseParameters& base = db_->base();
  return mix.cpu <= base.cpu.os() && mix.mem <= base.mem.os() &&
         mix.io <= base.io.os();
}

double CostModel::vm_time_s(ProfileClass profile, ClassCounts mix) const {
  AEVA_REQUIRE(mix.of(profile) > 0, "mix contains no VM of class ",
               workload::to_string(profile));
  return estimate(mix).time_of(profile);
}

double CostModel::mix_energy_j(ClassCounts mix) const {
  if (mix.total() == 0) {
    return 0.0;
  }
  return estimate(mix).energy_j;
}

double CostModel::dynamic_energy_j(ClassCounts mix) const {
  if (mix.total() == 0) {
    return 0.0;
  }
  const modeldb::Record rec = estimate(mix);
  // Never negative: measured mixes always draw at least the baseline.
  const double dynamic = rec.energy_j - idle_power_w_ * rec.time_s;
  return dynamic > 0.0 ? dynamic : 0.0;
}

double CostModel::solo_time_s(ProfileClass profile) const {
  return db_->base().of(profile).solo_time_s;
}

double CostModel::solo_energy_j(ProfileClass profile) const {
  ClassCounts solo;
  solo.of(profile) = 1;
  return estimate(solo).energy_j;
}

double CostModel::solo_dynamic_energy_j(ProfileClass profile) const {
  ClassCounts solo;
  solo.of(profile) = 1;
  return dynamic_energy_j(solo);
}

double CostModel::time_reference_s(ClassCounts request) const {
  AEVA_REQUIRE(request.total() > 0, "empty request");
  double acc = 0.0;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    acc += request.of(profile) * solo_time_s(profile);
  }
  return acc / request.total();
}

double CostModel::energy_reference_j(ClassCounts request) const {
  AEVA_REQUIRE(request.total() > 0, "empty request");
  double acc = 0.0;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    acc += request.of(profile) * solo_energy_j(profile);
  }
  return acc / request.total();
}

}  // namespace aeva::core
