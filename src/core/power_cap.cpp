#include "core/power_cap.hpp"

#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::core {

PowerCapAllocator::PowerCapAllocator(std::unique_ptr<Allocator> inner,
                                     const modeldb::ModelDatabase& db,
                                     double cap_w)
    : inner_(std::move(inner)), db_(&db), cap_w_(cap_w) {
  AEVA_REQUIRE(inner_ != nullptr, "null inner allocator");
  AEVA_REQUIRE(cap_w_ > 0.0, "power cap must be positive, got ", cap_w);
}

double PowerCapAllocator::predicted_power_w(
    std::span<const ServerState> servers) const {
  double total = 0.0;
  for (const ServerState& server : servers) {
    if (server.allocated.total() > 0) {
      total += db_->estimate(server.allocated).avg_power_w();
    }
  }
  return total;
}

AllocationResult PowerCapAllocator::allocate(
    std::span<const VmRequest> vms,
    std::span<const ServerState> servers) const {
  AllocationResult result = inner_->allocate(vms, servers);
  if (!result.complete || result.placements.empty()) {
    return result;
  }
  // Apply the placements to a scratch copy and re-predict the draw.
  std::map<int, workload::ClassCounts> mixes;
  for (const ServerState& server : servers) {
    mixes[server.id] = server.allocated;
  }
  std::map<std::int64_t, workload::ProfileClass> profile_of;
  for (const VmRequest& vm : vms) {
    profile_of[vm.id] = vm.profile;
  }
  for (const Placement& placement : result.placements) {
    ++mixes[placement.server_id].of(profile_of.at(placement.vm_id));
  }
  double total = 0.0;
  for (const auto& [id, mix] : mixes) {
    if (mix.total() > 0) {
      total += db_->estimate(mix).avg_power_w();
    }
  }
  if (total > cap_w_) {
    // Over budget: the request waits for load to drain.
    AllocationResult rejected;
    rejected.partitions_examined = result.partitions_examined;
    rejected.outcome = AllocationOutcome{AllocationPath::kRejected,
                                         RejectReason::kGuardRejected};
    return rejected;
  }
  return result;
}

std::string PowerCapAllocator::name() const {
  return "CAP" + util::format_fixed(cap_w_ / 1000.0, 1) + "kW(" +
         inner_->name() + ")";
}

}  // namespace aeva::core
