#pragma once

/// \file first_fit.hpp
/// The paper's baseline strategies (Sect. IV-D):
///
///  * FIRST-FIT (FF): an incoming job request is allocated to the first
///    available server until the number of allocated VMs equals the number
///    of CPUs (no VM multiplexing on CPUs).
///  * FIRST-FIT-2 / FIRST-FIT-3 (FF-2, FF-3): variants allowing up to 2 or
///    3 VMs multiplexed on each CPU.

#include <utility>

#include "core/types.hpp"

namespace aeva::core {

/// First-fit by CPU slots, blind to application profiles.
class FirstFitAllocator final : public Allocator {
 public:
  /// `multiplex` = VMs allowed per CPU (1 → FF, 2 → FF-2, 3 → FF-3);
  /// `cpus_per_server` matches the testbed (4).
  explicit FirstFitAllocator(int multiplex, int cpus_per_server = 4);

  /// Heterogeneous fleet: CPUs per hardware class, indexed by
  /// `ServerState::hardware` (must be non-empty, all entries ≥ 1).
  FirstFitAllocator(int multiplex, std::vector<int> cpus_by_hardware);

  /// Engages the per-job failure-domain spread constraint
  /// (docs/RESILIENCE.md "Correlated failure domains"): at most
  /// SpreadConfig::max_vms_per_domain VMs of one request per domain,
  /// with structurally-too-wide requests rejected as kSpreadInfeasible.
  /// Disabled configs are inert (bit-identical to the spread-free scan).
  void set_spread(SpreadConfig spread) { spread_ = std::move(spread); }
  [[nodiscard]] const SpreadConfig& spread() const noexcept {
    return spread_;
  }

  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  /// Zero-alloc override: fills `out` in place (placements capacity
  /// retained) and tracks residual slots in a thread-local scratch that
  /// keeps its capacity, so a warm call performs no heap allocation.
  void allocate_into(std::span<const VmRequest> vms,
                     std::span<const ServerState> servers,
                     AllocationResult& out) const override;

  [[nodiscard]] std::string name() const override;

  /// VM capacity of a class-0 server under this strategy.
  [[nodiscard]] int server_capacity() const noexcept {
    return multiplex_ * cpus_by_hardware_.front();
  }

  /// VM capacity of a server of the given hardware class; throws on an
  /// unknown class.
  [[nodiscard]] int server_capacity(int hardware) const;

 private:
  int multiplex_;
  std::vector<int> cpus_by_hardware_;
  SpreadConfig spread_;
};

}  // namespace aeva::core
