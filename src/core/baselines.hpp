#pragma once

/// \file baselines.hpp
/// State-of-the-art baseline allocators beyond the paper's first-fit
/// family. The paper lists "compare our proposed solution against some of
/// the state of the art … by implementing them" as ongoing work
/// (Sect. V); these are the classic slot- and vector-packing heuristics
/// that the consolidation literature it cites ([5], [15]) builds on:
///
///  * BEST-FIT   — place on the feasible server with the *least* remaining
///                 slots (tightest fit; classic bin-packing heuristic).
///  * WORST-FIT  — place on the feasible server with the *most* remaining
///                 slots (load levelling).
///  * RANDOM-FIT — place uniformly at random among feasible servers
///                 (seeded, deterministic), the usual sanity baseline.
///  * VECTOR-FIT — dot-product vector bin packing (Panigrahy et al.):
///                 application-aware through per-class average demand
///                 vectors, but model-free — the strongest non-empirical
///                 competitor to the paper's database-driven approach.

#include <array>
#include <cstdint>
#include <utility>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace aeva::core {

/// Slot-based best-fit / worst-fit over CPU slots, mirroring the paper's
/// first-fit capacity rule (multiplex × CPUs VMs per server).
class SlotFitAllocator final : public Allocator {
 public:
  enum class Policy { kBestFit, kWorstFit };

  SlotFitAllocator(Policy policy, int multiplex, int cpus_per_server = 4);

  /// Per-job failure-domain spread constraint (docs/RESILIENCE.md,
  /// "Correlated failure domains"); a disabled config is inert and the
  /// scan stays bit-identical to the spread-free baseline.
  void set_spread(SpreadConfig spread) { spread_ = std::move(spread); }

  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] int server_capacity() const noexcept {
    return multiplex_ * cpus_per_server_;
  }

 private:
  Policy policy_;
  int multiplex_;
  int cpus_per_server_;
  SpreadConfig spread_;
};

/// Uniform random placement among servers with a free slot. Deterministic
/// in its seed; a fresh stream is derived per allocate() call from the
/// request ids so repeated identical calls stay reproducible.
class RandomFitAllocator final : public Allocator {
 public:
  RandomFitAllocator(std::uint64_t seed, int multiplex,
                     int cpus_per_server = 4);

  /// As SlotFitAllocator::set_spread. The quota filter narrows the
  /// candidate set *before* the uniform pick, so the RNG stream still
  /// advances once per VM.
  void set_spread(SpreadConfig spread) { spread_ = std::move(spread); }

  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

 private:
  std::uint64_t seed_;
  int multiplex_;
  int cpus_per_server_;
  SpreadConfig spread_;
};

/// Per-VM resource demand vector used by VECTOR-FIT (normalized to server
/// capacity per dimension).
struct DemandVector {
  double cpu = 0.0;   ///< cores / server cores
  double mem = 0.0;   ///< resident footprint / guest memory
  double disk = 0.0;  ///< MB/s / aggregate disk bandwidth
  double net = 0.0;   ///< MB/s / aggregate NIC bandwidth
};

/// Capacity- and demand-vector-aware packing: each VM consumes its class's
/// normalized demand vector; a server fits a VM when every dimension stays
/// below `overcommit`; among fitting servers the one with the largest
/// dot-product between the VM demand and the remaining capacity wins
/// (Panigrahy et al. dot-product heuristic). Ties → first server.
class VectorFitAllocator final : public Allocator {
 public:
  /// `demands` indexed by ProfileClass. `overcommit` ≥ 1 allows bounded
  /// oversubscription per dimension (1.0 = strict vector bin packing).
  VectorFitAllocator(
      std::array<DemandVector, workload::kProfileClassCount> demands,
      double overcommit = 1.0);

  /// Builds the per-class demand vectors from the canonical benchmark
  /// models on the given server hardware.
  [[nodiscard]] static VectorFitAllocator from_registry(double overcommit);

  /// As SlotFitAllocator::set_spread.
  void set_spread(SpreadConfig spread) { spread_ = std::move(spread); }

  [[nodiscard]] AllocationResult allocate(
      std::span<const VmRequest> vms,
      std::span<const ServerState> servers) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const DemandVector& demand_of(
      workload::ProfileClass profile) const {
    return demands_[static_cast<std::size_t>(profile)];
  }

 private:
  std::array<DemandVector, workload::kProfileClassCount> demands_;
  double overcommit_;
  SpreadConfig spread_;
};

}  // namespace aeva::core
