#include "core/incremental.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "modeldb/estimate_cache.hpp"
#include "partition/typed_partition.hpp"
#include "util/error.hpp"

namespace aeva::core {

using workload::ClassCounts;
using workload::ProfileClass;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Packed shape key (counts fit 21 bits each by construction).
[[nodiscard]] std::uint64_t shape_key_of(const ClassCounts& counts) noexcept {
  return static_cast<std::uint64_t>(counts.cpu) << 42 |
         static_cast<std::uint64_t>(counts.mem) << 21 |
         static_cast<std::uint64_t>(counts.io);
}

/// One placed block of a candidate under evaluation. Mirrors the batch
/// search's PlacedBlock (proactive.cpp) except the server is identified by
/// id — the serve fleet's ids are exactly the batch up-vector's positions
/// in order, so id comparisons reproduce the index tie-breaks.
struct PlacedBlock {
  ClassCounts block;
  int server_id = 0;
  std::size_t group_ordinal = 0;  ///< per-plan group-snapshot index
  double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
  double marginal_energy_j = 0.0;
  double contribution = 0.0;  ///< exact α-rank term (bound arithmetic)
};

/// Scalar outcome of one candidate evaluation (mirror of EvalOutcome).
struct EvalOutcome {
  double est_time_s = 0.0;
  double est_energy_j = 0.0;
  double combined = 0.0;
  bool qos_ok = true;
};

/// A fully evaluated incumbent candidate. Lives in the persistent scratch:
/// `valid` flips instead of optional re-construction, and blocks.assign
/// reuses the vector's capacity — an improving candidate costs no
/// allocation on a warm planner.
struct Incumbent {
  bool valid = false;
  std::vector<PlacedBlock> blocks;
  double est_time_s = 0.0;
  double est_energy_j = 0.0;
  double combined = 0.0;
  bool qos_ok = true;
  std::size_t index = 0;

  void adopt(const EvalOutcome& out, const std::vector<PlacedBlock>& placed,
             std::size_t at) {
    valid = true;
    blocks.assign(placed.begin(), placed.end());
    est_time_s = out.est_time_s;
    est_energy_j = out.est_energy_j;
    combined = out.combined;
    qos_ok = out.qos_ok;
    index = at;
  }
};

/// Running optima with the batch search's deterministic tie-break:
/// strictly smaller rank wins; equal ranks keep the earlier candidate in
/// canonical enumeration order.
struct SearchBest {
  Incumbent any;
  Incumbent qos;

  void reset() {
    any.valid = false;
    qos.valid = false;
  }

  void consider(const EvalOutcome& out,
                const std::vector<PlacedBlock>& blocks, std::size_t index) {
    const bool better_any =
        !any.valid || out.combined < any.combined ||
        (out.combined == any.combined && index < any.index);
    const bool better_qos =
        out.qos_ok &&
        (!qos.valid || out.combined < qos.combined ||
         (out.combined == qos.combined && index < qos.index));
    if (better_any) {
      any.adopt(out, blocks, index);
    }
    if (better_qos) {
      qos.adopt(out, blocks, index);
    }
  }
};

}  // namespace

/// Per-plan() search state: the request context, a positional snapshot of
/// the live groups, and the prefix-incremental evaluation stack. Every
/// double below is produced by the same expressions as proactive.cpp's
/// SearchContext/IncrementalEvaluator, so candidate ranks — and hence the
/// chosen placement — are bitwise identical to the batch search over
/// up_servers().
///
/// One Planner lives in FleetState::scratch_ for the fleet's lifetime:
/// begin_plan() clears every buffer but keeps its capacity, so a warm
/// decision performs no allocation at all. The fleet/config pointers are
/// refreshed on every plan() — they never outlive a call, which keeps the
/// scratch safe across FleetState moves.
struct FleetState::Planner {
  FleetState* fleet = nullptr;
  const ProactiveConfig* config = nullptr;

  // --- request context (mirrors SearchContext) ----------------------------
  double n_vms = 0.0;
  double time_ref = 0.0;
  double energy_ref = 0.0;
  std::vector<double> deadlines[workload::kProfileClassCount];
  /// Tightest deadline per class (+inf when the class has none): the
  /// per-block QoS pre-check compares one stored double against it
  /// instead of re-touching the deadline lists.
  double qos_threshold[workload::kProfileClassCount] = {kInf, kInf, kInf};
  /// Every class threshold sits at or above the database's maximum
  /// estimated time (FleetState::max_time_s_), so qos_pass is provably
  /// true for every entry and the fold can skip it entirely.
  bool qos_vacuous = false;
  bool prune = false;

  // --- group universe (fleet->slot_order_, stable ordinals) ---------------
  /// Members a candidate has consumed per group ordinal. Every greedy
  /// pick takes the smallest unused id of its group, so consumed members
  /// are always a prefix of the ascending member set — the next free
  /// member is the used_count-th smallest. uint32 keeps the whole
  /// universe's availability state within a few cache lines.
  std::vector<std::uint32_t> used_count;

  // --- cross-plan shape evaluations ---------------------------------------
  /// Request-dependent view over a memo entry: the same derived doubles
  /// the batch IncrementalEvaluator computes per (shape, group). Every
  /// input (memo entry, n_vms, time_ref, energy_ref) is a pure function
  /// of the request's class counts and the database, so the entry is
  /// valid for every plan of the same counts — only the per-request QoS
  /// deadlines vary, and those are checked per plan (qos_pass).
  struct CachedEval {
    bool feasible = false;
    double sel_rank = 0.0;
    double contribution = 0.0;
    double marginal_energy_j = 0.0;
    double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
  };
  /// One block shape's evaluations over the group universe, indexed by
  /// the stable slot ordinal. Cells are computed lazily — only for groups
  /// that are *live* when the shape is used, so universe growth from
  /// transient mixes costs nothing — and are never invalidated:
  /// membership churn, drains, and revivals change nothing a cached
  /// double depends on.
  struct CachedShape {
    std::uint64_t key = 0;  ///< packed shape, for lazy memo lookups
    ClassCounts block;      ///< the shape itself
    /// Cheapest feasible contribution over every *computed* cell. Live
    /// groups are always covered before use (ready()), so this is a
    /// lower bound on the live-group fold the batch search prunes with —
    /// pruning against it can only be (harmlessly) more conservative;
    /// pruning never changes results or the partitions-examined count.
    double min_contrib = kInf;
    std::vector<CachedEval> evals;  ///< by slot ordinal
    /// The candidate fold's working set, packed: one entry per feasible
    /// group of the *live set as of the last coverage sweep* — a few
    /// contiguous cache lines instead of ordinal-indexed scatter, so the
    /// scan survives the cache pressure of whatever runs between
    /// decisions. Groups that drained since the sweep carry zero
    /// availability and are skipped by the counter check; a drain never
    /// bumps the stamp precisely because this filter makes it harmless.
    struct FoldEntry {
      double rank = 0.0;  ///< selection_rank (finite: feasible only)
      double time_per_class[workload::kProfileClassCount] = {0.0, 0.0, 0.0};
      std::uint32_t g = 0;  ///< slot ordinal
    };
    std::vector<FoldEntry> fold;
    /// Dense in-fold flags parallel to evals: the coverage sweep appends
    /// only groups not yet folded, so a stamp bump costs O(live) byte
    /// probes, not a rebuild. The fold therefore covers the *ever-live*
    /// set; it is compacted back to the current live set whenever it
    /// outgrows it 2x.
    std::vector<std::uint8_t> folded;
    /// Dense has-been-computed flags parallel to evals (cells never
    /// invalidate): the coverage sweep reads this byte array — a couple
    /// of cache lines for the whole universe — instead of striding
    /// through the wide eval structs.
    std::vector<std::uint8_t> done;
    /// Coverage stamp against FleetState::live_grow_stamp_: when equal,
    /// every live group's cell is computed and ready() is a no-op.
    std::uint64_t live_stamp = ~std::uint64_t{0};
  };
  /// One canonical partition of the request, with its block shapes
  /// pre-resolved and the common-prefix length against the previous
  /// partition in enumeration order precomputed — the warm path never
  /// packs a key, compares counts, or touches the enumerator again.
  struct CachedPartition {
    partition::TypedPartition blocks;
    std::vector<CachedShape*> shapes;  ///< parallel to blocks; stable ptrs
    std::size_t lcp = 0;  ///< shared prefix with the previous partition
  };
  struct PartitionList {
    std::vector<CachedPartition> items;  ///< enumeration order, budgeted
  };
  /// Everything ever derived for one request class-count key: the shape
  /// evaluations (unique_ptr keeps their addresses stable across sorted
  /// insertion) and the partition lists per effective block limit.
  struct RequestCache {
    std::vector<std::pair<std::uint64_t, std::unique_ptr<CachedShape>>>
        shapes;  ///< sorted by packed shape key
    /// Effective limit → list. min(up servers, request size) has a
    /// handful of values over a fleet's life; linear scan.
    std::vector<std::pair<std::size_t, PartitionList>> by_limit;
  };
  std::map<std::uint64_t, RequestCache> request_caches;

  // --- prefix-incremental evaluation stack ---------------------------------
  std::vector<PlacedBlock> placed;
  std::vector<double> bound_after;
  std::vector<double> times;  ///< QoS sort buffer

  // --- incumbents and the VM→slot mapping scratch --------------------------
  SearchBest best;
  std::vector<const VmRequest*> class_vms;
  struct MapSlot {
    double time = 0.0;
    int server_id = 0;
  };
  std::vector<MapSlot> map_slots;

  /// Rewinds every per-plan buffer, keeping capacity.
  void begin_plan(FleetState& owner) {
    fleet = &owner;
    config = &owner.config_;
    for (auto& list : deadlines) {
      list.clear();
    }
    used_count.assign(owner.slot_order_.size(), 0);
    placed.clear();
    bound_after.clear();
    best.reset();
  }

  /// place_block's server-ordering rank — the exact expression of
  /// SearchContext::selection_rank.
  [[nodiscard]] double selection_rank(const MemoEntry& entry,
                                      double time_contrib,
                                      const ClassCounts& block) const {
    const double energy_norm =
        entry.marginal_energy_j / (n_vms * energy_ref);
    const double time_norm = time_contrib / block.total() / time_ref;
    return config->goal == ProactiveGoal::kEnergyDelayProduct
               ? std::max(energy_norm, 0.0) * time_norm
               : config->alpha * energy_norm +
                     (1.0 - config->alpha) * time_norm;
  }

  /// The block's exact contribution to the final α-rank — the exact
  /// expression of SearchContext::rank_contribution (the entry's
  /// block_time was summed in the same class order at fill time).
  [[nodiscard]] double rank_contribution(const MemoEntry& entry) const {
    return config->alpha * entry.marginal_energy_j / (n_vms * energy_ref) +
           (1.0 - config->alpha) * entry.block_time / (n_vms * time_ref);
  }

  /// Derives one (shape, group) cell from the persistent score memo. Each
  /// cell is computed exactly once over the fleet's lifetime; every later
  /// plan replays the cached doubles bit-for-bit.
  void compute_cell(CachedShape& cs, std::size_t g) {
    CachedEval& eval = cs.evals[g];
    cs.done[g] = 1;
    const MemoEntry& entry =
        fleet->memo_entry(*fleet->slot_order_[g].first,
                          *fleet->slot_order_[g].second, cs.key, cs.block);
    if (entry.feasible) {
      eval.feasible = true;
      for (std::size_t ci = 0; ci < workload::kProfileClassCount; ++ci) {
        eval.time_per_class[ci] = entry.time_per_class[ci];
      }
      eval.marginal_energy_j = entry.marginal_energy_j;
      eval.sel_rank = selection_rank(entry, entry.block_time, cs.block);
      eval.contribution = rank_contribution(entry);
      cs.min_contrib = std::min(cs.min_contrib, eval.contribution);
    }
  }

  /// The shape, guaranteed to cover every live group. Drains only shrink
  /// the live set, so the stamp re-validates — and triggers the O(live)
  /// coverage sweep — only after a group (re)gains its first member.
  [[nodiscard]] CachedShape& ready(CachedShape& cs) {
    if (cs.live_stamp != fleet->live_grow_stamp_) {
      const std::size_t universe = fleet->slot_order_.size();
      if (cs.evals.size() < universe) {
        cs.evals.resize(universe);
        cs.done.resize(universe, 0);
        cs.folded.resize(universe, 0);
      }
      if (cs.fold.size() > 2 * fleet->live_order_.size() + 8) {
        cs.fold.clear();
        std::fill(cs.folded.begin(), cs.folded.end(), std::uint8_t{0});
      }
      for (const std::uint32_t g : fleet->live_order_) {
        if (!cs.done[g]) {
          compute_cell(cs, g);
        }
        if (cs.folded[g]) {
          continue;
        }
        const CachedEval& eval = cs.evals[g];
        if (eval.feasible) {
          cs.folded[g] = 1;
          CachedShape::FoldEntry entry;
          entry.rank = eval.sel_rank;
          for (std::size_t ci = 0; ci < workload::kProfileClassCount; ++ci) {
            entry.time_per_class[ci] = eval.time_per_class[ci];
          }
          entry.g = g;
          cs.fold.push_back(entry);
        }
      }
      cs.live_stamp = fleet->live_grow_stamp_;
    }
    return cs;
  }

  /// Finds or creates the cached-shape cell for `block` (no evaluation —
  /// ready() extends lazily on first use).
  [[nodiscard]] CachedShape* resolve_shape(RequestCache& cache,
                                           const ClassCounts& block) {
    const std::uint64_t key = shape_key_of(block);
    auto pos = std::lower_bound(
        cache.shapes.begin(), cache.shapes.end(), key,
        [](const std::pair<std::uint64_t, std::unique_ptr<CachedShape>>& e,
           std::uint64_t k) { return e.first < k; });
    if (pos == cache.shapes.end() || pos->first != key) {
      auto created = std::make_unique<CachedShape>();
      created->key = key;
      created->block = block;
      pos = cache.shapes.insert(pos, {key, std::move(created)});
    }
    return pos->second.get();
  }

  /// The request's partition list under `limit` (the effective block
  /// bound), enumerating and caching it on first sight. Enumeration
  /// inputs (model feasibility, the partition budget) are fleet
  /// constants, so the canonical order — and with it every lcp — is
  /// reproduced exactly on every later plan.
  [[nodiscard]] const PartitionList& partition_list(
      RequestCache& cache, const ClassCounts& request, std::size_t limit) {
    for (auto& [l, list] : cache.by_limit) {
      if (l == limit) {
        // Reusing the list replays one memo entry per shape reference
        // without touching the memo — keep the hit counter meaningful.
        fleet->stats_.memo_hits += cache.shapes.size();
        return list;
      }
    }
    cache.by_limit.emplace_back(limit, PartitionList{});
    PartitionList& list = cache.by_limit.back().second;
    const auto block_ok = [this](const ClassCounts& block) {
      for (const CostModel& model : fleet->models_) {
        if (model.feasible(block)) {
          return true;
        }
      }
      return false;
    };
    const std::size_t budget = config->max_partitions;
    (void)partition::for_each_typed_partition(
        request, block_ok, limit,
        [&](const partition::TypedPartition& blocks) {
          CachedPartition cp;
          cp.blocks = blocks;
          cp.shapes.reserve(blocks.size());
          for (const ClassCounts& block : blocks) {
            cp.shapes.push_back(resolve_shape(cache, block));
          }
          if (!list.items.empty()) {
            const partition::TypedPartition& prev = list.items.back().blocks;
            const std::size_t bound = std::min(prev.size(), blocks.size());
            while (cp.lcp < bound && blocks[cp.lcp] == prev[cp.lcp]) {
              ++cp.lcp;
            }
          }
          list.items.push_back(std::move(cp));
          return list.items.size() < budget;
        });
    return list;
  }

  /// Per-plan QoS pre-check over a cached evaluation — the exact
  /// class-threshold comparison placed_on performs, recomputed each plan
  /// because deadlines vary per request even when the counts recur.
  [[nodiscard]] bool qos_pass(const CachedShape::FoldEntry& eval,
                              const ClassCounts& block) const {
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      const auto ci = static_cast<std::size_t>(profile);
      if (block.of(profile) > 0 &&
          eval.time_per_class[ci] > qos_threshold[ci]) {
        return false;
      }
    }
    return true;
  }

  /// Greedy server choice for one block: the winning (qos desc, sel_rank
  /// asc) group, ties to the smallest unused member id — exactly the
  /// server the batch index-order scan keeps (ids ascend with up-vector
  /// positions). An order-independent min-fold over the live groups, so
  /// the live list's arbitrary order is irrelevant, and |live| ≪
  /// |universe| keeps the scan a handful of cache lines.
  [[nodiscard]] std::optional<PlacedBlock> place_grouped(
      CachedShape& shape, const ClassCounts& block) {
    const CachedShape& cs = ready(shape);
    const std::uint32_t* capacity = fleet->member_count_.data();
    const std::uint32_t* used = used_count.data();
    // The tie-break id is fetched lazily — on an exact rank tie and once
    // for the winner — and needs the map node only when the candidate
    // already consumed members of the group, which a 1–4 VM request
    // almost never does.
    const auto id_of = [&](std::uint32_t g) {
      return used[g] == 0 ? fleet->head_id_[g]
                          : fleet->slot_order_[g].second->members[used[g]];
    };
    const CachedShape::FoldEntry* win = nullptr;
    int win_id = -1;  ///< -1 = not fetched yet
    if (qos_vacuous) {
      // Every group passes QoS vacuously, so the winner is the plain
      // (sel_rank asc, id asc) minimum over the packed entries.
      for (const CachedShape::FoldEntry& entry : cs.fold) {
        const std::uint32_t g = entry.g;
        if (used[g] >= capacity[g]) {
          continue;  // drained since the sweep, or consumed by this candidate
        }
        if (win == nullptr || entry.rank < win->rank) {
          win = &entry;
          win_id = -1;
        } else if (entry.rank == win->rank) {
          if (win_id < 0) {
            win_id = id_of(win->g);
          }
          const int id = id_of(g);
          if (id < win_id) {
            win = &entry;
            win_id = id;
          }
        }
      }
    } else {
      const CachedShape::FoldEntry* fallback = nullptr;
      int fallback_id = -1;
      for (const CachedShape::FoldEntry& entry : cs.fold) {
        const std::uint32_t g = entry.g;
        if (used[g] >= capacity[g]) {
          continue;  // drained since the sweep, or consumed by this candidate
        }
        if (fallback == nullptr || entry.rank < fallback->rank) {
          fallback = &entry;
          fallback_id = -1;
        } else if (entry.rank == fallback->rank) {
          if (fallback_id < 0) {
            fallback_id = id_of(fallback->g);
          }
          const int id = id_of(g);
          if (id < fallback_id) {
            fallback = &entry;
            fallback_id = id;
          }
        }
        if (!qos_pass(entry, block)) {
          continue;
        }
        if (win == nullptr || entry.rank < win->rank) {
          win = &entry;
          win_id = -1;
        } else if (entry.rank == win->rank) {
          if (win_id < 0) {
            win_id = id_of(win->g);
          }
          const int id = id_of(g);
          if (id < win_id) {
            win = &entry;
            win_id = id;
          }
        }
      }
      if (win == nullptr && fallback != nullptr) {
        win = fallback;
        win_id = fallback_id;
      }
    }
    if (win == nullptr) {
      return std::nullopt;
    }
    if (win_id < 0) {
      win_id = id_of(win->g);
    }
    const CachedEval& eval = cs.evals[win->g];
    PlacedBlock out;
    out.block = block;
    out.server_id = win_id;
    out.group_ordinal = win->g;
    for (std::size_t ci = 0; ci < workload::kProfileClassCount; ++ci) {
      out.time_per_class[ci] = eval.time_per_class[ci];
    }
    out.marginal_energy_j = eval.marginal_energy_j;
    out.contribution = eval.contribution;
    return out;
  }


  /// Aggregate rank and QoS feasibility — the exact arithmetic of
  /// SearchContext::finalize (same summation order, same sort-based
  /// k-th-smallest QoS matching).
  [[nodiscard]] EvalOutcome finalize() {
    EvalOutcome out;
    double time_sum = 0.0;
    double energy_sum = 0.0;
    for (const PlacedBlock& block : placed) {
      for (const ProfileClass profile : workload::kAllProfileClasses) {
        time_sum += block.block.of(profile) *
                    block.time_per_class[static_cast<int>(profile)];
      }
      energy_sum += block.marginal_energy_j;
    }
    out.est_time_s = time_sum / n_vms;
    out.est_energy_j = energy_sum;
    const double total_energy_norm = energy_sum / (n_vms * energy_ref);
    const double total_time_norm = out.est_time_s / time_ref;
    out.combined =
        config->goal == ProactiveGoal::kEnergyDelayProduct
            ? std::max(total_energy_norm, 0.0) * total_time_norm
            : config->alpha * total_energy_norm +
                  (1.0 - config->alpha) * total_time_norm;

    for (const ProfileClass profile : workload::kAllProfileClasses) {
      const int ci = static_cast<int>(profile);
      if (deadlines[ci].empty()) {
        continue;
      }
      times.clear();
      for (const PlacedBlock& block : placed) {
        for (int k = 0; k < block.block.of(profile); ++k) {
          times.push_back(block.time_per_class[ci]);
        }
      }
      std::sort(times.begin(), times.end());
      for (std::size_t k = 0; k < times.size(); ++k) {
        if (times[k] > deadlines[ci][k]) {
          out.qos_ok = false;
          break;
        }
      }
      if (!out.qos_ok) {
        break;
      }
    }
    return out;
  }

  /// Prefix-incremental candidate evaluation — the batch
  /// IncrementalEvaluator::evaluate over the persistent group index.
  /// Rewinding a consumed prefix just decrements per-group counters;
  /// the common-prefix length is precomputed, and `placed` is always a
  /// prefix of the previous partition in enumeration order, so the
  /// retained entries are exactly the ones a fresh comparison would keep.
  [[nodiscard]] std::optional<EvalOutcome> evaluate(
      const CachedPartition& cp, double prune_above) {
    const partition::TypedPartition& blocks = cp.blocks;
    const std::size_t keep = std::min(cp.lcp, placed.size());
    for (std::size_t i = placed.size(); i > keep; --i) {
      --used_count[placed[i - 1].group_ordinal];
    }
    placed.resize(keep);
    bound_after.resize(keep);

    double remaining_min = 0.0;
    if (prune) {
      for (std::size_t i = keep; i < blocks.size(); ++i) {
        const double block_min = ready(*cp.shapes[i]).min_contrib;
        if (block_min == kInf) {
          return std::nullopt;  // infeasible on every server, even unused
        }
        remaining_min += block_min;
      }
      const double prefix_bound = keep > 0 ? bound_after[keep - 1] : 0.0;
      if (prefix_bound + remaining_min > prune_above) {
        return std::nullopt;
      }
    }
    for (std::size_t i = keep; i < blocks.size(); ++i) {
      if (prune) {
        remaining_min -= cp.shapes[i]->min_contrib;  // memoized, exact
      }
      std::optional<PlacedBlock> next = place_grouped(*cp.shapes[i], blocks[i]);
      if (!next.has_value()) {
        return std::nullopt;  // no unused server can host this block
      }
      ++used_count[next->group_ordinal];
      placed.push_back(*next);
      const double bound = (placed.size() > 1 ? bound_after.back() : 0.0) +
                           placed.back().contribution;
      bound_after.push_back(bound);
      if (prune && bound + remaining_min > prune_above) {
        return std::nullopt;  // cannot beat the best complete candidate
      }
    }
    return finalize();
  }
};

FleetState::FleetState(const modeldb::ModelDatabase& db,
                       ProactiveConfig config)
    : FleetState(std::vector<const modeldb::ModelDatabase*>{&db}, config) {}

FleetState::FleetState(std::vector<const modeldb::ModelDatabase*> dbs,
                       ProactiveConfig config)
    : config_(config) {
  AEVA_REQUIRE(config_.alpha >= 0.0 && config_.alpha <= 1.0,
               "alpha must be in [0, 1], got ", config_.alpha);
  AEVA_REQUIRE(config_.max_partitions >= 1, "partition budget must be >= 1");
  // The incremental planner's persistent group index is keyed by
  // (hardware, mix) only; a spread-constrained plan would need the domain
  // in the key. Route spread-enabled configs through the batch allocator
  // until the index learns domains.
  AEVA_REQUIRE(!config_.spread.enabled,
               "FleetState does not support the spread constraint yet; "
               "use ProactiveAllocator for spread-constrained placement");
  AEVA_REQUIRE(!dbs.empty(), "need at least one model database");
  models_.reserve(dbs.size());
  for (const modeldb::ModelDatabase* db : dbs) {
    AEVA_REQUIRE(db != nullptr, "null model database");
    models_.emplace_back(*db, config.server_vm_cap);
    // The score memo is keyed by (group mix, shape), but many such pairs
    // share one combined count vector — the estimate cache collapses
    // those repeated database lookups exactly as it does for the batch
    // search (results are bit-identical either way).
    models_.back().set_estimate_cache(
        std::make_shared<modeldb::EstimateCache>(*db));
  }
  // Serve-mode startup warmup: the per-server mixes a fleet can ever
  // reach form the small feasibility box, so one sweep here turns every
  // later database lookup — including the cold first minutes of a fresh
  // serve loop — into a cache hit instead of a raw interpolation. Purely
  // a latency warmup: cached records are bit-identical by construction.
  for (const CostModel& model : models_) {
    const int cap = model.server_vm_cap();
    for (int cpu = 0; cpu <= cap; ++cpu) {
      for (int mem = 0; cpu + mem <= cap; ++mem) {
        for (int io = 0; cpu + mem + io <= cap; ++io) {
          ClassCounts mix;
          mix.cpu = cpu;
          mix.mem = mem;
          mix.io = io;
          if (mix.total() > 0 && model.feasible(mix)) {
            const modeldb::Record rec = model.estimate(mix);
            for (const ProfileClass profile : workload::kAllProfileClasses) {
              if (mix.of(profile) > 0) {
                max_time_s_ = std::max(max_time_s_, rec.time_of(profile));
              }
            }
          }
        }
      }
    }
  }
  if (config_.degrade_to_first_fit) {
    AEVA_REQUIRE(config_.fallback_multiplex >= 1,
                 "fallback multiplex factor must be >= 1, got ",
                 config_.fallback_multiplex);
    // Testbed servers have 4 CPUs regardless of hardware class.
    fallback_.emplace(config_.fallback_multiplex,
                      std::vector<int>(models_.size(), 4));
  }
  // Same arming condition as the batch allocator's optimized paths
  // (pruning never changes results; it only skips work).
  if (config_.prune_search && !config_.force_serial &&
      config_.goal == ProactiveGoal::kAlphaWeighted) {
    bool energy_bounded = true;
    for (const CostModel& model : models_) {
      energy_bounded = energy_bounded && model.db().energy_monotone();
    }
    prune_enabled_ = config_.alpha == 0.0 || energy_bounded;
  }
}

// Out of line: ~unique_ptr<Planner> needs the complete Planner above. The
// moved-from scratch's fleet/config pointers are refreshed by the next
// plan() before any use.
FleetState::~FleetState() = default;
FleetState::FleetState(FleetState&&) noexcept = default;
FleetState& FleetState::operator=(FleetState&&) noexcept = default;

const CostModel& FleetState::model_of(int hardware) const {
  AEVA_REQUIRE(hardware >= 0 &&
                   static_cast<std::size_t>(hardware) < models_.size(),
               "unknown hardware class ", hardware, " (have ",
               models_.size(), ")");
  return models_[static_cast<std::size_t>(hardware)];
}

AllocationNode& FleetState::node_mut(int server_id) {
  const auto it = by_id_.find(server_id);
  AEVA_REQUIRE(it != by_id_.end(), "unknown server id ", server_id);
  return nodes_[it->second];
}

const AllocationNode& FleetState::node(int server_id) const {
  const auto it = by_id_.find(server_id);
  AEVA_REQUIRE(it != by_id_.end(), "unknown server id ", server_id);
  return nodes_[it->second];
}

void FleetState::index_insert(const AllocationNode& node) {
  const auto [it, created] =
      groups_.try_emplace(GroupKey{node.hardware, node.allocated});
  if (created) {
    // A brand-new mix: the universe grows, the planner extends lazily.
    it->second.ordinal = static_cast<std::uint32_t>(slot_order_.size());
    slot_order_.emplace_back(&it->first, &it->second);
    member_count_.push_back(0);
    head_id_.push_back(0);
    live_pos_.push_back(0);
  }
  std::vector<int>& members = it->second.members;
  members.insert(std::lower_bound(members.begin(), members.end(), node.id),
                 node.id);
  const std::uint32_t ordinal = it->second.ordinal;
  head_id_[ordinal] = members.front();
  if (++member_count_[ordinal] == 1) {
    live_pos_[ordinal] = static_cast<std::uint32_t>(live_order_.size());
    live_order_.push_back(ordinal);
    ++live_grow_stamp_;
  }
}

void FleetState::index_erase(const AllocationNode& node) {
  const auto it = groups_.find(GroupKey{node.hardware, node.allocated});
  AEVA_INVARIANT(it != groups_.end(), "group index lost server ", node.id);
  std::vector<int>& members = it->second.members;
  const auto pos =
      std::lower_bound(members.begin(), members.end(), node.id);
  AEVA_INVARIANT(pos != members.end() && *pos == node.id,
                 "group index lost server ", node.id);
  members.erase(pos);
  const std::uint32_t ordinal = it->second.ordinal;
  head_id_[ordinal] = members.empty() ? 0 : members.front();
  if (--member_count_[ordinal] == 0) {
    // Swap-remove from the live list; the planner's fold is an
    // order-independent min, so the ordering churn is harmless.
    const std::uint32_t at = live_pos_[ordinal];
    live_order_[at] = live_order_.back();
    live_pos_[live_order_[at]] = at;
    live_order_.pop_back();
  }
  // A drained slot stays: its memo and cached evaluations are still
  // valid if the mix recurs, and the planner's availability check skips
  // member-less groups — no cache is invalidated by a drain.
}

void FleetState::reset(std::span<const ServerState> servers,
                       const std::vector<std::uint8_t>* down) {
  AEVA_REQUIRE(down == nullptr || down->size() == servers.size(),
               "down mask size ", down == nullptr ? 0 : down->size(),
               " does not match fleet size ", servers.size());
  nodes_.clear();
  by_id_.clear();
  for (auto& [key, slot] : groups_) {
    (void)key;
    slot.members.clear();  // memberships rebuild below; memos survive
  }
  std::fill(member_count_.begin(), member_count_.end(), 0u);
  live_order_.clear();
  up_count_ = 0;
  ++stats_.resyncs;
  nodes_.reserve(servers.size());
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerState& server = servers[i];
    (void)model_of(server.hardware);  // validates the class eagerly
    AllocationNode node;
    node.id = server.id;
    node.hardware = server.hardware;
    node.allocated = server.allocated;
    node.powered = server.powered;
    node.down = down != nullptr && (*down)[i] != 0;
    const auto [it, inserted] = by_id_.emplace(node.id, nodes_.size());
    (void)it;
    AEVA_REQUIRE(inserted, "duplicate server id ", node.id);
    if (!node.down) {
      ++up_count_;
      index_insert(node);
    }
    nodes_.push_back(node);
  }
}

void FleetState::allocate(int server_id, ProfileClass profile, int count) {
  AEVA_REQUIRE(count >= 1, "allocate delta must be >= 1, got ", count);
  AllocationNode& node = node_mut(server_id);
  AEVA_REQUIRE(!node.down, "cannot allocate on crashed server ", server_id);
  index_erase(node);
  node.allocated.of(profile) += count;
  node.powered = true;
  index_insert(node);
  ++stats_.allocs;
}

void FleetState::deallocate(int server_id, ProfileClass profile, int count) {
  AEVA_REQUIRE(count >= 1, "deallocate delta must be >= 1, got ", count);
  AllocationNode& node = node_mut(server_id);
  AEVA_REQUIRE(!node.down, "cannot deallocate on crashed server ", server_id);
  AEVA_REQUIRE(node.allocated.of(profile) >= count,
               "deallocate underflow on server ", server_id);
  index_erase(node);
  node.allocated.of(profile) -= count;
  index_insert(node);
  ++stats_.deallocs;
}

void FleetState::crash(int server_id) {
  AllocationNode& node = node_mut(server_id);
  if (node.down) {
    return;  // already masked (mirrors the serve capacity model)
  }
  index_erase(node);
  node.down = true;
  node.powered = false;
  node.allocated = ClassCounts{};
  --up_count_;
}

void FleetState::repair(int server_id) {
  AllocationNode& node = node_mut(server_id);
  if (!node.down) {
    return;
  }
  node.down = false;  // returns cold (powered == false) and empty
  ++up_count_;
  index_insert(node);
}

void FleetState::crash_domain(std::span<const int> server_ids) {
  for (const int server_id : server_ids) {
    crash(server_id);
  }
}

void FleetState::repair_domain(std::span<const int> server_ids) {
  for (const int server_id : server_ids) {
    repair(server_id);
  }
}

const std::vector<ServerState>& FleetState::up_servers() const {
  if (up_count_ > up_scratch_.capacity()) {
    ++stats_.up_scratch_grows;
  }
  up_scratch_.clear();
  up_scratch_.reserve(up_count_);
  for (const auto& [id, index] : by_id_) {  // id order == batch up order
    (void)id;
    const AllocationNode& node = nodes_[index];
    if (node.down) {
      continue;
    }
    ServerState server;
    server.id = node.id;
    server.allocated = node.allocated;
    server.powered = node.powered;
    server.hardware = node.hardware;
    up_scratch_.push_back(server);
  }
  return up_scratch_;
}

FleetStats FleetState::stats() const {
  stats_.groups = 0;
  stats_.memo_entries = 0;
  for (const auto& [key, slot] : groups_) {
    (void)key;
    stats_.groups += slot.members.empty() ? 0 : 1;
    stats_.memo_entries += slot.memo.size();
  }
  return stats_;
}

const FleetState::MemoEntry& FleetState::memo_entry(
    const GroupKey& group, GroupSlot& slot, std::uint64_t shape_key,
    const ClassCounts& block) {
  const auto pos = std::lower_bound(
      slot.memo.begin(), slot.memo.end(), shape_key,
      [](const std::pair<std::uint64_t, MemoEntry>& e, std::uint64_t key) {
        return e.first < key;
      });
  if (pos != slot.memo.end() && pos->first == shape_key) {
    ++stats_.memo_hits;
    return pos->second;
  }
  ++stats_.memo_misses;
  // Fill: the request-independent core of SearchContext::placed_on — a
  // pure function of (hardware, base mix, block) and the database, so the
  // entry replays bit-for-bit forever. block_time is summed here in the
  // same class order the batch evaluator uses per candidate.
  MemoEntry entry;
  const CostModel& model = model_of(group.hardware);
  const ClassCounts combined = group.mix + block;
  if (model.feasible(combined)) {
    const modeldb::Record rec = model.estimate(combined);
    for (const ProfileClass profile : workload::kAllProfileClasses) {
      const auto ci = static_cast<std::size_t>(profile);
      entry.time_per_class[ci] =
          block.of(profile) > 0 ? rec.time_of(profile) : 0.0;
      entry.block_time += block.of(profile) * entry.time_per_class[ci];
    }
    // The base energy is shape-independent: fill it once per slot and
    // replay the identical double for every later shape of this mix.
    if (!slot.base_known) {
      slot.base_energy_j = model.mix_energy_j(group.mix);
      slot.base_known = true;
    }
    entry.marginal_energy_j = rec.energy_j - slot.base_energy_j;
    entry.feasible = true;
  }
  return slot.memo.insert(pos, {shape_key, entry})->second;
}

AllocationResult FleetState::plan(std::span<const VmRequest> vms) {
  ++stats_.plans;
  AllocationResult result;
  if (vms.empty()) {
    result.complete = true;
    return result;
  }

  ClassCounts request;
  for (const VmRequest& vm : vms) {
    ++request.of(vm.profile);
  }

  if (scratch_ == nullptr) {
    scratch_ = std::make_unique<Planner>();
  }
  Planner& planner = *scratch_;
  planner.begin_plan(*this);
  planner.n_vms = static_cast<double>(vms.size());
  // Normalization references always come from hardware class 0, as in the
  // batch search.
  planner.time_ref = models_.front().time_reference_s(request);
  planner.energy_ref = models_.front().energy_reference_j(request);
  for (const VmRequest& vm : vms) {
    planner.deadlines[static_cast<int>(vm.profile)].push_back(
        vm.max_exec_time_s);
  }
  for (auto& list : planner.deadlines) {
    std::sort(list.begin(), list.end());
  }
  for (std::size_t ci = 0; ci < workload::kProfileClassCount; ++ci) {
    planner.qos_threshold[ci] =
        planner.deadlines[ci].empty() ? kInf : planner.deadlines[ci].front();
  }
  // A threshold at or above the database-wide time bound cannot reject
  // any entry, so the per-block QoS check is provably a no-op: the fold
  // may skip it and stream the dense rank array alone. Exact, not
  // approximate — the skipped comparisons all evaluate to "pass".
  planner.qos_vacuous = planner.qos_threshold[0] >= max_time_s_ &&
                        planner.qos_threshold[1] >= max_time_s_ &&
                        planner.qos_threshold[2] >= max_time_s_;
  planner.prune = prune_enabled_;
  // One map lookup per plan resolves everything this request's class
  // counts have ever produced: shape evaluations against the group
  // universe and the canonical partition list itself.
  Planner::RequestCache& cache =
      planner.request_caches[shape_key_of(request)];
  // A partition never uses more blocks than VMs, so clamping the server
  // bound to the request size canonicalizes the cache key without
  // changing the enumeration.
  const std::size_t limit =
      std::min(std::max<std::size_t>(up_count_, 1),
               static_cast<std::size_t>(request.total()));
  const Planner::PartitionList& plist =
      planner.partition_list(cache, request, limit);

  SearchBest& best = planner.best;
  std::size_t examined = 0;
  for (const Planner::CachedPartition& cp : plist.items) {
    const std::size_t index = examined++;
    double prune_above = kInf;
    if (planner.prune) {
      if (config_.enforce_qos) {
        prune_above = best.qos.valid ? best.qos.combined : kInf;
      } else {
        prune_above = best.any.valid ? best.any.combined : kInf;
      }
    }
    const std::optional<EvalOutcome> out = planner.evaluate(cp, prune_above);
    if (out.has_value()) {
      best.consider(*out, planner.placed, index);
    }
  }
  result.partitions_examined = examined;
  const bool search_truncated = examined >= config_.max_partitions;

  const Incumbent* chosen = nullptr;
  if (!config_.enforce_qos) {
    chosen = best.any.valid ? &best.any : nullptr;
  } else if (best.qos.valid) {
    chosen = &best.qos;
  } else if (config_.fallback_best_effort && best.any.valid) {
    chosen = &best.any;
  }
  if (chosen == nullptr) {
    // Same classification (and fallback leg) as the batch allocator.
    RejectReason reason = RejectReason::kNoFeasibleServer;
    if (up_count_ == 0) {
      reason = RejectReason::kNoServers;  // all masked or failed
    } else if (!best.any.valid && examined >= config_.max_partitions) {
      reason = RejectReason::kSearchBudgetExhausted;
    } else if (best.any.valid) {
      reason = RejectReason::kQosInfeasible;
    }
    if (fallback_.has_value()) {
      AllocationResult fb = fallback_->allocate(vms, up_servers());
      if (fb.complete) {
        fb.partitions_examined = examined;
        fb.satisfied_qos = false;  // the slot-based fallback is QoS-blind
        fb.outcome = AllocationOutcome{AllocationPath::kFallbackFirstFit,
                                       reason, search_truncated};
        return fb;
      }
    }
    result.outcome = AllocationOutcome{AllocationPath::kRejected, reason,
                                       search_truncated};
    return result;
  }
  result.satisfied_qos = chosen->qos_ok;
  result.score.est_time_s = chosen->est_time_s;
  result.score.est_energy_j = chosen->est_energy_j;
  result.score.combined = chosen->combined;

  // VM → slot mapping, exactly as the batch allocator: per class, the VM
  // with the tightest deadline goes to the block slot with the smallest
  // estimated time.
  result.placements.reserve(vms.size());
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    const int ci = static_cast<int>(profile);
    std::vector<const VmRequest*>& class_vms = planner.class_vms;
    class_vms.clear();
    for (const VmRequest& vm : vms) {
      if (vm.profile == profile) {
        class_vms.push_back(&vm);
      }
    }
    if (class_vms.empty()) {
      continue;
    }
    std::stable_sort(class_vms.begin(), class_vms.end(),
                     [](const VmRequest* a, const VmRequest* b) {
                       return a->max_exec_time_s < b->max_exec_time_s;
                     });
    std::vector<Planner::MapSlot>& slots = planner.map_slots;
    slots.clear();
    for (const PlacedBlock& block : chosen->blocks) {
      for (int k = 0; k < block.block.of(profile); ++k) {
        slots.push_back(
            Planner::MapSlot{block.time_per_class[ci], block.server_id});
      }
    }
    AEVA_INVARIANT(slots.size() == class_vms.size(),
                   "block slots do not cover the request for class ",
                   workload::to_string(profile));
    std::stable_sort(slots.begin(), slots.end(),
                     [](const Planner::MapSlot& a, const Planner::MapSlot& b) {
                       return a.time < b.time;
                     });
    for (std::size_t k = 0; k < class_vms.size(); ++k) {
      result.placements.push_back(
          Placement{class_vms[k]->id, slots[k].server_id});
    }
  }
  result.complete = true;
  result.outcome.path = AllocationPath::kIncremental;
  result.outcome.search_truncated = search_truncated;
  return result;
}

}  // namespace aeva::core
