#pragma once

/// \file stats.hpp
/// Small statistics toolkit used by the profiler, the benchmarking
/// campaign, and the evaluation harness.

#include <cstddef>
#include <vector>

namespace aeva::util {

/// Streaming accumulator for count / mean / variance / extrema
/// (Welford's algorithm, numerically stable).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double value) noexcept;

  /// Number of observations so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;

  /// Sample standard deviation.
  [[nodiscard]] double stddev() const noexcept;

  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }

  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel-reduction safe).
  void merge(const RunningStats& other) noexcept;

  /// Raw accumulator state, exposed so checkpoint/restore (src/persist/)
  /// can serialize a half-built accumulator and resume bit-identically.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Captures the current accumulator state.
  [[nodiscard]] State state() const noexcept;

  /// Restores a previously captured state verbatim.
  void restore(const State& state) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats() noexcept;
};

/// Linear-interpolated percentile of a sample, q in [0, 1].
/// The input is copied and sorted; throws std::invalid_argument when the
/// sample is empty, contains a non-finite value (NaN breaks the sort's
/// strict weak ordering — undefined behaviour), or q is out of range.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// Mean of a sample; throws std::invalid_argument when empty or when any
/// value is non-finite.
[[nodiscard]] double mean_of(const std::vector<double>& sample);

/// Weighted mean of (value, weight) pairs; values and weights must be
/// finite, weights non-negative and summing to a positive value.
[[nodiscard]] double weighted_mean(const std::vector<double>& values,
                                   const std::vector<double>& weights);

/// Pearson correlation coefficient of two equal-length samples
/// (>= 2 points, non-zero variance in both).
[[nodiscard]] double pearson(const std::vector<double>& xs,
                             const std::vector<double>& ys);

}  // namespace aeva::util
