#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace aeva::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::optional<long long> parse_int(std::string_view text) {
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    return std::nullopt;
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace aeva::util
