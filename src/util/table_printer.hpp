#pragma once

/// \file table_printer.hpp
/// Fixed-width text tables for the benchmark harness — every figure/table
/// reproduction prints its rows through this so outputs are uniform and
/// grep-friendly.

#include <iosfwd>
#include <string>
#include <vector>

namespace aeva::util {

/// Column-aligned plain-text table.
class TablePrinter {
 public:
  /// Sets the column headers; must be called before adding rows.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; arity must match the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header underline.
  void print(std::ostream& out) const;

  /// Renders to a string (for tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aeva::util
