#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to checksum
/// persisted artifacts such as simulation snapshots. The implementation is
/// table-driven and byte-order independent, so checksums are stable across
/// platforms.

#include <cstdint>
#include <string_view>

namespace aeva::util {

/// CRC-32 of `data`, optionally continuing from a previous checksum:
/// `crc32(b, crc32(a))` equals `crc32(a + b)`.
[[nodiscard]] std::uint32_t crc32(std::string_view data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace aeva::util
