#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace aeva::util {

RunningStats::RunningStats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double value) noexcept {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats::State RunningStats::state() const noexcept {
  return State{count_, mean_, m2_, sum_, min_, max_};
}

void RunningStats::restore(const State& state) noexcept {
  count_ = state.count;
  mean_ = state.mean;
  m2_ = state.m2;
  sum_ = state.sum;
  min_ = state.min;
  max_ = state.max;
}

namespace {

/// Every aggregate below rejects non-finite observations up front: a NaN
/// would poison the result silently, and NaN breaks strict weak ordering,
/// so sorting a sample containing one is undefined behaviour.
void require_finite(const std::vector<double>& sample, const char* what) {
  for (std::size_t i = 0; i < sample.size(); ++i) {
    AEVA_REQUIRE(std::isfinite(sample[i]), what,
                 " requires finite values; got ", sample[i], " at index ", i);
  }
}

}  // namespace

double percentile(std::vector<double> sample, double q) {
  AEVA_REQUIRE(!sample.empty(), "percentile of empty sample");
  AEVA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of range: ", q);
  require_finite(sample, "percentile");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) {
    return sample.front();
  }
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double mean_of(const std::vector<double>& sample) {
  AEVA_REQUIRE(!sample.empty(), "mean of empty sample");
  require_finite(sample, "mean_of");
  RunningStats stats;
  for (double v : sample) {
    stats.add(v);
  }
  return stats.mean();
}

double weighted_mean(const std::vector<double>& values,
                     const std::vector<double>& weights) {
  AEVA_REQUIRE(values.size() == weights.size(),
               "values/weights size mismatch: ", values.size(), " vs ",
               weights.size());
  AEVA_REQUIRE(!values.empty(), "weighted mean of empty sample");
  require_finite(values, "weighted_mean values");
  require_finite(weights, "weighted_mean weights");
  double acc = 0.0;
  double wsum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    AEVA_REQUIRE(weights[i] >= 0.0, "negative weight at index ", i);
    acc += values[i] * weights[i];
    wsum += weights[i];
  }
  AEVA_REQUIRE(wsum > 0.0, "weights sum to zero");
  return acc / wsum;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  AEVA_REQUIRE(xs.size() == ys.size(), "sample size mismatch: ", xs.size(),
               " vs ", ys.size());
  AEVA_REQUIRE(xs.size() >= 2, "pearson needs at least 2 points");
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  AEVA_REQUIRE(sxx > 0.0 && syy > 0.0, "pearson of constant sample");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace aeva::util
