#pragma once

/// \file arena.hpp
/// Reset-not-freed scratch pool for hot loops.
///
/// The simulator's event loop needs a handful of short-lived buffers per
/// event (request batches, touched-server sets, migration plans). Declaring
/// them inside the loop body re-allocates on every event; hoisting each one
/// by hand scatters a dozen `clear()` calls through the code. A ScratchPool
/// owns the buffers instead: `take<T>()` hands out an empty vector whose
/// capacity survives from the previous event, and `reset()` returns
/// everything for reuse without releasing a byte — the same idiom as an
/// allocation arena, specialized to typed vectors (capacity is the only
/// state worth keeping; the element values are dead after each event).
///
/// Usage:
///
///     util::ScratchPool pool;
///     for (;;) {                     // event loop
///       pool.reset();
///       auto& request = pool.take<core::VmRequest>();
///       auto& touched = pool.take<int>();
///       ...  // fill and consume within this iteration
///     }
///
/// `take<T>()` returns a reference valid until the next reset(); a second
/// take<T>() in the same cycle returns a *different* buffer, so nested
/// helpers can each take their own. Buffers are recycled per element type,
/// in take order — steady state performs zero heap allocations once every
/// cycle's takes have warmed their capacities. Not thread-safe: one pool
/// per loop, like the loop state it replaces.

#include <cstddef>
#include <memory>
#include <vector>

namespace aeva::util {

namespace detail {

/// Process-wide monotone type ids (assigned on first use, any order). Only
/// used as indices into per-pool slot tables, so the order never affects
/// simulation results.
inline std::size_t next_scratch_type_id() noexcept {
  static std::size_t counter = 0;
  return counter++;
}

template <typename T>
std::size_t scratch_type_id() noexcept {
  static const std::size_t id = next_scratch_type_id();
  return id;
}

}  // namespace detail

class ScratchPool {
 public:
  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// An empty vector<T> whose capacity carries over from earlier cycles.
  /// Valid until the next reset().
  template <typename T>
  [[nodiscard]] std::vector<T>& take() {
    Slot<T>& slot = slot_of<T>();
    if (slot.next == slot.buffers.size()) {
      slot.buffers.push_back(std::make_unique<std::vector<T>>());
      ++grows_;
    }
    std::vector<T>& buffer = *slot.buffers[slot.next++];
    buffer.clear();
    return buffer;
  }

  /// Returns every taken buffer to the pool (capacity kept, contents dead).
  void reset() noexcept {
    for (const std::unique_ptr<SlotBase>& slot : slots_) {
      if (slot != nullptr) {
        slot->next = 0;
      }
    }
  }

  /// Pool-growth events: a new buffer or a type seen for the first time.
  /// Flat across a warm window ⇒ zero steady-state allocations from the
  /// pool itself (the buffers' own capacity growth is the caller's).
  [[nodiscard]] std::size_t grows() const noexcept { return grows_; }

 private:
  struct SlotBase {
    std::size_t next = 0;
    virtual ~SlotBase() = default;
  };

  template <typename T>
  struct Slot final : SlotBase {
    std::vector<std::unique_ptr<std::vector<T>>> buffers;
  };

  template <typename T>
  Slot<T>& slot_of() {
    const std::size_t id = detail::scratch_type_id<T>();
    if (id >= slots_.size()) {
      slots_.resize(id + 1);
      ++grows_;
    }
    if (slots_[id] == nullptr) {
      slots_[id] = std::make_unique<Slot<T>>();
      ++grows_;
    }
    // The id→type mapping is process-wide and stable, so the downcast is
    // exact by construction.
    return static_cast<Slot<T>&>(*slots_[id]);
  }

  std::vector<std::unique_ptr<SlotBase>> slots_;  ///< indexed by type id
  std::size_t grows_ = 0;
};

}  // namespace aeva::util
