#pragma once

/// \file thread_annotations.hpp
/// Clang thread-safety-analysis attribute macros (docs/STATIC_ANALYSIS.md,
/// "Thread-safety annotations").
///
/// These macros attach compile-time locking contracts to shared state:
/// which mutex guards which field, which capabilities a function needs on
/// entry, and which it acquires or releases. Under clang with
/// `-Wthread-safety` (cmake/ThreadSafety.cmake, `AEVA_THREAD_SAFETY`) any
/// violation — touching a `AEVA_GUARDED_BY` field without its lock,
/// forgetting to release, acquiring in an inconsistent order — is a
/// compile *error* in CI (`-Werror=thread-safety`). Under gcc (this
/// repo's default toolchain) every macro expands to nothing, so the
/// annotations are free documentation there and a hard gate on clang.
///
/// The annotated primitives that carry these contracts live in
/// util/mutex.hpp (`util::Mutex`, `util::MutexGuard`, `util::CondVar`);
/// first-party code outside src/util/ must use those wrappers instead of
/// raw `std::mutex`/`std::lock_guard` — enforced by the `raw-mutex` rule
/// in tools/lint/aeva_lint.py, because a raw std::mutex is invisible to
/// the analysis and silently punches a hole in the proof.
///
/// Macro → clang attribute mapping follows the canonical scheme from the
/// clang Thread Safety Analysis documentation; names are AEVA_-prefixed
/// so they cannot collide with third-party headers.

#if defined(__clang__) && defined(__has_attribute)
#define AEVA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AEVA_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define AEVA_CAPABILITY(x) AEVA_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define AEVA_SCOPED_CAPABILITY AEVA_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define AEVA_GUARDED_BY(x) AEVA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define AEVA_PT_GUARDED_BY(x) AEVA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define AEVA_REQUIRES(...) \
  AEVA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held *shared* on entry.
#define AEVA_REQUIRES_SHARED(...) \
  AEVA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define AEVA_ACQUIRE(...) \
  AEVA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define AEVA_RELEASE(...) \
  AEVA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts to acquire; holds the capability iff it returned
/// `success`.
#define AEVA_TRY_ACQUIRE(success, ...) \
  AEVA_THREAD_ANNOTATION_(try_acquire_capability(success, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for self-locking public APIs).
#define AEVA_EXCLUDES(...) \
  AEVA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares a required lock ordering between two capabilities.
#define AEVA_ACQUIRED_BEFORE(...) \
  AEVA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AEVA_ACQUIRED_AFTER(...) \
  AEVA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to a capability (lock accessor).
#define AEVA_RETURN_CAPABILITY(x) \
  AEVA_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: body is not analyzed. Policy (docs/STATIC_ANALYSIS.md):
/// allowed only inside src/util/ wrapper internals (e.g. a condition-wait
/// that releases and reacquires through the std library); *zero* uses are
/// permitted elsewhere in src/.
#define AEVA_NO_THREAD_SAFETY_ANALYSIS \
  AEVA_THREAD_ANNOTATION_(no_thread_safety_analysis)
