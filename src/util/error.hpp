#pragma once

/// \file error.hpp
/// Error-handling helpers shared by every aeva module.
///
/// Precondition violations on public APIs throw `std::invalid_argument`
/// (callers may pass bad data); broken internal invariants throw
/// `std::logic_error` (these indicate bugs). Both macros evaluate their
/// condition exactly once.

#include <sstream>
#include <stdexcept>
#include <string>

namespace aeva {

/// Builds a formatted message from stream-style parts.
template <typename... Parts>
[[nodiscard]] std::string format_message(const Parts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

}  // namespace aeva

/// Validate a public-API precondition; throws std::invalid_argument.
#define AEVA_REQUIRE(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      throw std::invalid_argument(::aeva::format_message(              \
          __FILE__, ":", __LINE__, ": requirement failed: ", #cond,    \
          " — ", __VA_ARGS__));                                        \
    }                                                                  \
  } while (false)

/// Validate an internal invariant; throws std::logic_error.
///
/// Unlike the C `assert` macro this stays active in every build type — the
/// simulator's numbers are only trustworthy if invariants hold in Release
/// builds too — and unlike `abort` it unwinds, so a driver can report which
/// experiment died. `tools/lint/aeva_lint.py` enforces that project code
/// uses this (or AEVA_REQUIRE) instead of raw `assert`/`abort`.
#define AEVA_INVARIANT(cond, ...)                                         \
  do {                                                                 \
    if (!(cond)) {                                                     \
      throw std::logic_error(::aeva::format_message(                   \
          __FILE__, ":", __LINE__, ": invariant violated: ", #cond,    \
          " — ", __VA_ARGS__));                                        \
    }                                                                  \
  } while (false)
