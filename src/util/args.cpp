#include "util/args.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::util {

namespace {

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Args::Args(int argc, const char* const* argv, std::vector<std::string> flags)
    : flags_(flags.begin(), flags.end()) {
  parse(argc, argv);
}

Args::Args(int argc, const char* const* argv, const std::string& summary,
           std::vector<OptionSpec> specs)
    : specs_(std::move(specs)), summary_(summary), strict_(true) {
  // Every binary gets --help for free; declaring it explicitly is allowed
  // (e.g. to customize the help string) but not required.
  const bool has_help = std::any_of(
      specs_.begin(), specs_.end(),
      [](const OptionSpec& s) { return s.name == "help"; });
  if (!has_help) {
    specs_.push_back({"help", "", "print this usage text and exit 0"});
  }
  for (const OptionSpec& spec : specs_) {
    if (spec.value_hint.empty()) {
      flags_.insert(spec.name);
    }
  }
  if (argc > 0) {
    program_ = basename_of(argv[0]);
  }
  parse(argc, argv);
  help_ = has("help");
}

void Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    const std::size_t eq = name.find('=');
    std::optional<std::string> inline_value;
    if (eq != std::string::npos) {
      // --name=value never touches the next token; the value may be
      // anything, including empty or dash-leading.
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    AEVA_REQUIRE(!name.empty() && name[0] != '-',
                 "malformed option token: ", token);
    if (strict_) {
      const bool declared = std::any_of(
          specs_.begin(), specs_.end(),
          [&name](const OptionSpec& s) { return s.name == name; });
      AEVA_REQUIRE(declared, program_, ": unknown option --", name,
                   " (run with --help for the option list)");
    }
    if (inline_value.has_value()) {
      options_[name] = *inline_value;
    } else if (flags_.count(name) != 0) {
      options_[name] = "";  // declared flag: never consumes a value
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[name] = argv[i + 1];
      ++i;
    } else {
      options_[name] = "";  // bare flag (end of line / before an option)
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  // Present-but-empty is a caller error, not a default: silently falling
  // back would make `--out` (a typo for `--out x`) indistinguishable from
  // omitting the option.
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  return *value;
}

long long Args::get_int(const std::string& name, long long fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  const auto parsed = parse_int(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects an integer, got: ", *value);
  return *parsed;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  const auto parsed = parse_double(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects a number, got: ", *value);
  return *parsed;
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Args::usage() const {
  if (specs_.empty()) {
    return {};
  }
  std::string out = "usage: " + program_ + " [options]\n";
  if (!summary_.empty()) {
    out += "  " + summary_ + "\n";
  }
  out += "\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(specs_.size());
  for (const OptionSpec& spec : specs_) {
    std::string head = "--" + spec.name;
    if (!spec.value_hint.empty()) {
      head += " <" + spec.value_hint + ">";
    }
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out += "  " + heads[i];
    out.append(width - heads[i].size() + 2, ' ');
    out += specs_[i].help;
    out += '\n';
  }
  return out;
}

}  // namespace aeva::util
