#include "util/args.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      const std::string name = token.substr(2);
      AEVA_REQUIRE(!name.empty() && name[0] != '-',
                   "malformed option token: ", token);
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        options_[name] = argv[i + 1];
        ++i;
      } else {
        options_[name] = "";  // boolean flag
      }
    } else {
      positional_.push_back(token);
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto value = get(name);
  return value.has_value() && !value->empty() ? *value : fallback;
}

long long Args::get_int(const std::string& name, long long fallback) const {
  const auto value = get(name);
  if (!value.has_value() || value->empty()) {
    return fallback;
  }
  const auto parsed = parse_int(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects an integer, got: ", *value);
  return *parsed;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value.has_value() || value->empty()) {
    return fallback;
  }
  const auto parsed = parse_double(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects a number, got: ", *value);
  return *parsed;
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

}  // namespace aeva::util
