#include "util/args.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::util {

Args::Args(int argc, const char* const* argv, std::vector<std::string> flags)
    : flags_(flags.begin(), flags.end()) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      // --name=value never touches the next token; the value may be
      // anything, including empty or dash-leading.
      const std::string value = name.substr(eq + 1);
      name.resize(eq);
      AEVA_REQUIRE(!name.empty() && name[0] != '-',
                   "malformed option token: ", token);
      options_[name] = value;
      continue;
    }
    AEVA_REQUIRE(!name.empty() && name[0] != '-',
                 "malformed option token: ", token);
    if (flags_.count(name) != 0) {
      options_[name] = "";  // declared flag: never consumes a value
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[name] = argv[i + 1];
      ++i;
    } else {
      options_[name] = "";  // bare flag (end of line / before an option)
    }
  }
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Args::get_string(const std::string& name,
                             const std::string& fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  // Present-but-empty is a caller error, not a default: silently falling
  // back would make `--out` (a typo for `--out x`) indistinguishable from
  // omitting the option.
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  return *value;
}

long long Args::get_int(const std::string& name, long long fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  const auto parsed = parse_int(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects an integer, got: ", *value);
  return *parsed;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value.has_value()) {
    return fallback;
  }
  AEVA_REQUIRE(!value->empty(), "option --", name,
               " was given without a value (use --", name, "=<value> or --",
               name, " <value>)");
  const auto parsed = parse_double(*value);
  AEVA_REQUIRE(parsed.has_value(), "option --", name,
               " expects a number, got: ", *value);
  return *parsed;
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

}  // namespace aeva::util
