#pragma once

/// \file atomic_file.hpp
/// Crash-safe file writing: stage the content in a temporary file, flush
/// and fsync it, then rename it over the destination. Readers therefore
/// see either the complete old file or the complete new file, never a
/// truncated hybrid, and a full disk raises a typed error instead of
/// silently dropping bytes (a bare `std::ofstream` reports nothing unless
/// every caller remembers to check `fail()`).
///
/// Every writer in the repo routes through this class; the `bare-ofstream`
/// aeva_lint rule enforces it.

#include <fstream>
#include <stdexcept>
#include <string>

namespace aeva::util {

/// Raised when a file cannot be staged, flushed, synced, or renamed into
/// place; `path()` names the destination the caller asked for.
class FileWriteError : public std::runtime_error {
 public:
  FileWriteError(std::string path, const std::string& detail);

  /// Destination path of the failed write.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Writes a file atomically: content is streamed into `<path>.tmp` and
/// published by `commit()` (flush + fsync + rename). If the writer is
/// destroyed without a commit — e.g. an exception unwinds the caller —
/// the temporary is removed and the destination is left untouched.
class AtomicFileWriter {
 public:
  /// Opens the staging file `<path>.tmp` for writing (truncating any
  /// leftover from a previous crash). Throws FileWriteError when the
  /// staging file cannot be created.
  explicit AtomicFileWriter(std::string path);

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Removes the staging file when the content was never committed.
  ~AtomicFileWriter();

  /// The staging stream; write the file content here.
  [[nodiscard]] std::ostream& stream() noexcept { return out_; }

  /// Destination path this writer will publish to.
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Publishes the staged content: flushes, checks the stream state,
  /// fsyncs the staging file (and, best effort, its directory), and
  /// renames it onto the destination. Throws FileWriteError when any step
  /// fails — including deferred write errors such as a full disk — and
  /// leaves the destination untouched in that case. Committing twice is a
  /// caller bug and also throws.
  void commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// Convenience wrapper: atomically replaces `path` with `content`.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace aeva::util
