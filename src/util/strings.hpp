#pragma once

/// \file strings.hpp
/// String helpers shared by the SWF trace parser and CLI utilities.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aeva::util {

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

/// Parses a base-10 integer; nullopt on any malformed input.
[[nodiscard]] std::optional<long long> parse_int(std::string_view text);

/// Parses a floating-point number; nullopt on any malformed input.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Formats a double with fixed precision (printf "%.*f").
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace aeva::util
