#include "util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace aeva::util {

std::size_t CsvTable::column(const std::string& name) const {
  const auto it = std::find(header.begin(), header.end(), name);
  AEVA_REQUIRE(it != header.end(), "no such CSV column: ", name);
  return static_cast<std::size_t>(it - header.begin());
}

bool CsvTable::has_column(const std::string& name) const {
  return std::find(header.begin(), header.end(), name) != header.end();
}

namespace {

/// Arity guard for untrusted documents: a "row" with more fields than this
/// is garbage (the widest first-party schema, Table II, has 11 columns),
/// and rejecting it early keeps adversarial inputs from ballooning memory
/// quadratically via the per-row vectors (found by fuzz_csv).
constexpr std::size_t kMaxFieldsPerRow = 100000;

/// Bounds the malformed-input excerpt embedded in exception messages so a
/// multi-megabyte line does not become a multi-megabyte what() string.
std::string preview(const std::string& text) {
  constexpr std::size_t kMax = 80;
  if (text.size() <= kMax) {
    return text;
  }
  return text.substr(0, kMax) + "… (" + std::to_string(text.size()) +
         " bytes)";
}

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string csv_encode_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += needs_quoting(row[i]) ? quote(row[i]) : row[i];
  }
  return out;
}

CsvRow csv_decode_row(const std::string& line) {
  CsvRow fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      AEVA_REQUIRE(fields.size() < kMaxFieldsPerRow,
                   "CSV row exceeds ", kMaxFieldsPerRow, " fields");
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // Tolerate CRLF input.
    } else {
      field += c;
    }
  }
  AEVA_REQUIRE(!in_quotes, "unterminated quote in CSV row: ", preview(line));
  fields.push_back(std::move(field));
  return fields;
}

CsvTable parse_csv(std::istream& in) {
  CsvTable table;
  std::vector<CsvRow> all;
  CsvRow fields;
  std::string field;
  bool in_quotes = false;
  bool any_char = false;
  char c = 0;
  while (in.get(c)) {
    any_char = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      AEVA_REQUIRE(fields.size() < kMaxFieldsPerRow,
                   "CSV row exceeds ", kMaxFieldsPerRow, " fields");
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      fields.push_back(std::move(field));
      field.clear();
      all.push_back(std::move(fields));
      fields.clear();
    } else if (c == '\r') {
      // Swallowed; \n terminates the row.
    } else {
      field += c;
    }
  }
  AEVA_REQUIRE(!in_quotes, "unterminated quote at end of CSV document");
  if (any_char && (!field.empty() || !fields.empty())) {
    fields.push_back(std::move(field));
    all.push_back(std::move(fields));
  }
  if (all.empty()) {
    return table;
  }
  table.header = std::move(all.front());
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i].size() == 1 && all[i][0].empty()) {
      continue;  // trailing blank line
    }
    AEVA_REQUIRE(all[i].size() == table.header.size(),
                 "CSV row ", i, " has ", all[i].size(), " fields, header has ",
                 table.header.size());
    table.rows.push_back(std::move(all[i]));
  }
  return table;
}

CsvTable parse_csv_text(const std::string& text) {
  std::istringstream in(text);
  return parse_csv(in);
}

void write_csv(std::ostream& out, const CsvTable& table) {
  out << csv_encode_row(table.header) << '\n';
  for (const auto& row : table.rows) {
    out << csv_encode_row(row) << '\n';
  }
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open CSV file for reading: " + path);
  }
  return parse_csv(in);
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  // Crash-safe publish (temp + fsync + rename); commit() throws a typed
  // FileWriteError naming the path on any failure, disk-full included.
  AtomicFileWriter writer(path);
  write_csv(writer.stream(), table);
  writer.commit();
}

}  // namespace aeva::util
