#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace aeva::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AEVA_REQUIRE(lo <= hi, "uniform bounds out of order: ", lo, " > ", hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AEVA_REQUIRE(lo <= hi, "uniform_int bounds out of order: ", lo, " > ", hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  AEVA_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range: ", p);
  return uniform() < p;
}

double Rng::exponential(double rate) {
  AEVA_REQUIRE(rate > 0.0, "exponential rate must be positive, got ", rate);
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  AEVA_REQUIRE(stddev >= 0.0, "stddev must be non-negative, got ", stddev);
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  AEVA_REQUIRE(sigma >= 0.0, "sigma must be non-negative, got ", sigma);
  return std::exp(mu + sigma * normal());
}

double Rng::weibull(double shape, double scale) {
  AEVA_REQUIRE(shape > 0.0, "weibull shape must be positive, got ", shape);
  AEVA_REQUIRE(scale > 0.0, "weibull scale must be positive, got ", scale);
  double u = 1.0 - uniform();  // in (0, 1]
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::gamma(double shape, double scale) {
  AEVA_REQUIRE(shape > 0.0, "gamma shape must be positive, got ", shape);
  AEVA_REQUIRE(scale > 0.0, "gamma scale must be positive, got ", scale);
  if (shape < 1.0) {
    // Boost: G(k) = G(k+1) · U^{1/k}.
    const double boosted = gamma(shape + 1.0, 1.0);
    double u = uniform();
    while (u <= 0.0) {
      u = uniform();
    }
    return scale * boosted * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) {
      continue;
    }
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return scale * d * v;
    }
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::uint64_t stream_label(std::string_view name) noexcept {
  // FNV-1a over the label bytes, then one splitmix64 scramble so short
  // labels still produce well-mixed 64-bit ids.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return splitmix64(hash);
}

Rng named_stream(std::uint64_t seed, std::string_view label) noexcept {
  // xor-fold the label id into the seed through another splitmix64 step;
  // the non-zero constant keeps named_stream(seed, x) distinct from
  // Rng(seed) even for labels that hash near zero.
  std::uint64_t mix =
      seed ^ rotl(stream_label(label), 31) ^ 0x6a09e667f3bcc909ULL;
  return Rng(splitmix64(mix));
}

Rng Rng::fork(std::uint64_t label) noexcept {
  std::uint64_t mix = state_[0] ^ rotl(label, 29) ^ 0xa0761d6478bd642fULL;
  const std::uint64_t child_seed = splitmix64(mix);
  // Advance our own state so repeated forks with the same label differ.
  (void)(*this)();
  return Rng(child_seed);
}

Rng::State Rng::state() const noexcept {
  return State{state_, cached_normal_, has_cached_normal_};
}

void Rng::set_state(const State& state) noexcept {
  state_ = state.words;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace aeva::util
