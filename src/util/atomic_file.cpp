#include "util/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <string_view>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define AEVA_HAVE_FSYNC 1
#endif

namespace aeva::util {

namespace {

#if defined(AEVA_HAVE_FSYNC)
/// fsyncs `path`; returns false when the file cannot be opened or synced.
bool fsync_path(const std::string& path, int open_flags) noexcept {
  const int fd = ::open(path.c_str(), open_flags);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

/// Durably flushes the staged file to disk. The directory sync is best
/// effort: some filesystems refuse to open directories, and the rename
/// that follows is what publishes the content.
void sync_staged_file(const std::string& temp_path, const std::string& path) {
#if defined(AEVA_HAVE_FSYNC)
  if (!fsync_path(temp_path, O_WRONLY)) {
    throw FileWriteError(path, "fsync of staging file failed: " + temp_path);
  }
  const std::string dir =
      std::filesystem::path(temp_path).parent_path().string();
  if (!dir.empty()) {
    (void)fsync_path(dir, O_RDONLY);
  }
#else
  (void)temp_path;
  (void)path;
#endif
}

}  // namespace

FileWriteError::FileWriteError(std::string path, const std::string& detail)
    : std::runtime_error("cannot write file: " + path + " (" + detail + ")"),
      path_(std::move(path)) {}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw FileWriteError(path_, "cannot open staging file: " + temp_path_);
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    out_.close();
    std::error_code ec;
    std::filesystem::remove(temp_path_, ec);
  }
}

void AtomicFileWriter::commit() {
  if (committed_) {
    throw FileWriteError(path_, "commit() called twice");
  }
  out_.flush();
  const bool write_ok = !out_.fail();
  out_.close();
  if (!write_ok || out_.fail()) {
    std::error_code ec;
    std::filesystem::remove(temp_path_, ec);
    throw FileWriteError(path_,
                         "write to staging file failed (disk full?): " +
                             temp_path_);
  }
  sync_staged_file(temp_path_, path_);
  std::error_code ec;
  std::filesystem::rename(temp_path_, path_, ec);
  if (ec) {
    std::filesystem::remove(temp_path_, ec);
    throw FileWriteError(path_, "rename into place failed: " + temp_path_);
  }
  committed_ = true;
}

void write_file_atomic(const std::string& path, std::string_view content) {
  AtomicFileWriter writer(path);
  writer.stream().write(content.data(),
                        static_cast<std::streamsize>(content.size()));
  writer.commit();
}

}  // namespace aeva::util
