#pragma once

/// \file csv.hpp
/// Minimal CSV reading/writing.
///
/// The paper stores its empirical allocation model "in a plain-text file
/// with comma-separated values (CSV) instead of an actual database
/// management system" (Sect. III-C); this module provides that storage
/// layer. Fields containing commas, quotes, or newlines are quoted per
/// RFC 4180.

#include <iosfwd>
#include <string>
#include <vector>

namespace aeva::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// In-memory CSV document: a header row plus data rows.
struct CsvTable {
  CsvRow header;
  std::vector<CsvRow> rows;

  /// Index of a header column; throws std::invalid_argument if absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;

  /// True if the header contains the named column.
  [[nodiscard]] bool has_column(const std::string& name) const;
};

/// Serializes one row, quoting fields as needed.
[[nodiscard]] std::string csv_encode_row(const CsvRow& row);

/// Parses one encoded line into fields (handles quoted fields; does NOT
/// handle embedded newlines — use parse_csv for full documents).
[[nodiscard]] CsvRow csv_decode_row(const std::string& line);

/// Parses a full CSV document from a stream; first row is the header.
/// Handles quoted fields including embedded newlines. Every data row must
/// have the same arity as the header.
[[nodiscard]] CsvTable parse_csv(std::istream& in);

/// Convenience: parse a CSV document held in a string.
[[nodiscard]] CsvTable parse_csv_text(const std::string& text);

/// Writes a full CSV document to a stream.
void write_csv(std::ostream& out, const CsvTable& table);

/// Reads a CSV file from disk; throws std::runtime_error on I/O failure.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// Writes a CSV file to disk; throws std::runtime_error on I/O failure.
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace aeva::util
