#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool for deterministic fan-out/join phases.
///
/// Design goals (in priority order):
///   1. *Deterministic join*: `wait()` returns only after every task
///      submitted so far has finished, and the destructor drains the queue
///      before the workers exit — no task is ever dropped.
///   2. *Exception propagation*: a task that throws does not kill the
///      process; `wait()` rethrows the exception of the earliest-submitted
///      failed task (submission order, so the surfaced error is the same
///      regardless of worker interleaving).
///   3. No work stealing, no futures, no task priorities — callers that
///      need a reduction keep per-task output slots and reduce after
///      `wait()`, which is how bit-reproducible parallel searches are
///      built (see core::ProactiveAllocator and docs/PERFORMANCE.md).
///
/// The pool is internally synchronized: `submit` may be called from any
/// thread, including from inside a task. `wait` must not be called from
/// inside a task (it would deadlock on the caller's own slot).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace aeva::util {

/// Fixed-size worker pool with deterministic join semantics.
class ThreadPool {
 public:
  /// Spawns `workers` threads (≥ 1; use `recommended_workers` to size from
  /// the hardware). Throws std::invalid_argument on 0 workers.
  explicit ThreadPool(std::size_t workers);

  /// Drains every queued task, then joins all workers. Pending exceptions
  /// that were never observed via `wait()` are discarded (they cannot be
  /// thrown from a destructor).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Tasks are picked up by workers in FIFO order.
  /// Throws std::invalid_argument on a null task.
  void submit(std::function<void()> task) AEVA_EXCLUDES(mutex_);

  /// Blocks until every task submitted before this call has completed.
  /// If any of them threw, rethrows the exception of the earliest-submitted
  /// failed task and clears the recorded failures. The pool remains usable
  /// afterwards.
  void wait() AEVA_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Number of tasks that have fully completed (including failed ones).
  [[nodiscard]] std::uint64_t completed_count() const AEVA_EXCLUDES(mutex_);

  /// Worker count to use for `requested`: 0 → hardware concurrency
  /// (at least 1), otherwise `requested` itself.
  [[nodiscard]] static std::size_t recommended_workers(
      std::size_t requested) noexcept;

 private:
  struct Pending {
    std::uint64_t index = 0;  ///< submission index, for deterministic rethrow
    std::function<void()> task;
  };

  void worker_loop() AEVA_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<Pending> queue_ AEVA_GUARDED_BY(mutex_);
  /// Written by the constructing thread only (ctor fills, dtor joins);
  /// never touched by workers, so it needs no capability.
  std::vector<std::thread> workers_;
  std::uint64_t submitted_ AEVA_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ AEVA_GUARDED_BY(mutex_) = 0;
  /// (submission index, exception) of failed tasks awaiting a `wait()`.
  std::vector<std::pair<std::uint64_t, std::exception_ptr>> failures_
      AEVA_GUARDED_BY(mutex_);
  bool stopping_ AEVA_GUARDED_BY(mutex_) = false;
};

}  // namespace aeva::util
