#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All stochastic behaviour in aeva (trace synthesis, profile assignment,
/// meter noise) flows from explicit 64-bit seeds through this generator so
/// that every experiment is bit-reproducible across platforms. The engine is
/// xoshiro256** seeded via splitmix64, both public-domain algorithms by
/// Blackman & Vigna.

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace aeva::util {

/// One step of the splitmix64 sequence; used for seeding and hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Hashes a stream label into a 64-bit stream id (FNV-1a folded through
/// splitmix64). Stable across platforms and runs.
[[nodiscard]] std::uint64_t stream_label(std::string_view name) noexcept;

/// Deterministic random engine + distribution helpers.
///
/// Satisfies the essential parts of UniformRandomBitGenerator, but the
/// distribution helpers below are hand-rolled so results do not depend on
/// the standard library implementation.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential variate with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Standard normal variate (Box–Muller, deterministic pairing).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation (>= 0).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal variate: exp(N(mu, sigma)). Requires sigma >= 0.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Weibull variate with shape k > 0 and scale lambda > 0. Heavy-tailed
  /// for k < 1; used for HPC job runtimes.
  [[nodiscard]] double weibull(double shape, double scale);

  /// Gamma variate with shape k > 0 and scale θ > 0 (Marsaglia–Tsang for
  /// k ≥ 1, boosted for k < 1). Mean = kθ; the classic fit for parallel
  /// job runtimes (Lublin & Feitelson).
  [[nodiscard]] double gamma(double shape, double scale);

  /// Derives an independent child generator; children with distinct labels
  /// produce decorrelated streams.
  [[nodiscard]] Rng fork(std::uint64_t label) noexcept;

  /// Full engine state, exposed so checkpoint/restore (src/persist/) can
  /// resume a stream exactly where it left off. Includes the Box–Muller
  /// spare so `normal()` sequences survive a round trip bit-identically.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  /// Captures the current state.
  [[nodiscard]] State state() const noexcept;

  /// Restores a previously captured state; the stream continues exactly
  /// as if never interrupted.
  void set_state(const State& state) noexcept;

  /// Fisher–Yates shuffle using this engine.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// An independent named stream derived from (seed, label): subsystems that
/// sample lazily (e.g. failure injection) draw from their own stream so
/// enabling them can never perturb the sequences other consumers of the
/// same experiment seed observe (trace generation, meter noise, …).
/// Distinct labels under one seed are decorrelated, as are equal labels
/// under distinct seeds; `named_stream(seed, x)` never equals `Rng(seed)`.
[[nodiscard]] Rng named_stream(std::uint64_t seed,
                               std::string_view label) noexcept;

}  // namespace aeva::util
