#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace aeva::util {

ThreadPool::ThreadPool(std::size_t workers) {
  AEVA_REQUIRE(workers >= 1, "a thread pool needs at least one worker");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexGuard lock(mutex_);
    // Deterministic drain: workers finish everything already queued before
    // they observe `stopping_` with an empty queue and exit.
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  AEVA_REQUIRE(static_cast<bool>(task), "null task");
  {
    const MutexGuard lock(mutex_);
    queue_.push_back(Pending{submitted_++, std::move(task)});
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  const MutexGuard lock(mutex_);
  const std::uint64_t target = submitted_;
  while (completed_ < target) {
    all_done_.wait(mutex_);
  }
  if (!failures_.empty()) {
    // Rethrow the earliest submission so the surfaced error does not
    // depend on worker interleaving.
    const auto earliest = std::min_element(
        failures_.begin(), failures_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr error = earliest->second;
    failures_.clear();
    std::rethrow_exception(error);
  }
}

std::uint64_t ThreadPool::completed_count() const {
  const MutexGuard lock(mutex_);
  return completed_;
}

std::size_t ThreadPool::recommended_workers(std::size_t requested) noexcept {
  if (requested > 0) {
    return requested;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<std::size_t>(hardware) : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Pending pending;
    {
      const MutexGuard lock(mutex_);
      // Explicit predicate loop (not a lambda) so the guarded reads are
      // visibly under the held capability for the thread-safety analysis.
      while (!stopping_ && queue_.empty()) {
        work_available_.wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // stopping_ and fully drained
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      pending.task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      const MutexGuard lock(mutex_);
      ++completed_;
      if (error) {
        failures_.emplace_back(pending.index, error);
      }
    }
    all_done_.notify_all();
  }
}

}  // namespace aeva::util
