#include "util/table_printer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace aeva::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AEVA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  AEVA_REQUIRE(cells.size() == headers_.size(), "row arity ", cells.size(),
               " does not match header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace aeva::util
