#pragma once

/// \file args.hpp
/// Tiny `--key value` / `--flag` command-line parser used by the examples
/// and benchmark harness binaries.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace aeva::util {

/// One declared command-line option: `name` (without the leading `--`),
/// a `value_hint` shown in the usage listing (empty means the option is a
/// boolean flag and never consumes the next token), and a one-line help
/// string. Binaries that declare their full option set get an
/// auto-generated `--help` listing and strict unknown-option rejection.
struct OptionSpec {
  std::string name;
  std::string value_hint;  ///< e.g. "N", "seconds", "path"; "" = flag
  std::string help;
};

/// Parsed command line.
///
/// Grammar:
///
///  * `--name value` and `--name=value` bind an option. A value may start
///    with a single dash (`--opt -3` binds "-3") but not with `--`.
///  * A `--name` listed in the constructor's `flags` set is a boolean
///    flag: it never consumes the following token, so
///    `tool --quick trace.swf` keeps `trace.swf` positional. (Without the
///    declaration the old greedy rule would silently bind
///    `quick="trace.swf"` — every binary with bare flags must declare
///    them.)
///  * An undeclared bare `--name` at the end of the line or followed by
///    another `--option` also parses as a boolean flag.
///  * Everything else is a positional argument, kept in order.
///
/// Lookups distinguish *absent* from *present without a value*: the typed
/// getters return their fallback only when the option never appeared and
/// throw when it appeared empty (a flag queried as a value is a caller
/// bug, not a default).
class Args {
 public:
  /// Parses argv (argv[0] is skipped). `flags` declares the boolean flags
  /// of this binary (see the grammar above). Throws std::invalid_argument
  /// on a malformed token (e.g. `---x` or `--=v`).
  Args(int argc, const char* const* argv, std::vector<std::string> flags = {});

  /// Declared-spec parse: every option of the binary is listed up front,
  /// which buys (a) an auto-generated usage listing (see usage()), (b) a
  /// built-in `--help` flag (query help_requested(); callers print
  /// usage() and exit 0), and (c) strict parsing — an option not in
  /// `specs` throws instead of being silently accepted, so typos like
  /// `--serverz 40` fail loudly. `summary` is the one-line tool
  /// description shown at the top of the usage text.
  Args(int argc, const char* const* argv, const std::string& summary,
       std::vector<OptionSpec> specs);

  /// Raw option lookup: nullopt when absent, "" for a bare flag.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// String option with default; throws when `--name` appeared without a
  /// value.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Integer option with default; throws on an unparseable or empty value.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;

  /// Double option with default; throws on an unparseable or empty value.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// True if `--name` appeared (as a flag or with a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// True when `--help` was passed (declared-spec constructor only; the
  /// legacy constructor treats --help as an ordinary bare flag).
  [[nodiscard]] bool help_requested() const noexcept { return help_; }

  /// Auto-generated usage text from the declared specs: synopsis line,
  /// summary, then one aligned row per option. Empty for the legacy
  /// constructor.
  [[nodiscard]] std::string usage() const;

 private:
  void parse(int argc, const char* const* argv);

  std::set<std::string> flags_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  std::vector<OptionSpec> specs_;  // empty → legacy (non-strict) parse
  std::string program_ = "tool";
  std::string summary_;
  bool strict_ = false;
  bool help_ = false;
};

}  // namespace aeva::util
