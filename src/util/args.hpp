#pragma once

/// \file args.hpp
/// Tiny `--key value` / `--flag` command-line parser used by the examples
/// and benchmark harness binaries.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aeva::util {

/// Parsed command line.
///
/// Grammar: `--name value` binds an option, a bare `--name` at the end or
/// followed by another option is a boolean flag, everything else is a
/// positional argument.
class Args {
 public:
  /// Parses argv (argv[0] is skipped). Throws std::invalid_argument on a
  /// malformed token (e.g. `---x`).
  Args(int argc, const char* const* argv);

  /// Raw option lookup.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// String option with default.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Integer option with default; throws on unparseable value.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;

  /// Double option with default; throws on unparseable value.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// True if `--name` appeared (as a flag or with a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace aeva::util
