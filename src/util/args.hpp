#pragma once

/// \file args.hpp
/// Tiny `--key value` / `--flag` command-line parser used by the examples
/// and benchmark harness binaries.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace aeva::util {

/// Parsed command line.
///
/// Grammar:
///
///  * `--name value` and `--name=value` bind an option. A value may start
///    with a single dash (`--opt -3` binds "-3") but not with `--`.
///  * A `--name` listed in the constructor's `flags` set is a boolean
///    flag: it never consumes the following token, so
///    `tool --quick trace.swf` keeps `trace.swf` positional. (Without the
///    declaration the old greedy rule would silently bind
///    `quick="trace.swf"` — every binary with bare flags must declare
///    them.)
///  * An undeclared bare `--name` at the end of the line or followed by
///    another `--option` also parses as a boolean flag.
///  * Everything else is a positional argument, kept in order.
///
/// Lookups distinguish *absent* from *present without a value*: the typed
/// getters return their fallback only when the option never appeared and
/// throw when it appeared empty (a flag queried as a value is a caller
/// bug, not a default).
class Args {
 public:
  /// Parses argv (argv[0] is skipped). `flags` declares the boolean flags
  /// of this binary (see the grammar above). Throws std::invalid_argument
  /// on a malformed token (e.g. `---x` or `--=v`).
  Args(int argc, const char* const* argv, std::vector<std::string> flags = {});

  /// Raw option lookup: nullopt when absent, "" for a bare flag.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  /// String option with default; throws when `--name` appeared without a
  /// value.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;

  /// Integer option with default; throws on an unparseable or empty value.
  [[nodiscard]] long long get_int(const std::string& name,
                                  long long fallback) const;

  /// Double option with default; throws on an unparseable or empty value.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// True if `--name` appeared (as a flag or with a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::set<std::string> flags_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace aeva::util
