#include "util/time_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace aeva::util {

TimeSeries::TimeSeries(std::string name, std::string unit)
    : name_(std::move(name)), unit_(std::move(unit)) {}

void TimeSeries::append(double time_s, double value) {
  AEVA_REQUIRE(std::isfinite(time_s) && std::isfinite(value),
               "non-finite sample (", time_s, ", ", value, ")");
  if (!samples_.empty()) {
    AEVA_REQUIRE(time_s >= samples_.back().time_s,
                 "samples must be time-ordered: ", time_s, " < ",
                 samples_.back().time_s);
  }
  samples_.push_back(Sample{time_s, value});
}

double TimeSeries::start_time() const {
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  return samples_.front().time_s;
}

double TimeSeries::end_time() const {
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  return samples_.back().time_s;
}

double TimeSeries::integrate() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = samples_[i].time_s - samples_[i - 1].time_s;
    acc += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  return acc;
}

double TimeSeries::time_weighted_mean() const {
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  const double span = end_time() - start_time();
  if (span <= 0.0) {
    return samples_.back().value;
  }
  return integrate() / span;
}

double TimeSeries::max_value() const {
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  double best = samples_.front().value;
  for (const auto& s : samples_) {
    best = std::max(best, s.value);
  }
  return best;
}

double TimeSeries::value_at(double time_s) const {
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  if (time_s < samples_.front().time_s) {
    return samples_.front().value;
  }
  if (time_s >= samples_.back().time_s) {
    return samples_.back().value;
  }
  // First sample strictly after the query; at a step discontinuity
  // (duplicate timestamps) the latest sample at the query time wins.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), time_s,
      [](double t, const Sample& s) { return t < s.time_s; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (lo.time_s == time_s) {
    return lo.value;
  }
  const double dt = hi.time_s - lo.time_s;
  const double frac = (time_s - lo.time_s) / dt;
  return lo.value + frac * (hi.value - lo.value);
}

TimeSeries TimeSeries::resample(double period_s) const {
  AEVA_REQUIRE(period_s > 0.0, "resample period must be positive, got ",
               period_s);
  AEVA_REQUIRE(!samples_.empty(), "empty time series");
  TimeSeries out(name_, unit_);
  const double t0 = start_time();
  const double t1 = end_time();
  for (std::size_t k = 0;; ++k) {
    const double t = t0 + static_cast<double>(k) * period_s;
    if (t >= t1) {
      out.append(t1, value_at(t1));  // the grid always covers the endpoint
      break;
    }
    out.append(t, value_at(t));
  }
  return out;
}

}  // namespace aeva::util
