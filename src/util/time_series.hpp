#pragma once

/// \file time_series.hpp
/// Sampled time series: the common currency between the power meter, the
/// subsystem-utilization profilers, and the report printers.

#include <cstddef>
#include <string>
#include <vector>

namespace aeva::util {

/// One (time, value) sample.
struct Sample {
  double time_s = 0.0;
  double value = 0.0;
};

/// A time-ordered sequence of samples with numeric utilities.
///
/// Samples must be appended in non-decreasing time order; `append` enforces
/// this so integration and resampling stay well-defined.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Constructs with a human-readable name and unit (used by reports).
  TimeSeries(std::string name, std::string unit);

  /// Appends a sample; throws if `time_s` precedes the previous sample.
  void append(double time_s, double value);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_[i];
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// First/last sample times; throw std::invalid_argument when empty.
  [[nodiscard]] double start_time() const;
  [[nodiscard]] double end_time() const;

  /// Trapezoidal integral of value over time (e.g. W × s → J).
  /// Zero for fewer than two samples.
  [[nodiscard]] double integrate() const noexcept;

  /// Time-weighted mean value over the covered span; throws when empty.
  [[nodiscard]] double time_weighted_mean() const;

  /// Largest sampled value; throws when empty.
  [[nodiscard]] double max_value() const;

  /// Piecewise-linear interpolation at `time_s`, clamped to the endpoints.
  /// Throws when empty.
  [[nodiscard]] double value_at(double time_s) const;

  /// Resamples onto a uniform grid with the given period (> 0), covering
  /// [start_time, end_time]. Throws when empty.
  [[nodiscard]] TimeSeries resample(double period_s) const;

 private:
  std::string name_;
  std::string unit_;
  std::vector<Sample> samples_;
};

}  // namespace aeva::util
