#pragma once

/// \file mutex.hpp
/// Annotated synchronization primitives (docs/STATIC_ANALYSIS.md,
/// "Thread-safety annotations").
///
/// `util::Mutex`, `util::MutexGuard`, and `util::CondVar` are thin
/// wrappers over the std primitives that carry clang thread-safety
/// capability annotations (util/thread_annotations.hpp), so the compiler
/// can prove — not test — that every `AEVA_GUARDED_BY` field is only
/// touched under its lock. They are the *only* sanctioned locking
/// primitives outside src/util/: a raw `std::mutex` is invisible to the
/// analysis, so tools/lint/aeva_lint.py (`raw-mutex`) rejects it.
///
/// Usage pattern (see obs::Histogram or modeldb::EstimateCache):
///
///     struct Shard {
///       mutable util::Mutex mutex;
///       std::vector<int> counts AEVA_GUARDED_BY(mutex);
///     };
///     void touch(Shard& s) {
///       const util::MutexGuard lock(s.mutex);
///       s.counts.push_back(1);  // proven-locked access
///     }
///
/// Condition waits go through `CondVar::wait(Mutex&)`, which declares
/// AEVA_REQUIRES on the mutex; write the predicate as an explicit
/// `while (!pred) cv.wait(mu);` loop in the locked scope so the analysis
/// sees the guarded reads under the held capability (lambda predicates
/// are opaque to it).

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace aeva::util {

/// Exclusive lock capability wrapping `std::mutex`.
class AEVA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AEVA_ACQUIRE() { mutex_.lock(); }
  void unlock() AEVA_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() AEVA_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII scoped lock over `Mutex` (the annotated `std::lock_guard`).
class AEVA_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex& mutex) AEVA_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexGuard() AEVA_RELEASE() { mutex_.unlock(); }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with `Mutex`. `wait` atomically releases and
/// reacquires the mutex through the std implementation; the capability is
/// held again when it returns, which is exactly what AEVA_REQUIRES
/// states, so callers' guarded accesses around the wait stay provable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The release/reacquire happens inside
  /// std::condition_variable; analysis of this body is disabled (the one
  /// sanctioned escape hatch, see thread_annotations.hpp).
  void wait(Mutex& mutex) AEVA_REQUIRES(mutex) AEVA_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> relock(mutex.mutex_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aeva::util
