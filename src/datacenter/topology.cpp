#include "datacenter/topology.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::datacenter {

namespace {

/// Ids stay small so dense per-domain tables cannot be bloated by one
/// absurd declaration (mirrors the failure-script parser's server bound).
constexpr int kMaxId = 1'000'000;

void check_id(int id, const char* what, std::size_t index) {
  AEVA_REQUIRE(id >= 0 && id <= kMaxId, "topology rack declaration ", index,
               ": ", what, " id ", id, " outside [0, ", kMaxId, "]");
}

}  // namespace

Topology Topology::from_racks(std::vector<RackSpec> racks) {
  AEVA_REQUIRE(!racks.empty(), "topology needs at least one rack");
  std::sort(racks.begin(), racks.end(),
            [](const RackSpec& a, const RackSpec& b) { return a.rack < b.rack; });

  int max_pdu = -1;
  int max_tor = -1;
  std::size_t total_servers = 0;
  for (std::size_t i = 0; i < racks.size(); ++i) {
    RackSpec& rack = racks[i];
    check_id(rack.rack, "rack", i);
    check_id(rack.pdu, "pdu", i);
    check_id(rack.tor, "tor", i);
    AEVA_REQUIRE(rack.rack == static_cast<int>(i),
                 "topology rack ids must be dense from 0: expected rack ", i,
                 ", got ", rack.rack,
                 i > 0 && racks[i - 1].rack == rack.rack ? " (duplicate)" : "");
    AEVA_REQUIRE(!rack.servers.empty(), "topology rack ", rack.rack,
                 " declares no servers");
    for (const int server : rack.servers) {
      AEVA_REQUIRE(server >= 0 && server <= kMaxId, "topology rack ",
                   rack.rack, " lists server id ", server, " outside [0, ",
                   kMaxId, "]");
    }
    std::sort(rack.servers.begin(), rack.servers.end());
    max_pdu = std::max(max_pdu, rack.pdu);
    max_tor = std::max(max_tor, rack.tor);
    total_servers += rack.servers.size();
  }

  Topology topo;
  topo.rack_of_.assign(total_servers, -1);
  topo.pdu_of_.assign(total_servers, -1);
  topo.tor_of_.assign(total_servers, -1);
  topo.pdu_members_.assign(static_cast<std::size_t>(max_pdu) + 1, {});
  topo.tor_members_.assign(static_cast<std::size_t>(max_tor) + 1, {});
  for (const RackSpec& rack : racks) {
    for (const int server : rack.servers) {
      const auto s = static_cast<std::size_t>(server);
      AEVA_REQUIRE(s < total_servers,
                   "topology server ids must be dense from 0: server ",
                   server, " with only ", total_servers, " servers declared");
      AEVA_REQUIRE(topo.rack_of_[s] < 0, "topology server ", server,
                   " appears in rack ", topo.rack_of_[s], " and rack ",
                   rack.rack);
      topo.rack_of_[s] = rack.rack;
      topo.pdu_of_[s] = rack.pdu;
      topo.tor_of_[s] = rack.tor;
    }
  }
  // Dense server coverage follows from the pigeonhole above: total_servers
  // slots, every id in range and claimed at most once, so all claimed.
  // Membership lists fill in ascending server order by construction.
  for (std::size_t s = 0; s < total_servers; ++s) {
    topo.pdu_members_[static_cast<std::size_t>(topo.pdu_of_[s])].push_back(
        static_cast<int>(s));
    topo.tor_members_[static_cast<std::size_t>(topo.tor_of_[s])].push_back(
        static_cast<int>(s));
  }
  for (std::size_t p = 0; p < topo.pdu_members_.size(); ++p) {
    AEVA_REQUIRE(!topo.pdu_members_[p].empty(),
                 "topology pdu ids must be dense from 0: feed ", p,
                 " has no servers");
  }
  for (std::size_t t = 0; t < topo.tor_members_.size(); ++t) {
    AEVA_REQUIRE(!topo.tor_members_[t].empty(),
                 "topology tor ids must be dense from 0: switch ", t,
                 " has no servers");
  }
  topo.racks_ = std::move(racks);
  return topo;
}

int Topology::rack_of(int server) const {
  AEVA_REQUIRE(server >= 0 && server < server_count(), "topology server ",
               server, " outside [0, ", server_count(), ")");
  return rack_of_[static_cast<std::size_t>(server)];
}

int Topology::pdu_of(int server) const {
  AEVA_REQUIRE(server >= 0 && server < server_count(), "topology server ",
               server, " outside [0, ", server_count(), ")");
  return pdu_of_[static_cast<std::size_t>(server)];
}

int Topology::tor_of(int server) const {
  AEVA_REQUIRE(server >= 0 && server < server_count(), "topology server ",
               server, " outside [0, ", server_count(), ")");
  return tor_of_[static_cast<std::size_t>(server)];
}

int Topology::pdu_of_rack(int rack) const {
  AEVA_REQUIRE(rack >= 0 && rack < rack_count(), "topology rack ", rack,
               " outside [0, ", rack_count(), ")");
  return racks_[static_cast<std::size_t>(rack)].pdu;
}

int Topology::tor_of_rack(int rack) const {
  AEVA_REQUIRE(rack >= 0 && rack < rack_count(), "topology rack ", rack,
               " outside [0, ", rack_count(), ")");
  return racks_[static_cast<std::size_t>(rack)].tor;
}

std::span<const int> Topology::servers_in_rack(int rack) const {
  AEVA_REQUIRE(rack >= 0 && rack < rack_count(), "topology rack ", rack,
               " outside [0, ", rack_count(), ")");
  return racks_[static_cast<std::size_t>(rack)].servers;
}

std::span<const int> Topology::servers_on_pdu(int pdu) const {
  AEVA_REQUIRE(pdu >= 0 && pdu < pdu_count(), "topology pdu ", pdu,
               " outside [0, ", pdu_count(), ")");
  return pdu_members_[static_cast<std::size_t>(pdu)];
}

std::span<const int> Topology::servers_on_tor(int tor) const {
  AEVA_REQUIRE(tor >= 0 && tor < tor_count(), "topology tor ", tor,
               " outside [0, ", tor_count(), ")");
  return tor_members_[static_cast<std::size_t>(tor)];
}

Topology make_synthetic_topology(const SyntheticTopologyConfig& config) {
  AEVA_REQUIRE(config.server_count > 0, "synthetic topology needs servers, ",
               "got ", config.server_count);
  AEVA_REQUIRE(config.servers_per_rack > 0,
               "servers_per_rack must be positive, got ",
               config.servers_per_rack);
  AEVA_REQUIRE(config.racks_per_pdu > 0, "racks_per_pdu must be positive, ",
               "got ", config.racks_per_pdu);
  AEVA_REQUIRE(config.racks_per_tor > 0, "racks_per_tor must be positive, ",
               "got ", config.racks_per_tor);
  const int rack_count =
      (config.server_count + config.servers_per_rack - 1) /
      config.servers_per_rack;
  std::vector<RackSpec> racks;
  racks.reserve(static_cast<std::size_t>(rack_count));
  for (int r = 0; r < rack_count; ++r) {
    RackSpec rack;
    rack.rack = r;
    rack.pdu = r / config.racks_per_pdu;
    rack.tor = r / config.racks_per_tor;
    const int lo = r * config.servers_per_rack;
    const int hi = std::min((r + 1) * config.servers_per_rack,
                            config.server_count);
    rack.servers.reserve(static_cast<std::size_t>(hi - lo));
    for (int s = lo; s < hi; ++s) {
      rack.servers.push_back(s);
    }
    racks.push_back(std::move(rack));
  }
  return Topology::from_racks(std::move(racks));
}

// --- spec I/O ---------------------------------------------------------------

namespace {

int parse_id(const std::string& field, std::size_t lineno, const char* what) {
  const auto parsed = util::parse_double(field);
  AEVA_REQUIRE(parsed.has_value() && std::isfinite(*parsed) && *parsed >= 0.0 &&
                   *parsed <= kMaxId && *parsed == std::floor(*parsed),
               "topology line ", lineno, ": malformed ", what, " '",
               field.substr(0, 32), "' (want an integer in [0, ", kMaxId,
               "])");
  return static_cast<int>(*parsed);
}

}  // namespace

Topology parse_topology(std::istream& in) {
  std::vector<RackSpec> racks;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string text = util::trim(line);
    if (text.empty() || text.front() == '#' || text.front() == ';') {
      continue;
    }
    const std::vector<std::string> fields = util::split_whitespace(text);
    AEVA_REQUIRE(fields.front() == "rack", "topology line ", lineno,
                 ": unknown keyword '", fields.front().substr(0, 32),
                 "' (want 'rack')");
    AEVA_REQUIRE(fields.size() >= 8, "topology line ", lineno,
                 ": rack takes <id> pdu <id> tor <id> servers <id>..., got ",
                 fields.size() - 1, " fields");
    AEVA_REQUIRE(fields[2] == "pdu", "topology line ", lineno,
                 ": expected 'pdu', got '", fields[2].substr(0, 32), "'");
    AEVA_REQUIRE(fields[4] == "tor", "topology line ", lineno,
                 ": expected 'tor', got '", fields[4].substr(0, 32), "'");
    AEVA_REQUIRE(fields[6] == "servers", "topology line ", lineno,
                 ": expected 'servers', got '", fields[6].substr(0, 32), "'");
    RackSpec rack;
    rack.rack = parse_id(fields[1], lineno, "rack id");
    rack.pdu = parse_id(fields[3], lineno, "pdu id");
    rack.tor = parse_id(fields[5], lineno, "tor id");
    rack.servers.reserve(fields.size() - 7);
    for (std::size_t f = 7; f < fields.size(); ++f) {
      rack.servers.push_back(parse_id(fields[f], lineno, "server id"));
    }
    racks.push_back(std::move(rack));
  }
  return Topology::from_racks(std::move(racks));
}

Topology parse_topology(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

Topology read_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open topology spec: " + path);
  }
  return parse_topology(in);
}

void write_topology(std::ostream& out, const Topology& topology) {
  out << "# aeva topology: rack <id> pdu <id> tor <id> servers <id>...\n";
  for (const RackSpec& rack : topology.racks()) {
    out << "rack " << rack.rack << " pdu " << rack.pdu << " tor " << rack.tor
        << " servers";
    for (const int server : rack.servers) {
      out << ' ' << server;
    }
    out << '\n';
  }
}

core::SpreadConfig spread_by_rack(const Topology& topology,
                                  int max_vms_per_domain,
                                  double blast_penalty) {
  AEVA_REQUIRE(!topology.empty(),
               "spread_by_rack needs a non-empty topology");
  AEVA_REQUIRE(max_vms_per_domain >= 1,
               "max_vms_per_domain must be >= 1, got ", max_vms_per_domain);
  AEVA_REQUIRE(std::isfinite(blast_penalty) && blast_penalty >= 0.0,
               "blast_penalty must be finite and non-negative, got ",
               blast_penalty);
  core::SpreadConfig spread;
  spread.enabled = true;
  spread.max_vms_per_domain = max_vms_per_domain;
  spread.domain_count = topology.rack_count();
  spread.blast_penalty = blast_penalty;
  spread.domain_of_server.reserve(
      static_cast<std::size_t>(topology.server_count()));
  for (int s = 0; s < topology.server_count(); ++s) {
    spread.domain_of_server.push_back(topology.rack_of(s));
  }
  return spread;
}

}  // namespace aeva::datacenter
