#include "datacenter/ground_truth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "datacenter/fcfs_queue.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/registry.hpp"

namespace aeva::datacenter {

using core::Placement;
using core::ServerState;
using core::VmRequest;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

GroundTruthSimulator::GroundTruthSimulator(const modeldb::ModelDatabase& db,
                                           testbed::ServerConfig hardware,
                                           CloudConfig cloud)
    : db_(&db), hardware_(hardware), cloud_(std::move(cloud)) {
  hardware_.validate();
  AEVA_REQUIRE(cloud_.server_count >= 1, "cloud needs at least one server");
  AEVA_REQUIRE(!cloud_.migration.enabled,
               "the fluid backend does not support migration sweeps");
  AEVA_REQUIRE(cloud_.hardware.empty(),
               "the fluid backend models a homogeneous fleet");
}

SimMetrics GroundTruthSimulator::run(const trace::PreparedWorkload& workload,
                                     const core::Allocator& allocator) const {
  AEVA_REQUIRE(!workload.jobs.empty(), "empty workload");
  const auto& jobs = workload.jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    AEVA_REQUIRE(jobs[i].submit_s >= jobs[i - 1].submit_s,
                 "workload not sorted by submission time at job ", i);
  }

  for (const trace::JobRequest& job : jobs) {
    AEVA_REQUIRE(job.depends_on == 0,
                 "the fluid backend does not model workflow dependencies "
                 "(job ",
                 job.id, ")");
  }

  // Per-run fleet construction — built once, before the event loop.
  const auto n_servers = static_cast<std::size_t>(cloud_.server_count);
  std::vector<testbed::OnlineServer> servers;
  servers.reserve(n_servers);
  for (std::size_t s = 0; s < n_servers; ++s) {
    servers.emplace_back(hardware_);
  }
  std::vector<bool> powered(n_servers, false);  // per-run, sized once

  // handle → owning job index, per server. OnlineServer handles are
  // monotonically increasing, so appending keeps each inner table sorted
  // and a completion resolves by binary search — no node-based map on the
  // per-event path. The outer table is sized once per run.
  std::vector<std::vector<std::pair<std::int64_t, std::size_t>>> owner(
      n_servers);

  FcfsQueue queue;
  SimMetrics metrics;
  metrics.jobs = jobs.size();
  util::RunningStats response_stats;
  util::RunningStats wait_stats;

  const double t0 = jobs.front().submit_s;
  double now = t0;
  std::size_t next_job = 0;
  std::int64_t next_vm_id = 1;
  double busy_server_time = 0.0;

  // Reused per-admission scratch: capacity survives across attempts, so
  // warm admissions allocate nothing but the OnlineServer's own VM node.
  std::vector<ServerState> states;
  states.reserve(n_servers);
  std::vector<VmRequest> request;
  core::AllocationResult alloc_result;

  const auto server_states = [&]() -> std::span<const ServerState> {
    states.clear();
    for (std::size_t s = 0; s < n_servers; ++s) {
      states.push_back(ServerState{static_cast<int>(s), servers[s].mix(),
                                   powered[s], 0});
    }
    return states;
  };

  // Attempts one queued job (by queue position).
  const auto try_admit = [&](std::size_t queue_pos) -> bool {
    const std::size_t j = queue[queue_pos];
    const trace::JobRequest& job = jobs[j];
    request.clear();
    const double exec_bound =
        job.max_exec_stretch * db_->base().of(job.profile).solo_time_s;
    for (int k = 0; k < job.vm_count; ++k) {
      VmRequest vm;
      vm.id = next_vm_id + k;
      vm.profile = job.profile;
      vm.max_exec_time_s = exec_bound > 0.0 ? exec_bound : kInf;
      request.push_back(vm);
    }
    allocator.allocate_into(request, server_states(), alloc_result);
    const core::AllocationResult& result = alloc_result;
    if (!result.complete) {
      return false;
    }
    const workload::AppSpec& app = workload::canonical_app(job.profile);
    for (const Placement& placement : result.placements) {
      AEVA_REQUIRE(placement.server_id >= 0 &&
                       placement.server_id < cloud_.server_count,
                   "allocator returned invalid server ", placement.server_id);
      const auto s = static_cast<std::size_t>(placement.server_id);
      const std::int64_t handle =
          servers[s].add_vm(app, job.runtime_scale);
      owner[s].emplace_back(handle, j);  // handles ascend: stays sorted
      powered[s] = true;
      wait_stats.add(now - job.submit_s);
    }
    next_vm_id += job.vm_count;
    queue.erase_at(queue_pos);
    return true;
  };

  const auto drain_queue = [&] {
    while (!queue.empty()) {
      if (try_admit(0)) {
        continue;
      }
      bool backfilled = false;
      const auto window =
          static_cast<std::size_t>(std::max(0, cloud_.backfill_window));
      for (std::size_t p = 1; p < queue.size() && p <= window; ++p) {
        if (try_admit(p)) {
          backfilled = true;
          break;
        }
      }
      if (!backfilled) {
        return;
      }
    }
  };

  std::size_t guard = 0;
  const std::size_t max_events =
      jobs.size() * 4 + static_cast<std::size_t>(workload.total_vms) * 64 +
      (1u << 16);
  std::vector<std::int64_t> completed;  // hoisted; capacity reused per event
  while (next_job < jobs.size() || !queue.empty() ||
         [&] {
           for (std::size_t s = 0; s < n_servers; ++s) {
             if (servers[s].resident() > 0) return true;
           }
           return false;
         }()) {
    AEVA_INVARIANT(++guard <= max_events,
                "ground-truth simulation event budget exhausted");

    const double next_arrival =
        next_job < jobs.size() ? jobs[next_job].submit_s : kInf;
    double next_completion = kInf;
    for (std::size_t s = 0; s < n_servers; ++s) {
      next_completion = std::min(next_completion,
                                 now + servers[s].next_event_in());
    }
    const double next_event = std::min(next_arrival, next_completion);
    if (!std::isfinite(next_event)) {
      throw std::runtime_error(
          "ground-truth simulation deadlocked: queued jobs but no running "
          "VMs and no future arrivals (strategy '" +
          allocator.name() + "' cannot place the head-of-line job)");
    }

    const double dt = next_event - now;
    if (dt > 0.0) {
      double busy = 0.0;
      double power = 0.0;
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (servers[s].resident() > 0) {
          busy += 1.0;
          power += servers[s].power_w();
        }
      }
      metrics.energy_j += power * dt;
      busy_server_time += busy * dt;
      metrics.peak_busy_servers = std::max(metrics.peak_busy_servers, busy);
    }

    // Advance every server to the event instant (phase boundaries inside
    // the step are impossible by construction of next_event; completions
    // land exactly at its end).
    for (std::size_t s = 0; s < n_servers; ++s) {
      if (servers[s].resident() == 0) {
        continue;
      }
      completed.clear();
      servers[s].advance(dt + kEps, completed);
      for (const std::int64_t handle : completed) {
        auto& table = owner[s];
        const auto it = std::lower_bound(
            table.begin(), table.end(), handle,
            [](const std::pair<std::int64_t, std::size_t>& entry,
               std::int64_t key) { return entry.first < key; });
        AEVA_INVARIANT(it != table.end() && it->first == handle,
                       "unknown VM handle completed");
        const trace::JobRequest& job = jobs[it->second];
        const double response = next_event - job.submit_s;
        response_stats.add(response);
        if (response > job.deadline_s + kEps) {
          ++metrics.sla_violations;
        }
        ++metrics.vms;
        table.erase(it);
      }
    }
    now = next_event;

    while (next_job < jobs.size() && jobs[next_job].submit_s <= now + kEps) {
      queue.push_back(next_job);
      ++next_job;
    }
    drain_queue();
  }

  metrics.makespan_s = now - t0;
  metrics.mean_response_s = response_stats.mean();
  metrics.mean_wait_s = wait_stats.mean();
  metrics.sla_violation_pct =
      metrics.vms > 0
          ? 100.0 * static_cast<double>(metrics.sla_violations) /
                static_cast<double>(metrics.vms)
          : 0.0;
  metrics.mean_busy_servers =
      metrics.makespan_s > 0.0 ? busy_server_time / metrics.makespan_s : 0.0;
  for (std::size_t s = 0; s < n_servers; ++s) {
    metrics.servers_powered += powered[s] ? 1 : 0;
  }
  return metrics;
}

}  // namespace aeva::datacenter
