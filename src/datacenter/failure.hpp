#pragma once

/// \file failure.hpp
/// Fault injection & resilience model for the datacenter simulator.
///
/// The paper's evaluation (Sect. IV) assumes a fail-free cloud; production
/// energy-aware allocators cannot (Beloglazov et al.'s taxonomy treats
/// failure handling as first-class). This subsystem injects server-level
/// faults into the interval-accounting event loop:
///
///  * **crash** — the server powers off instantly, every resident VM is
///    lost, and the machine is masked from the allocator until its repair
///    completes (it returns cold: the wake-up premium is paid again);
///  * **degrade** — a transient slowdown: every VM on the server runs at a
///    multiplier of its modeled progress rate for a window (correctable
///    faults, noisy neighbours outside the model, throttling);
///  * **brownout** — a power-capped interval: the server's draw is clamped
///    to a watt budget and VM progress slows proportionally (DVFS-style).
///
/// On top of the independent per-server faults, a wired `Topology`
/// (datacenter/topology.hpp) unlocks **correlated failure domains**
/// (docs/RESILIENCE.md, "Correlated failure domains"):
///
///  * **pdu** — a power-feed fault crashes every server on the feed in a
///    single event; all of them share one repair window and return
///    together (cold);
///  * **tor** — a top-of-rack switch fault isolates its rack: resident
///    VMs stall (progress frozen, not lost) and the rack's servers are
///    masked from the allocator until the switch heals, when every
///    resident resumes at once.
///
/// Faults come from a deterministic script, from seeded per-server
/// MTBF/MTTR exponential sampling, or both. Per-server sampling draws
/// from the dedicated `util::named_stream(seed, "failures")` stream and
/// domain sampling from `util::named_stream(seed, "domain-failures")`
/// (one forked substream per PDU feed, then per ToR switch), so enabling
/// failures — or adding domain faults to a run that already samples
/// per-server crashes — can never perturb trace generation or any other
/// consumer of the experiment seed; with `FailureConfig::enabled ==
/// false` the simulator's behaviour is bit-identical to the fail-free
/// model. Every batch of simultaneous faults is emitted in the canonical
/// (time, domain/server, kind) order, so replays are bit-stable no
/// matter which source produced each event.
///
/// Lost VMs re-enter the queue under a recovery policy: restart from zero,
/// periodic-checkpoint restart (resume at the last checkpoint boundary,
/// paying a checkpoint-I/O progress tax while running), or abandon after N
/// retries. docs/RESILIENCE.md specifies the semantics in full.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace aeva::datacenter {

class Topology;

/// Fault taxonomy. The first three target one server; the domain kinds
/// target a whole failure domain and require a wired Topology.
enum class FailureKind {
  kCrash,     ///< server off, VMs lost, masked until repair
  kDegrade,   ///< progress-rate multiplier for a window
  kBrownout,  ///< power-capped interval (proportional slowdown)
  kPduFault,  ///< power feed out: every server on it crashes at once
  kTorFault,  ///< rack switch out: residents stall until the heal
};

[[nodiscard]] constexpr const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kCrash: return "crash";
    case FailureKind::kDegrade: return "degrade";
    case FailureKind::kBrownout: return "brownout";
    case FailureKind::kPduFault: return "pdu";
    case FailureKind::kTorFault: return "tor";
  }
  return "?";
}

/// One scheduled fault.
struct FailureEvent {
  FailureKind kind = FailureKind::kCrash;
  /// Target server index — or, for the domain kinds, the PDU feed index
  /// (kPduFault) / ToR switch index (kTorFault). The same field doubles
  /// as the second key of the canonical (time, domain/server, kind)
  /// event order.
  int server = 0;
  double at_s = 0.0;    ///< absolute simulation time (same clock as submits)
  /// Crash/pdu: repair time (masked window). Degrade/brownout/tor:
  /// window length.
  double duration_s = 0.0;
  /// Degrade: progress-rate multiplier in (0, 1]. Brownout: power cap in
  /// Watts (> 0). Ignored for crashes and domain faults.
  double magnitude = 1.0;
};

/// Canonical fault order: (time, domain/server, kind). Simultaneous
/// faults apply in exactly this order regardless of whether they came
/// from the script or a sampler, which is what makes replays of a fault
/// batch bit-stable (tests/datacenter/failure_test.cpp pins this).
[[nodiscard]] constexpr bool canonical_event_order(
    const FailureEvent& a, const FailureEvent& b) noexcept {
  if (a.at_s != b.at_s) {
    return a.at_s < b.at_s;
  }
  if (a.server != b.server) {
    return a.server < b.server;
  }
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

/// What happens to a VM lost in a crash.
enum class RecoveryPolicy {
  kRestartFromZero,    ///< all progress lost; the VM re-queues at work = 0
  kCheckpointRestart,  ///< resume from the last periodic checkpoint
  kAbandonAfterRetries,///< restart from zero at most `max_retries` times
};

[[nodiscard]] constexpr const char* to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kRestartFromZero: return "restart-from-zero";
    case RecoveryPolicy::kCheckpointRestart: return "checkpoint-restart";
    case RecoveryPolicy::kAbandonAfterRetries: return "abandon-after-retries";
  }
  return "?";
}

/// Recovery tuning.
struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::kRestartFromZero;
  /// Checkpoint-restart: wall-clock period between per-VM checkpoints,
  /// counted from the VM's (re)start instant.
  double checkpoint_period_s = 900.0;
  /// Checkpoint-restart: fraction of progress rate lost to checkpoint I/O
  /// while the VM runs (the progress tax), in [0, 1).
  double checkpoint_tax = 0.02;
  /// Abandon-after-retries: a VM is dropped once it has been restarted
  /// this many times and is lost again (>= 0; 0 drops on the first loss).
  int max_retries = 3;
};

/// Correlated-domain fault sampling (requires FailureConfig::topology).
/// Both processes are exponential MTBF/MTTR like the per-server sampler,
/// but drawn from the dedicated "domain-failures" named stream so wiring
/// them up cannot shift any per-server draw.
struct DomainFailureConfig {
  /// Mean time between faults per PDU feed, seconds. 0 disables PDU
  /// sampling (scripted pdu events still apply).
  double pdu_mtbf_s = 0.0;
  /// Mean repair time of a PDU fault (every server on the feed shares
  /// the window), seconds.
  double pdu_mttr_s = 7200.0;
  /// Mean time between faults per ToR switch, seconds. 0 disables ToR
  /// sampling.
  double tor_mtbf_s = 0.0;
  /// Mean isolation window of a ToR fault, seconds.
  double tor_mttr_s = 1800.0;
};

/// Fault-injection configuration, carried by CloudConfig. Disabled by
/// default; when disabled every other field is inert and the simulator is
/// bit-identical to the fail-free model.
struct FailureConfig {
  bool enabled = false;
  /// Deterministic scripted fault trace (applied in time order; see also
  /// parse_failure_script for the on-disk format).
  std::vector<FailureEvent> script;
  /// Per-server mean time between sampled crashes, seconds. 0 disables
  /// stochastic sampling (scripted faults only).
  double mtbf_s = 0.0;
  /// Mean time to repair for sampled crashes (exponential), seconds.
  double mttr_s = 1800.0;
  /// Seed of the dedicated "failures" / "domain-failures" sampling
  /// streams.
  std::uint64_t seed = 2026;
  RecoveryConfig recovery;
  /// Rack/PDU/ToR map of the fleet (not owned; must outlive the run).
  /// Required by domain faults — scripted or sampled — and by nothing
  /// else: a null topology with no domain faults behaves exactly as
  /// before the field existed.
  const Topology* topology = nullptr;
  DomainFailureConfig domains;

  /// Validates ranges, that every scripted event targets a server (or
  /// domain) in range, and that `topology` — when present — covers
  /// exactly `server_count` servers. Throws std::invalid_argument.
  void validate(int server_count) const;
};

/// Merged, time-ordered fault source: scripted events plus lazily sampled
/// per-server crashes. One instance per simulation run.
class FailureSchedule {
 public:
  /// `config` must outlive the schedule and already be validated;
  /// `start_s` is the simulation start (first submission).
  FailureSchedule(const FailureConfig& config, int server_count,
                  double start_s);

  /// Time of the earliest pending fault, or +infinity when none.
  [[nodiscard]] double next_time() const noexcept;

  /// Pops every fault due at or before `now` into `out`, which is
  /// cleared first — hot callers hand in a reused scratch buffer so a
  /// fault-free event costs no heap allocation. The batch is emitted in
  /// the canonical (time, domain/server, kind) order whatever mix of
  /// script, per-server sampling, and domain sampling produced it.
  void pop_due(double now, std::vector<FailureEvent>& out);

  /// Convenience overload materializing a fresh vector (tests, cold paths).
  [[nodiscard]] std::vector<FailureEvent> pop_due(double now) {
    std::vector<FailureEvent> due;
    pop_due(now, due);
    return due;
  }

  /// Suppresses sampled crashes for a server that just went down.
  void on_crash(int server);

  /// Re-arms sampling for a repaired server from its repair instant.
  void on_repair(int server, double repair_s);

  /// Mutable schedule state for checkpoint/restore (src/persist/). The
  /// script itself is re-derived from the config on construction, so only
  /// the cursors and sampling state need to travel.
  struct State {
    std::size_t script_next = 0;
    std::vector<util::Rng::State> streams;
    std::vector<double> sampled_next;
    std::vector<util::Rng::State> pdu_streams;
    std::vector<double> pdu_next;
    std::vector<util::Rng::State> tor_streams;
    std::vector<double> tor_next;
  };

  /// Captures the mutable state.
  [[nodiscard]] State state() const;

  /// Restores state captured from a schedule built with an identical
  /// config; throws std::invalid_argument when the per-server or
  /// per-domain vectors do not match this schedule's shape.
  void restore(const State& state);

 private:
  std::vector<FailureEvent> script_;   ///< canonical event order
  std::size_t script_next_ = 0;
  std::vector<util::Rng> streams_;     ///< one sampling stream per server
  std::vector<double> sampled_next_;   ///< +inf while down or unsampled
  double mtbf_s_ = 0.0;
  double mttr_s_ = 0.0;
  // Domain sampling (empty unless a topology with a sampled process is
  // wired). Unlike per-server crashes, domain processes re-arm at pop
  // time — next = heal instant + exp(mtbf) — which is equivalent to
  // re-arming at the heal because nothing else touches these streams.
  std::vector<util::Rng> pdu_streams_;
  std::vector<double> pdu_next_;
  std::vector<util::Rng> tor_streams_;
  std::vector<double> tor_next_;
  double pdu_mtbf_s_ = 0.0;
  double pdu_mttr_s_ = 0.0;
  double tor_mtbf_s_ = 0.0;
  double tor_mttr_s_ = 0.0;
};

/// Parses a scripted failure trace. Format, one event per line:
///
///     # comment (also ';')
///     crash    <server> <at_s> <repair_s>
///     degrade  <server> <at_s> <window_s> <rate-multiplier>
///     brownout <server> <at_s> <window_s> <cap_w>
///     pdu      <feed>   <at_s> <repair_s>
///     tor      <switch> <at_s> <window_s>
///
/// Domain lines name a PDU feed / ToR switch of the run's Topology
/// (bounds checked at FailureConfig::validate time, when the topology is
/// known). Throws std::invalid_argument on malformed input (unknown
/// kind, wrong arity, non-finite numbers, out-of-range magnitudes).
[[nodiscard]] std::vector<FailureEvent> parse_failure_script(std::istream& in);
[[nodiscard]] std::vector<FailureEvent> parse_failure_script(
    const std::string& text);

/// Reads a script file; std::runtime_error when unreadable.
[[nodiscard]] std::vector<FailureEvent> read_failure_script_file(
    const std::string& path);

/// Writes events in the parse_failure_script format (round-trippable).
void write_failure_script(std::ostream& out,
                          const std::vector<FailureEvent>& events);

}  // namespace aeva::datacenter
