#pragma once

/// \file failure.hpp
/// Fault injection & resilience model for the datacenter simulator.
///
/// The paper's evaluation (Sect. IV) assumes a fail-free cloud; production
/// energy-aware allocators cannot (Beloglazov et al.'s taxonomy treats
/// failure handling as first-class). This subsystem injects server-level
/// faults into the interval-accounting event loop:
///
///  * **crash** — the server powers off instantly, every resident VM is
///    lost, and the machine is masked from the allocator until its repair
///    completes (it returns cold: the wake-up premium is paid again);
///  * **degrade** — a transient slowdown: every VM on the server runs at a
///    multiplier of its modeled progress rate for a window (correctable
///    faults, noisy neighbours outside the model, throttling);
///  * **brownout** — a power-capped interval: the server's draw is clamped
///    to a watt budget and VM progress slows proportionally (DVFS-style).
///
/// Faults come from a deterministic script, from seeded per-server
/// MTBF/MTTR exponential sampling, or both. Sampling draws from the
/// dedicated `util::named_stream(seed, "failures")` stream, so enabling
/// failures can never perturb trace generation or any other consumer of
/// the experiment seed; with `FailureConfig::enabled == false` the
/// simulator's behaviour is bit-identical to the fail-free model.
///
/// Lost VMs re-enter the queue under a recovery policy: restart from zero,
/// periodic-checkpoint restart (resume at the last checkpoint boundary,
/// paying a checkpoint-I/O progress tax while running), or abandon after N
/// retries. docs/RESILIENCE.md specifies the semantics in full.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace aeva::datacenter {

/// Fault taxonomy.
enum class FailureKind {
  kCrash,     ///< server off, VMs lost, masked until repair
  kDegrade,   ///< progress-rate multiplier for a window
  kBrownout,  ///< power-capped interval (proportional slowdown)
};

[[nodiscard]] constexpr const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kCrash: return "crash";
    case FailureKind::kDegrade: return "degrade";
    case FailureKind::kBrownout: return "brownout";
  }
  return "?";
}

/// One scheduled fault.
struct FailureEvent {
  FailureKind kind = FailureKind::kCrash;
  int server = 0;       ///< target server index
  double at_s = 0.0;    ///< absolute simulation time (same clock as submits)
  /// Crash: repair time (masked window). Degrade/brownout: window length.
  double duration_s = 0.0;
  /// Degrade: progress-rate multiplier in (0, 1]. Brownout: power cap in
  /// Watts (> 0). Ignored for crashes.
  double magnitude = 1.0;
};

/// What happens to a VM lost in a crash.
enum class RecoveryPolicy {
  kRestartFromZero,    ///< all progress lost; the VM re-queues at work = 0
  kCheckpointRestart,  ///< resume from the last periodic checkpoint
  kAbandonAfterRetries,///< restart from zero at most `max_retries` times
};

[[nodiscard]] constexpr const char* to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kRestartFromZero: return "restart-from-zero";
    case RecoveryPolicy::kCheckpointRestart: return "checkpoint-restart";
    case RecoveryPolicy::kAbandonAfterRetries: return "abandon-after-retries";
  }
  return "?";
}

/// Recovery tuning.
struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::kRestartFromZero;
  /// Checkpoint-restart: wall-clock period between per-VM checkpoints,
  /// counted from the VM's (re)start instant.
  double checkpoint_period_s = 900.0;
  /// Checkpoint-restart: fraction of progress rate lost to checkpoint I/O
  /// while the VM runs (the progress tax), in [0, 1).
  double checkpoint_tax = 0.02;
  /// Abandon-after-retries: a VM is dropped once it has been restarted
  /// this many times and is lost again (>= 0; 0 drops on the first loss).
  int max_retries = 3;
};

/// Fault-injection configuration, carried by CloudConfig. Disabled by
/// default; when disabled every other field is inert and the simulator is
/// bit-identical to the fail-free model.
struct FailureConfig {
  bool enabled = false;
  /// Deterministic scripted fault trace (applied in time order; see also
  /// parse_failure_script for the on-disk format).
  std::vector<FailureEvent> script;
  /// Per-server mean time between sampled crashes, seconds. 0 disables
  /// stochastic sampling (scripted faults only).
  double mtbf_s = 0.0;
  /// Mean time to repair for sampled crashes (exponential), seconds.
  double mttr_s = 1800.0;
  /// Seed of the dedicated "failures" sampling stream.
  std::uint64_t seed = 2026;
  RecoveryConfig recovery;

  /// Validates ranges and that every scripted event targets a server in
  /// [0, server_count). Throws std::invalid_argument.
  void validate(int server_count) const;
};

/// Merged, time-ordered fault source: scripted events plus lazily sampled
/// per-server crashes. One instance per simulation run.
class FailureSchedule {
 public:
  /// `config` must outlive the schedule and already be validated;
  /// `start_s` is the simulation start (first submission).
  FailureSchedule(const FailureConfig& config, int server_count,
                  double start_s);

  /// Time of the earliest pending fault, or +infinity when none.
  [[nodiscard]] double next_time() const noexcept;

  /// Pops every fault due at or before `now` (script first, then sampled
  /// crashes, each group in deterministic order) into `out`, which is
  /// cleared first — hot callers hand in a reused scratch buffer so a
  /// fault-free event costs no heap allocation.
  void pop_due(double now, std::vector<FailureEvent>& out);

  /// Convenience overload materializing a fresh vector (tests, cold paths).
  [[nodiscard]] std::vector<FailureEvent> pop_due(double now) {
    std::vector<FailureEvent> due;
    pop_due(now, due);
    return due;
  }

  /// Suppresses sampled crashes for a server that just went down.
  void on_crash(int server);

  /// Re-arms sampling for a repaired server from its repair instant.
  void on_repair(int server, double repair_s);

  /// Mutable schedule state for checkpoint/restore (src/persist/). The
  /// script itself is re-derived from the config on construction, so only
  /// the cursor and per-server sampling state need to travel.
  struct State {
    std::size_t script_next = 0;
    std::vector<util::Rng::State> streams;
    std::vector<double> sampled_next;
  };

  /// Captures the mutable state.
  [[nodiscard]] State state() const;

  /// Restores state captured from a schedule built with an identical
  /// config; throws std::invalid_argument when the per-server vectors do
  /// not match this schedule's shape.
  void restore(const State& state);

 private:
  std::vector<FailureEvent> script_;   ///< sorted by at_s, stable
  std::size_t script_next_ = 0;
  std::vector<util::Rng> streams_;     ///< one sampling stream per server
  std::vector<double> sampled_next_;   ///< +inf while down or unsampled
  double mtbf_s_ = 0.0;
  double mttr_s_ = 0.0;
};

/// Parses a scripted failure trace. Format, one event per line:
///
///     # comment (also ';')
///     crash    <server> <at_s> <repair_s>
///     degrade  <server> <at_s> <window_s> <rate-multiplier>
///     brownout <server> <at_s> <window_s> <cap_w>
///
/// Throws std::invalid_argument on malformed input (unknown kind, wrong
/// arity, non-finite numbers, out-of-range magnitudes).
[[nodiscard]] std::vector<FailureEvent> parse_failure_script(std::istream& in);
[[nodiscard]] std::vector<FailureEvent> parse_failure_script(
    const std::string& text);

/// Reads a script file; std::runtime_error when unreadable.
[[nodiscard]] std::vector<FailureEvent> read_failure_script_file(
    const std::string& path);

/// Writes events in the parse_failure_script format (round-trippable).
void write_failure_script(std::ostream& out,
                          const std::vector<FailureEvent>& events);

}  // namespace aeva::datacenter
