#pragma once

/// \file fcfs_queue.hpp
/// FCFS job queue with O(1) amortized removal at any backfill position.
///
/// The event loop admits the queue head FCFS and lets up to
/// `backfill_window` younger jobs jump ahead when the head cannot be
/// placed. With a plain deque, every backfill admission pays
/// `erase(begin()+pos)` — an O(queue) element shuffle that dominates the
/// admission path on deep queues and churns the allocator on every
/// reallocation. This queue keeps the same observable ordering bit for bit
/// but erases by tombstoning: a removed slot is marked dead in place
/// (`kTombstone`), the head index walks past dead slots, and the backing
/// vector is compacted in place — preserving live order — only when dead
/// slots outnumber live ones. Amortized cost per admission is O(window);
/// steady state performs zero heap allocations once the backing capacity
/// has warmed (draining to empty rewinds the buffer without releasing it).
///
/// Stored values are job indices; SIZE_MAX is reserved as the tombstone.

#include <cstddef>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace aeva::datacenter {

class FcfsQueue {
 public:
  static constexpr std::size_t kTombstone =
      std::numeric_limits<std::size_t>::max();

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  void push_back(std::size_t job) {
    AEVA_REQUIRE(job != kTombstone, "job index collides with the tombstone");
    buf_.push_back(job);
    ++live_;
  }

  /// The job at live position `pos` (0 = head, FCFS order). O(pos) over
  /// live slots plus any dead slots interleaved since the last compaction —
  /// callers only address the backfill window, so this is O(window).
  [[nodiscard]] std::size_t operator[](std::size_t pos) const {
    return buf_[index_of(pos)];
  }

  /// Removes the job at live position `pos`, preserving the relative order
  /// of everything else — exactly `deque::erase(begin()+pos)` semantics.
  void erase_at(std::size_t pos) {
    const std::size_t i = index_of(pos);
    buf_[i] = kTombstone;
    --live_;
    if (i == head_) {
      advance_head();
    }
    if (live_ == 0) {
      buf_.clear();  // capacity kept: the common drained-queue rewind
      head_ = 0;
    } else if (buf_.size() - live_ > live_ + kCompactSlack) {
      compact();
    }
  }

  void clear() noexcept {
    buf_.clear();
    head_ = 0;
    live_ = 0;
  }

  /// Live jobs in queue order (snapshot capture, depth accounting).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = head_; i < buf_.size(); ++i) {
      if (buf_[i] != kTombstone) {
        fn(buf_[i]);
      }
    }
  }

 private:
  /// Dead slots tolerated beyond the live count before an in-place
  /// compaction; keeps compaction amortized O(1) per erase while small
  /// queues never compact at all.
  static constexpr std::size_t kCompactSlack = 64;

  [[nodiscard]] std::size_t index_of(std::size_t pos) const {
    AEVA_REQUIRE(pos < live_, "queue position ", pos, " out of range (",
                 live_, " live)");
    std::size_t i = head_;
    for (;; ++i) {
      if (buf_[i] == kTombstone) {
        continue;
      }
      if (pos == 0) {
        return i;
      }
      --pos;
    }
  }

  void advance_head() noexcept {
    while (head_ < buf_.size() && buf_[head_] == kTombstone) {
      ++head_;
    }
  }

  /// Moves the live slots to the front, order preserved, in place — the
  /// backing vector only shrinks (no allocation).
  void compact() noexcept {
    std::size_t out = 0;
    for (std::size_t i = head_; i < buf_.size(); ++i) {
      if (buf_[i] != kTombstone) {
        buf_[out++] = buf_[i];
      }
    }
    buf_.resize(out);
    head_ = 0;
  }

  std::vector<std::size_t> buf_;  ///< ring storage, capacity reused for life
  std::size_t head_ = 0;  ///< first possibly-live slot; all before are dead
  std::size_t live_ = 0;
};

}  // namespace aeva::datacenter
