#pragma once

/// \file simulator.hpp
/// Trace-driven datacenter (cloud) simulator — the paper's evaluation
/// vehicle (Sect. IV).
///
/// A cloud of identical testbed-class servers executes a prepared workload
/// under a pluggable allocation strategy. Time and energy are accounted
/// from the empirical model database per allocation interval, following
/// Fig. 4: whenever a server's VM mix changes, a new interval starts; a VM
/// progresses through interval i at rate 1 / (scale · t̂_i), where t̂_i is
/// the database's estimated execution time for the VM's class under the
/// interval's mix, and a server's power during the interval is the
/// database record's mean power. A server powers on the first time a VM is
/// placed on it and then stays on until the run ends, dissipating the
/// fixed 125 W baseline whenever it hosts no VMs (Sect. IV-A). Strategies
/// that consolidate therefore genuinely save energy by never waking part
/// of the cloud — and the over-dimensioned LARGER cloud consumes *more*
/// energy despite finishing sooner, exactly as the paper observes, because
/// its strategies spread load across more servers.
///
/// Scheduling is FCFS with all-or-nothing admission per job request; the
/// paper's scheduling/provisioning overheads are deliberately not modeled
/// ("we do not consider the overhead for scheduling and resource
/// provisioning").

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "datacenter/failure.hpp"
#include "modeldb/database.hpp"
#include "obs/session.hpp"
#include "thermal/thermal_model.hpp"
#include "trace/prepare.hpp"

namespace aeva::persist {
struct SimSnapshot;
}  // namespace aeva::persist

namespace aeva::datacenter {

/// Reactive consolidation via live VM migration — the dynamic techniques
/// of the paper's related work ([2], [3], [8]): periodically sweep for
/// under-utilized servers and migrate their VMs onto busier compatible
/// machines so the sources can power down. Migration is costly: the VM
/// runs degraded while its memory is copied, both machines host it for
/// the transfer, and the stop-and-copy phase loses a slice of progress.
struct MigrationConfig {
  bool enabled = false;
  /// What the periodic sweep reacts to.
  enum class Trigger {
    /// Under-utilized servers are drained so they can power down
    /// (energy-driven consolidation, [2]).
    kConsolidation,
    /// Servers whose predicted inlet temperature crosses the redline shed
    /// VMs toward cool machines — the reactive thermal management via VM
    /// migration of the authors' prior work [3]. Requires `thermal_map`.
    kThermal,
  };
  Trigger trigger = Trigger::kConsolidation;
  /// Thermal topology for the kThermal trigger (non-owning; must outlive
  /// the simulation). Its inlet redline is taken from the map's config.
  const thermal::ThermalMap* thermal_map = nullptr;
  /// Consolidation sweep period (seconds).
  double check_interval_s = 900.0;
  /// Servers hosting at most this many VMs are eviction candidates.
  int evict_below_vms = 2;
  /// At most this many VMs in flight per sweep.
  int max_concurrent = 8;
  /// Live-migration transfer bandwidth (MB/s of the shared network).
  double transfer_mbps = 30.0;
  /// Progress multiplier while the VM is being copied.
  double degradation = 0.8;
  /// Fraction of total work lost to the stop-and-copy downtime.
  double downtime_work_fraction = 0.01;
};

/// Process-level durability (docs/RESILIENCE.md, "Process-level
/// durability"): periodically capture the complete simulator state so a
/// killed run can be resumed bit-identically. Snapshots are taken at
/// event-loop boundaries — never by inserting events — so enabling them
/// cannot perturb the simulation: metrics are bit-identical with
/// snapshotting on or off (gated by bench/snapshot_overhead).
struct SnapshotConfig {
  /// Minimum simulated seconds between snapshots; <= 0 disables
  /// snapshotting entirely.
  double every_s = 0.0;
  /// Snapshot file, atomically replaced at every checkpoint (temp file +
  /// fsync + rename); empty → no file is written (hook-only capture).
  std::string path;
  /// Optional in-process consumer, invoked with every captured snapshot
  /// after the file write; tests and drivers use it to collect
  /// checkpoints without touching the filesystem.
  std::function<void(const persist::SimSnapshot&)> hook;
};

/// The simulated cloud.
struct CloudConfig {
  int server_count = 60;        ///< SMALLER reference size
  double idle_power_w = 125.0;  ///< fixed draw of a powered-on idle server
  /// Hardware class per server (heterogeneous-fleet extension); empty →
  /// every server is class 0. When non-empty, the size must equal
  /// `server_count` and each entry must index a model database handed to
  /// the simulator.
  std::vector<int> hardware;
  /// Reactive-consolidation policy (disabled by default).
  MigrationConfig migration;
  /// Fault injection & recovery (disabled by default; when disabled the
  /// run is bit-identical to the fail-free model — see failure.hpp).
  FailureConfig failure;
  /// Queue discipline: 0 → strict FCFS (the paper's setup). A positive
  /// value enables simple backfilling — when the head-of-line job cannot
  /// be placed, up to this many younger queued jobs may jump ahead if the
  /// strategy can place them. (No reservations: small jobs can in theory
  /// delay the head, the classic aggressive-backfill tradeoff.)
  int backfill_window = 0;
  /// Record one VmCompletion per VM in SimMetrics::completions (off by
  /// default — 10k records per run are only worth paying for when a
  /// distribution analysis consumes them).
  bool record_completions = false;
  /// Observability session (docs/OBSERVABILITY.md). Null (the default)
  /// disables all metric and trace emission from the simulator; a run is
  /// bit-identical either way — the session only records what happened.
  std::shared_ptr<obs::Session> obs;
  /// Periodic checkpointing of the simulator state (disabled by default;
  /// enabling it never changes the simulation — see SnapshotConfig).
  SnapshotConfig snapshot;
};

/// One VM's lifecycle record (emitted when `record_completions` is set).
struct VmCompletion {
  std::int64_t vm_id = 0;
  long long job_id = 0;
  workload::ProfileClass profile{};
  int server = 0;
  double submit_s = 0.0;
  double start_s = 0.0;   ///< allocation instant
  double finish_s = 0.0;

  [[nodiscard]] double response_s() const noexcept {
    return finish_s - submit_s;
  }
  [[nodiscard]] double wait_s() const noexcept { return start_s - submit_s; }
};

/// Aggregate run metrics (Sect. IV-C).
struct SimMetrics {
  double makespan_s = 0.0;  ///< earliest submission → latest completion
  double energy_j = 0.0;    ///< total cloud energy over the makespan
  double sla_violation_pct = 0.0;  ///< % of VMs missing their deadline

  std::size_t jobs = 0;
  std::size_t vms = 0;
  std::size_t sla_violations = 0;
  double mean_response_s = 0.0;   ///< completion − submission, mean over VMs
  /// Allocation − submission, averaged over *VMs*: a 16-VM job admitted
  /// after a long wait contributes 16 samples, so the mean is capacity-
  /// weighted — "how long did the average requested VM wait". Kept as the
  /// primary published metric (reports and goldens depend on it).
  double mean_wait_s = 0.0;
  /// Allocation − submission, averaged over *jobs*: one sample per
  /// admitted job regardless of its VM count — "how long did the average
  /// submitter wait". Diverges from mean_wait_s whenever wide jobs queue
  /// differently from narrow ones.
  double mean_job_wait_s = 0.0;
  double mean_busy_servers = 0.0; ///< time-averaged count of busy servers
  double peak_busy_servers = 0.0;
  std::size_t servers_powered = 0;  ///< servers that ever hosted a VM
  std::size_t migrations = 0;       ///< live migrations performed
  double migration_transfer_s = 0.0;  ///< total time VMs spent in flight

  // --- resilience (populated only when CloudConfig::failure is enabled) ---
  std::size_t failures = 0;     ///< server crashes applied
  std::size_t vm_restarts = 0;  ///< lost VMs successfully re-placed
  std::size_t vms_abandoned = 0;  ///< VMs dropped after exhausting retries
  /// Canonical-solo-time-equivalent seconds of computation destroyed by
  /// crashes (progress beyond the resume point × runtime_scale × the
  /// class's class-0 solo time). Checkpointed progress is not lost work.
  double lost_work_s = 0.0;
  /// useful / (useful + lost), where useful is the same solo-equivalent
  /// measure summed over completed VMs. 1.0 in a fail-free run.
  double goodput_fraction = 1.0;
  // --- correlated failure domains (docs/RESILIENCE.md; requires a wired
  // FailureConfig::topology) ----------------------------------------------
  /// Correlated domain faults applied: PDU feed faults (every server on
  /// the feed crashes at once) plus ToR isolations (the rack stalls).
  std::size_t correlated_failures = 0;
  /// Largest blast radius of one correlated fault, in resident VMs
  /// (crashed by the PDU fault or stalled by the ToR isolation).
  std::size_t blast_radius_vms_max = 0;
  /// Mean blast radius over all correlated faults (0 when none fired).
  double blast_radius_vms_mean = 0.0;
  /// Portion of lost_work_s destroyed by correlated (PDU) faults — ToR
  /// isolation stalls work but destroys none.
  double lost_work_correlated_s = 0.0;
  /// Requests placed via an allocator's degradation fallback
  /// (AllocationPath::kFallbackFirstFit).
  std::size_t fallback_allocations = 0;
  /// Allocator rejection events tallied by reason (index =
  /// core::RejectReason value); includes transient rejections of jobs
  /// that were later placed on retry. datacenter_sim renders this with
  /// each reason's retryable/terminal classification.
  std::array<std::size_t, core::kRejectReasonCount> rejects_by_reason{};
  /// Per-VM lifecycle records; populated only with
  /// CloudConfig::record_completions.
  std::vector<VmCompletion> completions;
};

/// Event-driven cloud simulator. One instance per database + cloud size;
/// `run` is const and reentrant.
class Simulator {
 public:
  /// Homogeneous cloud; the database must outlive the simulator.
  Simulator(const modeldb::ModelDatabase& db, CloudConfig cloud);

  /// Heterogeneous cloud: one empirical model per hardware class, indexed
  /// by `cloud.hardware`. All databases must outlive the simulator.
  Simulator(std::vector<const modeldb::ModelDatabase*> dbs,
            CloudConfig cloud);

  /// Optional per-interval observer: invoked with (interval start,
  /// interval end, instantaneous power per server in Watts) for every
  /// constant-allocation interval. Used by the thermal substrate to track
  /// inlet temperatures without coupling the simulator to it.
  using IntervalObserver =
      std::function<void(double, double, const std::vector<double>&)>;

  /// Executes the workload under the given strategy and returns the
  /// metrics. Throws std::invalid_argument on an empty workload and
  /// std::runtime_error if the strategy permanently starves the queue.
  [[nodiscard]] SimMetrics run(const trace::PreparedWorkload& workload,
                               const core::Allocator& allocator,
                               const IntervalObserver& observer = {}) const;

  /// Continues a previously snapshotted run of the *same* workload under
  /// the *same* cloud configuration and allocator, and returns the final
  /// metrics — bit-identical, field for field, to what the uninterrupted
  /// run would have returned. Throws persist::SnapshotMismatchError when
  /// the snapshot does not belong to this (workload, cloud, allocator)
  /// triple or carries out-of-range state.
  [[nodiscard]] SimMetrics resume(const trace::PreparedWorkload& workload,
                                  const core::Allocator& allocator,
                                  const persist::SimSnapshot& snapshot,
                                  const IntervalObserver& observer = {}) const;

  [[nodiscard]] const CloudConfig& cloud() const noexcept { return cloud_; }

 private:
  [[nodiscard]] const modeldb::ModelDatabase& db_of(int hardware) const {
    return *dbs_[static_cast<std::size_t>(hardware)];
  }

  [[nodiscard]] SimMetrics run_impl(const trace::PreparedWorkload& workload,
                                    const core::Allocator& allocator,
                                    const IntervalObserver& observer,
                                    const persist::SimSnapshot* restore) const;

  std::vector<const modeldb::ModelDatabase*> dbs_;
  CloudConfig cloud_;
};

/// The allocator's view of a snapshotted fleet (crashed servers masked,
/// exactly as the simulator presents it): used to re-warm allocator-side
/// caches — e.g. ProactiveAllocator::rewarm — after a restore, so a
/// resumed process does not pay cold-cache latency on its first
/// admissions.
[[nodiscard]] std::vector<core::ServerState> restored_server_states(
    const persist::SimSnapshot& snapshot, const CloudConfig& cloud);

}  // namespace aeva::datacenter
