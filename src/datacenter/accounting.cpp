#include "datacenter/accounting.hpp"

#include <cmath>

#include "util/error.hpp"

namespace aeva::datacenter {

namespace {

double weighted_sum(const std::vector<WeightedValue>& intervals,
                    const char* what) {
  AEVA_REQUIRE(!intervals.empty(), "no intervals for ", what);
  double wsum = 0.0;
  double acc = 0.0;
  for (const WeightedValue& interval : intervals) {
    // Finiteness first: a NaN weight/value would also fail the >= 0
    // checks, but with a misleading "negative" message, and +inf would
    // silently blow up the sum.
    AEVA_REQUIRE(std::isfinite(interval.weight),
                 "non-finite interval weight in ", what);
    AEVA_REQUIRE(std::isfinite(interval.value),
                 "non-finite interval value in ", what);
    AEVA_REQUIRE(interval.weight >= 0.0, "negative interval weight in ",
                 what);
    AEVA_REQUIRE(interval.value >= 0.0, "negative interval value in ", what);
    wsum += interval.weight;
    acc += interval.weight * interval.value;
  }
  AEVA_REQUIRE(std::abs(wsum - 1.0) <= 1e-9,
               "interval weights must sum to 1, got ", wsum, " in ", what);
  return acc;
}

}  // namespace

double interval_weighted_time_s(const std::vector<WeightedValue>& intervals) {
  return weighted_sum(intervals, "execution-time accounting");
}

double interval_weighted_energy_j(
    const std::vector<WeightedValue>& intervals) {
  return weighted_sum(intervals, "energy accounting");
}

}  // namespace aeva::datacenter
