#pragma once

/// \file topology.hpp
/// Physical failure-domain topology of the simulated cloud.
///
/// The paper evaluates allocation on a topology-free cloud; production
/// datacenters are not flat. Servers sit in racks, racks hang off PDU
/// power feeds and top-of-rack (ToR) switches, and those shared elements
/// are *correlated* failure domains: one feed fault takes down every
/// server on the feed in a single event, one ToR fault isolates a whole
/// rack (docs/RESILIENCE.md, "Correlated failure domains"). This module
/// describes that physical structure; the fault model that exercises it
/// lives in datacenter/failure.{hpp,cpp}, and the placement defense
/// (per-job spread constraints, blast-radius penalty) in src/core/.
///
/// A topology is a total map: every server of the cloud belongs to
/// exactly one rack, and every rack to exactly one PDU feed and one ToR
/// switch. Ids are dense — servers 0..S-1, racks 0..R-1, PDUs 0..P-1,
/// ToRs 0..T-1 — so domain lookups are array indexing and per-domain
/// member lists are precomputed spans. Instances are immutable after
/// construction and validated with typed errors (std::invalid_argument
/// via AEVA_REQUIRE), exactly like the other input parsers.
///
/// The on-disk spec is line-oriented and round-trippable
/// (parse_topology ∘ write_topology = identity):
///
///     # comment (also ';')
///     rack <rack-id> pdu <pdu-id> tor <tor-id> servers <id> [<id> ...]
///
/// The synthetic generator (make_synthetic_topology) builds the regular
/// layouts the benches sweep — N servers per rack, M racks per feed /
/// switch — by deterministic round-robin: topology construction uses no
/// randomness at all, so it can never perturb a seeded experiment.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace aeva::datacenter {

/// One rack declaration: its id, the PDU feed and ToR switch it hangs
/// off, and the member servers (stored sorted ascending).
struct RackSpec {
  int rack = 0;
  int pdu = 0;
  int tor = 0;
  std::vector<int> servers;
};

/// Immutable, validated rack/PDU/ToR topology. Default-constructed
/// instances are empty (zero servers) — useful only as placeholders;
/// build real ones with from_racks / parse_topology /
/// make_synthetic_topology.
class Topology {
 public:
  Topology() = default;

  /// Builds and validates a topology from rack declarations (any order).
  /// Requirements, each violated with a typed std::invalid_argument:
  /// at least one rack; rack ids unique and dense from 0; every rack
  /// non-empty; server ids unique and dense from 0 across all racks;
  /// PDU and ToR id sets dense from 0.
  [[nodiscard]] static Topology from_racks(std::vector<RackSpec> racks);

  [[nodiscard]] int server_count() const noexcept {
    return static_cast<int>(rack_of_.size());
  }
  [[nodiscard]] int rack_count() const noexcept {
    return static_cast<int>(racks_.size());
  }
  [[nodiscard]] int pdu_count() const noexcept {
    return static_cast<int>(pdu_members_.size());
  }
  [[nodiscard]] int tor_count() const noexcept {
    return static_cast<int>(tor_members_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return racks_.empty(); }

  /// Domain of one server; throws std::invalid_argument out of range.
  [[nodiscard]] int rack_of(int server) const;
  [[nodiscard]] int pdu_of(int server) const;
  [[nodiscard]] int tor_of(int server) const;

  /// Domain of one rack; throws std::invalid_argument out of range.
  [[nodiscard]] int pdu_of_rack(int rack) const;
  [[nodiscard]] int tor_of_rack(int rack) const;

  /// Member servers of one domain, ascending id — the canonical
  /// expansion order of a correlated fault. Throws out of range.
  [[nodiscard]] std::span<const int> servers_in_rack(int rack) const;
  [[nodiscard]] std::span<const int> servers_on_pdu(int pdu) const;
  [[nodiscard]] std::span<const int> servers_on_tor(int tor) const;

  /// Rack declarations, sorted by rack id, member lists ascending.
  [[nodiscard]] const std::vector<RackSpec>& racks() const noexcept {
    return racks_;
  }

 private:
  std::vector<RackSpec> racks_;      ///< sorted by rack id
  std::vector<int> rack_of_;         ///< server → rack
  std::vector<int> pdu_of_;          ///< server → pdu
  std::vector<int> tor_of_;          ///< server → tor
  std::vector<std::vector<int>> pdu_members_;  ///< pdu → servers, ascending
  std::vector<std::vector<int>> tor_members_;  ///< tor → servers, ascending
};

/// Regular synthetic layout for benches and tests: servers are dealt
/// into racks of `servers_per_rack` in id order (the last rack may be
/// partial), racks onto feeds/switches in groups of `racks_per_pdu` /
/// `racks_per_tor`. Purely deterministic — no RNG.
struct SyntheticTopologyConfig {
  int server_count = 60;
  int servers_per_rack = 10;
  int racks_per_pdu = 2;
  int racks_per_tor = 1;
};

/// Builds the regular layout; throws std::invalid_argument on
/// non-positive sizes.
[[nodiscard]] Topology make_synthetic_topology(
    const SyntheticTopologyConfig& config);

/// Parses the line-oriented spec described in the file comment. Throws
/// std::invalid_argument on malformed input (unknown keyword, wrong
/// arity, non-integer ids) and on any structural violation from_racks
/// rejects.
[[nodiscard]] Topology parse_topology(std::istream& in);
[[nodiscard]] Topology parse_topology(const std::string& text);

/// Reads a spec file; std::runtime_error when unreadable.
[[nodiscard]] Topology read_topology_file(const std::string& path);

/// Writes the spec format (round-trippable through parse_topology).
void write_topology(std::ostream& out, const Topology& topology);

/// Convenience bridge to the placement defense: a core::SpreadConfig
/// whose failure domains are this topology's racks. `max_vms_per_domain`
/// caps one job's VMs per rack; `blast_penalty` weights the expected-
/// lost-work concentration term in the proactive score
/// (docs/RESILIENCE.md, "Spread-constraint tuning").
[[nodiscard]] core::SpreadConfig spread_by_rack(const Topology& topology,
                                                int max_vms_per_domain,
                                                double blast_penalty = 0.0);

}  // namespace aeva::datacenter
