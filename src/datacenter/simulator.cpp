#include "datacenter/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "persist/snapshot.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/registry.hpp"

namespace aeva::datacenter {

using core::Placement;
using core::ServerState;
using core::VmRequest;
using workload::ClassCounts;
using workload::ProfileClass;

Simulator::Simulator(const modeldb::ModelDatabase& db, CloudConfig cloud)
    : Simulator(std::vector<const modeldb::ModelDatabase*>{&db},
                std::move(cloud)) {}

Simulator::Simulator(std::vector<const modeldb::ModelDatabase*> dbs,
                     CloudConfig cloud)
    : dbs_(std::move(dbs)), cloud_(std::move(cloud)) {
  AEVA_REQUIRE(cloud_.server_count >= 1, "cloud needs at least one server");
  AEVA_REQUIRE(cloud_.idle_power_w >= 0.0, "negative idle power");
  AEVA_REQUIRE(!dbs_.empty(), "need at least one model database");
  for (const modeldb::ModelDatabase* db : dbs_) {
    AEVA_REQUIRE(db != nullptr, "null model database");
  }
  if (!cloud_.hardware.empty()) {
    AEVA_REQUIRE(cloud_.hardware.size() ==
                     static_cast<std::size_t>(cloud_.server_count),
                 "hardware map size ", cloud_.hardware.size(),
                 " does not match server count ", cloud_.server_count);
    for (const int h : cloud_.hardware) {
      AEVA_REQUIRE(h >= 0 && static_cast<std::size_t>(h) < dbs_.size(),
                   "hardware class ", h, " has no model database");
    }
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// One resident VM.
struct RunningVm {
  std::int64_t vm_id = 0;
  std::size_t job_index = 0;
  ProfileClass profile{};
  double runtime_scale = 1.0;
  int server = 0;
  double start_s = 0.0;    ///< allocation instant
  double remaining = 1.0;  ///< normalized work left
  double rate = 0.0;       ///< progress per second under the current mix
  bool migrating = false;
  double migration_done_s = 0.0;  ///< transfer completion time while in flight
  int dest_server = -1;           ///< reserved destination while in flight
  // Resilience bookkeeping (inert while failures are disabled).
  int retries = 0;           ///< times this VM has been lost and re-queued
  double ckpt_done = 0.0;    ///< progress at the last checkpoint boundary
  double next_ckpt_s = std::numeric_limits<double>::infinity();
};

/// Per-server runtime state.
struct ServerRt {
  ClassCounts alloc;
  double busy_power_w = 0.0;  ///< record mean power while hosting VMs
  bool powered = false;       ///< powered on at first use; a crash resets it
  // Resilience state (inert while failures are disabled).
  bool down = false;          ///< crashed, masked until repair_s
  double repair_s = std::numeric_limits<double>::infinity();
  double degrade_until = -std::numeric_limits<double>::infinity();
  double degrade_mult = 1.0;
  double brownout_until = -std::numeric_limits<double>::infinity();
  double brownout_cap_w = std::numeric_limits<double>::infinity();
  bool ever_powered = false;  ///< powered at least once (metrics survive crashes)
};

/// A VM lost to a crash, waiting to be re-placed.
struct RestartVm {
  std::size_t job_index = 0;
  double resume_done = 0.0;  ///< progress restored at restart (checkpoint)
  int retries = 0;           ///< losses so far, including the one queuing it
};

// --- snapshot identity (docs/RESILIENCE.md) ---------------------------------
// A snapshot is only meaningful against the exact run that wrote it, so
// every snapshot carries order-sensitive fingerprints of the workload and
// of the (cloud, allocator) configuration, and resume() refuses anything
// else. Doubles are mixed by bit pattern: "the same run" means the same
// bits, matching the bit-identical-resume guarantee.

std::uint64_t fingerprint_workload(const std::vector<trace::JobRequest>& jobs) {
  persist::Fingerprint fp;
  fp.mix(jobs.size());
  for (const trace::JobRequest& job : jobs) {
    fp.mix(static_cast<std::uint64_t>(job.id));
    fp.mix_double(job.submit_s);
    fp.mix(static_cast<std::uint64_t>(job.profile));
    fp.mix(static_cast<std::uint64_t>(job.vm_count));
    fp.mix_double(job.runtime_scale);
    fp.mix_double(job.deadline_s);
    fp.mix_double(job.max_exec_stretch);
    fp.mix(static_cast<std::uint64_t>(job.depends_on));
  }
  return fp.value();
}

std::uint64_t fingerprint_config(const CloudConfig& cloud,
                                 const std::string& allocator_name,
                                 std::size_t db_count) {
  persist::Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(cloud.server_count));
  fp.mix_double(cloud.idle_power_w);
  fp.mix(cloud.hardware.size());
  for (const int hardware : cloud.hardware) {
    fp.mix(static_cast<std::uint64_t>(hardware));
  }
  const MigrationConfig& mig = cloud.migration;
  fp.mix(mig.enabled ? 1 : 0);
  fp.mix(static_cast<std::uint64_t>(mig.trigger));
  fp.mix_double(mig.check_interval_s);
  fp.mix(static_cast<std::uint64_t>(mig.evict_below_vms));
  fp.mix(static_cast<std::uint64_t>(mig.max_concurrent));
  fp.mix_double(mig.transfer_mbps);
  fp.mix_double(mig.degradation);
  fp.mix_double(mig.downtime_work_fraction);
  const FailureConfig& fail = cloud.failure;
  fp.mix(fail.enabled ? 1 : 0);
  fp.mix(fail.script.size());
  for (const FailureEvent& event : fail.script) {
    fp.mix(static_cast<std::uint64_t>(event.kind));
    fp.mix(static_cast<std::uint64_t>(event.server));
    fp.mix_double(event.at_s);
    fp.mix_double(event.duration_s);
    fp.mix_double(event.magnitude);
  }
  fp.mix_double(fail.mtbf_s);
  fp.mix_double(fail.mttr_s);
  fp.mix(fail.seed);
  fp.mix(static_cast<std::uint64_t>(fail.recovery.policy));
  fp.mix_double(fail.recovery.checkpoint_period_s);
  fp.mix_double(fail.recovery.checkpoint_tax);
  fp.mix(static_cast<std::uint64_t>(fail.recovery.max_retries));
  fp.mix(static_cast<std::uint64_t>(cloud.backfill_window));
  fp.mix(cloud.record_completions ? 1 : 0);
  fp.mix(db_count);
  fp.mix_string(allocator_name);
  return fp.value();
}

/// Throws the typed mismatch error resume() promises.
void require_snapshot(bool condition, const char* what) {
  if (!condition) {
    throw persist::SnapshotMismatchError(
        std::string("snapshot does not fit this run: ") + what);
  }
}

}  // namespace

std::vector<core::ServerState> restored_server_states(
    const persist::SimSnapshot& snapshot, const CloudConfig& cloud) {
  std::vector<core::ServerState> states;
  states.reserve(snapshot.servers.size());
  for (std::size_t s = 0; s < snapshot.servers.size(); ++s) {
    const persist::ServerPersistState& server = snapshot.servers[s];
    if (cloud.failure.enabled && server.down) {
      continue;
    }
    const int hardware = s < cloud.hardware.size() ? cloud.hardware[s] : 0;
    states.push_back(core::ServerState{static_cast<int>(s), server.alloc,
                                       server.powered, hardware});
  }
  return states;
}

SimMetrics Simulator::run(const trace::PreparedWorkload& workload,
                          const core::Allocator& allocator,
                          const IntervalObserver& observer) const {
  return run_impl(workload, allocator, observer, nullptr);
}

SimMetrics Simulator::resume(const trace::PreparedWorkload& workload,
                             const core::Allocator& allocator,
                             const persist::SimSnapshot& snapshot,
                             const IntervalObserver& observer) const {
  return run_impl(workload, allocator, observer, &snapshot);
}

SimMetrics Simulator::run_impl(const trace::PreparedWorkload& workload,
                               const core::Allocator& allocator,
                               const IntervalObserver& observer,
                               const persist::SimSnapshot* restore) const {
  AEVA_REQUIRE(!workload.jobs.empty(), "empty workload");
  const auto& jobs = workload.jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    AEVA_REQUIRE(jobs[i].submit_s >= jobs[i - 1].submit_s,
                 "workload not sorted by submission time at job ", i);
  }

  const auto n_servers = static_cast<std::size_t>(cloud_.server_count);
  std::vector<ServerRt> servers(n_servers);
  std::vector<RunningVm> running;
  std::deque<std::size_t> queue;  // indices into jobs, FCFS

  // --- fault injection & recovery (failure.hpp) ---------------------------
  const FailureConfig& fail = cloud_.failure;
  fail.validate(cloud_.server_count);
  const bool fail_on = fail.enabled;
  const bool ckpt_on =
      fail_on && fail.recovery.policy == RecoveryPolicy::kCheckpointRestart;
  std::deque<RestartVm> restarts;  // lost VMs awaiting re-placement, FCFS
  double useful_work_s = 0.0;      // solo-equivalent seconds of completed VMs

  // Workflow dependencies (JobRequest::depends_on): map job ids to
  // indices, track per-job completion, park dependents until release.
  std::map<long long, std::size_t> index_of_id;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    index_of_id[jobs[i].id] = i;
  }
  std::vector<int> vms_left(jobs.size());
  std::vector<bool> job_done(jobs.size(), false);
  std::vector<std::vector<std::size_t>> dependents(jobs.size());
  std::size_t parked = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    vms_left[i] = jobs[i].vm_count;
    if (jobs[i].depends_on != 0) {
      const auto it = index_of_id.find(jobs[i].depends_on);
      AEVA_REQUIRE(it != index_of_id.end(), "job ", jobs[i].id,
                   " depends on unknown job ", jobs[i].depends_on);
      AEVA_REQUIRE(it->second < i, "job ", jobs[i].id,
                   " depends on a later job ", jobs[i].depends_on);
    }
  }

  SimMetrics metrics;
  metrics.jobs = jobs.size();
  util::RunningStats response_stats;
  util::RunningStats wait_stats;

  const double t0 = jobs.front().submit_s;
  double now = t0;
  std::size_t next_job = 0;
  std::int64_t next_vm_id = 1;
  double busy_server_time = 0.0;  // ∫ busy_count dt

  // --- observability (docs/OBSERVABILITY.md) ------------------------------
  // Handles resolved once per run; all null without a session, so every
  // instrumentation site below is a single pointer test when disabled.
  struct SimObs {
    obs::Counter* loop_events = nullptr;
    obs::Counter* ev_arrival = nullptr;
    obs::Counter* ev_completion = nullptr;
    obs::Counter* ev_transfer = nullptr;
    obs::Counter* ev_sweep = nullptr;
    obs::Counter* ev_failure = nullptr;
    obs::Counter* ev_window = nullptr;
    obs::Counter* intervals = nullptr;
    obs::Counter* admissions = nullptr;
    obs::Counter* admission_failures = nullptr;
    obs::Counter* backfills = nullptr;
    obs::Counter* restarts_placed = nullptr;
    obs::Counter* restart_failures = nullptr;
    obs::Counter* db_lookups = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* degrades = nullptr;
    obs::Counter* brownouts = nullptr;
    obs::Counter* abandoned = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Counter* snapshot_bytes = nullptr;
    obs::Histogram* queue_depth = nullptr;
    obs::Histogram* interval_s = nullptr;
    obs::TraceLog* trace = nullptr;
  } sobs;
  if (cloud_.obs != nullptr) {
    obs::MetricsRegistry& reg = cloud_.obs->metrics();
    sobs.loop_events = &reg.counter("sim.events");
    sobs.ev_arrival = &reg.counter("sim.events.arrival");
    sobs.ev_completion = &reg.counter("sim.events.completion");
    sobs.ev_transfer = &reg.counter("sim.events.transfer");
    sobs.ev_sweep = &reg.counter("sim.events.sweep");
    sobs.ev_failure = &reg.counter("sim.events.failure");
    sobs.ev_window = &reg.counter("sim.events.window");
    sobs.intervals = &reg.counter("sim.intervals");
    sobs.admissions = &reg.counter("sim.admissions");
    sobs.admission_failures = &reg.counter("sim.admission_failures");
    sobs.backfills = &reg.counter("sim.backfills");
    sobs.restarts_placed = &reg.counter("sim.vm_restarts");
    sobs.restart_failures = &reg.counter("sim.restart_failures");
    sobs.db_lookups = &reg.counter("sim.modeldb.lookups");
    sobs.crashes = &reg.counter("sim.failures.crash");
    sobs.degrades = &reg.counter("sim.failures.degrade");
    sobs.brownouts = &reg.counter("sim.failures.brownout");
    sobs.abandoned = &reg.counter("sim.vms_abandoned");
    sobs.snapshots = &reg.counter("sim.snapshots");
    sobs.snapshot_bytes = &reg.counter("sim.snapshot_bytes");
    sobs.queue_depth = &reg.histogram(
        "sim.queue_depth", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    sobs.interval_s = &reg.histogram(
        "sim.interval_s", {1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 14400.0});
    sobs.trace = &cloud_.obs->trace();
  }
  // Run-level span: brackets the whole event loop on the simulated
  // timeline; its real_us is the wall-clock cost of the run.
  obs::Span run_span(sobs.trace, "run", "sim", t0);

  FailureSchedule failure_schedule(fail, cloud_.server_count, t0);

  // Hardware class of each server (class 0 when no map is configured).
  const auto hardware_of = [&](std::size_t s) {
    return cloud_.hardware.empty() ? 0 : cloud_.hardware[s];
  };

  // Lost/useful work is measured in canonical solo-time-equivalent seconds
  // (class-0 base record), so the metric is placement-independent.
  const auto solo_time = [&](ProfileClass profile) {
    return db_of(0).base().of(profile).solo_time_s;
  };

  // Refreshes the cached record-derived quantities of one server: its mean
  // power and the progress rate of every VM it hosts.
  const auto refresh_server = [&](int server_id) {
    ServerRt& server = servers[static_cast<std::size_t>(server_id)];
    if (server.alloc.total() == 0) {
      server.busy_power_w = 0.0;
      return;
    }
    const modeldb::Record rec =
        db_of(hardware_of(static_cast<std::size_t>(server_id)))
            .estimate(server.alloc);
    if (sobs.db_lookups != nullptr) {
      sobs.db_lookups->add();
    }
    server.busy_power_w = std::max(rec.avg_power_w(), cloud_.idle_power_w);
    // Failure modifiers: transient degradation windows slow every resident
    // VM; a brownout clamps the server's draw and slows VMs by the same
    // factor (DVFS-style); checkpointing VMs pay the checkpoint-I/O tax.
    double fail_mult = 1.0;
    if (fail_on) {
      if (now < server.degrade_until) {
        fail_mult *= server.degrade_mult;
      }
      if (now < server.brownout_until &&
          server.busy_power_w > server.brownout_cap_w) {
        fail_mult *= server.brownout_cap_w / server.busy_power_w;
        server.busy_power_w = server.brownout_cap_w;
      }
      if (ckpt_on) {
        fail_mult *= 1.0 - fail.recovery.checkpoint_tax;
      }
    }
    for (RunningVm& vm : running) {
      if (vm.server == server_id) {
        const double est = rec.time_of(vm.profile);
        AEVA_INVARIANT(est > 0.0, "non-positive estimated time");
        vm.rate = 1.0 / (vm.runtime_scale * est);
        if (vm.migrating) {
          vm.rate *= cloud_.migration.degradation;
        }
        if (fail_mult != 1.0) {
          vm.rate *= fail_mult;
        }
      }
    }
  };

  // Builds the allocator view of the cluster. Crashed servers are masked:
  // the allocator never sees them, so every strategy (and every decorator)
  // is failure-aware without knowing about failures.
  const auto server_states = [&] {
    std::vector<ServerState> states;
    states.reserve(n_servers);
    for (std::size_t s = 0; s < n_servers; ++s) {
      if (fail_on && servers[s].down) {
        continue;
      }
      states.push_back(ServerState{static_cast<int>(s), servers[s].alloc,
                                   servers[s].powered, hardware_of(s)});
    }
    return states;
  };

  // Workflow release: one VM of job `j` will never run again (completed or
  // abandoned); when it was the last, dependents unpark.
  const auto retire_vm_of_job = [&](std::size_t j) {
    if (--vms_left[j] == 0) {
      job_done[j] = true;
      for (const std::size_t dependent : dependents[j]) {
        queue.push_back(dependent);
        --parked;
      }
      dependents[j].clear();
    }
  };

  // Attempts to place one queued job (addressed by queue position); on
  // success the job is admitted and removed from the queue.
  const auto try_admit = [&](std::size_t queue_pos) -> bool {
    {
      const std::size_t j = queue[queue_pos];
      const trace::JobRequest& job = jobs[j];
      std::vector<VmRequest> request;
      request.reserve(static_cast<std::size_t>(job.vm_count));
      // Per-type execution-time QoS: the allocator may only use mixes whose
      // estimated execution time stays within the contention cap. Database
      // estimates are in canonical-app time units, so the bound is too.
      const double exec_bound =
          job.max_exec_stretch *
          db_of(0).base().of(job.profile).solo_time_s;
      for (int k = 0; k < job.vm_count; ++k) {
        VmRequest vm;
        vm.id = next_vm_id + k;
        vm.profile = job.profile;
        vm.max_exec_time_s = exec_bound > 0.0 ? exec_bound : kInf;
        request.push_back(vm);
      }
      // The span's real_us measures the allocator's wall-clock latency for
      // this admission attempt; its simulated duration is zero (admission
      // is instantaneous in the model).
      obs::Span span(sobs.trace, "admit", "sim", now);
      const core::AllocationResult result =
          allocator.allocate(request, server_states());
      if (!result.complete) {
        span.cancel();  // count the miss, don't trace it (volume)
        if (sobs.admission_failures != nullptr) {
          sobs.admission_failures->add();
        }
        ++metrics.rejects_by_reason[static_cast<std::size_t>(
            result.outcome.reason)];
        return false;  // no room (or no QoS-feasible room) right now
      }
      AEVA_INVARIANT(result.placements.size() == request.size(),
                  "allocator placed ", result.placements.size(), " of ",
                  request.size(), " VMs");
      if (result.outcome.path == core::AllocationPath::kFallbackFirstFit) {
        ++metrics.fallback_allocations;
      }
      for (const Placement& placement : result.placements) {
        AEVA_REQUIRE(placement.server_id >= 0 &&
                         placement.server_id < cloud_.server_count,
                     "allocator returned invalid server ",
                     placement.server_id);
        RunningVm vm;
        vm.vm_id = placement.vm_id;
        vm.job_index = j;
        vm.profile = job.profile;
        vm.runtime_scale = job.runtime_scale;
        vm.server = placement.server_id;
        vm.start_s = now;
        if (ckpt_on) {
          vm.next_ckpt_s = now + fail.recovery.checkpoint_period_s;
        }
        running.push_back(vm);
        ServerRt& host = servers[static_cast<std::size_t>(placement.server_id)];
        ++host.alloc.of(job.profile);
        host.powered = true;
        host.ever_powered = true;
        wait_stats.add(now - job.submit_s);
      }
      next_vm_id += job.vm_count;
      // Refresh every touched server once.
      std::vector<int> touched;
      for (const Placement& placement : result.placements) {
        touched.push_back(placement.server_id);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (const int s : touched) {
        refresh_server(s);
      }
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
      if (sobs.admissions != nullptr) {
        sobs.admissions->add();
        span.arg("job", std::to_string(job.id));
        span.arg("vms", std::to_string(job.vm_count));
        span.arg("servers", std::to_string(touched.size()));
      }
      span.close(now);
      return true;
    }
  };

  // Re-places the head of the restart queue (one VM lost to a crash).
  // Restarts go through the regular allocator, so recovery competes for
  // capacity under the same strategy and QoS bounds as fresh admissions.
  const auto try_restart = [&]() -> bool {
    const RestartVm& restart = restarts.front();
    const trace::JobRequest& job = jobs[restart.job_index];
    VmRequest request;
    request.id = next_vm_id;
    request.profile = job.profile;
    const double exec_bound =
        job.max_exec_stretch * db_of(0).base().of(job.profile).solo_time_s;
    request.max_exec_time_s = exec_bound > 0.0 ? exec_bound : kInf;
    obs::Span span(sobs.trace, "restart", "failure", now);
    const core::AllocationResult result =
        allocator.allocate({request}, server_states());
    if (!result.complete) {
      span.cancel();
      if (sobs.restart_failures != nullptr) {
        sobs.restart_failures->add();
      }
      ++metrics.rejects_by_reason[static_cast<std::size_t>(
          result.outcome.reason)];
      return false;
    }
    AEVA_INVARIANT(result.placements.size() == 1,
                   "allocator placed ", result.placements.size(),
                   " of 1 restart VM");
    if (result.outcome.path == core::AllocationPath::kFallbackFirstFit) {
      ++metrics.fallback_allocations;
    }
    const Placement& placement = result.placements.front();
    AEVA_REQUIRE(placement.server_id >= 0 &&
                     placement.server_id < cloud_.server_count,
                 "allocator returned invalid server ", placement.server_id);
    RunningVm vm;
    vm.vm_id = next_vm_id++;
    vm.job_index = restart.job_index;
    vm.profile = job.profile;
    vm.runtime_scale = job.runtime_scale;
    vm.server = placement.server_id;
    vm.start_s = now;
    vm.remaining = 1.0 - restart.resume_done;
    vm.retries = restart.retries;
    vm.ckpt_done = restart.resume_done;
    if (ckpt_on) {
      vm.next_ckpt_s = now + fail.recovery.checkpoint_period_s;
    }
    running.push_back(vm);
    ServerRt& host = servers[static_cast<std::size_t>(placement.server_id)];
    ++host.alloc.of(job.profile);
    host.powered = true;
    host.ever_powered = true;
    refresh_server(placement.server_id);
    ++metrics.vm_restarts;
    if (sobs.restarts_placed != nullptr) {
      sobs.restarts_placed->add();
      span.arg("job", std::to_string(job.id));
      span.arg("server", std::to_string(placement.server_id));
      span.arg("retries", std::to_string(vm.retries));
    }
    span.close(now);
    restarts.pop_front();
    return true;
  };

  // Admits queued jobs: recovery first (lost VMs are the oldest admitted
  // work), then FCFS; when the head cannot be placed and backfilling is
  // enabled, up to `backfill_window` younger jobs may jump ahead
  // (aggressive backfill, no reservations).
  const auto drain_queue = [&] {
    while (!restarts.empty() && try_restart()) {
    }
    while (!queue.empty()) {
      if (try_admit(0)) {
        continue;
      }
      bool backfilled = false;
      const auto window =
          static_cast<std::size_t>(std::max(0, cloud_.backfill_window));
      for (std::size_t p = 1; p < queue.size() && p <= window; ++p) {
        if (try_admit(p)) {
          backfilled = true;
          if (sobs.backfills != nullptr) {
            sobs.backfills->add();
          }
          break;
        }
      }
      if (!backfilled) {
        return;
      }
    }
  };

  // --- reactive consolidation (live migration) ----------------------------
  const MigrationConfig& mig = cloud_.migration;
  if (mig.enabled) {
    AEVA_REQUIRE(mig.check_interval_s > 0.0, "sweep interval must be positive");
    AEVA_REQUIRE(mig.evict_below_vms >= 1, "eviction threshold must be >= 1");
    AEVA_REQUIRE(mig.max_concurrent >= 1, "need at least one migration slot");
    AEVA_REQUIRE(mig.transfer_mbps > 0.0, "transfer bandwidth must be positive");
    AEVA_REQUIRE(mig.degradation > 0.0 && mig.degradation <= 1.0,
                 "degradation factor out of (0, 1]");
    AEVA_REQUIRE(mig.downtime_work_fraction >= 0.0 &&
                     mig.downtime_work_fraction < 1.0,
                 "downtime work fraction out of [0, 1)");
    if (mig.trigger == MigrationConfig::Trigger::kThermal) {
      AEVA_REQUIRE(mig.thermal_map != nullptr,
                   "thermal trigger requires a thermal map");
      AEVA_REQUIRE(mig.thermal_map->server_count() >= cloud_.server_count,
                   "thermal map covers ", mig.thermal_map->server_count(),
                   " servers, cloud has ", cloud_.server_count);
    }
  }
  double next_sweep = mig.enabled ? t0 + mig.check_interval_s : kInf;

  // Memory copied per migrating VM: the class's canonical footprint.
  const auto transfer_seconds = [&](ProfileClass profile) {
    return workload::canonical_app(profile).mem_footprint_mb /
           mig.transfer_mbps;
  };

  // Consolidation sweep: evict the VMs of lightly loaded servers onto
  // busier compatible machines so the sources can power down.
  const auto consolidation_sweep = [&] {
    int in_flight = 0;
    for (const RunningVm& vm : running) {
      in_flight += vm.migrating ? 1 : 0;
    }
    // Servers already involved in a transfer are off limits.
    std::vector<bool> frozen(n_servers, false);
    for (const RunningVm& vm : running) {
      if (vm.migrating) {
        frozen[static_cast<std::size_t>(vm.server)] = true;
        frozen[static_cast<std::size_t>(vm.dest_server)] = true;
      }
    }
    for (std::size_t src = 0; src < n_servers; ++src) {
      if (in_flight >= mig.max_concurrent) {
        break;
      }
      const int load = servers[src].alloc.total();
      if (load == 0 || load > mig.evict_below_vms || frozen[src]) {
        continue;
      }
      // Tentatively rehome every VM of this server.
      std::vector<std::pair<std::size_t, std::size_t>> plan;  // vm, dest
      std::vector<ClassCounts> tentative(n_servers);
      for (std::size_t s = 0; s < n_servers; ++s) {
        tentative[s] = servers[s].alloc;
      }
      bool ok = true;
      for (std::size_t v = 0; v < running.size() && ok; ++v) {
        const RunningVm& vm = running[v];
        if (vm.server != static_cast<int>(src) || vm.migrating) {
          if (vm.server == static_cast<int>(src) && vm.migrating) {
            ok = false;  // server already draining
          }
          continue;
        }
        bool placed = false;
        for (std::size_t dst = 0; dst < n_servers && !placed; ++dst) {
          if (dst == src || frozen[dst] || (fail_on && servers[dst].down)) {
            continue;
          }
          // Consolidate toward equally-or-more-loaded busy machines; an
          // empty destination would just move the problem, and a lighter
          // one would invert it (ping-pong guard).
          if (tentative[dst].total() == 0 ||
              tentative[dst].total() < servers[src].alloc.total()) {
            continue;
          }
          ClassCounts combined = tentative[dst];
          ++combined.of(vm.profile);
          const core::CostModel model(db_of(hardware_of(dst)));
          if (!model.feasible(combined)) {
            continue;
          }
          plan.emplace_back(v, dst);
          tentative[dst] = combined;
          placed = true;
        }
        ok = placed;
      }
      if (!ok || plan.empty() ||
          in_flight + static_cast<int>(plan.size()) > mig.max_concurrent) {
        continue;
      }
      // Commit: reserve destinations and start the transfers.
      for (const auto& [v, dst] : plan) {
        RunningVm& vm = running[v];
        vm.migrating = true;
        vm.dest_server = static_cast<int>(dst);
        vm.migration_done_s = now + transfer_seconds(vm.profile);
        vm.remaining += mig.downtime_work_fraction;  // stop-and-copy loss
        ++servers[dst].alloc.of(vm.profile);
        servers[dst].powered = true;
        frozen[dst] = true;
        ++in_flight;
        ++metrics.migrations;
        metrics.migration_transfer_s += transfer_seconds(vm.profile);
        refresh_server(static_cast<int>(dst));
      }
      frozen[src] = true;
      refresh_server(static_cast<int>(src));  // degradation on the movers
    }
  };

  // Reactive thermal sweep ([3]): servers over the inlet redline shed one
  // VM each toward the coolest feasible machine.
  const auto thermal_sweep = [&] {
    int in_flight = 0;
    for (const RunningVm& vm : running) {
      in_flight += vm.migrating ? 1 : 0;
    }
    std::vector<bool> frozen(n_servers, false);
    for (const RunningVm& vm : running) {
      if (vm.migrating) {
        frozen[static_cast<std::size_t>(vm.server)] = true;
        frozen[static_cast<std::size_t>(vm.dest_server)] = true;
      }
    }
    // Instantaneous power picture → predicted inlets.
    std::vector<double> power(
        static_cast<std::size_t>(mig.thermal_map->server_count()), 0.0);
    for (std::size_t s = 0; s < n_servers; ++s) {
      power[s] = servers[s].alloc.total() > 0 ? servers[s].busy_power_w : 0.0;
    }
    const std::vector<double> inlets = mig.thermal_map->inlet_temps(power);
    const double redline = mig.thermal_map->config().inlet_limit_c;

    // Hottest offenders first.
    std::vector<std::size_t> order;
    for (std::size_t s = 0; s < n_servers; ++s) {
      if (inlets[s] > redline && servers[s].alloc.total() > 0 && !frozen[s]) {
        order.push_back(s);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return inlets[a] > inlets[b];
    });

    for (const std::size_t src : order) {
      if (in_flight >= mig.max_concurrent) {
        break;
      }
      // First resident, non-migrating VM of the hot server.
      RunningVm* mover = nullptr;
      for (RunningVm& vm : running) {
        if (vm.server == static_cast<int>(src) && !vm.migrating) {
          mover = &vm;
          break;
        }
      }
      if (mover == nullptr) {
        continue;
      }
      // Coolest feasible destination comfortably under the redline.
      std::size_t best = n_servers;
      for (std::size_t dst = 0; dst < n_servers; ++dst) {
        if (dst == src || frozen[dst] || inlets[dst] > redline - 1.0 ||
            (fail_on && servers[dst].down)) {
          continue;
        }
        ClassCounts combined = servers[dst].alloc;
        ++combined.of(mover->profile);
        const core::CostModel model(db_of(hardware_of(dst)));
        if (!model.feasible(combined)) {
          continue;
        }
        if (best == n_servers || inlets[dst] < inlets[best]) {
          best = dst;
        }
      }
      if (best == n_servers) {
        continue;
      }
      mover->migrating = true;
      mover->dest_server = static_cast<int>(best);
      mover->migration_done_s = now + transfer_seconds(mover->profile);
      mover->remaining += mig.downtime_work_fraction;
      ++servers[best].alloc.of(mover->profile);
      servers[best].powered = true;
      frozen[best] = true;
      frozen[src] = true;
      ++in_flight;
      ++metrics.migrations;
      metrics.migration_transfer_s += transfer_seconds(mover->profile);
      refresh_server(static_cast<int>(best));
      refresh_server(static_cast<int>(src));
    }
  };

  // Instant trace event for a fault that actually applied (guard call
  // sites on sobs.trace so the disabled path builds no strings).
  const auto trace_fault = [&](const char* kind, const FailureEvent& event) {
    obs::TraceEvent record;
    record.name = kind;
    record.cat = "failure";
    record.phase = 'i';
    record.ts_sim_s = now;
    record.args.emplace_back("server", std::to_string(event.server));
    record.args.emplace_back("duration_s", std::to_string(event.duration_s));
    sobs.trace->record(std::move(record));
  };

  // Applies one due fault. Crashes lose every resident VM, abort inbound
  // transfers cleanly (the VM never left its source), and mask the server
  // until repair; degrade/brownout just open their windows.
  const auto apply_failure = [&](const FailureEvent& event) {
    ServerRt& server = servers[static_cast<std::size_t>(event.server)];
    if (event.kind == FailureKind::kDegrade) {
      if (server.down) {
        return;  // a masked server cannot degrade further
      }
      server.degrade_until = now + event.duration_s;
      server.degrade_mult = event.magnitude;
      refresh_server(event.server);
      if (sobs.degrades != nullptr) {
        sobs.degrades->add();
        trace_fault("degrade", event);
      }
      return;
    }
    if (event.kind == FailureKind::kBrownout) {
      if (server.down) {
        return;
      }
      server.brownout_until = now + event.duration_s;
      server.brownout_cap_w = event.magnitude;
      refresh_server(event.server);
      if (sobs.brownouts != nullptr) {
        sobs.brownouts->add();
        trace_fault("brownout", event);
      }
      return;
    }
    // Crash.
    if (server.down) {
      return;  // scripted overlap with a sampled outage: already masked
    }
    ++metrics.failures;
    if (sobs.crashes != nullptr) {
      sobs.crashes->add();
      trace_fault("crash", event);
    }
    server.down = true;
    server.repair_s = now + event.duration_s;
    server.powered = false;  // comes back cold: wake-up premium paid again
    server.degrade_until = -kInf;
    server.degrade_mult = 1.0;
    server.brownout_until = -kInf;
    server.brownout_cap_w = kInf;
    failure_schedule.on_crash(event.server);

    std::vector<int> touched;
    // Inbound transfers abort cleanly: the VM stays whole on its source,
    // the destination reservation is dropped, the in-flight degradation
    // ends, and the stop-and-copy loss is refunded — the downtime never
    // happened, so charging it would double-account the abort.
    for (RunningVm& vm : running) {
      if (vm.migrating && vm.dest_server == event.server) {
        vm.migrating = false;
        vm.dest_server = -1;
        vm.remaining -= mig.downtime_work_fraction;
        touched.push_back(vm.server);
      }
    }
    // Resident VMs — including outbound movers, whose copy dies with the
    // source — are lost. Work beyond the resume point is destroyed.
    for (std::size_t i = 0; i < running.size();) {
      RunningVm& vm = running[i];
      if (vm.server != event.server) {
        ++i;
        continue;
      }
      if (vm.migrating) {
        --servers[static_cast<std::size_t>(vm.dest_server)]
              .alloc.of(vm.profile);
        touched.push_back(vm.dest_server);
      }
      const double done = std::max(1.0 - vm.remaining, 0.0);
      const double resume = ckpt_on ? std::min(vm.ckpt_done, done) : 0.0;
      metrics.lost_work_s +=
          (done - resume) * vm.runtime_scale * solo_time(vm.profile);
      if (fail.recovery.policy == RecoveryPolicy::kAbandonAfterRetries &&
          vm.retries >= fail.recovery.max_retries) {
        ++metrics.vms_abandoned;
        if (sobs.abandoned != nullptr) {
          sobs.abandoned->add();
        }
        retire_vm_of_job(vm.job_index);  // never re-runs; free dependents
      } else {
        restarts.push_back(RestartVm{vm.job_index, resume, vm.retries + 1});
      }
      running[i] = running.back();
      running.pop_back();
    }
    server.alloc = ClassCounts{};
    server.busy_power_w = 0.0;
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (const int t : touched) {
      if (t != event.server) {
        refresh_server(t);
      }
    }
  };

  std::size_t guard = 0;
  const std::size_t max_events =
      jobs.size() * 4 +
      static_cast<std::size_t>(workload.total_vms) * 6 + (1u << 17) +
      (fail_on ? fail.script.size() * 4 + (1u << 20) : 0u);

  // --- process-level durability (docs/RESILIENCE.md) ----------------------
  const SnapshotConfig& snap = cloud_.snapshot;
  const bool snap_on =
      snap.every_s > 0.0 && (!snap.path.empty() || snap.hook != nullptr);
  double next_snapshot_due = snap_on ? t0 + snap.every_s : kInf;
  std::uint64_t workload_fp = 0;
  std::uint64_t config_fp = 0;
  if (snap_on || restore != nullptr) {
    workload_fp = fingerprint_workload(jobs);
    config_fp = fingerprint_config(cloud_, allocator.name(), dbs_.size());
  }

  // Captures the complete loop state into a persist::SimSnapshot mirror,
  // writes it atomically when a path is configured, and hands it to the
  // hook. Pure observation: nothing the rest of the loop reads changes.
  const auto capture_snapshot = [&] {
    // The span's real_us is the wall-clock cost of encoding + writing the
    // checkpoint; its simulated duration is zero (checkpointing is outside
    // the simulated model).
    obs::Span span(sobs.trace, "snapshot", "persist", now);
    persist::SimSnapshot s;
    s.workload_fingerprint = workload_fp;
    s.config_fingerprint = config_fp;
    s.t0 = t0;
    s.now = now;
    s.next_job = next_job;
    s.next_vm_id = next_vm_id;
    s.guard = guard;
    s.busy_server_time = busy_server_time;
    s.useful_work_s = useful_work_s;
    s.next_sweep = next_sweep;
    s.parked = parked;
    s.servers.reserve(n_servers);
    for (const ServerRt& in : servers) {
      persist::ServerPersistState out;
      out.alloc = in.alloc;
      out.busy_power_w = in.busy_power_w;
      out.powered = in.powered;
      out.down = in.down;
      out.repair_s = in.repair_s;
      out.degrade_until = in.degrade_until;
      out.degrade_mult = in.degrade_mult;
      out.brownout_until = in.brownout_until;
      out.brownout_cap_w = in.brownout_cap_w;
      out.ever_powered = in.ever_powered;
      s.servers.push_back(out);
    }
    s.running.reserve(running.size());
    for (const RunningVm& in : running) {
      persist::VmState out;
      out.vm_id = in.vm_id;
      out.job_index = in.job_index;
      out.profile = static_cast<std::int32_t>(in.profile);
      out.runtime_scale = in.runtime_scale;
      out.server = in.server;
      out.start_s = in.start_s;
      out.remaining = in.remaining;
      out.rate = in.rate;
      out.migrating = in.migrating;
      out.migration_done_s = in.migration_done_s;
      out.dest_server = in.dest_server;
      out.retries = in.retries;
      out.ckpt_done = in.ckpt_done;
      out.next_ckpt_s = in.next_ckpt_s;
      s.running.push_back(out);
    }
    s.queue.assign(queue.begin(), queue.end());
    s.restarts.reserve(restarts.size());
    for (const RestartVm& in : restarts) {
      s.restarts.push_back(persist::RestartState{in.job_index, in.resume_done,
                                                 in.retries});
    }
    s.vms_left.assign(vms_left.begin(), vms_left.end());
    s.job_done.reserve(job_done.size());
    for (const bool done : job_done) {
      s.job_done.push_back(done ? 1 : 0);
    }
    s.dependents.reserve(dependents.size());
    for (const std::vector<std::size_t>& deps : dependents) {
      s.dependents.emplace_back(deps.begin(), deps.end());
    }
    persist::MetricsState& m = s.metrics;
    m.makespan_s = metrics.makespan_s;
    m.energy_j = metrics.energy_j;
    m.sla_violation_pct = metrics.sla_violation_pct;
    m.jobs = metrics.jobs;
    m.vms = metrics.vms;
    m.sla_violations = metrics.sla_violations;
    m.mean_response_s = metrics.mean_response_s;
    m.mean_wait_s = metrics.mean_wait_s;
    m.mean_busy_servers = metrics.mean_busy_servers;
    m.peak_busy_servers = metrics.peak_busy_servers;
    m.servers_powered = metrics.servers_powered;
    m.migrations = metrics.migrations;
    m.migration_transfer_s = metrics.migration_transfer_s;
    m.failures = metrics.failures;
    m.vm_restarts = metrics.vm_restarts;
    m.vms_abandoned = metrics.vms_abandoned;
    m.lost_work_s = metrics.lost_work_s;
    m.goodput_fraction = metrics.goodput_fraction;
    m.fallback_allocations = metrics.fallback_allocations;
    m.rejects_by_reason.reserve(metrics.rejects_by_reason.size());
    for (const std::size_t tally : metrics.rejects_by_reason) {
      m.rejects_by_reason.push_back(static_cast<std::uint64_t>(tally));
    }
    m.completions.reserve(metrics.completions.size());
    for (const VmCompletion& c : metrics.completions) {
      m.completions.push_back(persist::CompletionState{
          c.vm_id, c.job_id, static_cast<std::int32_t>(c.profile), c.server,
          c.submit_s, c.start_s, c.finish_s});
    }
    s.response_stats = response_stats.state();
    s.wait_stats = wait_stats.state();
    const FailureSchedule::State fs = failure_schedule.state();
    s.failure.script_next = fs.script_next;
    s.failure.streams = fs.streams;
    s.failure.sampled_next = fs.sampled_next;

    if (!snap.path.empty()) {
      const std::string bytes = persist::encode_snapshot(s);
      try {
        util::write_file_atomic(snap.path, bytes);
      } catch (const util::FileWriteError& error) {
        throw persist::SnapshotIoError(
            std::string("cannot write snapshot: ") + error.what());
      }
      if (sobs.snapshot_bytes != nullptr) {
        sobs.snapshot_bytes->add(bytes.size());
        span.arg("bytes", std::to_string(bytes.size()));
      }
    }
    if (sobs.snapshots != nullptr) {
      sobs.snapshots->add();
    }
    span.close(now);
    if (snap.hook) {
      snap.hook(s);
    }
  };

  // Restoring assigns every mutable local the loop reads, so the next
  // iteration computes exactly what the uninterrupted run's would have:
  // all doubles (rates, powers, accumulators) and all RNG stream
  // positions travel bit-exactly through the snapshot.
  if (restore != nullptr) {
    const persist::SimSnapshot& s = *restore;
    require_snapshot(s.workload_fingerprint == workload_fp,
                     "workload fingerprint differs");
    require_snapshot(s.config_fingerprint == config_fp,
                     "cloud/allocator configuration fingerprint differs");
    require_snapshot(s.servers.size() == n_servers, "server count differs");
    require_snapshot(s.vms_left.size() == jobs.size() &&
                         s.job_done.size() == jobs.size() &&
                         s.dependents.size() == jobs.size(),
                     "per-job state does not match the workload");
    require_snapshot(s.next_job <= jobs.size(),
                     "arrival cursor out of range");
    for (const std::uint64_t j : s.queue) {
      require_snapshot(j < jobs.size(), "queued job index out of range");
    }
    std::size_t parked_count = 0;
    for (const std::vector<std::uint64_t>& deps : s.dependents) {
      parked_count += deps.size();
      for (const std::uint64_t j : deps) {
        require_snapshot(j < jobs.size(), "parked job index out of range");
      }
    }
    require_snapshot(parked_count == s.parked,
                     "parked-job count disagrees with the dependents lists");
    for (const persist::VmState& vm : s.running) {
      require_snapshot(vm.job_index < jobs.size(),
                       "running VM's job out of range");
      require_snapshot(vm.server >= 0 &&
                           static_cast<std::size_t>(vm.server) < n_servers,
                       "running VM's server out of range");
      require_snapshot(vm.dest_server >= -1 &&
                           vm.dest_server < static_cast<int>(n_servers),
                       "running VM's destination out of range");
      require_snapshot(!vm.migrating || vm.dest_server >= 0,
                       "migrating VM without a destination");
    }
    for (const persist::RestartState& r : s.restarts) {
      require_snapshot(r.job_index < jobs.size(),
                       "restart VM's job out of range");
    }

    now = s.now;
    next_job = static_cast<std::size_t>(s.next_job);
    next_vm_id = s.next_vm_id;
    guard = static_cast<std::size_t>(s.guard);
    busy_server_time = s.busy_server_time;
    useful_work_s = s.useful_work_s;
    next_sweep = s.next_sweep;
    parked = static_cast<std::size_t>(s.parked);
    for (std::size_t i = 0; i < n_servers; ++i) {
      const persist::ServerPersistState& in = s.servers[i];
      ServerRt& out = servers[i];
      out.alloc = in.alloc;
      out.busy_power_w = in.busy_power_w;
      out.powered = in.powered;
      out.down = in.down;
      out.repair_s = in.repair_s;
      out.degrade_until = in.degrade_until;
      out.degrade_mult = in.degrade_mult;
      out.brownout_until = in.brownout_until;
      out.brownout_cap_w = in.brownout_cap_w;
      out.ever_powered = in.ever_powered;
    }
    running.clear();
    running.reserve(s.running.size());
    for (const persist::VmState& in : s.running) {
      RunningVm vm;
      vm.vm_id = in.vm_id;
      vm.job_index = static_cast<std::size_t>(in.job_index);
      vm.profile = static_cast<ProfileClass>(in.profile);
      vm.runtime_scale = in.runtime_scale;
      vm.server = in.server;
      vm.start_s = in.start_s;
      vm.remaining = in.remaining;
      vm.rate = in.rate;
      vm.migrating = in.migrating;
      vm.migration_done_s = in.migration_done_s;
      vm.dest_server = in.dest_server;
      vm.retries = in.retries;
      vm.ckpt_done = in.ckpt_done;
      vm.next_ckpt_s = in.next_ckpt_s;
      running.push_back(vm);
    }
    queue.assign(s.queue.begin(), s.queue.end());
    restarts.clear();
    for (const persist::RestartState& in : s.restarts) {
      restarts.push_back(RestartVm{static_cast<std::size_t>(in.job_index),
                                   in.resume_done, in.retries});
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      vms_left[j] = s.vms_left[j];
      job_done[j] = s.job_done[j] != 0;
      dependents[j].assign(s.dependents[j].begin(), s.dependents[j].end());
    }
    const persist::MetricsState& m = s.metrics;
    metrics.makespan_s = m.makespan_s;
    metrics.energy_j = m.energy_j;
    metrics.sla_violation_pct = m.sla_violation_pct;
    metrics.jobs = static_cast<std::size_t>(m.jobs);
    metrics.vms = static_cast<std::size_t>(m.vms);
    metrics.sla_violations = static_cast<std::size_t>(m.sla_violations);
    metrics.mean_response_s = m.mean_response_s;
    metrics.mean_wait_s = m.mean_wait_s;
    metrics.mean_busy_servers = m.mean_busy_servers;
    metrics.peak_busy_servers = m.peak_busy_servers;
    metrics.servers_powered = static_cast<std::size_t>(m.servers_powered);
    metrics.migrations = static_cast<std::size_t>(m.migrations);
    metrics.migration_transfer_s = m.migration_transfer_s;
    metrics.failures = static_cast<std::size_t>(m.failures);
    metrics.vm_restarts = static_cast<std::size_t>(m.vm_restarts);
    metrics.vms_abandoned = static_cast<std::size_t>(m.vms_abandoned);
    metrics.lost_work_s = m.lost_work_s;
    metrics.goodput_fraction = m.goodput_fraction;
    metrics.fallback_allocations =
        static_cast<std::size_t>(m.fallback_allocations);
    if (m.rejects_by_reason.size() != metrics.rejects_by_reason.size()) {
      throw persist::SnapshotMismatchError(
          "snapshot carries " + std::to_string(m.rejects_by_reason.size()) +
          " reject-reason tallies; this build knows " +
          std::to_string(metrics.rejects_by_reason.size()));
    }
    for (std::size_t i = 0; i < metrics.rejects_by_reason.size(); ++i) {
      metrics.rejects_by_reason[i] =
          static_cast<std::size_t>(m.rejects_by_reason[i]);
    }
    metrics.completions.clear();
    metrics.completions.reserve(m.completions.size());
    for (const persist::CompletionState& c : m.completions) {
      metrics.completions.push_back(VmCompletion{
          c.vm_id, c.job_id, static_cast<ProfileClass>(c.profile), c.server,
          c.submit_s, c.start_s, c.finish_s});
    }
    response_stats.restore(s.response_stats);
    wait_stats.restore(s.wait_stats);
    FailureSchedule::State fail_state;
    fail_state.script_next = static_cast<std::size_t>(s.failure.script_next);
    fail_state.streams = s.failure.streams;
    fail_state.sampled_next = s.failure.sampled_next;
    failure_schedule.restore(fail_state);
  }

  while (next_job < jobs.size() || !queue.empty() || !running.empty() ||
         parked > 0 || !restarts.empty()) {
    AEVA_INVARIANT(++guard <= max_events,
                "simulation event budget exhausted — strategy starved the "
                "queue or the model diverged");

    // Next event: job arrival, earliest VM completion, finished transfer,
    // or a consolidation sweep (only meaningful while VMs run).
    const double next_arrival =
        next_job < jobs.size() ? jobs[next_job].submit_s : kInf;
    double next_completion = kInf;
    double next_transfer = kInf;
    for (const RunningVm& vm : running) {
      next_completion = std::min(next_completion, now + vm.remaining / vm.rate);
      if (vm.migrating) {
        next_transfer = std::min(next_transfer, vm.migration_done_s);
      }
    }
    const double sweep_event =
        mig.enabled && !running.empty() ? next_sweep : kInf;
    // Pending faults close the interval too, as do repair instants and
    // degradation/brownout window ends (rates must recompute there).
    const double next_failure =
        fail_on ? failure_schedule.next_time() : kInf;
    double next_window = kInf;
    if (fail_on) {
      for (const ServerRt& server : servers) {
        if (server.down) {
          next_window = std::min(next_window, server.repair_s);
        } else {
          if (server.degrade_until > now) {
            next_window = std::min(next_window, server.degrade_until);
          }
          if (server.brownout_until > now) {
            next_window = std::min(next_window, server.brownout_until);
          }
        }
      }
    }
    const double next_event =
        std::min({next_arrival, next_completion, next_transfer, sweep_event,
                  next_failure, next_window});
    if (!std::isfinite(next_event)) {
      throw std::runtime_error(
          "datacenter simulation deadlocked: queued jobs but no running VMs "
          "and no future arrivals (strategy '" +
          allocator.name() + "' cannot place the head-of-line job)");
    }
    if (sobs.loop_events != nullptr) {
      sobs.loop_events->add();
      sobs.queue_depth->record(static_cast<double>(queue.size()));
      // Attribute the step to the earliest source (ties resolve in the
      // order the min above considers them — observability only).
      obs::Counter* which = sobs.ev_window;
      if (next_event == next_arrival) {
        which = sobs.ev_arrival;
      } else if (next_event == next_completion) {
        which = sobs.ev_completion;
      } else if (next_event == next_transfer) {
        which = sobs.ev_transfer;
      } else if (next_event == sweep_event) {
        which = sobs.ev_sweep;
      } else if (next_event == next_failure) {
        which = sobs.ev_failure;
      }
      which->add();
    }

    // Accrue energy and progress over [now, next_event].
    const double dt = next_event - now;
    if (dt > 0.0) {
      if (sobs.intervals != nullptr) {
        sobs.intervals->add();
        sobs.interval_s->record(dt);
      }
      double busy = 0.0;
      double power = 0.0;
      for (const ServerRt& server : servers) {
        if (server.alloc.total() > 0) {
          // Hosting servers draw the model record's mean power, which
          // includes the fixed 125 W baseline of a powered-on machine.
          busy += 1.0;
          power += server.busy_power_w;
        }
        // Empty servers are powered off — consolidation "minimizes the
        // number of servers that are in operation" (Sect. I).
      }
      metrics.energy_j += power * dt;
      if (observer) {
        std::vector<double> per_server(n_servers, 0.0);
        for (std::size_t s = 0; s < n_servers; ++s) {
          per_server[s] = servers[s].busy_power_w;
        }
        observer(now, next_event, per_server);
      }
      busy_server_time += busy * dt;
      metrics.peak_busy_servers = std::max(metrics.peak_busy_servers, busy);
      for (RunningVm& vm : running) {
        // Checkpoint boundaries inside the interval: the rate is constant
        // over [now, next_event], so snapshots need no extra events —
        // progress at each boundary is interpolated exactly.
        if (ckpt_on) {
          while (vm.next_ckpt_s <= next_event + kEps) {
            const double at_boundary =
                (1.0 - vm.remaining) + vm.rate * (vm.next_ckpt_s - now);
            vm.ckpt_done =
                std::min(std::max(at_boundary, vm.ckpt_done), 1.0);
            vm.next_ckpt_s += fail.recovery.checkpoint_period_s;
          }
        }
        vm.remaining -= vm.rate * dt;
      }
      now = next_event;
    }

    // Process arrivals at `now`; jobs with an unmet dependency park until
    // their predecessor completes.
    while (next_job < jobs.size() && jobs[next_job].submit_s <= now + kEps) {
      const trace::JobRequest& job = jobs[next_job];
      if (job.depends_on != 0 &&
          !job_done[index_of_id.at(job.depends_on)]) {
        dependents[index_of_id.at(job.depends_on)].push_back(next_job);
        ++parked;
      } else {
        queue.push_back(next_job);
      }
      ++next_job;
    }

    // Finish transfers whose copy completed: the VM switches to its
    // reserved destination and the source drops it.
    for (RunningVm& vm : running) {
      if (vm.migrating && vm.migration_done_s <= now + kEps) {
        const int source = vm.server;
        --servers[static_cast<std::size_t>(source)].alloc.of(vm.profile);
        vm.server = vm.dest_server;
        vm.migrating = false;
        vm.dest_server = -1;
        refresh_server(source);
        refresh_server(vm.server);
      }
    }

    // Process completions at `now`.
    for (std::size_t i = 0; i < running.size();) {
      RunningVm& vm = running[i];
      if (vm.remaining <= kEps || vm.remaining / vm.rate <= kEps) {
        const trace::JobRequest& job = jobs[vm.job_index];
        const double response = now - job.submit_s;
        response_stats.add(response);
        if (response > job.deadline_s + kEps) {
          ++metrics.sla_violations;
        }
        ++metrics.vms;
        if (cloud_.record_completions) {
          metrics.completions.push_back(VmCompletion{
              vm.vm_id, job.id, vm.profile, vm.server, job.submit_s,
              vm.start_s, now});
        }
        useful_work_s += vm.runtime_scale * solo_time(vm.profile);
        // Workflow release: the job's last VM frees its dependents.
        retire_vm_of_job(vm.job_index);
        --servers[static_cast<std::size_t>(vm.server)].alloc.of(vm.profile);
        const int touched = vm.server;
        int abandoned_dest = -1;
        if (vm.migrating) {
          // The VM finished mid-copy: release the reservation.
          abandoned_dest = vm.dest_server;
          --servers[static_cast<std::size_t>(abandoned_dest)]
                .alloc.of(vm.profile);
        }
        running[i] = running.back();
        running.pop_back();
        refresh_server(touched);
        if (abandoned_dest >= 0) {
          refresh_server(abandoned_dest);
        }
      } else {
        ++i;
      }
    }

    if (fail_on) {
      // Expired degradation/brownout windows: reset and recompute rates.
      for (std::size_t s = 0; s < n_servers; ++s) {
        ServerRt& server = servers[s];
        bool expired = false;
        if (server.degrade_until != -kInf &&
            server.degrade_until <= now + kEps) {
          server.degrade_until = -kInf;
          server.degrade_mult = 1.0;
          expired = true;
        }
        if (server.brownout_until != -kInf &&
            server.brownout_until <= now + kEps) {
          server.brownout_until = -kInf;
          server.brownout_cap_w = kInf;
          expired = true;
        }
        if (expired && !server.down) {
          refresh_server(static_cast<int>(s));
        }
      }
      // Due faults, then repairs (a crash with zero repair time comes
      // back — cold and empty — within the same instant).
      for (const FailureEvent& event : failure_schedule.pop_due(now)) {
        apply_failure(event);
      }
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (servers[s].down && servers[s].repair_s <= now + kEps) {
          servers[s].down = false;
          servers[s].repair_s = kInf;
          failure_schedule.on_repair(static_cast<int>(s), now);
        }
      }
    }

    // Periodic migration sweep (catching up over idle gaps).
    if (mig.enabled && next_sweep <= now + kEps) {
      if (!running.empty()) {
        if (mig.trigger == MigrationConfig::Trigger::kThermal) {
          thermal_sweep();
        } else {
          consolidation_sweep();
        }
      }
      while (next_sweep <= now + kEps) {
        next_sweep += mig.check_interval_s;
      }
    }

    drain_queue();

    // Periodic checkpoint at the loop boundary. Deliberately *not* an
    // event source: inserting snapshot times into the interval min would
    // split `power*dt` / `rate*dt` accrual and change floating-point
    // summation order, breaking the snapshots-on vs. snapshots-off
    // bit-identity contract (gated by bench/snapshot_overhead).
    if (snap_on && now + kEps >= next_snapshot_due) {
      capture_snapshot();
      while (next_snapshot_due <= now + kEps) {
        next_snapshot_due += snap.every_s;
      }
    }
  }

  metrics.makespan_s = now - t0;
  metrics.mean_response_s = response_stats.mean();
  metrics.mean_wait_s = wait_stats.mean();
  metrics.sla_violation_pct =
      metrics.vms > 0
          ? 100.0 * static_cast<double>(metrics.sla_violations) /
                static_cast<double>(metrics.vms)
          : 0.0;
  metrics.mean_busy_servers =
      metrics.makespan_s > 0.0 ? busy_server_time / metrics.makespan_s : 0.0;
  for (const ServerRt& server : servers) {
    metrics.servers_powered += (server.powered || server.ever_powered) ? 1 : 0;
  }
  metrics.goodput_fraction =
      useful_work_s + metrics.lost_work_s > 0.0
          ? useful_work_s / (useful_work_s + metrics.lost_work_s)
          : 1.0;
  if (cloud_.obs != nullptr) {
    obs::MetricsRegistry& reg = cloud_.obs->metrics();
    reg.gauge("sim.makespan_s").set(metrics.makespan_s);
    reg.gauge("sim.energy_j").set(metrics.energy_j);
    reg.gauge("sim.sla_violation_pct").set(metrics.sla_violation_pct);
    reg.gauge("sim.lost_work_s").set(metrics.lost_work_s);
    reg.gauge("sim.goodput_fraction").set(metrics.goodput_fraction);
    run_span.arg("strategy", allocator.name());
    run_span.arg("jobs", std::to_string(metrics.jobs));
    run_span.arg("vms", std::to_string(metrics.vms));
  }
  run_span.close(now);
  return metrics;
}

}  // namespace aeva::datacenter
