#include "datacenter/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "datacenter/fcfs_queue.hpp"
#include "datacenter/topology.hpp"
#include "persist/snapshot.hpp"
#include "util/arena.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/registry.hpp"

namespace aeva::datacenter {

using core::Placement;
using core::ServerState;
using core::VmRequest;
using workload::ClassCounts;
using workload::ProfileClass;

Simulator::Simulator(const modeldb::ModelDatabase& db, CloudConfig cloud)
    : Simulator(std::vector<const modeldb::ModelDatabase*>{&db},
                std::move(cloud)) {}
// Construction is cold; all per-run state lives inside run().
Simulator::Simulator(std::vector<const modeldb::ModelDatabase*> dbs,
                     CloudConfig cloud)
    : dbs_(std::move(dbs)), cloud_(std::move(cloud)) {
  AEVA_REQUIRE(cloud_.server_count >= 1, "cloud needs at least one server");
  AEVA_REQUIRE(cloud_.idle_power_w >= 0.0, "negative idle power");
  AEVA_REQUIRE(!dbs_.empty(), "need at least one model database");
  for (const modeldb::ModelDatabase* db : dbs_) {
    AEVA_REQUIRE(db != nullptr, "null model database");
  }
  if (!cloud_.hardware.empty()) {
    AEVA_REQUIRE(cloud_.hardware.size() ==
                     static_cast<std::size_t>(cloud_.server_count),
                 "hardware map size ", cloud_.hardware.size(),
                 " does not match server count ", cloud_.server_count);
    for (const int h : cloud_.hardware) {
      AEVA_REQUIRE(h >= 0 && static_cast<std::size_t>(h) < dbs_.size(),
                   "hardware class ", h, " has no model database");
    }
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

/// One resident VM.
struct RunningVm {
  std::int64_t vm_id = 0;
  std::size_t job_index = 0;
  ProfileClass profile{};
  double runtime_scale = 1.0;
  int server = 0;
  double start_s = 0.0;    ///< allocation instant
  double remaining = 1.0;  ///< normalized work left
  double rate = 0.0;       ///< progress per second under the current mix
  bool migrating = false;
  double migration_done_s = 0.0;  ///< transfer completion time while in flight
  int dest_server = -1;           ///< reserved destination while in flight
  // Resilience bookkeeping (inert while failures are disabled).
  int retries = 0;           ///< times this VM has been lost and re-queued
  double ckpt_done = 0.0;    ///< progress at the last checkpoint boundary
  double next_ckpt_s = std::numeric_limits<double>::infinity();
};

/// Per-server runtime state, struct-of-arrays (docs/ARCHITECTURE.md
/// "Event-loop hot path"). The loop scans a few per-server fields on every
/// event — allocation mixes for the busy/power accrual, failure windows for
/// the next-event min — so each field lives in its own dense array and a
/// scan touches exactly the bytes it needs instead of striding through
/// padded structs. Alongside the arrays the fleet maintains the allocator's
/// core::ServerState view *incrementally*: mixes and power flags are
/// patched in place on every commit and membership changes only on
/// crash/repair, so an admission hands the allocator a span instead of
/// materializing a fleet-sized vector per attempt (the seed loop's
/// dominant cost at 10k servers — see bench/event_loop_throughput).
class FleetSoA {
 public:
  static constexpr std::size_t kNotInView =
      std::numeric_limits<std::size_t>::max();

  // Scanned per event; every column is sized once, at construction.
  std::vector<ClassCounts> alloc;
  std::vector<double> busy_power_w;
  // Flags & failure windows (inert while failures are disabled).
  std::vector<std::uint8_t> powered;
  std::vector<std::uint8_t> down;
  std::vector<std::uint8_t> isolated;  ///< ToR fault: masked, VMs stalled
  std::vector<std::uint8_t> ever_powered;
  std::vector<double> repair_s;
  std::vector<double> degrade_until;
  std::vector<double> degrade_mult;
  std::vector<double> brownout_until;
  std::vector<double> brownout_cap_w;

  FleetSoA(std::size_t n, const std::vector<int>& hardware_map)
      : alloc(n),
        busy_power_w(n, 0.0),
        powered(n, 0),
        down(n, 0),
        isolated(n, 0),
        ever_powered(n, 0),
        repair_s(n, kInf),
        degrade_until(n, -kInf),
        degrade_mult(n, 1.0),
        brownout_until(n, -kInf),
        brownout_cap_w(n, kInf),
        hardware_(n, 0),
        view_pos_(n, kNotInView) {
    for (std::size_t s = 0; s < n; ++s) {
      hardware_[s] = hardware_map.empty() ? 0 : hardware_map[s];
    }
    view_.reserve(n);  // repairs re-insert without ever reallocating
    rebuild_view();
  }

  [[nodiscard]] int hardware(std::size_t s) const { return hardware_[s]; }

  /// The allocator's cluster picture: live (non-down) servers in id order —
  /// element-for-element what the seed loop's per-call materialization
  /// produced, kept current by the mutators below.
  [[nodiscard]] std::span<const ServerState> view() const { return view_; }

  /// Commits one VM: admission, restart, or a migration's destination
  /// reservation. Powers the host on (first use pays the wake premium).
  void add_vm(int server, ProfileClass profile) {
    const auto s = static_cast<std::size_t>(server);
    ++alloc[s].of(profile);
    powered[s] = 1;
    ever_powered[s] = 1;
    if (view_pos_[s] != kNotInView) {
      ServerState& entry = view_[view_pos_[s]];
      entry.allocated = alloc[s];
      entry.powered = true;
    }
  }

  /// Releases one VM: completion, transfer hand-off, aborted reservation.
  void remove_vm(int server, ProfileClass profile) {
    const auto s = static_cast<std::size_t>(server);
    --alloc[s].of(profile);
    if (view_pos_[s] != kNotInView) {
      view_[view_pos_[s]].allocated = alloc[s];
    }
  }

  /// Masks a crashed server from the allocator view (order-preserving
  /// in-place erase — O(fleet) but crashes are rare by construction).
  /// The caller zeroes the resident mix afterwards; direct writes to
  /// `alloc` are only legal while the server is masked. A crash during a
  /// ToR isolation keeps the server masked either way (view membership is
  /// !down && !isolated throughout).
  void crash(int server) {
    const auto s = static_cast<std::size_t>(server);
    down[s] = 1;
    powered[s] = 0;
    remove_from_view(s);
  }

  /// Returns a repaired server to the view — cold and empty, at its
  /// id-ordered slot (capacity was reserved up front: no allocation). A
  /// server repaired while its rack is still isolated stays masked until
  /// the switch heals.
  void repair(int server) {
    const auto s = static_cast<std::size_t>(server);
    down[s] = 0;
    if (isolated[s] == 0) {
      insert_into_view(s);
    }
  }

  /// Masks a rack-isolated server (ToR fault). Residents stay resident —
  /// their progress is frozen by the caller — so the mix is untouched.
  void isolate(int server) {
    const auto s = static_cast<std::size_t>(server);
    isolated[s] = 1;
    remove_from_view(s);
  }

  /// Lifts the isolation; the server rejoins the view unless it is also
  /// down (crashed mid-isolation, repair still pending).
  void deisolate(int server) {
    const auto s = static_cast<std::size_t>(server);
    isolated[s] = 0;
    if (down[s] == 0) {
      insert_into_view(s);
    }
  }

  /// Rebuilds the view from the arrays (initial build, snapshot restore).
  void rebuild_view() {
    view_.clear();
    std::fill(view_pos_.begin(), view_pos_.end(), kNotInView);
    for (std::size_t s = 0; s < alloc.size(); ++s) {
      if (down[s] != 0 || isolated[s] != 0) {
        continue;
      }
      view_pos_[s] = view_.size();
      view_.push_back(ServerState{static_cast<int>(s), alloc[s],
                                  powered[s] != 0, hardware_[s]});
    }
  }

 private:
  void remove_from_view(std::size_t s) {
    const std::size_t pos = view_pos_[s];
    if (pos != kNotInView) {
      view_.erase(view_.begin() + static_cast<std::ptrdiff_t>(pos));
      view_pos_[s] = kNotInView;
      reindex_from(pos);
    }
  }

  void insert_into_view(std::size_t s) {
    if (view_pos_[s] != kNotInView) {
      return;
    }
    const int server = static_cast<int>(s);
    const auto it =
        std::lower_bound(view_.begin(), view_.end(), server,
                         [](const ServerState& a, int id) { return a.id < id; });
    const auto pos = static_cast<std::size_t>(it - view_.begin());
    view_.insert(it, ServerState{server, alloc[s], powered[s] != 0,
                                 hardware_[s]});
    reindex_from(pos);
  }

  void reindex_from(std::size_t pos) {
    for (std::size_t i = pos; i < view_.size(); ++i) {
      view_pos_[static_cast<std::size_t>(view_[i].id)] = i;
    }
  }

  // Sized once at construction; view_ is reserved at fleet size so a
  // repair re-insertion never allocates.
  std::vector<int> hardware_;
  std::vector<ServerState> view_;      ///< live servers, ascending id
  std::vector<std::size_t> view_pos_;  ///< server id → view_ index
};

/// A VM lost to a crash, waiting to be re-placed.
struct RestartVm {
  std::size_t job_index = 0;
  double resume_done = 0.0;  ///< progress restored at restart (checkpoint)
  int retries = 0;           ///< losses so far, including the one queuing it
};

// --- snapshot identity (docs/RESILIENCE.md) ---------------------------------
// A snapshot is only meaningful against the exact run that wrote it, so
// every snapshot carries order-sensitive fingerprints of the workload and
// of the (cloud, allocator) configuration, and resume() refuses anything
// else. Doubles are mixed by bit pattern: "the same run" means the same
// bits, matching the bit-identical-resume guarantee.

std::uint64_t fingerprint_workload(const std::vector<trace::JobRequest>& jobs) {
  persist::Fingerprint fp;
  fp.mix(jobs.size());
  for (const trace::JobRequest& job : jobs) {
    fp.mix(static_cast<std::uint64_t>(job.id));
    fp.mix_double(job.submit_s);
    fp.mix(static_cast<std::uint64_t>(job.profile));
    fp.mix(static_cast<std::uint64_t>(job.vm_count));
    fp.mix_double(job.runtime_scale);
    fp.mix_double(job.deadline_s);
    fp.mix_double(job.max_exec_stretch);
    fp.mix(static_cast<std::uint64_t>(job.depends_on));
  }
  return fp.value();
}

std::uint64_t fingerprint_config(const CloudConfig& cloud,
                                 const std::string& allocator_name,
                                 std::size_t db_count) {
  persist::Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(cloud.server_count));
  fp.mix_double(cloud.idle_power_w);
  fp.mix(cloud.hardware.size());
  for (const int hardware : cloud.hardware) {
    fp.mix(static_cast<std::uint64_t>(hardware));
  }
  const MigrationConfig& mig = cloud.migration;
  fp.mix(mig.enabled ? 1 : 0);
  fp.mix(static_cast<std::uint64_t>(mig.trigger));
  fp.mix_double(mig.check_interval_s);
  fp.mix(static_cast<std::uint64_t>(mig.evict_below_vms));
  fp.mix(static_cast<std::uint64_t>(mig.max_concurrent));
  fp.mix_double(mig.transfer_mbps);
  fp.mix_double(mig.degradation);
  fp.mix_double(mig.downtime_work_fraction);
  const FailureConfig& fail = cloud.failure;
  fp.mix(fail.enabled ? 1 : 0);
  fp.mix(fail.script.size());
  for (const FailureEvent& event : fail.script) {
    fp.mix(static_cast<std::uint64_t>(event.kind));
    fp.mix(static_cast<std::uint64_t>(event.server));
    fp.mix_double(event.at_s);
    fp.mix_double(event.duration_s);
    fp.mix_double(event.magnitude);
  }
  fp.mix_double(fail.mtbf_s);
  fp.mix_double(fail.mttr_s);
  fp.mix(fail.seed);
  fp.mix(static_cast<std::uint64_t>(fail.recovery.policy));
  fp.mix_double(fail.recovery.checkpoint_period_s);
  fp.mix_double(fail.recovery.checkpoint_tax);
  fp.mix(static_cast<std::uint64_t>(fail.recovery.max_retries));
  // Correlated failure domains: the domain processes and the full rack →
  // PDU/ToR map are part of the run's identity — a snapshot from a
  // different topology must be refused.
  fp.mix_double(fail.domains.pdu_mtbf_s);
  fp.mix_double(fail.domains.pdu_mttr_s);
  fp.mix_double(fail.domains.tor_mtbf_s);
  fp.mix_double(fail.domains.tor_mttr_s);
  fp.mix(fail.topology != nullptr ? 1 : 0);
  if (fail.topology != nullptr) {
    const Topology& topo = *fail.topology;
    fp.mix(static_cast<std::uint64_t>(topo.rack_count()));
    for (const RackSpec& rack : topo.racks()) {
      fp.mix(static_cast<std::uint64_t>(rack.pdu));
      fp.mix(static_cast<std::uint64_t>(rack.tor));
      fp.mix(rack.servers.size());
      for (const int server : rack.servers) {
        fp.mix(static_cast<std::uint64_t>(server));
      }
    }
  }
  fp.mix(static_cast<std::uint64_t>(cloud.backfill_window));
  fp.mix(cloud.record_completions ? 1 : 0);
  fp.mix(db_count);
  fp.mix_string(allocator_name);
  return fp.value();
}

/// Throws the typed mismatch error resume() promises.
void require_snapshot(bool condition, const char* what) {
  if (!condition) {
    throw persist::SnapshotMismatchError(
        std::string("snapshot does not fit this run: ") + what);
  }
}

}  // namespace

std::vector<core::ServerState> restored_server_states(
    const persist::SimSnapshot& snapshot, const CloudConfig& cloud) {
  std::vector<core::ServerState> states;
  states.reserve(snapshot.servers.size());
  for (std::size_t s = 0; s < snapshot.servers.size(); ++s) {
    const persist::ServerPersistState& server = snapshot.servers[s];
    if (cloud.failure.enabled && (server.down || server.isolated)) {
      continue;
    }
    const int hardware = s < cloud.hardware.size() ? cloud.hardware[s] : 0;
    states.push_back(core::ServerState{static_cast<int>(s), server.alloc,
                                       server.powered, hardware});
  }
  return states;
}

SimMetrics Simulator::run(const trace::PreparedWorkload& workload,
                          const core::Allocator& allocator,
                          const IntervalObserver& observer) const {
  return run_impl(workload, allocator, observer, nullptr);
}

SimMetrics Simulator::resume(const trace::PreparedWorkload& workload,
                             const core::Allocator& allocator,
                             const persist::SimSnapshot& snapshot,
                             const IntervalObserver& observer) const {
  return run_impl(workload, allocator, observer, &snapshot);
}

SimMetrics Simulator::run_impl(const trace::PreparedWorkload& workload,
                               const core::Allocator& allocator,
                               const IntervalObserver& observer,
                               const persist::SimSnapshot* restore) const {
  AEVA_REQUIRE(!workload.jobs.empty(), "empty workload");
  const auto& jobs = workload.jobs;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    AEVA_REQUIRE(jobs[i].submit_s >= jobs[i - 1].submit_s,
                 "workload not sorted by submission time at job ", i);
  }

  const auto n_servers = static_cast<std::size_t>(cloud_.server_count);
  FleetSoA fleet(n_servers, cloud_.hardware);
  std::vector<RunningVm> running;  // hoisted per-run, grows to peak then flat
  FcfsQueue queue;  // indices into jobs, FCFS with O(1) amortized erase

  // Reset-not-freed scratch (docs/ARCHITECTURE.md "Event-loop hot path"):
  // per-call helpers reset the pool on entry and take typed buffers whose
  // capacity survives across events, so a warm event performs no heap
  // allocation. Rule: a pool-using helper is never called while its caller
  // holds pool buffers. Buffers that must outlive helper calls (the due-
  // fault batch, the observer's power vector) are hoisted instead.
  util::ScratchPool scratch;
  std::vector<FailureEvent> due_faults;
  std::vector<double> observer_power;
  core::AllocationResult alloc_result;  // reused across allocate_into calls

  // --- fault injection & recovery (failure.hpp) ---------------------------
  const FailureConfig& fail = cloud_.failure;
  fail.validate(cloud_.server_count);
  const bool fail_on = fail.enabled;
  const bool ckpt_on =
      fail_on && fail.recovery.policy == RecoveryPolicy::kCheckpointRestart;
  std::deque<RestartVm> restarts;  // per-run; lost VMs await re-placement
  double useful_work_s = 0.0;      // solo-equivalent seconds of completed VMs

  // Workflow dependencies (JobRequest::depends_on): job ids resolve
  // through a flat sorted (id, index) table, binary-searched on the
  // arrival path — no node-based map. Built once per run; duplicate ids
  // resolve to the last index, matching the map semantics this replaces.
  std::vector<std::pair<long long, std::size_t>> index_of_id;
  index_of_id.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    index_of_id.emplace_back(jobs[i].id, i);
  }
  std::sort(index_of_id.begin(), index_of_id.end());
  const auto find_job_index = [&](long long id) -> const std::size_t* {
    const auto it = std::upper_bound(
        index_of_id.begin(), index_of_id.end(), id,
        [](long long value, const std::pair<long long, std::size_t>& entry) {
          return value < entry.first;
        });
    if (it == index_of_id.begin() || std::prev(it)->first != id) {
      return nullptr;
    }
    return &std::prev(it)->second;
  };
  // Per-run job bookkeeping, all sized once up front.
  std::vector<int> vms_left(jobs.size());
  std::vector<bool> job_done(jobs.size(), false);
  std::vector<std::vector<std::size_t>> dependents(jobs.size());
  std::size_t parked = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    vms_left[i] = jobs[i].vm_count;
    if (jobs[i].depends_on != 0) {
      const std::size_t* dep = find_job_index(jobs[i].depends_on);
      AEVA_REQUIRE(dep != nullptr, "job ", jobs[i].id,
                   " depends on unknown job ", jobs[i].depends_on);
      AEVA_REQUIRE(*dep < i, "job ", jobs[i].id,
                   " depends on a later job ", jobs[i].depends_on);
    }
  }

  SimMetrics metrics;
  metrics.jobs = jobs.size();
  util::RunningStats response_stats;
  util::RunningStats wait_stats;      // one sample per placed VM
  util::RunningStats job_wait_stats;  // one sample per admitted job

  const double t0 = jobs.front().submit_s;
  double now = t0;
  std::size_t next_job = 0;
  std::int64_t next_vm_id = 1;
  double busy_server_time = 0.0;  // ∫ busy_count dt

  // --- observability (docs/OBSERVABILITY.md) ------------------------------
  // Handles resolved once per run; all null without a session, so every
  // instrumentation site below is a single pointer test when disabled.
  struct SimObs {
    obs::Counter* loop_events = nullptr;
    obs::Counter* ev_arrival = nullptr;
    obs::Counter* ev_completion = nullptr;
    obs::Counter* ev_transfer = nullptr;
    obs::Counter* ev_sweep = nullptr;
    obs::Counter* ev_failure = nullptr;
    obs::Counter* ev_window = nullptr;
    obs::Counter* intervals = nullptr;
    obs::Counter* admissions = nullptr;
    obs::Counter* admission_failures = nullptr;
    obs::Counter* backfills = nullptr;
    obs::Counter* restarts_placed = nullptr;
    obs::Counter* restart_failures = nullptr;
    obs::Counter* db_lookups = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* degrades = nullptr;
    obs::Counter* brownouts = nullptr;
    obs::Counter* pdu_faults = nullptr;
    obs::Counter* tor_faults = nullptr;
    obs::Counter* abandoned = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Counter* snapshot_bytes = nullptr;
    obs::Histogram* queue_depth = nullptr;
    obs::Histogram* interval_s = nullptr;
    obs::TraceLog* trace = nullptr;
  } sobs;
  if (cloud_.obs != nullptr) {
    obs::MetricsRegistry& reg = cloud_.obs->metrics();
    sobs.loop_events = &reg.counter("sim.events");
    sobs.ev_arrival = &reg.counter("sim.events.arrival");
    sobs.ev_completion = &reg.counter("sim.events.completion");
    sobs.ev_transfer = &reg.counter("sim.events.transfer");
    sobs.ev_sweep = &reg.counter("sim.events.sweep");
    sobs.ev_failure = &reg.counter("sim.events.failure");
    sobs.ev_window = &reg.counter("sim.events.window");
    sobs.intervals = &reg.counter("sim.intervals");
    sobs.admissions = &reg.counter("sim.admissions");
    sobs.admission_failures = &reg.counter("sim.admission_failures");
    sobs.backfills = &reg.counter("sim.backfills");
    sobs.restarts_placed = &reg.counter("sim.vm_restarts");
    sobs.restart_failures = &reg.counter("sim.restart_failures");
    sobs.db_lookups = &reg.counter("sim.modeldb.lookups");
    sobs.crashes = &reg.counter("sim.failures.crash");
    sobs.degrades = &reg.counter("sim.failures.degrade");
    sobs.brownouts = &reg.counter("sim.failures.brownout");
    sobs.pdu_faults = &reg.counter("sim.failures.pdu");
    sobs.tor_faults = &reg.counter("sim.failures.tor");
    sobs.abandoned = &reg.counter("sim.vms_abandoned");
    sobs.snapshots = &reg.counter("sim.snapshots");
    sobs.snapshot_bytes = &reg.counter("sim.snapshot_bytes");
    sobs.queue_depth = &reg.histogram(
        "sim.queue_depth", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    sobs.interval_s = &reg.histogram(
        "sim.interval_s", {1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 14400.0});
    sobs.trace = &cloud_.obs->trace();
  }
  // Run-level span: brackets the whole event loop on the simulated
  // timeline; its real_us is the wall-clock cost of the run.
  obs::Span run_span(sobs.trace, "run", "sim", t0);

  FailureSchedule failure_schedule(fail, cloud_.server_count, t0);

  // Correlated failure domains (failure.hpp "Correlated domain faults").
  // Per-switch heal instants close event intervals exactly like repair
  // windows do; +inf means healthy. The vector stays empty unless a ToR
  // fault can actually occur — an inert topology must leave the run (and
  // its snapshot bytes) identical to the topology-free model. The
  // blast-radius sum is the run-local accumulator behind
  // SimMetrics::blast_radius_vms_mean and travels through snapshots as
  // MetricsState::blast_radius_vm_sum.
  const Topology* topo = fail_on ? fail.topology : nullptr;
  const bool tor_possible =
      topo != nullptr &&
      (fail.domains.tor_mtbf_s > 0.0 ||
       std::any_of(fail.script.begin(), fail.script.end(),
                   [](const FailureEvent& event) {
                     return event.kind == FailureKind::kTorFault;
                   }));
  // Hoisted per-run state, sized once at setup; events only mutate it.
  std::vector<double> tor_heal_s(
      tor_possible ? static_cast<std::size_t>(topo->tor_count()) : 0, kInf);
  double blast_radius_vm_sum = 0.0;

  // Hardware class of each server (class 0 when no map is configured).
  const auto hardware_of = [&](std::size_t s) { return fleet.hardware(s); };

  // Lost/useful work is measured in canonical solo-time-equivalent seconds
  // (class-0 base record), so the metric is placement-independent.
  const auto solo_time = [&](ProfileClass profile) {
    return db_of(0).base().of(profile).solo_time_s;
  };

  // Refreshes the cached record-derived quantities of one server: its mean
  // power and the progress rate of every VM it hosts.
  const auto refresh_server = [&](int server_id) {
    const auto s = static_cast<std::size_t>(server_id);
    if (fleet.alloc[s].total() == 0) {
      fleet.busy_power_w[s] = 0.0;
      return;
    }
    // Rack-isolated servers (ToR fault): residents stall — progress frozen
    // at rate zero, released on heal — while the machine idles at its
    // floor draw. Completion scans stay NaN-free: a stalled VM's
    // remaining/rate is +inf, never 0/0, because completed VMs (remaining
    // <= kEps) are removed before the next event scan.
    if (fail_on && fleet.isolated[s] != 0) {
      fleet.busy_power_w[s] = cloud_.idle_power_w;
      for (RunningVm& vm : running) {
        if (vm.server == server_id) {
          vm.rate = 0.0;
        }
      }
      return;
    }
    const modeldb::Record rec = db_of(hardware_of(s)).estimate(fleet.alloc[s]);
    if (sobs.db_lookups != nullptr) {
      sobs.db_lookups->add();
    }
    fleet.busy_power_w[s] = std::max(rec.avg_power_w(), cloud_.idle_power_w);
    // Failure modifiers: transient degradation windows slow every resident
    // VM; a brownout clamps the server's draw and slows VMs by the same
    // factor (DVFS-style); checkpointing VMs pay the checkpoint-I/O tax.
    double fail_mult = 1.0;
    if (fail_on) {
      if (now < fleet.degrade_until[s]) {
        fail_mult *= fleet.degrade_mult[s];
      }
      if (now < fleet.brownout_until[s] &&
          fleet.busy_power_w[s] > fleet.brownout_cap_w[s]) {
        fail_mult *= fleet.brownout_cap_w[s] / fleet.busy_power_w[s];
        fleet.busy_power_w[s] = fleet.brownout_cap_w[s];
      }
      if (ckpt_on) {
        fail_mult *= 1.0 - fail.recovery.checkpoint_tax;
      }
    }
    for (RunningVm& vm : running) {
      if (vm.server == server_id) {
        const double est = rec.time_of(vm.profile);
        AEVA_INVARIANT(est > 0.0, "non-positive estimated time");
        vm.rate = 1.0 / (vm.runtime_scale * est);
        if (vm.migrating) {
          vm.rate *= cloud_.migration.degradation;
        }
        if (fail_mult != 1.0) {
          vm.rate *= fail_mult;
        }
      }
    }
  };

  // The allocator view of the cluster is fleet.view(): crashed servers are
  // masked, so every strategy (and every decorator) is failure-aware
  // without knowing about failures. The view is maintained incrementally —
  // no per-call materialization (bench/event_loop_throughput gates this).

  // Workflow release: one VM of job `j` will never run again (completed or
  // abandoned); when it was the last, dependents unpark.
  const auto retire_vm_of_job = [&](std::size_t j) {
    if (--vms_left[j] == 0) {
      job_done[j] = true;
      for (const std::size_t dependent : dependents[j]) {
        queue.push_back(dependent);
        --parked;
      }
      dependents[j].clear();
    }
  };

  // Attempts to place one queued job (addressed by queue position); on
  // success the job is admitted and removed from the queue.
  const auto try_admit = [&](std::size_t queue_pos) -> bool {
    {
      const std::size_t j = queue[queue_pos];
      const trace::JobRequest& job = jobs[j];
      scratch.reset();
      std::vector<VmRequest>& request = scratch.take<VmRequest>();
      request.reserve(static_cast<std::size_t>(job.vm_count));
      // Per-type execution-time QoS: the allocator may only use mixes whose
      // estimated execution time stays within the contention cap. Database
      // estimates are in canonical-app time units, so the bound is too.
      const double exec_bound =
          job.max_exec_stretch *
          db_of(0).base().of(job.profile).solo_time_s;
      for (int k = 0; k < job.vm_count; ++k) {
        VmRequest vm;
        vm.id = next_vm_id + k;
        vm.profile = job.profile;
        vm.max_exec_time_s = exec_bound > 0.0 ? exec_bound : kInf;
        request.push_back(vm);
      }
      // The span's real_us measures the allocator's wall-clock latency for
      // this admission attempt; its simulated duration is zero (admission
      // is instantaneous in the model).
      obs::Span span(sobs.trace, "admit", "sim", now);
      allocator.allocate_into(request, fleet.view(), alloc_result);
      const core::AllocationResult& result = alloc_result;
      if (!result.complete) {
        span.cancel();  // count the miss, don't trace it (volume)
        if (sobs.admission_failures != nullptr) {
          sobs.admission_failures->add();
        }
        ++metrics.rejects_by_reason[static_cast<std::size_t>(
            result.outcome.reason)];
        return false;  // no room (or no QoS-feasible room) right now
      }
      AEVA_INVARIANT(result.placements.size() == request.size(),
                  "allocator placed ", result.placements.size(), " of ",
                  request.size(), " VMs");
      if (result.outcome.path == core::AllocationPath::kFallbackFirstFit) {
        ++metrics.fallback_allocations;
      }
      for (const Placement& placement : result.placements) {
        AEVA_REQUIRE(placement.server_id >= 0 &&
                         placement.server_id < cloud_.server_count,
                     "allocator returned invalid server ",
                     placement.server_id);
        RunningVm vm;
        vm.vm_id = placement.vm_id;
        vm.job_index = j;
        vm.profile = job.profile;
        vm.runtime_scale = job.runtime_scale;
        vm.server = placement.server_id;
        vm.start_s = now;
        if (ckpt_on) {
          vm.next_ckpt_s = now + fail.recovery.checkpoint_period_s;
        }
        running.push_back(vm);
        fleet.add_vm(placement.server_id, job.profile);
        wait_stats.add(now - job.submit_s);
      }
      job_wait_stats.add(now - job.submit_s);
      next_vm_id += job.vm_count;
      // Refresh every touched server once.
      std::vector<int>& touched = scratch.take<int>();
      for (const Placement& placement : result.placements) {
        touched.push_back(placement.server_id);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (const int s : touched) {
        refresh_server(s);
      }
      queue.erase_at(queue_pos);
      if (sobs.admissions != nullptr) {
        sobs.admissions->add();
        span.arg("job", std::to_string(job.id));
        span.arg("vms", std::to_string(job.vm_count));
        span.arg("servers", std::to_string(touched.size()));
      }
      span.close(now);
      return true;
    }
  };

  // Re-places the head of the restart queue (one VM lost to a crash).
  // Restarts go through the regular allocator, so recovery competes for
  // capacity under the same strategy and QoS bounds as fresh admissions.
  const auto try_restart = [&]() -> bool {
    const RestartVm& restart = restarts.front();
    const trace::JobRequest& job = jobs[restart.job_index];
    VmRequest request;
    request.id = next_vm_id;
    request.profile = job.profile;
    const double exec_bound =
        job.max_exec_stretch * db_of(0).base().of(job.profile).solo_time_s;
    request.max_exec_time_s = exec_bound > 0.0 ? exec_bound : kInf;
    obs::Span span(sobs.trace, "restart", "failure", now);
    allocator.allocate_into(std::span<const VmRequest>(&request, 1),
                            fleet.view(), alloc_result);
    const core::AllocationResult& result = alloc_result;
    if (!result.complete) {
      span.cancel();
      if (sobs.restart_failures != nullptr) {
        sobs.restart_failures->add();
      }
      ++metrics.rejects_by_reason[static_cast<std::size_t>(
          result.outcome.reason)];
      return false;
    }
    AEVA_INVARIANT(result.placements.size() == 1,
                   "allocator placed ", result.placements.size(),
                   " of 1 restart VM");
    if (result.outcome.path == core::AllocationPath::kFallbackFirstFit) {
      ++metrics.fallback_allocations;
    }
    const Placement& placement = result.placements.front();
    AEVA_REQUIRE(placement.server_id >= 0 &&
                     placement.server_id < cloud_.server_count,
                 "allocator returned invalid server ", placement.server_id);
    RunningVm vm;
    vm.vm_id = next_vm_id++;
    vm.job_index = restart.job_index;
    vm.profile = job.profile;
    vm.runtime_scale = job.runtime_scale;
    vm.server = placement.server_id;
    vm.start_s = now;
    vm.remaining = 1.0 - restart.resume_done;
    vm.retries = restart.retries;
    vm.ckpt_done = restart.resume_done;
    if (ckpt_on) {
      vm.next_ckpt_s = now + fail.recovery.checkpoint_period_s;
    }
    running.push_back(vm);
    fleet.add_vm(placement.server_id, job.profile);
    refresh_server(placement.server_id);
    ++metrics.vm_restarts;
    if (sobs.restarts_placed != nullptr) {
      sobs.restarts_placed->add();
      span.arg("job", std::to_string(job.id));
      span.arg("server", std::to_string(placement.server_id));
      span.arg("retries", std::to_string(vm.retries));
    }
    span.close(now);
    restarts.pop_front();
    return true;
  };

  // Admits queued jobs: recovery first (lost VMs are the oldest admitted
  // work), then FCFS; when the head cannot be placed and backfilling is
  // enabled, up to `backfill_window` younger jobs may jump ahead
  // (aggressive backfill, no reservations).
  const auto drain_queue = [&] {
    while (!restarts.empty() && try_restart()) {
    }
    while (!queue.empty()) {
      if (try_admit(0)) {
        continue;
      }
      bool backfilled = false;
      const auto window =
          static_cast<std::size_t>(std::max(0, cloud_.backfill_window));
      for (std::size_t p = 1; p < queue.size() && p <= window; ++p) {
        if (try_admit(p)) {
          backfilled = true;
          if (sobs.backfills != nullptr) {
            sobs.backfills->add();
          }
          break;
        }
      }
      if (!backfilled) {
        return;
      }
    }
  };

  // --- reactive consolidation (live migration) ----------------------------
  const MigrationConfig& mig = cloud_.migration;
  if (mig.enabled) {
    AEVA_REQUIRE(mig.check_interval_s > 0.0, "sweep interval must be positive");
    AEVA_REQUIRE(mig.evict_below_vms >= 1, "eviction threshold must be >= 1");
    AEVA_REQUIRE(mig.max_concurrent >= 1, "need at least one migration slot");
    AEVA_REQUIRE(mig.transfer_mbps > 0.0, "transfer bandwidth must be positive");
    AEVA_REQUIRE(mig.degradation > 0.0 && mig.degradation <= 1.0,
                 "degradation factor out of (0, 1]");
    AEVA_REQUIRE(mig.downtime_work_fraction >= 0.0 &&
                     mig.downtime_work_fraction < 1.0,
                 "downtime work fraction out of [0, 1)");
    if (mig.trigger == MigrationConfig::Trigger::kThermal) {
      AEVA_REQUIRE(mig.thermal_map != nullptr,
                   "thermal trigger requires a thermal map");
      AEVA_REQUIRE(mig.thermal_map->server_count() >= cloud_.server_count,
                   "thermal map covers ", mig.thermal_map->server_count(),
                   " servers, cloud has ", cloud_.server_count);
    }
  }
  double next_sweep = mig.enabled ? t0 + mig.check_interval_s : kInf;

  // Memory copied per migrating VM: the class's canonical footprint.
  const auto transfer_seconds = [&](ProfileClass profile) {
    return workload::canonical_app(profile).mem_footprint_mb /
           mig.transfer_mbps;
  };

  // Consolidation sweep: evict the VMs of lightly loaded servers onto
  // busier compatible machines so the sources can power down.
  const auto consolidation_sweep = [&] {
    int in_flight = 0;
    for (const RunningVm& vm : running) {
      in_flight += vm.migrating ? 1 : 0;
    }
    scratch.reset();
    // Servers already involved in a transfer are off limits.
    std::vector<std::uint8_t>& frozen = scratch.take<std::uint8_t>();
    frozen.assign(n_servers, 0);
    for (const RunningVm& vm : running) {
      if (vm.migrating) {
        frozen[static_cast<std::size_t>(vm.server)] = 1;
        frozen[static_cast<std::size_t>(vm.dest_server)] = 1;
      }
    }
    std::vector<std::pair<std::size_t, std::size_t>>& plan =
        scratch.take<std::pair<std::size_t, std::size_t>>();  // vm, dest
    std::vector<ClassCounts>& tentative = scratch.take<ClassCounts>();
    for (std::size_t src = 0; src < n_servers; ++src) {
      if (in_flight >= mig.max_concurrent) {
        break;
      }
      const int load = fleet.alloc[src].total();
      if (load == 0 || load > mig.evict_below_vms || frozen[src] != 0 ||
          (fail_on && fleet.isolated[src] != 0)) {
        continue;  // an isolated rack cannot drain (its VMs are stalled)
      }
      // Tentatively rehome every VM of this server.
      plan.clear();
      tentative.assign(fleet.alloc.begin(), fleet.alloc.end());
      bool ok = true;
      for (std::size_t v = 0; v < running.size() && ok; ++v) {
        const RunningVm& vm = running[v];
        if (vm.server != static_cast<int>(src) || vm.migrating) {
          if (vm.server == static_cast<int>(src) && vm.migrating) {
            ok = false;  // server already draining
          }
          continue;
        }
        bool placed = false;
        for (std::size_t dst = 0; dst < n_servers && !placed; ++dst) {
          if (dst == src || frozen[dst] != 0 ||
              (fail_on &&
               (fleet.down[dst] != 0 || fleet.isolated[dst] != 0))) {
            continue;
          }
          // Consolidate toward equally-or-more-loaded busy machines; an
          // empty destination would just move the problem, and a lighter
          // one would invert it (ping-pong guard).
          if (tentative[dst].total() == 0 ||
              tentative[dst].total() < fleet.alloc[src].total()) {
            continue;
          }
          ClassCounts combined = tentative[dst];
          ++combined.of(vm.profile);
          const core::CostModel model(db_of(hardware_of(dst)));
          if (!model.feasible(combined)) {
            continue;
          }
          plan.emplace_back(v, dst);
          tentative[dst] = combined;
          placed = true;
        }
        ok = placed;
      }
      if (!ok || plan.empty() ||
          in_flight + static_cast<int>(plan.size()) > mig.max_concurrent) {
        continue;
      }
      // Commit: reserve destinations and start the transfers.
      for (const auto& [v, dst] : plan) {
        RunningVm& vm = running[v];
        vm.migrating = true;
        vm.dest_server = static_cast<int>(dst);
        vm.migration_done_s = now + transfer_seconds(vm.profile);
        vm.remaining += mig.downtime_work_fraction;  // stop-and-copy loss
        fleet.add_vm(static_cast<int>(dst), vm.profile);
        frozen[dst] = 1;
        ++in_flight;
        ++metrics.migrations;
        metrics.migration_transfer_s += transfer_seconds(vm.profile);
        refresh_server(static_cast<int>(dst));
      }
      frozen[src] = 1;
      refresh_server(static_cast<int>(src));  // degradation on the movers
    }
  };

  // Reactive thermal sweep ([3]): servers over the inlet redline shed one
  // VM each toward the coolest feasible machine.
  const auto thermal_sweep = [&] {
    int in_flight = 0;
    for (const RunningVm& vm : running) {
      in_flight += vm.migrating ? 1 : 0;
    }
    scratch.reset();
    std::vector<std::uint8_t>& frozen = scratch.take<std::uint8_t>();
    frozen.assign(n_servers, 0);
    for (const RunningVm& vm : running) {
      if (vm.migrating) {
        frozen[static_cast<std::size_t>(vm.server)] = 1;
        frozen[static_cast<std::size_t>(vm.dest_server)] = 1;
      }
    }
    // Instantaneous power picture → predicted inlets.
    std::vector<double>& power = scratch.take<double>();
    power.assign(static_cast<std::size_t>(mig.thermal_map->server_count()),
                 0.0);
    for (std::size_t s = 0; s < n_servers; ++s) {
      power[s] = fleet.alloc[s].total() > 0 ? fleet.busy_power_w[s] : 0.0;
    }
    // Returned by value on the (cold) migration cadence, not per event.
    const std::vector<double> inlets = mig.thermal_map->inlet_temps(power);
    const double redline = mig.thermal_map->config().inlet_limit_c;

    // Hottest offenders first.
    std::vector<std::size_t>& order = scratch.take<std::size_t>();
    for (std::size_t s = 0; s < n_servers; ++s) {
      if (inlets[s] > redline && fleet.alloc[s].total() > 0 &&
          frozen[s] == 0 && !(fail_on && fleet.isolated[s] != 0)) {
        order.push_back(s);
      }
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return inlets[a] > inlets[b];
    });

    for (const std::size_t src : order) {
      if (in_flight >= mig.max_concurrent) {
        break;
      }
      // First resident, non-migrating VM of the hot server.
      RunningVm* mover = nullptr;
      for (RunningVm& vm : running) {
        if (vm.server == static_cast<int>(src) && !vm.migrating) {
          mover = &vm;
          break;
        }
      }
      if (mover == nullptr) {
        continue;
      }
      // Coolest feasible destination comfortably under the redline.
      std::size_t best = n_servers;
      for (std::size_t dst = 0; dst < n_servers; ++dst) {
        if (dst == src || frozen[dst] != 0 || inlets[dst] > redline - 1.0 ||
            (fail_on &&
             (fleet.down[dst] != 0 || fleet.isolated[dst] != 0))) {
          continue;
        }
        ClassCounts combined = fleet.alloc[dst];
        ++combined.of(mover->profile);
        const core::CostModel model(db_of(hardware_of(dst)));
        if (!model.feasible(combined)) {
          continue;
        }
        if (best == n_servers || inlets[dst] < inlets[best]) {
          best = dst;
        }
      }
      if (best == n_servers) {
        continue;
      }
      mover->migrating = true;
      mover->dest_server = static_cast<int>(best);
      mover->migration_done_s = now + transfer_seconds(mover->profile);
      mover->remaining += mig.downtime_work_fraction;
      fleet.add_vm(static_cast<int>(best), mover->profile);
      frozen[best] = 1;
      frozen[src] = 1;
      ++in_flight;
      ++metrics.migrations;
      metrics.migration_transfer_s += transfer_seconds(mover->profile);
      refresh_server(static_cast<int>(best));
      refresh_server(static_cast<int>(src));
    }
  };

  // Instant trace event for a fault that actually applied (guard call
  // sites on sobs.trace so the disabled path builds no strings).
  const auto trace_fault = [&](const char* kind, const FailureEvent& event) {
    obs::TraceEvent record;
    record.name = kind;
    record.cat = "failure";
    record.phase = 'i';
    record.ts_sim_s = now;
    record.args.emplace_back("server", std::to_string(event.server));
    record.args.emplace_back("duration_s", std::to_string(event.duration_s));
    sobs.trace->record(std::move(record));
  };

  // Crashes one server: loses every resident VM, aborts inbound transfers
  // cleanly (the VM never left its source), and masks the server until
  // `now + duration_s`. Shared by plain kCrash events and by each server
  // of a PDU feed fault. Resets the scratch pool — callers must not hold
  // pool buffers across a call (docs/ARCHITECTURE.md scratch rule).
  const auto apply_server_crash = [&](int server, double duration_s) {
    const auto sv = static_cast<std::size_t>(server);
    ++metrics.failures;
    if (sobs.crashes != nullptr) {
      sobs.crashes->add();
    }
    fleet.crash(server);  // masks, powers off (cold wake-up premium)
    fleet.repair_s[sv] = now + duration_s;
    fleet.degrade_until[sv] = -kInf;
    fleet.degrade_mult[sv] = 1.0;
    fleet.brownout_until[sv] = -kInf;
    fleet.brownout_cap_w[sv] = kInf;
    failure_schedule.on_crash(server);

    scratch.reset();
    std::vector<int>& touched = scratch.take<int>();
    // Inbound transfers abort cleanly: the VM stays whole on its source,
    // the destination reservation is dropped, the in-flight degradation
    // ends, and the stop-and-copy loss is refunded — the downtime never
    // happened, so charging it would double-account the abort.
    for (RunningVm& vm : running) {
      if (vm.migrating && vm.dest_server == server) {
        vm.migrating = false;
        vm.dest_server = -1;
        vm.remaining -= mig.downtime_work_fraction;
        touched.push_back(vm.server);
      }
    }
    // Resident VMs — including outbound movers, whose copy dies with the
    // source — are lost. Work beyond the resume point is destroyed.
    for (std::size_t i = 0; i < running.size();) {
      RunningVm& vm = running[i];
      if (vm.server != server) {
        ++i;
        continue;
      }
      if (vm.migrating) {
        fleet.remove_vm(vm.dest_server, vm.profile);
        touched.push_back(vm.dest_server);
      }
      const double done = std::max(1.0 - vm.remaining, 0.0);
      const double resume = ckpt_on ? std::min(vm.ckpt_done, done) : 0.0;
      metrics.lost_work_s +=
          (done - resume) * vm.runtime_scale * solo_time(vm.profile);
      if (fail.recovery.policy == RecoveryPolicy::kAbandonAfterRetries &&
          vm.retries >= fail.recovery.max_retries) {
        ++metrics.vms_abandoned;
        if (sobs.abandoned != nullptr) {
          sobs.abandoned->add();
        }
        retire_vm_of_job(vm.job_index);  // never re-runs; free dependents
      } else {
        restarts.push_back(RestartVm{vm.job_index, resume, vm.retries + 1});
      }
      running[i] = running.back();
      running.pop_back();
    }
    // Direct writes are legal here: the crashed server is masked from the
    // allocator view, so no view refresh is owed (see FleetSoA).
    fleet.alloc[sv] = ClassCounts{};
    fleet.busy_power_w[sv] = 0.0;
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (const int t : touched) {
      if (t != server) {
        refresh_server(t);
      }
    }
  };

  // Applies one due fault. Crashes lose every resident VM and mask the
  // server until repair; degrade/brownout just open their windows; PDU
  // faults crash every server on the feed in one correlated event; ToR
  // faults isolate a rack — residents stall in place, progress frozen,
  // and the whole rack rejoins the view when the switch heals.
  const auto apply_failure = [&](const FailureEvent& event) {
    const auto sv = static_cast<std::size_t>(event.server);
    if (event.kind == FailureKind::kDegrade) {
      if (fleet.down[sv] != 0) {
        return;  // a masked server cannot degrade further
      }
      fleet.degrade_until[sv] = now + event.duration_s;
      fleet.degrade_mult[sv] = event.magnitude;
      refresh_server(event.server);
      if (sobs.degrades != nullptr) {
        sobs.degrades->add();
        trace_fault("degrade", event);
      }
      return;
    }
    if (event.kind == FailureKind::kBrownout) {
      if (fleet.down[sv] != 0) {
        return;
      }
      fleet.brownout_until[sv] = now + event.duration_s;
      fleet.brownout_cap_w[sv] = event.magnitude;
      refresh_server(event.server);
      if (sobs.brownouts != nullptr) {
        sobs.brownouts->add();
        trace_fault("brownout", event);
      }
      return;
    }
    if (event.kind == FailureKind::kPduFault) {
      // event.server is the feed id; validate() guarantees a topology.
      ++metrics.correlated_failures;
      if (sobs.pdu_faults != nullptr) {
        sobs.pdu_faults->add();
        trace_fault("pdu", event);
      }
      // Blast radius: every VM resident on the feed at the fault instant.
      // (Residents only exist on up servers, so no down-mask is needed.)
      std::size_t blast = 0;
      for (const RunningVm& vm : running) {
        if (topo->pdu_of(vm.server) == event.server) {
          ++blast;
        }
      }
      blast_radius_vm_sum += static_cast<double>(blast);
      metrics.blast_radius_vms_max =
          std::max(metrics.blast_radius_vms_max, blast);
      // Expand to per-server crashes in ascending id order (the canonical
      // expansion order — bit-stable replay depends on it). Servers that
      // are already down keep their standing repair time.
      const double lost_before = metrics.lost_work_s;
      for (const int server : topo->servers_on_pdu(event.server)) {
        if (fleet.down[static_cast<std::size_t>(server)] != 0) {
          continue;
        }
        apply_server_crash(server, event.duration_s);
      }
      metrics.lost_work_correlated_s += metrics.lost_work_s - lost_before;
      return;
    }
    if (event.kind == FailureKind::kTorFault) {
      // event.server is the switch id. Residents stall rather than die,
      // so nothing is charged to lost work; the cost is frozen progress.
      ++metrics.correlated_failures;
      if (sobs.tor_faults != nullptr) {
        sobs.tor_faults->add();
        trace_fault("tor", event);
      }
      const double heal = now + event.duration_s;
      double& heal_slot = tor_heal_s[static_cast<std::size_t>(event.server)];
      if (heal_slot == kInf || heal_slot < heal) {
        heal_slot = heal;  // overlapping scripted windows extend the outage
      }
      scratch.reset();
      std::vector<int>& touched = scratch.take<int>();
      // In-flight transfers touching the rack abort cleanly, exactly as a
      // crash aborts inbound copies: the VM stays whole on its source, the
      // reservation is dropped, the stop-and-copy loss is refunded.
      for (RunningVm& vm : running) {
        if (!vm.migrating) {
          continue;
        }
        if (topo->tor_of(vm.server) != event.server &&
            topo->tor_of(vm.dest_server) != event.server) {
          continue;
        }
        fleet.remove_vm(vm.dest_server, vm.profile);
        touched.push_back(vm.dest_server);
        touched.push_back(vm.server);
        vm.migrating = false;
        vm.dest_server = -1;
        vm.remaining -= mig.downtime_work_fraction;
      }
      std::size_t blast = 0;
      for (const RunningVm& vm : running) {
        if (topo->tor_of(vm.server) == event.server) {
          ++blast;
        }
      }
      blast_radius_vm_sum += static_cast<double>(blast);
      metrics.blast_radius_vms_max =
          std::max(metrics.blast_radius_vms_max, blast);
      // Mask the whole rack (down servers too: a repair inside the window
      // stays masked until the switch heals — view membership is
      // !down && !isolated throughout).
      for (const int server : topo->servers_on_tor(event.server)) {
        if (fleet.isolated[static_cast<std::size_t>(server)] == 0) {
          fleet.isolate(server);
        }
      }
      // Stall residents (rate 0, idle draw) on the isolated servers, then
      // refresh outside servers whose transfers were just dropped.
      for (const int server : topo->servers_on_tor(event.server)) {
        if (fleet.down[static_cast<std::size_t>(server)] == 0) {
          refresh_server(server);
        }
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      for (const int t : touched) {
        if (topo->tor_of(t) != event.server) {
          refresh_server(t);
        }
      }
      return;
    }
    // Crash.
    if (fleet.down[sv] != 0) {
      return;  // scripted overlap with a sampled outage: already masked
    }
    if (sobs.crashes != nullptr) {
      trace_fault("crash", event);
    }
    apply_server_crash(event.server, event.duration_s);
  };

  std::size_t guard = 0;
  const std::size_t max_events =
      jobs.size() * 4 +
      static_cast<std::size_t>(workload.total_vms) * 6 + (1u << 17) +
      (fail_on ? fail.script.size() * 4 + (1u << 20) : 0u);

  // --- process-level durability (docs/RESILIENCE.md) ----------------------
  const SnapshotConfig& snap = cloud_.snapshot;
  const bool snap_on =
      snap.every_s > 0.0 && (!snap.path.empty() || snap.hook != nullptr);
  double next_snapshot_due = snap_on ? t0 + snap.every_s : kInf;
  std::uint64_t workload_fp = 0;
  std::uint64_t config_fp = 0;
  if (snap_on || restore != nullptr) {
    workload_fp = fingerprint_workload(jobs);
    config_fp = fingerprint_config(cloud_, allocator.name(), dbs_.size());
  }

  // Captures the complete loop state into a persist::SimSnapshot mirror,
  // writes it atomically when a path is configured, and hands it to the
  // hook. Pure observation: nothing the rest of the loop reads changes.
  const auto capture_snapshot = [&] {
    // The span's real_us is the wall-clock cost of encoding + writing the
    // checkpoint; its simulated duration is zero (checkpointing is outside
    // the simulated model).
    obs::Span span(sobs.trace, "snapshot", "persist", now);
    persist::SimSnapshot s;
    s.workload_fingerprint = workload_fp;
    s.config_fingerprint = config_fp;
    s.t0 = t0;
    s.now = now;
    s.next_job = next_job;
    s.next_vm_id = next_vm_id;
    s.guard = guard;
    s.busy_server_time = busy_server_time;
    s.useful_work_s = useful_work_s;
    s.next_sweep = next_sweep;
    s.parked = parked;
    s.servers.reserve(n_servers);
    for (std::size_t i = 0; i < n_servers; ++i) {
      persist::ServerPersistState out;
      out.alloc = fleet.alloc[i];
      out.busy_power_w = fleet.busy_power_w[i];
      out.powered = fleet.powered[i] != 0;
      out.down = fleet.down[i] != 0;
      out.isolated = fleet.isolated[i] != 0;
      out.repair_s = fleet.repair_s[i];
      out.degrade_until = fleet.degrade_until[i];
      out.degrade_mult = fleet.degrade_mult[i];
      out.brownout_until = fleet.brownout_until[i];
      out.brownout_cap_w = fleet.brownout_cap_w[i];
      out.ever_powered = fleet.ever_powered[i] != 0;
      s.servers.push_back(out);
    }
    s.running.reserve(running.size());
    for (const RunningVm& in : running) {
      persist::VmState out;
      out.vm_id = in.vm_id;
      out.job_index = in.job_index;
      out.profile = static_cast<std::int32_t>(in.profile);
      out.runtime_scale = in.runtime_scale;
      out.server = in.server;
      out.start_s = in.start_s;
      out.remaining = in.remaining;
      out.rate = in.rate;
      out.migrating = in.migrating;
      out.migration_done_s = in.migration_done_s;
      out.dest_server = in.dest_server;
      out.retries = in.retries;
      out.ckpt_done = in.ckpt_done;
      out.next_ckpt_s = in.next_ckpt_s;
      s.running.push_back(out);
    }
    s.queue.clear();
    s.queue.reserve(queue.size());
    queue.for_each(
        [&](std::size_t j) { s.queue.push_back(static_cast<std::uint64_t>(j)); });
    s.restarts.reserve(restarts.size());
    for (const RestartVm& in : restarts) {
      s.restarts.push_back(persist::RestartState{in.job_index, in.resume_done,
                                                 in.retries});
    }
    s.vms_left.assign(vms_left.begin(), vms_left.end());
    s.job_done.reserve(job_done.size());
    for (const bool done : job_done) {
      s.job_done.push_back(done ? 1 : 0);
    }
    s.dependents.reserve(dependents.size());
    for (const std::vector<std::size_t>& deps : dependents) {
      s.dependents.emplace_back(deps.begin(), deps.end());
    }
    persist::MetricsState& m = s.metrics;
    m.makespan_s = metrics.makespan_s;
    m.energy_j = metrics.energy_j;
    m.sla_violation_pct = metrics.sla_violation_pct;
    m.jobs = metrics.jobs;
    m.vms = metrics.vms;
    m.sla_violations = metrics.sla_violations;
    m.mean_response_s = metrics.mean_response_s;
    m.mean_wait_s = metrics.mean_wait_s;
    m.mean_job_wait_s = metrics.mean_job_wait_s;
    m.mean_busy_servers = metrics.mean_busy_servers;
    m.peak_busy_servers = metrics.peak_busy_servers;
    m.servers_powered = metrics.servers_powered;
    m.migrations = metrics.migrations;
    m.migration_transfer_s = metrics.migration_transfer_s;
    m.failures = metrics.failures;
    m.vm_restarts = metrics.vm_restarts;
    m.vms_abandoned = metrics.vms_abandoned;
    m.lost_work_s = metrics.lost_work_s;
    m.goodput_fraction = metrics.goodput_fraction;
    m.fallback_allocations = metrics.fallback_allocations;
    m.correlated_failures =
        static_cast<std::uint64_t>(metrics.correlated_failures);
    m.blast_radius_vms_max =
        static_cast<std::uint64_t>(metrics.blast_radius_vms_max);
    m.blast_radius_vm_sum = blast_radius_vm_sum;
    m.lost_work_correlated_s = metrics.lost_work_correlated_s;
    m.rejects_by_reason.reserve(metrics.rejects_by_reason.size());
    for (const std::size_t tally : metrics.rejects_by_reason) {
      m.rejects_by_reason.push_back(static_cast<std::uint64_t>(tally));
    }
    m.completions.reserve(metrics.completions.size());
    for (const VmCompletion& c : metrics.completions) {
      m.completions.push_back(persist::CompletionState{
          c.vm_id, c.job_id, static_cast<std::int32_t>(c.profile), c.server,
          c.submit_s, c.start_s, c.finish_s});
    }
    s.response_stats = response_stats.state();
    s.wait_stats = wait_stats.state();
    s.job_wait_stats = job_wait_stats.state();
    const FailureSchedule::State fs = failure_schedule.state();
    s.failure.script_next = fs.script_next;
    s.failure.streams = fs.streams;
    s.failure.sampled_next = fs.sampled_next;
    s.failure.pdu_streams = fs.pdu_streams;
    s.failure.pdu_next = fs.pdu_next;
    s.failure.tor_streams = fs.tor_streams;
    s.failure.tor_next = fs.tor_next;
    s.tor_heal_s = tor_heal_s;

    if (!snap.path.empty()) {
      const std::string bytes = persist::encode_snapshot(s);
      try {
        util::write_file_atomic(snap.path, bytes);
      } catch (const util::FileWriteError& error) {
        throw persist::SnapshotIoError(
            std::string("cannot write snapshot: ") + error.what());
      }
      if (sobs.snapshot_bytes != nullptr) {
        sobs.snapshot_bytes->add(bytes.size());
        span.arg("bytes", std::to_string(bytes.size()));
      }
    }
    if (sobs.snapshots != nullptr) {
      sobs.snapshots->add();
    }
    span.close(now);
    if (snap.hook) {
      snap.hook(s);
    }
  };

  // Restoring assigns every mutable local the loop reads, so the next
  // iteration computes exactly what the uninterrupted run's would have:
  // all doubles (rates, powers, accumulators) and all RNG stream
  // positions travel bit-exactly through the snapshot.
  if (restore != nullptr) {
    const persist::SimSnapshot& s = *restore;
    require_snapshot(s.workload_fingerprint == workload_fp,
                     "workload fingerprint differs");
    require_snapshot(s.config_fingerprint == config_fp,
                     "cloud/allocator configuration fingerprint differs");
    require_snapshot(s.servers.size() == n_servers, "server count differs");
    require_snapshot(s.vms_left.size() == jobs.size() &&
                         s.job_done.size() == jobs.size() &&
                         s.dependents.size() == jobs.size(),
                     "per-job state does not match the workload");
    require_snapshot(s.next_job <= jobs.size(),
                     "arrival cursor out of range");
    for (const std::uint64_t j : s.queue) {
      require_snapshot(j < jobs.size(), "queued job index out of range");
    }
    std::size_t parked_count = 0;
    for (const std::vector<std::uint64_t>& deps : s.dependents) {
      parked_count += deps.size();
      for (const std::uint64_t j : deps) {
        require_snapshot(j < jobs.size(), "parked job index out of range");
      }
    }
    require_snapshot(parked_count == s.parked,
                     "parked-job count disagrees with the dependents lists");
    for (const persist::VmState& vm : s.running) {
      require_snapshot(vm.job_index < jobs.size(),
                       "running VM's job out of range");
      require_snapshot(vm.server >= 0 &&
                           static_cast<std::size_t>(vm.server) < n_servers,
                       "running VM's server out of range");
      require_snapshot(vm.dest_server >= -1 &&
                           vm.dest_server < static_cast<int>(n_servers),
                       "running VM's destination out of range");
      require_snapshot(!vm.migrating || vm.dest_server >= 0,
                       "migrating VM without a destination");
    }
    for (const persist::RestartState& r : s.restarts) {
      require_snapshot(r.job_index < jobs.size(),
                       "restart VM's job out of range");
    }
    require_snapshot(s.tor_heal_s.size() == tor_heal_s.size(),
                     "per-switch heal table does not match the topology");

    now = s.now;
    next_job = static_cast<std::size_t>(s.next_job);
    next_vm_id = s.next_vm_id;
    guard = static_cast<std::size_t>(s.guard);
    busy_server_time = s.busy_server_time;
    useful_work_s = s.useful_work_s;
    next_sweep = s.next_sweep;
    parked = static_cast<std::size_t>(s.parked);
    for (std::size_t i = 0; i < n_servers; ++i) {
      const persist::ServerPersistState& in = s.servers[i];
      fleet.alloc[i] = in.alloc;
      fleet.busy_power_w[i] = in.busy_power_w;
      fleet.powered[i] = in.powered ? 1 : 0;
      fleet.down[i] = in.down ? 1 : 0;
      fleet.isolated[i] = in.isolated ? 1 : 0;
      fleet.repair_s[i] = in.repair_s;
      fleet.degrade_until[i] = in.degrade_until;
      fleet.degrade_mult[i] = in.degrade_mult;
      fleet.brownout_until[i] = in.brownout_until;
      fleet.brownout_cap_w[i] = in.brownout_cap_w;
      fleet.ever_powered[i] = in.ever_powered ? 1 : 0;
    }
    fleet.rebuild_view();  // bulk writes above bypass the incremental sync
    running.clear();
    running.reserve(s.running.size());
    for (const persist::VmState& in : s.running) {
      RunningVm vm;
      vm.vm_id = in.vm_id;
      vm.job_index = static_cast<std::size_t>(in.job_index);
      vm.profile = static_cast<ProfileClass>(in.profile);
      vm.runtime_scale = in.runtime_scale;
      vm.server = in.server;
      vm.start_s = in.start_s;
      vm.remaining = in.remaining;
      vm.rate = in.rate;
      vm.migrating = in.migrating;
      vm.migration_done_s = in.migration_done_s;
      vm.dest_server = in.dest_server;
      vm.retries = in.retries;
      vm.ckpt_done = in.ckpt_done;
      vm.next_ckpt_s = in.next_ckpt_s;
      running.push_back(vm);
    }
    queue.clear();
    for (const std::uint64_t j : s.queue) {
      queue.push_back(static_cast<std::size_t>(j));
    }
    restarts.clear();
    for (const persist::RestartState& in : s.restarts) {
      restarts.push_back(RestartVm{static_cast<std::size_t>(in.job_index),
                                   in.resume_done, in.retries});
    }
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      vms_left[j] = s.vms_left[j];
      job_done[j] = s.job_done[j] != 0;
      dependents[j].assign(s.dependents[j].begin(), s.dependents[j].end());
    }
    const persist::MetricsState& m = s.metrics;
    metrics.makespan_s = m.makespan_s;
    metrics.energy_j = m.energy_j;
    metrics.sla_violation_pct = m.sla_violation_pct;
    metrics.jobs = static_cast<std::size_t>(m.jobs);
    metrics.vms = static_cast<std::size_t>(m.vms);
    metrics.sla_violations = static_cast<std::size_t>(m.sla_violations);
    metrics.mean_response_s = m.mean_response_s;
    metrics.mean_wait_s = m.mean_wait_s;
    metrics.mean_job_wait_s = m.mean_job_wait_s;
    metrics.mean_busy_servers = m.mean_busy_servers;
    metrics.peak_busy_servers = m.peak_busy_servers;
    metrics.servers_powered = static_cast<std::size_t>(m.servers_powered);
    metrics.migrations = static_cast<std::size_t>(m.migrations);
    metrics.migration_transfer_s = m.migration_transfer_s;
    metrics.failures = static_cast<std::size_t>(m.failures);
    metrics.vm_restarts = static_cast<std::size_t>(m.vm_restarts);
    metrics.vms_abandoned = static_cast<std::size_t>(m.vms_abandoned);
    metrics.lost_work_s = m.lost_work_s;
    metrics.goodput_fraction = m.goodput_fraction;
    metrics.fallback_allocations =
        static_cast<std::size_t>(m.fallback_allocations);
    metrics.correlated_failures =
        static_cast<std::size_t>(m.correlated_failures);
    metrics.blast_radius_vms_max =
        static_cast<std::size_t>(m.blast_radius_vms_max);
    blast_radius_vm_sum = m.blast_radius_vm_sum;
    metrics.lost_work_correlated_s = m.lost_work_correlated_s;
    if (m.rejects_by_reason.size() != metrics.rejects_by_reason.size()) {
      throw persist::SnapshotMismatchError(
          "snapshot carries " + std::to_string(m.rejects_by_reason.size()) +
          " reject-reason tallies; this build knows " +
          std::to_string(metrics.rejects_by_reason.size()));
    }
    for (std::size_t i = 0; i < metrics.rejects_by_reason.size(); ++i) {
      metrics.rejects_by_reason[i] =
          static_cast<std::size_t>(m.rejects_by_reason[i]);
    }
    metrics.completions.clear();
    metrics.completions.reserve(m.completions.size());
    for (const persist::CompletionState& c : m.completions) {
      metrics.completions.push_back(VmCompletion{
          c.vm_id, c.job_id, static_cast<ProfileClass>(c.profile), c.server,
          c.submit_s, c.start_s, c.finish_s});
    }
    response_stats.restore(s.response_stats);
    wait_stats.restore(s.wait_stats);
    job_wait_stats.restore(s.job_wait_stats);
    FailureSchedule::State fail_state;
    fail_state.script_next = static_cast<std::size_t>(s.failure.script_next);
    fail_state.streams = s.failure.streams;
    fail_state.sampled_next = s.failure.sampled_next;
    fail_state.pdu_streams = s.failure.pdu_streams;
    fail_state.pdu_next = s.failure.pdu_next;
    fail_state.tor_streams = s.failure.tor_streams;
    fail_state.tor_next = s.failure.tor_next;
    failure_schedule.restore(fail_state);
    tor_heal_s = s.tor_heal_s;
  }

  while (next_job < jobs.size() || !queue.empty() || !running.empty() ||
         parked > 0 || !restarts.empty()) {
    AEVA_INVARIANT(++guard <= max_events,
                "simulation event budget exhausted — strategy starved the "
                "queue or the model diverged");

    // Next event: job arrival, earliest VM completion, finished transfer,
    // or a consolidation sweep (only meaningful while VMs run).
    const double next_arrival =
        next_job < jobs.size() ? jobs[next_job].submit_s : kInf;
    double next_completion = kInf;
    double next_transfer = kInf;
    for (const RunningVm& vm : running) {
      next_completion = std::min(next_completion, now + vm.remaining / vm.rate);
      if (vm.migrating) {
        next_transfer = std::min(next_transfer, vm.migration_done_s);
      }
    }
    const double sweep_event =
        mig.enabled && !running.empty() ? next_sweep : kInf;
    // Pending faults close the interval too, as do repair instants and
    // degradation/brownout window ends (rates must recompute there).
    const double next_failure =
        fail_on ? failure_schedule.next_time() : kInf;
    double next_window = kInf;
    if (fail_on) {
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (fleet.down[s] != 0) {
          next_window = std::min(next_window, fleet.repair_s[s]);
        } else {
          if (fleet.degrade_until[s] > now) {
            next_window = std::min(next_window, fleet.degrade_until[s]);
          }
          if (fleet.brownout_until[s] > now) {
            next_window = std::min(next_window, fleet.brownout_until[s]);
          }
        }
      }
      // ToR heal instants close intervals exactly like repair windows.
      for (const double heal : tor_heal_s) {
        if (heal != kInf) {
          next_window = std::min(next_window, heal);
        }
      }
    }
    const double next_event =
        std::min({next_arrival, next_completion, next_transfer, sweep_event,
                  next_failure, next_window});
    if (!std::isfinite(next_event)) {
      throw std::runtime_error(
          "datacenter simulation deadlocked: queued jobs but no running VMs "
          "and no future arrivals (strategy '" +
          allocator.name() + "' cannot place the head-of-line job)");
    }
    if (sobs.loop_events != nullptr) {
      sobs.loop_events->add();
      sobs.queue_depth->record(static_cast<double>(queue.size()));
      // Attribute the step to the earliest source (ties resolve in the
      // order the min above considers them — observability only).
      obs::Counter* which = sobs.ev_window;
      if (next_event == next_arrival) {
        which = sobs.ev_arrival;
      } else if (next_event == next_completion) {
        which = sobs.ev_completion;
      } else if (next_event == next_transfer) {
        which = sobs.ev_transfer;
      } else if (next_event == sweep_event) {
        which = sobs.ev_sweep;
      } else if (next_event == next_failure) {
        which = sobs.ev_failure;
      }
      which->add();
    }

    // Accrue energy and progress over [now, next_event].
    const double dt = next_event - now;
    if (dt > 0.0) {
      if (sobs.intervals != nullptr) {
        sobs.intervals->add();
        sobs.interval_s->record(dt);
      }
      double busy = 0.0;
      double power = 0.0;
      // Fresh index-order sums every interval, never an incrementally
      // maintained total: `energy_j += power * dt` is bit-identity-pinned
      // (tests/datacenter/bit_identity_seeds_test.cpp), and a running
      // accumulator would reorder the floating-point summation.
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (fleet.alloc[s].total() > 0) {
          // Hosting servers draw the model record's mean power, which
          // includes the fixed 125 W baseline of a powered-on machine.
          busy += 1.0;
          power += fleet.busy_power_w[s];
        }
        // Empty servers are powered off — consolidation "minimizes the
        // number of servers that are in operation" (Sect. I).
      }
      metrics.energy_j += power * dt;
      if (observer) {
        observer_power.assign(fleet.busy_power_w.begin(),
                              fleet.busy_power_w.end());
        observer(now, next_event, observer_power);
      }
      busy_server_time += busy * dt;
      metrics.peak_busy_servers = std::max(metrics.peak_busy_servers, busy);
      for (RunningVm& vm : running) {
        // Checkpoint boundaries inside the interval: the rate is constant
        // over [now, next_event], so snapshots need no extra events —
        // progress at each boundary is interpolated exactly.
        if (ckpt_on) {
          while (vm.next_ckpt_s <= next_event + kEps) {
            const double at_boundary =
                (1.0 - vm.remaining) + vm.rate * (vm.next_ckpt_s - now);
            vm.ckpt_done =
                std::min(std::max(at_boundary, vm.ckpt_done), 1.0);
            vm.next_ckpt_s += fail.recovery.checkpoint_period_s;
          }
        }
        vm.remaining -= vm.rate * dt;
      }
      now = next_event;
    }

    // Process arrivals at `now`; jobs with an unmet dependency park until
    // their predecessor completes.
    while (next_job < jobs.size() && jobs[next_job].submit_s <= now + kEps) {
      const trace::JobRequest& job = jobs[next_job];
      const std::size_t* dep =
          job.depends_on != 0 ? find_job_index(job.depends_on) : nullptr;
      if (dep != nullptr && !job_done[*dep]) {
        dependents[*dep].push_back(next_job);
        ++parked;
      } else {
        queue.push_back(next_job);
      }
      ++next_job;
    }

    // Finish transfers whose copy completed: the VM switches to its
    // reserved destination and the source drops it.
    for (RunningVm& vm : running) {
      if (vm.migrating && vm.migration_done_s <= now + kEps) {
        const int source = vm.server;
        fleet.remove_vm(source, vm.profile);
        vm.server = vm.dest_server;
        vm.migrating = false;
        vm.dest_server = -1;
        refresh_server(source);
        refresh_server(vm.server);
      }
    }

    // Process completions at `now`.
    for (std::size_t i = 0; i < running.size();) {
      RunningVm& vm = running[i];
      if (vm.remaining <= kEps || vm.remaining / vm.rate <= kEps) {
        const trace::JobRequest& job = jobs[vm.job_index];
        const double response = now - job.submit_s;
        response_stats.add(response);
        if (response > job.deadline_s + kEps) {
          ++metrics.sla_violations;
        }
        ++metrics.vms;
        if (cloud_.record_completions) {
          metrics.completions.push_back(VmCompletion{
              vm.vm_id, job.id, vm.profile, vm.server, job.submit_s,
              vm.start_s, now});
        }
        useful_work_s += vm.runtime_scale * solo_time(vm.profile);
        // Workflow release: the job's last VM frees its dependents.
        retire_vm_of_job(vm.job_index);
        fleet.remove_vm(vm.server, vm.profile);
        const int touched = vm.server;
        int abandoned_dest = -1;
        if (vm.migrating) {
          // The VM finished mid-copy: release the reservation.
          abandoned_dest = vm.dest_server;
          fleet.remove_vm(abandoned_dest, vm.profile);
        }
        running[i] = running.back();
        running.pop_back();
        refresh_server(touched);
        if (abandoned_dest >= 0) {
          refresh_server(abandoned_dest);
        }
      } else {
        ++i;
      }
    }

    if (fail_on) {
      // Expired degradation/brownout windows: reset and recompute rates.
      for (std::size_t s = 0; s < n_servers; ++s) {
        bool expired = false;
        if (fleet.degrade_until[s] != -kInf &&
            fleet.degrade_until[s] <= now + kEps) {
          fleet.degrade_until[s] = -kInf;
          fleet.degrade_mult[s] = 1.0;
          expired = true;
        }
        if (fleet.brownout_until[s] != -kInf &&
            fleet.brownout_until[s] <= now + kEps) {
          fleet.brownout_until[s] = -kInf;
          fleet.brownout_cap_w[s] = kInf;
          expired = true;
        }
        if (expired && fleet.down[s] == 0) {
          refresh_server(static_cast<int>(s));
        }
      }
      // Due faults, then repairs (a crash with zero repair time comes
      // back — cold and empty — within the same instant).
      failure_schedule.pop_due(now, due_faults);
      for (const FailureEvent& event : due_faults) {
        apply_failure(event);
      }
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (fleet.down[s] != 0 && fleet.repair_s[s] <= now + kEps) {
          fleet.repair(static_cast<int>(s));
          fleet.repair_s[s] = kInf;
          failure_schedule.on_repair(static_cast<int>(s), now);
        }
      }
      // Due ToR heals: the whole rack rejoins the allocator view at the
      // same instant and stalled residents resume at full rate. Servers
      // that crashed mid-isolation stay masked until their repair.
      if (topo != nullptr) {
        for (std::size_t r = 0; r < tor_heal_s.size(); ++r) {
          if (tor_heal_s[r] == kInf || tor_heal_s[r] > now + kEps) {
            continue;
          }
          tor_heal_s[r] = kInf;
          for (const int server : topo->servers_on_tor(static_cast<int>(r))) {
            if (fleet.isolated[static_cast<std::size_t>(server)] == 0) {
              continue;
            }
            fleet.deisolate(server);
            if (fleet.down[static_cast<std::size_t>(server)] == 0) {
              refresh_server(server);
            }
          }
        }
      }
    }

    // Periodic migration sweep (catching up over idle gaps).
    if (mig.enabled && next_sweep <= now + kEps) {
      if (!running.empty()) {
        if (mig.trigger == MigrationConfig::Trigger::kThermal) {
          thermal_sweep();
        } else {
          consolidation_sweep();
        }
      }
      while (next_sweep <= now + kEps) {
        next_sweep += mig.check_interval_s;
      }
    }

    drain_queue();

    // Periodic checkpoint at the loop boundary. Deliberately *not* an
    // event source: inserting snapshot times into the interval min would
    // split `power*dt` / `rate*dt` accrual and change floating-point
    // summation order, breaking the snapshots-on vs. snapshots-off
    // bit-identity contract (gated by bench/snapshot_overhead).
    if (snap_on && now + kEps >= next_snapshot_due) {
      capture_snapshot();
      while (next_snapshot_due <= now + kEps) {
        next_snapshot_due += snap.every_s;
      }
    }
  }

  metrics.makespan_s = now - t0;
  metrics.mean_response_s = response_stats.mean();
  metrics.mean_wait_s = wait_stats.mean();
  metrics.mean_job_wait_s = job_wait_stats.mean();
  metrics.sla_violation_pct =
      metrics.vms > 0
          ? 100.0 * static_cast<double>(metrics.sla_violations) /
                static_cast<double>(metrics.vms)
          : 0.0;
  metrics.mean_busy_servers =
      metrics.makespan_s > 0.0 ? busy_server_time / metrics.makespan_s : 0.0;
  for (std::size_t s = 0; s < n_servers; ++s) {
    metrics.servers_powered +=
        (fleet.powered[s] != 0 || fleet.ever_powered[s] != 0) ? 1 : 0;
  }
  metrics.goodput_fraction =
      useful_work_s + metrics.lost_work_s > 0.0
          ? useful_work_s / (useful_work_s + metrics.lost_work_s)
          : 1.0;
  metrics.blast_radius_vms_mean =
      metrics.correlated_failures > 0
          ? blast_radius_vm_sum /
                static_cast<double>(metrics.correlated_failures)
          : 0.0;
  if (cloud_.obs != nullptr) {
    obs::MetricsRegistry& reg = cloud_.obs->metrics();
    reg.gauge("sim.makespan_s").set(metrics.makespan_s);
    reg.gauge("sim.energy_j").set(metrics.energy_j);
    reg.gauge("sim.sla_violation_pct").set(metrics.sla_violation_pct);
    reg.gauge("sim.lost_work_s").set(metrics.lost_work_s);
    reg.gauge("sim.goodput_fraction").set(metrics.goodput_fraction);
    reg.gauge("sim.lost_work_correlated_s")
        .set(metrics.lost_work_correlated_s);
    reg.gauge("sim.blast_radius_vms_mean").set(metrics.blast_radius_vms_mean);
    run_span.arg("strategy", allocator.name());
    run_span.arg("jobs", std::to_string(metrics.jobs));
    run_span.arg("vms", std::to_string(metrics.vms));
  }
  run_span.close(now);
  return metrics;
}

}  // namespace aeva::datacenter
