#pragma once

/// \file ground_truth.hpp
/// Ground-truth datacenter co-simulation.
///
/// The paper's evaluation accounts time and energy by *looking up the
/// empirical database* (Sect. IV-A) — our `Simulator` reproduces exactly
/// that. This second backend replaces the accounting with reality: every
/// cloud machine is a fluid `testbed::OnlineServer` running the actual
/// phase-level application models the database was measured from, while
/// the allocation strategy keeps its database beliefs. Comparing the two
/// backends on the same workload quantifies the end-to-end error of the
/// paper's methodology (see `bench/ablation_groundtruth`).

#include "core/types.hpp"
#include "datacenter/simulator.hpp"
#include "modeldb/database.hpp"
#include "testbed/online_server.hpp"
#include "trace/prepare.hpp"

namespace aeva::datacenter {

/// Fluid-reality cloud simulator. Jobs execute the canonical benchmark of
/// their class, stretched by the job's runtime scale.
class GroundTruthSimulator {
 public:
  /// `db` feeds the allocator's QoS bounds (and is what a model-driven
  /// strategy consults); `hardware` describes every machine; `cloud`
  /// supplies size and backfill policy (migration is not supported by the
  /// fluid backend and must be disabled).
  GroundTruthSimulator(const modeldb::ModelDatabase& db,
                       testbed::ServerConfig hardware, CloudConfig cloud);

  /// Executes the workload; same contract as Simulator::run.
  [[nodiscard]] SimMetrics run(const trace::PreparedWorkload& workload,
                               const core::Allocator& allocator) const;

  [[nodiscard]] const CloudConfig& cloud() const noexcept { return cloud_; }

 private:
  const modeldb::ModelDatabase* db_;
  testbed::ServerConfig hardware_;
  CloudConfig cloud_;
};

}  // namespace aeva::datacenter
