#pragma once

/// \file accounting.hpp
/// Interval-weighted accounting (Fig. 4).
///
/// "As VM allocations may vary over time, we compute the estimated
/// execution time and energy consumption with the weighted average of the
/// values associated to each interval of time." The paper's example:
/// ExecTime_VM1 = 0.7·1200 s + 0.3·1800 s = 1380 s and
/// Energy = 0.35·15 kJ + 0.15·20 kJ + 0.5·12 kJ = 14.25 kJ.
///
/// These helpers implement that arithmetic verbatim; the online simulator
/// uses the equivalent progress-rate formulation (see simulator.hpp).

#include <vector>

namespace aeva::datacenter {

/// One allocation interval's contribution: its relative weight and the
/// model value (estimated time or energy) associated with the allocation
/// present during that interval.
struct WeightedValue {
  double weight = 0.0;  ///< fraction of the outcome spent in this interval
  double value = 0.0;   ///< model estimate for this interval's allocation
};

/// Weighted-average execution time of one VM across allocation intervals.
/// Weights must be non-negative and sum to 1 (±1e-9).
[[nodiscard]] double interval_weighted_time_s(
    const std::vector<WeightedValue>& intervals);

/// Weighted energy of a whole outcome across allocation intervals (same
/// weight contract).
[[nodiscard]] double interval_weighted_energy_j(
    const std::vector<WeightedValue>& intervals);

}  // namespace aeva::datacenter
