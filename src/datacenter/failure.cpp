#include "datacenter/failure.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::datacenter {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_event(const FailureEvent& event, int server_count,
                    std::size_t index) {
  AEVA_REQUIRE(event.server >= 0 && event.server < server_count,
               "failure event ", index, " targets server ", event.server,
               " outside the cloud of ", server_count);
  AEVA_REQUIRE(std::isfinite(event.at_s) && event.at_s >= 0.0,
               "failure event ", index, " has invalid time ", event.at_s);
  AEVA_REQUIRE(std::isfinite(event.duration_s) && event.duration_s >= 0.0,
               "failure event ", index, " has invalid duration ",
               event.duration_s);
  switch (event.kind) {
    case FailureKind::kCrash:
      break;
    case FailureKind::kDegrade:
      AEVA_REQUIRE(std::isfinite(event.magnitude) && event.magnitude > 0.0 &&
                       event.magnitude <= 1.0,
                   "degrade event ", index, " multiplier ", event.magnitude,
                   " out of (0, 1]");
      break;
    case FailureKind::kBrownout:
      AEVA_REQUIRE(std::isfinite(event.magnitude) && event.magnitude > 0.0,
                   "brownout event ", index, " power cap ", event.magnitude,
                   " must be positive");
      break;
  }
}

}  // namespace

void FailureConfig::validate(int server_count) const {
  if (!enabled) {
    return;
  }
  AEVA_REQUIRE(std::isfinite(mtbf_s) && mtbf_s >= 0.0,
               "MTBF must be non-negative, got ", mtbf_s);
  if (mtbf_s > 0.0) {
    AEVA_REQUIRE(std::isfinite(mttr_s) && mttr_s > 0.0,
                 "MTTR must be positive when sampling crashes, got ", mttr_s);
  }
  AEVA_REQUIRE(recovery.checkpoint_period_s > 0.0,
               "checkpoint period must be positive, got ",
               recovery.checkpoint_period_s);
  AEVA_REQUIRE(
      recovery.checkpoint_tax >= 0.0 && recovery.checkpoint_tax < 1.0,
      "checkpoint tax out of [0, 1): ", recovery.checkpoint_tax);
  AEVA_REQUIRE(recovery.max_retries >= 0,
               "max retries must be non-negative, got ",
               recovery.max_retries);
  for (std::size_t i = 0; i < script.size(); ++i) {
    validate_event(script[i], server_count, i);
  }
}

FailureSchedule::FailureSchedule(const FailureConfig& config, int server_count,
                                 double start_s)
    : script_(config.script),
      mtbf_s_(config.enabled ? config.mtbf_s : 0.0),
      mttr_s_(config.mttr_s) {
  if (!config.enabled) {
    script_.clear();
    return;
  }
  std::stable_sort(script_.begin(), script_.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.at_s < b.at_s;
                   });
  const auto n = static_cast<std::size_t>(server_count);
  sampled_next_.assign(n, kInf);
  if (mtbf_s_ > 0.0) {
    // One decorrelated stream per server so per-server crash processes are
    // independent and insensitive to event interleaving elsewhere.
    util::Rng root = util::named_stream(config.seed, "failures");
    streams_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      streams_.push_back(root.fork(static_cast<std::uint64_t>(s)));
      sampled_next_[s] = start_s + streams_[s].exponential(1.0 / mtbf_s_);
    }
  }
}

double FailureSchedule::next_time() const noexcept {
  double next = kInf;
  if (script_next_ < script_.size()) {
    next = script_[script_next_].at_s;
  }
  for (const double t : sampled_next_) {
    next = std::min(next, t);
  }
  return next;
}

void FailureSchedule::pop_due(double now, std::vector<FailureEvent>& out) {
  constexpr double kEps = 1e-9;
  out.clear();
  while (script_next_ < script_.size() &&
         script_[script_next_].at_s <= now + kEps) {
    out.push_back(script_[script_next_]);
    ++script_next_;
  }
  for (std::size_t s = 0; s < sampled_next_.size(); ++s) {
    if (sampled_next_[s] <= now + kEps) {
      FailureEvent crash;
      crash.kind = FailureKind::kCrash;
      crash.server = static_cast<int>(s);
      crash.at_s = sampled_next_[s];
      crash.duration_s = streams_[s].exponential(1.0 / mttr_s_);
      // Suppressed until on_repair re-arms the server's process.
      sampled_next_[s] = kInf;
      out.push_back(crash);
    }
  }
}

void FailureSchedule::on_crash(int server) {
  const auto s = static_cast<std::size_t>(server);
  if (s < sampled_next_.size()) {
    sampled_next_[s] = kInf;
  }
}

void FailureSchedule::on_repair(int server, double repair_s) {
  const auto s = static_cast<std::size_t>(server);
  if (mtbf_s_ > 0.0 && s < streams_.size()) {
    sampled_next_[s] = repair_s + streams_[s].exponential(1.0 / mtbf_s_);
  }
}

FailureSchedule::State FailureSchedule::state() const {
  State state;
  state.script_next = script_next_;
  state.streams.reserve(streams_.size());
  for (const util::Rng& stream : streams_) {
    state.streams.push_back(stream.state());
  }
  state.sampled_next = sampled_next_;
  return state;
}

void FailureSchedule::restore(const State& state) {
  AEVA_REQUIRE(state.streams.size() == streams_.size() &&
                   state.sampled_next.size() == sampled_next_.size(),
               "failure-schedule state shape (", state.streams.size(), ", ",
               state.sampled_next.size(),
               ") does not match this schedule's (", streams_.size(), ", ",
               sampled_next_.size(), ")");
  AEVA_REQUIRE(state.script_next <= script_.size(),
               "failure-schedule script cursor ", state.script_next,
               " past the ", script_.size(), "-event script");
  script_next_ = state.script_next;
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    streams_[s].set_state(state.streams[s]);
  }
  sampled_next_ = state.sampled_next;
}

// --- scripted-trace I/O -----------------------------------------------------

namespace {

double parse_field(const std::string& field, std::size_t lineno,
                   const char* what) {
  const auto parsed = util::parse_double(field);
  AEVA_REQUIRE(parsed.has_value() && std::isfinite(*parsed),
               "failure script line ", lineno, ": malformed ", what, " '",
               field.substr(0, 32), "'");
  return *parsed;
}

}  // namespace

std::vector<FailureEvent> parse_failure_script(std::istream& in) {
  std::vector<FailureEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string text = util::trim(line);
    if (text.empty() || text.front() == '#' || text.front() == ';') {
      continue;
    }
    const std::vector<std::string> fields = util::split_whitespace(text);
    FailureEvent event;
    if (fields.front() == "crash") {
      AEVA_REQUIRE(fields.size() == 4, "failure script line ", lineno,
                   ": crash takes <server> <at_s> <repair_s>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kCrash;
    } else if (fields.front() == "degrade") {
      AEVA_REQUIRE(fields.size() == 5, "failure script line ", lineno,
                   ": degrade takes <server> <at_s> <window_s> <mult>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kDegrade;
    } else if (fields.front() == "brownout") {
      AEVA_REQUIRE(fields.size() == 5, "failure script line ", lineno,
                   ": brownout takes <server> <at_s> <window_s> <cap_w>, "
                   "got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kBrownout;
    } else {
      AEVA_REQUIRE(false, "failure script line ", lineno,
                   ": unknown event kind '", fields.front().substr(0, 32),
                   "'");
    }
    const double server = parse_field(fields[1], lineno, "server index");
    AEVA_REQUIRE(server >= 0.0 && server <= 1e9 &&
                     server == std::floor(server),
                 "failure script line ", lineno, ": server index ",
                 fields[1].substr(0, 32), " is not a small non-negative "
                 "integer");
    event.server = static_cast<int>(server);
    event.at_s = parse_field(fields[2], lineno, "event time");
    AEVA_REQUIRE(event.at_s >= 0.0, "failure script line ", lineno,
                 ": negative event time");
    event.duration_s = parse_field(fields[3], lineno, "duration");
    AEVA_REQUIRE(event.duration_s >= 0.0, "failure script line ", lineno,
                 ": negative duration");
    if (fields.size() == 5) {
      event.magnitude = parse_field(fields[4], lineno, "magnitude");
    }
    // Re-use the config-level range checks (server bound checked at
    // schedule build time, when the cloud size is known).
    validate_event(event, std::numeric_limits<int>::max(), lineno);
    events.push_back(event);
  }
  return events;
}

std::vector<FailureEvent> parse_failure_script(const std::string& text) {
  std::istringstream in(text);
  return parse_failure_script(in);
}

std::vector<FailureEvent> read_failure_script_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open failure script: " + path);
  }
  return parse_failure_script(in);
}

void write_failure_script(std::ostream& out,
                          const std::vector<FailureEvent>& events) {
  out << "# aeva failure script: kind server at_s duration_s [magnitude]\n";
  for (const FailureEvent& event : events) {
    out << to_string(event.kind) << ' ' << event.server << ' ' << event.at_s
        << ' ' << event.duration_s;
    if (event.kind != FailureKind::kCrash) {
      out << ' ' << event.magnitude;
    }
    out << '\n';
  }
}

}  // namespace aeva::datacenter
