#include "datacenter/failure.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "datacenter/topology.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace aeva::datacenter {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_event(const FailureEvent& event, int server_count,
                    int pdu_count, int tor_count, std::size_t index) {
  AEVA_REQUIRE(std::isfinite(event.at_s) && event.at_s >= 0.0,
               "failure event ", index, " has invalid time ", event.at_s);
  AEVA_REQUIRE(std::isfinite(event.duration_s) && event.duration_s >= 0.0,
               "failure event ", index, " has invalid duration ",
               event.duration_s);
  switch (event.kind) {
    case FailureKind::kCrash:
      AEVA_REQUIRE(event.server >= 0 && event.server < server_count,
                   "failure event ", index, " targets server ", event.server,
                   " outside the cloud of ", server_count);
      break;
    case FailureKind::kDegrade:
      AEVA_REQUIRE(event.server >= 0 && event.server < server_count,
                   "failure event ", index, " targets server ", event.server,
                   " outside the cloud of ", server_count);
      AEVA_REQUIRE(std::isfinite(event.magnitude) && event.magnitude > 0.0 &&
                       event.magnitude <= 1.0,
                   "degrade event ", index, " multiplier ", event.magnitude,
                   " out of (0, 1]");
      break;
    case FailureKind::kBrownout:
      AEVA_REQUIRE(event.server >= 0 && event.server < server_count,
                   "failure event ", index, " targets server ", event.server,
                   " outside the cloud of ", server_count);
      AEVA_REQUIRE(std::isfinite(event.magnitude) && event.magnitude > 0.0,
                   "brownout event ", index, " power cap ", event.magnitude,
                   " must be positive");
      break;
    case FailureKind::kPduFault:
      AEVA_REQUIRE(event.server >= 0 && event.server < pdu_count,
                   "failure event ", index, " targets pdu feed ",
                   event.server, " but the topology has ", pdu_count,
                   " feeds (domain events need FailureConfig::topology)");
      break;
    case FailureKind::kTorFault:
      AEVA_REQUIRE(event.server >= 0 && event.server < tor_count,
                   "failure event ", index, " targets tor switch ",
                   event.server, " but the topology has ", tor_count,
                   " switches (domain events need FailureConfig::topology)");
      break;
  }
}

}  // namespace

void FailureConfig::validate(int server_count) const {
  if (!enabled) {
    return;
  }
  AEVA_REQUIRE(std::isfinite(mtbf_s) && mtbf_s >= 0.0,
               "MTBF must be non-negative, got ", mtbf_s);
  if (mtbf_s > 0.0) {
    AEVA_REQUIRE(std::isfinite(mttr_s) && mttr_s > 0.0,
                 "MTTR must be positive when sampling crashes, got ", mttr_s);
  }
  AEVA_REQUIRE(recovery.checkpoint_period_s > 0.0,
               "checkpoint period must be positive, got ",
               recovery.checkpoint_period_s);
  AEVA_REQUIRE(
      recovery.checkpoint_tax >= 0.0 && recovery.checkpoint_tax < 1.0,
      "checkpoint tax out of [0, 1): ", recovery.checkpoint_tax);
  AEVA_REQUIRE(recovery.max_retries >= 0,
               "max retries must be non-negative, got ",
               recovery.max_retries);
  AEVA_REQUIRE(std::isfinite(domains.pdu_mtbf_s) && domains.pdu_mtbf_s >= 0.0,
               "PDU MTBF must be non-negative, got ", domains.pdu_mtbf_s);
  if (domains.pdu_mtbf_s > 0.0) {
    AEVA_REQUIRE(std::isfinite(domains.pdu_mttr_s) && domains.pdu_mttr_s > 0.0,
                 "PDU MTTR must be positive when sampling faults, got ",
                 domains.pdu_mttr_s);
  }
  AEVA_REQUIRE(std::isfinite(domains.tor_mtbf_s) && domains.tor_mtbf_s >= 0.0,
               "ToR MTBF must be non-negative, got ", domains.tor_mtbf_s);
  if (domains.tor_mtbf_s > 0.0) {
    AEVA_REQUIRE(std::isfinite(domains.tor_mttr_s) && domains.tor_mttr_s > 0.0,
                 "ToR MTTR must be positive when sampling faults, got ",
                 domains.tor_mttr_s);
  }
  if (topology != nullptr) {
    AEVA_REQUIRE(topology->server_count() == server_count,
                 "failure topology covers ", topology->server_count(),
                 " servers, cloud has ", server_count);
  } else {
    AEVA_REQUIRE(domains.pdu_mtbf_s == 0.0 && domains.tor_mtbf_s == 0.0,
                 "domain-fault sampling requires FailureConfig::topology");
  }
  const int pdus = topology != nullptr ? topology->pdu_count() : 0;
  const int tors = topology != nullptr ? topology->tor_count() : 0;
  for (std::size_t i = 0; i < script.size(); ++i) {
    validate_event(script[i], server_count, pdus, tors, i);
  }
}

FailureSchedule::FailureSchedule(const FailureConfig& config, int server_count,
                                 double start_s)
    : script_(config.script),
      mtbf_s_(config.enabled ? config.mtbf_s : 0.0),
      mttr_s_(config.mttr_s) {
  if (!config.enabled) {
    script_.clear();
    return;
  }
  // Canonical order up front: simultaneous scripted faults replay in the
  // same (time, domain/server, kind) order whatever order the script
  // listed them in.
  std::stable_sort(script_.begin(), script_.end(), canonical_event_order);
  const auto n = static_cast<std::size_t>(server_count);
  sampled_next_.assign(n, kInf);
  if (mtbf_s_ > 0.0) {
    // One decorrelated stream per server so per-server crash processes are
    // independent and insensitive to event interleaving elsewhere.
    util::Rng root = util::named_stream(config.seed, "failures");
    streams_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      streams_.push_back(root.fork(static_cast<std::uint64_t>(s)));
      sampled_next_[s] = start_s + streams_[s].exponential(1.0 / mtbf_s_);
    }
  }
  if (config.topology != nullptr) {
    pdu_mtbf_s_ = config.domains.pdu_mtbf_s;
    pdu_mttr_s_ = config.domains.pdu_mttr_s;
    tor_mtbf_s_ = config.domains.tor_mtbf_s;
    tor_mttr_s_ = config.domains.tor_mttr_s;
    const auto np = static_cast<std::size_t>(config.topology->pdu_count());
    const auto nt = static_cast<std::size_t>(config.topology->tor_count());
    if (pdu_mtbf_s_ > 0.0 || tor_mtbf_s_ > 0.0) {
      // Domain processes live on their own named stream — adding them to
      // a run can never shift a per-server draw. Feed d forks substream
      // d; switch r forks substream pdu_count + r.
      util::Rng root = util::named_stream(config.seed, "domain-failures");
      if (pdu_mtbf_s_ > 0.0) {
        pdu_next_.assign(np, kInf);
        pdu_streams_.reserve(np);
        for (std::size_t d = 0; d < np; ++d) {
          pdu_streams_.push_back(root.fork(static_cast<std::uint64_t>(d)));
          pdu_next_[d] = start_s + pdu_streams_[d].exponential(1.0 / pdu_mtbf_s_);
        }
      }
      if (tor_mtbf_s_ > 0.0) {
        tor_next_.assign(nt, kInf);
        tor_streams_.reserve(nt);
        for (std::size_t r = 0; r < nt; ++r) {
          tor_streams_.push_back(
              root.fork(static_cast<std::uint64_t>(np + r)));
          tor_next_[r] = start_s + tor_streams_[r].exponential(1.0 / tor_mtbf_s_);
        }
      }
    }
  }
}

double FailureSchedule::next_time() const noexcept {
  double next = kInf;
  if (script_next_ < script_.size()) {
    next = script_[script_next_].at_s;
  }
  for (const double t : sampled_next_) {
    next = std::min(next, t);
  }
  for (const double t : pdu_next_) {
    next = std::min(next, t);
  }
  for (const double t : tor_next_) {
    next = std::min(next, t);
  }
  return next;
}

void FailureSchedule::pop_due(double now, std::vector<FailureEvent>& out) {
  constexpr double kEps = 1e-9;
  out.clear();
  while (script_next_ < script_.size() &&
         script_[script_next_].at_s <= now + kEps) {
    out.push_back(script_[script_next_]);
    ++script_next_;
  }
  for (std::size_t s = 0; s < sampled_next_.size(); ++s) {
    if (sampled_next_[s] <= now + kEps) {
      FailureEvent crash;
      crash.kind = FailureKind::kCrash;
      crash.server = static_cast<int>(s);
      crash.at_s = sampled_next_[s];
      crash.duration_s = streams_[s].exponential(1.0 / mttr_s_);
      // Suppressed until on_repair re-arms the server's process.
      sampled_next_[s] = kInf;
      out.push_back(crash);
    }
  }
  for (std::size_t d = 0; d < pdu_next_.size(); ++d) {
    if (pdu_next_[d] <= now + kEps) {
      FailureEvent fault;
      fault.kind = FailureKind::kPduFault;
      fault.server = static_cast<int>(d);
      fault.at_s = pdu_next_[d];
      fault.duration_s = pdu_streams_[d].exponential(1.0 / pdu_mttr_s_);
      // Immediate re-arm from the heal instant: nothing else draws from
      // this stream, so arming now or at the heal is the same sequence.
      pdu_next_[d] = fault.at_s + fault.duration_s +
                     pdu_streams_[d].exponential(1.0 / pdu_mtbf_s_);
      out.push_back(fault);
    }
  }
  for (std::size_t r = 0; r < tor_next_.size(); ++r) {
    if (tor_next_[r] <= now + kEps) {
      FailureEvent fault;
      fault.kind = FailureKind::kTorFault;
      fault.server = static_cast<int>(r);
      fault.at_s = tor_next_[r];
      fault.duration_s = tor_streams_[r].exponential(1.0 / tor_mttr_s_);
      tor_next_[r] = fault.at_s + fault.duration_s +
                     tor_streams_[r].exponential(1.0 / tor_mtbf_s_);
      out.push_back(fault);
    }
  }
  // Canonical batch order: however the sources interleaved above, a
  // simultaneous batch applies in one bit-stable order on every replay.
  std::stable_sort(out.begin(), out.end(), canonical_event_order);
}

void FailureSchedule::on_crash(int server) {
  const auto s = static_cast<std::size_t>(server);
  if (s < sampled_next_.size()) {
    sampled_next_[s] = kInf;
  }
}

void FailureSchedule::on_repair(int server, double repair_s) {
  const auto s = static_cast<std::size_t>(server);
  if (mtbf_s_ > 0.0 && s < streams_.size()) {
    sampled_next_[s] = repair_s + streams_[s].exponential(1.0 / mtbf_s_);
  }
}

FailureSchedule::State FailureSchedule::state() const {
  State state;
  state.script_next = script_next_;
  state.streams.reserve(streams_.size());
  for (const util::Rng& stream : streams_) {
    state.streams.push_back(stream.state());
  }
  state.sampled_next = sampled_next_;
  state.pdu_streams.reserve(pdu_streams_.size());
  for (const util::Rng& stream : pdu_streams_) {
    state.pdu_streams.push_back(stream.state());
  }
  state.pdu_next = pdu_next_;
  state.tor_streams.reserve(tor_streams_.size());
  for (const util::Rng& stream : tor_streams_) {
    state.tor_streams.push_back(stream.state());
  }
  state.tor_next = tor_next_;
  return state;
}

void FailureSchedule::restore(const State& state) {
  AEVA_REQUIRE(state.streams.size() == streams_.size() &&
                   state.sampled_next.size() == sampled_next_.size(),
               "failure-schedule state shape (", state.streams.size(), ", ",
               state.sampled_next.size(),
               ") does not match this schedule's (", streams_.size(), ", ",
               sampled_next_.size(), ")");
  AEVA_REQUIRE(state.pdu_streams.size() == pdu_streams_.size() &&
                   state.pdu_next.size() == pdu_next_.size() &&
                   state.tor_streams.size() == tor_streams_.size() &&
                   state.tor_next.size() == tor_next_.size(),
               "failure-schedule domain state shape (",
               state.pdu_streams.size(), ", ", state.tor_streams.size(),
               ") does not match this schedule's (", pdu_streams_.size(),
               ", ", tor_streams_.size(), ")");
  AEVA_REQUIRE(state.script_next <= script_.size(),
               "failure-schedule script cursor ", state.script_next,
               " past the ", script_.size(), "-event script");
  script_next_ = state.script_next;
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    streams_[s].set_state(state.streams[s]);
  }
  sampled_next_ = state.sampled_next;
  for (std::size_t d = 0; d < pdu_streams_.size(); ++d) {
    pdu_streams_[d].set_state(state.pdu_streams[d]);
  }
  pdu_next_ = state.pdu_next;
  for (std::size_t r = 0; r < tor_streams_.size(); ++r) {
    tor_streams_[r].set_state(state.tor_streams[r]);
  }
  tor_next_ = state.tor_next;
}

// --- scripted-trace I/O -----------------------------------------------------

namespace {

double parse_field(const std::string& field, std::size_t lineno,
                   const char* what) {
  const auto parsed = util::parse_double(field);
  AEVA_REQUIRE(parsed.has_value() && std::isfinite(*parsed),
               "failure script line ", lineno, ": malformed ", what, " '",
               field.substr(0, 32), "'");
  return *parsed;
}

}  // namespace

std::vector<FailureEvent> parse_failure_script(std::istream& in) {
  std::vector<FailureEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string text = util::trim(line);
    if (text.empty() || text.front() == '#' || text.front() == ';') {
      continue;
    }
    const std::vector<std::string> fields = util::split_whitespace(text);
    FailureEvent event;
    if (fields.front() == "crash") {
      AEVA_REQUIRE(fields.size() == 4, "failure script line ", lineno,
                   ": crash takes <server> <at_s> <repair_s>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kCrash;
    } else if (fields.front() == "degrade") {
      AEVA_REQUIRE(fields.size() == 5, "failure script line ", lineno,
                   ": degrade takes <server> <at_s> <window_s> <mult>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kDegrade;
    } else if (fields.front() == "brownout") {
      AEVA_REQUIRE(fields.size() == 5, "failure script line ", lineno,
                   ": brownout takes <server> <at_s> <window_s> <cap_w>, "
                   "got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kBrownout;
    } else if (fields.front() == "pdu") {
      AEVA_REQUIRE(fields.size() == 4, "failure script line ", lineno,
                   ": pdu takes <feed> <at_s> <repair_s>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kPduFault;
    } else if (fields.front() == "tor") {
      AEVA_REQUIRE(fields.size() == 4, "failure script line ", lineno,
                   ": tor takes <switch> <at_s> <window_s>, got ",
                   fields.size() - 1, " fields");
      event.kind = FailureKind::kTorFault;
    } else {
      AEVA_REQUIRE(false, "failure script line ", lineno,
                   ": unknown event kind '", fields.front().substr(0, 32),
                   "'");
    }
    const double server = parse_field(fields[1], lineno, "server index");
    AEVA_REQUIRE(server >= 0.0 && server <= 1e9 &&
                     server == std::floor(server),
                 "failure script line ", lineno, ": server index ",
                 fields[1].substr(0, 32), " is not a small non-negative "
                 "integer");
    event.server = static_cast<int>(server);
    event.at_s = parse_field(fields[2], lineno, "event time");
    AEVA_REQUIRE(event.at_s >= 0.0, "failure script line ", lineno,
                 ": negative event time");
    event.duration_s = parse_field(fields[3], lineno, "duration");
    AEVA_REQUIRE(event.duration_s >= 0.0, "failure script line ", lineno,
                 ": negative duration");
    if (fields.size() == 5) {
      event.magnitude = parse_field(fields[4], lineno, "magnitude");
    }
    // Re-use the config-level range checks (server/domain bounds checked
    // at FailureConfig::validate time, when cloud and topology sizes are
    // known).
    validate_event(event, std::numeric_limits<int>::max(),
                   std::numeric_limits<int>::max(),
                   std::numeric_limits<int>::max(), lineno);
    events.push_back(event);
  }
  return events;
}

std::vector<FailureEvent> parse_failure_script(const std::string& text) {
  std::istringstream in(text);
  return parse_failure_script(in);
}

std::vector<FailureEvent> read_failure_script_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open failure script: " + path);
  }
  return parse_failure_script(in);
}

void write_failure_script(std::ostream& out,
                          const std::vector<FailureEvent>& events) {
  out << "# aeva failure script: kind server at_s duration_s [magnitude]\n";
  for (const FailureEvent& event : events) {
    out << to_string(event.kind) << ' ' << event.server << ' ' << event.at_s
        << ' ' << event.duration_s;
    if (event.kind == FailureKind::kDegrade ||
        event.kind == FailureKind::kBrownout) {
      out << ' ' << event.magnitude;
    }
    out << '\n';
  }
}

}  // namespace aeva::datacenter
