#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/session.hpp"

namespace aeva::obs {
namespace {

TraceEvent make_event(const char* name, double ts_sim_s, double dur_sim_s) {
  TraceEvent event;
  event.name = name;
  event.cat = "test";
  event.phase = 'X';
  event.ts_sim_s = ts_sim_s;
  event.dur_sim_s = dur_sim_s;
  event.real_us = 12.5;  // fixed so exports are byte-comparable here
  return event;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(ToJsonl, OneLinePerEventPlusTerminatingMeta) {
  TraceLog log;
  log.record(make_event("first", 1.0, 0.5));
  log.record(make_event("second", 2.0, 0.25));
  const std::vector<std::string> lines = lines_of(to_jsonl(log));
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_NE(lines[0].find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"second\""), std::string::npos);
  EXPECT_EQ(lines[2], "{\"meta\":{\"events\":2,\"dropped\":0}}");
  // The determinism contract: real time is present but tagged.
  EXPECT_NE(lines[0].find("\"nondeterministic\":[\"real_us\"]"),
            std::string::npos);
}

TEST(ToJsonl, IdenticalLogsSerializeIdentically) {
  TraceLog a;
  TraceLog b;
  for (TraceLog* log : {&a, &b}) {
    TraceEvent event = make_event("same", 3.0, 1.0);
    event.args.emplace_back("job", "9");
    log->record(std::move(event));
  }
  EXPECT_EQ(to_jsonl(a), to_jsonl(b));
  EXPECT_EQ(to_chrome_trace(a), to_chrome_trace(b));
}

TEST(ToChromeTrace, EmitsMicrosecondTimesAndFixedPidTid) {
  TraceLog log;
  log.record(make_event("span", 2.0, 0.5));
  const std::string out = to_chrome_trace(log);
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(out.find("\"ts\":2000000"), std::string::npos);
  EXPECT_NE(out.find("\"dur\":500000"), std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ToChromeTrace, InstantEventsCarryNoDur) {
  TraceLog log;
  TraceEvent event = make_event("blip", 1.0, 0.0);
  event.phase = 'i';
  log.record(std::move(event));
  const std::string out = to_chrome_trace(log);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(out.find("\"dur\":"), std::string::npos);
}

TEST(MetricsToJson, EmitsAllThreeSectionsWithBucketArrays) {
  MetricsRegistry registry;
  registry.counter("c.hits").add(3);
  registry.gauge("g.rate").set(0.5);
  Histogram& hist = registry.histogram("h.sizes", {1.0, 10.0});
  hist.record(0.5);
  hist.record(50.0);
  const std::string out = metrics_to_json(registry.snapshot());
  EXPECT_NE(out.find("\"counters\":{\"c.hits\":3}"), std::string::npos);
  EXPECT_NE(out.find("\"g.rate\":0.5"), std::string::npos);
  EXPECT_NE(out.find("\"bounds\":[1,10]"), std::string::npos);
  EXPECT_NE(out.find("\"buckets\":[1,0,1]"), std::string::npos);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos);
}

TEST(MetricsSummaryTable, ListsEveryMetricWithItsKind) {
  MetricsRegistry registry;
  registry.counter("events").add(11);
  registry.gauge("hit_rate").set(0.75);
  registry.histogram("depth", {4.0}).record(2.0);
  const std::string table = metrics_summary_table(registry.snapshot());
  EXPECT_NE(table.find("events"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("hit_rate"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
  EXPECT_NE(table.find("n=1"), std::string::npos);
}

TEST(Session, CreateReturnsNullWhenDisabled) {
  ObsConfig config;
  config.enabled = false;
  EXPECT_EQ(Session::create(config), nullptr);
  config.enabled = true;
  EXPECT_NE(Session::create(config), nullptr);
}

TEST(Session, ExportFilesWritesEveryConfiguredPath) {
  const std::string dir = ::testing::TempDir();
  ObsConfig config;
  config.enabled = true;
  config.trace_jsonl_path = dir + "obs_export_test.jsonl";
  config.chrome_trace_path = dir + "obs_export_test_chrome.json";
  const std::shared_ptr<Session> session = Session::create(config);
  session->trace().record(make_event("e", 1.0, 0.5));
  session->metrics().counter("k").add();
  session->export_files();

  std::ifstream jsonl(config.trace_jsonl_path);
  std::stringstream jsonl_content;
  jsonl_content << jsonl.rdbuf();
  EXPECT_NE(jsonl_content.str().find("\"meta\""), std::string::npos);

  std::ifstream chrome(config.chrome_trace_path);
  std::stringstream chrome_content;
  chrome_content << chrome.rdbuf();
  EXPECT_NE(chrome_content.str().find("\"traceEvents\""), std::string::npos);
}

TEST(Session, ExportFilesThrowsOnUnwritablePath) {
  ObsConfig config;
  config.enabled = true;
  config.metrics_json_path = "/nonexistent-dir-for-obs-test/metrics.json";
  const std::shared_ptr<Session> session = Session::create(config);
  EXPECT_THROW(session->export_files(), std::runtime_error);
}

}  // namespace
}  // namespace aeva::obs
