#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace aeva::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0U);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42U);
}

TEST(Gauge, KeepsLastWrite) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(Histogram, RejectsUnsortedOrDuplicateBounds) {
  EXPECT_THROW(Histogram({10.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0}, 0), std::invalid_argument);
}

TEST(Histogram, BucketPlacementIsFirstBoundAtLeastValue) {
  Histogram hist({1.0, 10.0});
  hist.record(0.5);   // <= 1        -> bucket 0
  hist.record(1.0);   // == bound 0  -> bucket 0 (bound is inclusive)
  hist.record(5.0);   // <= 10       -> bucket 1
  hist.record(10.0);  // == bound 1  -> bucket 1
  hist.record(11.0);  // past last   -> overflow bucket 2
  const Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.buckets.size(), 3U);
  EXPECT_EQ(snap.buckets[0], 2U);
  EXPECT_EQ(snap.buckets[1], 2U);
  EXPECT_EQ(snap.buckets[2], 1U);
  EXPECT_EQ(snap.stats.count(), 5U);
  EXPECT_EQ(snap.stats.min(), 0.5);
  EXPECT_EQ(snap.stats.max(), 11.0);
}

TEST(Histogram, EmptyBoundsIsASingleOverflowBucket) {
  Histogram hist({});
  hist.record(7.0);
  const Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.buckets.size(), 1U);
  EXPECT_EQ(snap.buckets[0], 1U);
}

TEST(Histogram, ConcurrentRecordsMergeAcrossShards) {
  Histogram hist({100.0}, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const Histogram::Snapshot snap = hist.snapshot();
  constexpr std::size_t kTotal = std::size_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.stats.count(), kTotal);
  EXPECT_EQ(snap.buckets[0], kTotal);
  EXPECT_DOUBLE_EQ(snap.stats.mean(), 1.0);
}

TEST(MetricsRegistry, SameNameResolvesToSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  // Later bounds are ignored: the first creation wins.
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  Histogram& h2 = registry.histogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2U);
}

TEST(MetricsRegistry, KindsAreSeparateNamespaces) {
  MetricsRegistry registry;
  registry.counter("same").add(7);
  registry.gauge("same").set(2.5);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1U);
  ASSERT_EQ(snap.gauges.size(), 1U);
  EXPECT_EQ(snap.counters[0].second, 7U);
  EXPECT_EQ(snap.gauges[0].second, 2.5);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zebra").add();
  registry.counter("alpha").add();
  registry.counter("mid").add();
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3U);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

}  // namespace
}  // namespace aeva::obs
