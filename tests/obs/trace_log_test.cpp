#include "obs/trace_log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace aeva::obs {
namespace {

TraceEvent instant(const char* name, double ts_sim_s) {
  TraceEvent event;
  event.name = name;
  event.cat = "test";
  event.phase = 'i';
  event.ts_sim_s = ts_sim_s;
  return event;
}

TEST(TraceLog, AssignsSequentialSeq) {
  TraceLog log;
  log.record(instant("a", 1.0));
  log.record(instant("b", 2.0));
  log.record(instant("c", 3.0));
  const std::vector<TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].seq, 0U);
  EXPECT_EQ(events[1].seq, 1U);
  EXPECT_EQ(events[2].seq, 2U);
  EXPECT_EQ(events[1].name, "b");
}

TEST(TraceLog, CapDropsAndCountsInsteadOfGrowing) {
  TraceLog log(2);
  log.record(instant("a", 1.0));
  log.record(instant("b", 2.0));
  log.record(instant("c", 3.0));
  log.record(instant("d", 4.0));
  EXPECT_EQ(log.size(), 2U);
  EXPECT_EQ(log.dropped(), 2U);
  // Dropped events do not consume sequence numbers: survivors stay dense.
  const std::vector<TraceEvent> events = log.events();
  EXPECT_EQ(events.back().seq, 1U);
}

TEST(TraceLog, RejectsZeroCapacity) {
  EXPECT_THROW(TraceLog(0), std::invalid_argument);
}

TEST(Span, CloseRecordsOneCompleteEvent) {
  TraceLog log;
  {
    Span span(&log, "work", "test", 10.0);
    span.arg("job", "7");
    span.close(12.5);
    span.close(99.0);  // idempotent: only the first close emits
  }
  const std::vector<TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 1U);
  const TraceEvent& event = events[0];
  EXPECT_EQ(event.name, "work");
  EXPECT_EQ(event.cat, "test");
  EXPECT_EQ(event.phase, 'X');
  EXPECT_EQ(event.ts_sim_s, 10.0);
  EXPECT_EQ(event.dur_sim_s, 2.5);
  EXPECT_GE(event.real_us, 0.0);  // measured, nondeterministic
  ASSERT_EQ(event.args.size(), 1U);
  EXPECT_EQ(event.args[0].first, "job");
  EXPECT_EQ(event.args[0].second, "7");
}

TEST(Span, CancelEmitsNothing) {
  TraceLog log;
  {
    Span span(&log, "aborted", "test", 1.0);
    span.cancel();
  }
  EXPECT_EQ(log.size(), 0U);
}

TEST(Span, DestructorClosesAnUnclosedSpanAtItsBeginTime) {
  TraceLog log;
  {
    Span span(&log, "leaky", "test", 5.0);
  }
  const std::vector<TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].ts_sim_s, 5.0);
  EXPECT_EQ(events[0].dur_sim_s, 0.0);
}

TEST(Span, NullLogIsACompleteNoOp) {
  Span span(nullptr, "disabled", "test", 0.0);
  span.arg("k", "v");
  span.close(1.0);
  span.cancel();
  // Nothing to assert beyond "did not crash / allocate a log".
}

TEST(MonotonicClock, NeverGoesBackwards) {
  const std::uint64_t a = monotonic_now_ns();
  const std::uint64_t b = monotonic_now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace aeva::obs
