#include "profiling/profiler.hpp"

#include <gtest/gtest.h>

#include "workload/registry.hpp"

namespace aeva::profiling {
namespace {

using workload::ProfileClass;
using workload::Subsystem;

TEST(MapToClass, DiskIntensiveIsIo) {
  EXPECT_EQ(map_to_class(false, false, true, false), ProfileClass::kIo);
  EXPECT_EQ(map_to_class(true, true, true, true), ProfileClass::kIo);
}

TEST(MapToClass, NetworkWithoutCpuIsIo) {
  EXPECT_EQ(map_to_class(false, false, false, true), ProfileClass::kIo);
}

TEST(MapToClass, NetworkWithCpuIsCpu) {
  // A CPU- cum network-intensive MPI code is a CPU workload for the model.
  EXPECT_EQ(map_to_class(true, false, false, true), ProfileClass::kCpu);
}

TEST(MapToClass, MemoryBeatsCpu) {
  EXPECT_EQ(map_to_class(true, true, false, false), ProfileClass::kMem);
}

TEST(MapToClass, DefaultIsCpu) {
  EXPECT_EQ(map_to_class(false, false, false, false), ProfileClass::kCpu);
  EXPECT_EQ(map_to_class(true, false, false, false), ProfileClass::kCpu);
}

TEST(Profiler, ClassifiesAllBuiltinsAsTheirRegistryClass) {
  // The registry's labels and the measurement-driven classifier must
  // agree — this is the consistency check between Sect. III-A profiling
  // and the model database keying.
  const Profiler profiler;
  for (const workload::AppSpec& app : workload::builtin_apps()) {
    const ApplicationProfile profile = profiler.profile(app);
    EXPECT_EQ(profile.mapped_class, app.profile) << app.name;
  }
}

TEST(Profiler, LinpackIsCpuIntensiveOnly) {
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("linpack"));
  const auto intensive = profile.intensive_subsystems();
  ASSERT_EQ(intensive.size(), 1u);
  EXPECT_EQ(intensive[0], Subsystem::kCpu);
}

TEST(Profiler, MpiComputeIsCpuAndNetworkIntensive) {
  // Fig. 1 (right): intensive along multiple dimensions.
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("mpicompute"));
  const auto intensive = profile.intensive_subsystems();
  ASSERT_EQ(intensive.size(), 2u);
  EXPECT_EQ(intensive[0], Subsystem::kCpu);
  EXPECT_EQ(intensive[1], Subsystem::kNetwork);
}

TEST(Profiler, BeffioIsDiskAndNetworkIntensive) {
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("beffio"));
  bool disk = false;
  bool net = false;
  for (const Subsystem s : profile.intensive_subsystems()) {
    disk |= s == Subsystem::kDisk;
    net |= s == Subsystem::kNetwork;
  }
  EXPECT_TRUE(disk);
  EXPECT_TRUE(net);
}

TEST(Profiler, RuntimeMatchesSoloExecution) {
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("fftw"));
  EXPECT_NEAR(profile.runtime_s,
              workload::find_app("fftw").nominal_runtime_s(), 1e-6);
}

TEST(Profiler, MeanNaturalUnitsAreSane) {
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("linpack"));
  // Single linpack VM: ~0.92 cores plus a small hypervisor tax.
  const auto& cpu = profile.subsystems[static_cast<int>(Subsystem::kCpu)];
  EXPECT_NEAR(cpu.mean_natural, 0.94, 0.05);
  // No disk or network activity.
  const auto& disk = profile.subsystems[static_cast<int>(Subsystem::kDisk)];
  EXPECT_NEAR(disk.mean_natural, 0.0, 1e-6);
}

TEST(Profiler, UtilizationSeriesSampledAtCollectorPeriod) {
  const Profiler profiler;
  const ApplicationProfile profile =
      profiler.profile(workload::find_app("bonnie"));
  const auto& series = profile.subsystems[0].utilization;
  ASSERT_GE(series.size(), 2u);
  EXPECT_NEAR(series[1].time_s - series[0].time_s, 1.0, 1e-9);
}

TEST(Profiler, ThresholdBoundaryBehaviour) {
  // An app exactly at the CPU threshold counts as intensive (>=).
  ClassifierThresholds thresholds;
  CollectorSpec collector;
  testbed::ServerConfig server = testbed::testbed_server();
  server.per_vm_cpu_overhead = 0.0;  // exact demand observable
  const Profiler profiler(server, collector, thresholds);

  workload::AppSpec app;
  app.name = "boundary";
  app.profile = ProfileClass::kCpu;
  app.mem_footprint_mb = 16.0;
  app.phases = {workload::Phase{
      "p", workload::Demand{thresholds.cpu_cores, 0.0, 0.0, 0.0}, 100.0}};
  const ApplicationProfile profile = profiler.profile(app);
  EXPECT_TRUE(
      profile.subsystems[static_cast<int>(Subsystem::kCpu)].intensive);
}

TEST(Profiler, RejectsBadConfiguration) {
  ClassifierThresholds thresholds;
  thresholds.cpu_cores = 0.0;
  EXPECT_THROW(Profiler(testbed::testbed_server(), CollectorSpec{},
                        thresholds),
               std::invalid_argument);

  CollectorSpec collector;
  collector.period_s = 0.0;
  EXPECT_THROW(Profiler(testbed::testbed_server(), collector,
                        ClassifierThresholds{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::profiling
