/// \file fcfs_queue_test.cpp
/// FcfsQueue must be observably identical to std::deque<std::size_t> with
/// erase(begin()+pos) — the seed loop's container — while erasing in O(1)
/// amortized. The differential test drives both through a long random
/// push/index/erase schedule; the targeted tests pin the drained-rewind
/// and in-place-compaction paths.

#include "datacenter/fcfs_queue.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace aeva::datacenter {
namespace {

std::vector<std::size_t> snapshot(const FcfsQueue& q) {
  std::vector<std::size_t> out;
  q.for_each([&](std::size_t j) { out.push_back(j); });
  return out;
}

TEST(FcfsQueue, BasicFifoOrder) {
  FcfsQueue q;
  EXPECT_TRUE(q.empty());
  q.push_back(7);
  q.push_back(3);
  q.push_back(9);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], 7u);
  EXPECT_EQ(q[1], 3u);
  EXPECT_EQ(q[2], 9u);
  q.erase_at(0);
  EXPECT_EQ(q[0], 3u);
  EXPECT_EQ(q[1], 9u);
}

TEST(FcfsQueue, EraseAtMiddlePreservesRelativeOrder) {
  FcfsQueue q;
  for (std::size_t j = 0; j < 6; ++j) {
    q.push_back(j);
  }
  q.erase_at(2);  // drop job 2
  q.erase_at(3);  // positions shifted: drops job 4
  const std::vector<std::size_t> expect{0, 1, 3, 5};
  EXPECT_EQ(snapshot(q), expect);
}

TEST(FcfsQueue, DrainedQueueRewindsWithoutLosingCapacity) {
  FcfsQueue q;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t j = 0; j < 100; ++j) {
      q.push_back(j);
    }
    while (!q.empty()) {
      q.erase_at(0);
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
  }
  q.push_back(42);
  EXPECT_EQ(q[0], 42u);
}

TEST(FcfsQueue, CompactionTriggersAndPreservesOrder) {
  FcfsQueue q;
  // Keep a small live set while tombstoning far more than live + 64 so
  // the in-place compaction must run at least once.
  for (std::size_t j = 0; j < 400; ++j) {
    q.push_back(j);
  }
  // Erase from the middle (never the head) so dead slots accumulate
  // between head and the live tail.
  while (q.size() > 4) {
    q.erase_at(1);
  }
  const std::vector<std::size_t> live = snapshot(q);
  ASSERT_EQ(live.size(), 4u);
  EXPECT_EQ(live[0], 0u);  // head never erased
  EXPECT_EQ(live[3], 399u);
  EXPECT_EQ(q[0], live[0]);
  EXPECT_EQ(q[3], live[3]);
}

TEST(FcfsQueue, RejectsTombstoneValueAndBadPositions) {
  FcfsQueue q;
  EXPECT_THROW(q.push_back(FcfsQueue::kTombstone), std::invalid_argument);
  EXPECT_THROW(q.erase_at(0), std::invalid_argument);
  q.push_back(1);
  EXPECT_THROW((void)q[1], std::invalid_argument);
}

TEST(FcfsQueue, DifferentialAgainstDequeEraseSemantics) {
  util::Rng rng(1234);
  FcfsQueue q;
  std::deque<std::size_t> ref;
  std::size_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.uniform_int(0, 2);
    if (op == 0 || ref.empty()) {
      q.push_back(next);
      ref.push_back(next);
      ++next;
    } else if (op == 1) {
      // Backfill-style erase at a random live position.
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1));
      ASSERT_EQ(q[pos], ref[pos]) << "step " << step;
      q.erase_at(pos);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pos));
    } else {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1));
      ASSERT_EQ(q[pos], ref[pos]) << "step " << step;
    }
    ASSERT_EQ(q.size(), ref.size()) << "step " << step;
  }
  const std::vector<std::size_t> expect(ref.begin(), ref.end());
  EXPECT_EQ(snapshot(q), expect);
}

}  // namespace
}  // namespace aeva::datacenter
