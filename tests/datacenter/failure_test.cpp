/// Fault injection & recovery semantics (docs/RESILIENCE.md): scripted and
/// sampled failures, the three failure modes, the recovery policies, and
/// the bit-identity guarantee when the subsystem is disabled.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <utility>

#include "core/first_fit.hpp"
#include "datacenter/failure.hpp"
#include "datacenter/simulator.hpp"
#include "datacenter/topology.hpp"
#include "testing/shared_db.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

double solo_s() { return db().base().of(ProfileClass::kCpu).solo_time_s; }

/// Power of a server hosting one solo CPU VM (record mean, floored at the
/// 125 W powered-on baseline).
double solo_power_w() {
  workload::ClassCounts mix;
  ++mix.of(ProfileClass::kCpu);
  return std::max(db().estimate(mix).avg_power_w(), 125.0);
}

PreparedWorkload one_vm(double runtime_scale = 1.0) {
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = runtime_scale;
  job.deadline_s = 1e12;
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  return workload;
}

PreparedWorkload staggered(int jobs_n) {
  PreparedWorkload workload;
  for (int i = 0; i < jobs_n; ++i) {
    JobRequest job;
    job.id = i + 1;
    job.submit_s = i * 15.0;
    job.profile = ProfileClass::kCpu;
    job.vm_count = 1;
    job.runtime_scale = (i % 3 == 0) ? 2.0 : 0.7;
    job.deadline_s = 1e12;
    workload.jobs.push_back(job);
    workload.total_vms += 1;
  }
  return workload;
}

CloudConfig cloud_of(int servers) {
  CloudConfig cloud;
  cloud.server_count = servers;
  return cloud;
}

FailureEvent crash(int server, double at_s, double repair_s) {
  FailureEvent event;
  event.kind = FailureKind::kCrash;
  event.server = server;
  event.at_s = at_s;
  event.duration_s = repair_s;
  return event;
}

void expect_identical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.energy_j, b.energy_j);  // bitwise, not approximate
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.mean_response_s, b.mean_response_s);
  EXPECT_EQ(a.mean_wait_s, b.mean_wait_s);
  EXPECT_EQ(a.vms, b.vms);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
  EXPECT_EQ(a.servers_powered, b.servers_powered);
}

TEST(Failure, DisabledConfigIsBitIdentical) {
  // The resilience layer must be inert when disabled: a config carrying a
  // script, MTBF, and a recovery policy — but enabled = false — produces
  // the exact run a default config does (no RNG or accounting perturbation).
  const core::FirstFitAllocator ff(2);
  const SimMetrics plain =
      Simulator(db(), cloud_of(4)).run(staggered(10), ff);
  CloudConfig loaded = cloud_of(4);
  loaded.failure.script.push_back(crash(0, 5.0, 100.0));
  loaded.failure.mtbf_s = 100.0;
  loaded.failure.recovery.policy = RecoveryPolicy::kCheckpointRestart;
  const SimMetrics with_config =
      Simulator(db(), loaded).run(staggered(10), ff);
  expect_identical(plain, with_config);
  EXPECT_EQ(with_config.failures, 0u);
  EXPECT_EQ(with_config.vm_restarts, 0u);
  EXPECT_DOUBLE_EQ(with_config.lost_work_s, 0.0);
  EXPECT_DOUBLE_EQ(with_config.goodput_fraction, 1.0);
}

TEST(Failure, ScriptedCrashLosesHandComputedWork) {
  // One VM at rate 1/solo crashes a quarter of the way in; under
  // restart-from-zero the lost work is exactly 0.25 solo-seconds and the
  // VM re-runs in full on the surviving server.
  const double T = 0.25 * solo_s();
  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, T, 1e12));  // never repaired
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 1u);
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_EQ(m.vms, 1u);
  EXPECT_NEAR(m.lost_work_s, 0.25 * solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.makespan_s, 1.25 * solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.goodput_fraction, 1.0 / 1.25, 1e-9);
  // Energy: one server drawing solo power for 0.25·solo, then the
  // replacement drawing the same for a full solo run.
  EXPECT_NEAR(m.energy_j, solo_power_w() * 1.25 * solo_s(),
              1e-6 * solo_power_w() * solo_s());
}

TEST(Failure, CheckpointRestartResumesFromBoundary) {
  // Tax 0 keeps the arithmetic exact: checkpoints at 0.1·solo intervals,
  // crash at 0.25·solo → the VM resumes from 0.2 and loses only 0.05.
  const double T = 0.25 * solo_s();
  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, T, 1e12));
  cloud.failure.recovery.policy = RecoveryPolicy::kCheckpointRestart;
  cloud.failure.recovery.checkpoint_period_s = 0.1 * solo_s();
  cloud.failure.recovery.checkpoint_tax = 0.0;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_NEAR(m.lost_work_s, 0.05 * solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.makespan_s, (0.25 + 0.8) * solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.goodput_fraction, 1.0 / 1.05, 1e-9);
}

TEST(Failure, CheckpointTaxSlowsFailFreeRun) {
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  cloud.failure.recovery.policy = RecoveryPolicy::kCheckpointRestart;
  cloud.failure.recovery.checkpoint_tax = 0.10;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 0u);
  EXPECT_NEAR(m.makespan_s, solo_s() / 0.9, 1e-6 * solo_s());
}

TEST(Failure, AbandonAfterRetriesDropsTheVm) {
  // max_retries = 0: the first loss abandons the VM; nothing completes,
  // but the simulation terminates and accounts the loss.
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, 0.5 * solo_s(), 1e12));
  cloud.failure.recovery.policy = RecoveryPolicy::kAbandonAfterRetries;
  cloud.failure.recovery.max_retries = 0;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 1u);
  EXPECT_EQ(m.vms_abandoned, 1u);
  EXPECT_EQ(m.vm_restarts, 0u);
  EXPECT_EQ(m.vms, 0u);
  EXPECT_NEAR(m.lost_work_s, 0.5 * solo_s(), 1e-6 * solo_s());
  EXPECT_DOUBLE_EQ(m.goodput_fraction, 0.0);
}

TEST(Failure, AbandonReleasesWorkflowDependents) {
  PreparedWorkload workload = one_vm();
  JobRequest dependent;
  dependent.id = 2;
  dependent.submit_s = 1.0;
  dependent.profile = ProfileClass::kCpu;
  dependent.vm_count = 1;
  dependent.runtime_scale = 0.1;
  dependent.deadline_s = 1e12;
  dependent.depends_on = 1;
  workload.jobs.push_back(dependent);
  workload.total_vms = 2;

  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, 0.5 * solo_s(), 1e12));
  cloud.failure.recovery.policy = RecoveryPolicy::kAbandonAfterRetries;
  cloud.failure.recovery.max_retries = 0;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(workload, ff);
  EXPECT_EQ(m.vms_abandoned, 1u);
  EXPECT_EQ(m.vms, 1u);  // the dependent still ran to completion
}

TEST(Failure, DegradeWindowSlowsThenRecovers) {
  // Rate halved over [0, 0.5·solo]: progress 0.25 inside the window, the
  // remaining 0.75 at full rate → completion at 1.25·solo.
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  FailureEvent degrade;
  degrade.kind = FailureKind::kDegrade;
  degrade.server = 0;
  degrade.at_s = 0.0;
  degrade.duration_s = 0.5 * solo_s();
  degrade.magnitude = 0.5;
  cloud.failure.script.push_back(degrade);
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 0u);  // degradation is not a crash
  EXPECT_EQ(m.vms, 1u);
  EXPECT_NEAR(m.makespan_s, 1.25 * solo_s(), 1e-6 * solo_s());
  EXPECT_DOUBLE_EQ(m.goodput_fraction, 1.0);
}

TEST(Failure, BrownoutCapsPowerProportionally) {
  // A cap at half the solo draw halves the progress rate; the energy under
  // the cap integrates to the same total (half power, twice the time).
  const double cap = 0.5 * solo_power_w();
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  FailureEvent brownout;
  brownout.kind = FailureKind::kBrownout;
  brownout.server = 0;
  brownout.at_s = 0.0;
  brownout.duration_s = 1e12;  // covers the whole run
  brownout.magnitude = cap;
  cloud.failure.script.push_back(brownout);
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_NEAR(m.makespan_s, 2.0 * solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.energy_j, cap * m.makespan_s, 1e-6 * cap * solo_s());
}

TEST(Failure, CrashedServerIsMaskedUntilRepair) {
  // Server 0 dies before the job arrives; first-fit must route to server 1
  // even though 0 comes first in the list.
  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, 0.0, 1e12));
  cloud.record_completions = true;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  ASSERT_EQ(m.completions.size(), 1u);
  EXPECT_EQ(m.completions.front().server, 1);
  EXPECT_EQ(m.failures, 1u);
  EXPECT_EQ(m.vm_restarts, 0u);  // nothing was running when it died
}

TEST(Failure, SingleServerCloudWaitsOutTheRepair) {
  // The only server is down when the job arrives: the queue must wait for
  // the repair instead of deadlocking, and the server returns cold.
  const double repair = 500.0;
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, 0.0, repair));
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.vms, 1u);
  EXPECT_NEAR(m.makespan_s, repair + solo_s(), 1e-6 * solo_s());
  EXPECT_NEAR(m.mean_wait_s, repair, 1e-6);
  EXPECT_EQ(m.servers_powered, 1u);
}

TEST(Failure, RestartCountsAgainstRetryBudget) {
  // Two crashes with max_retries = 1: the first loss restarts the VM, the
  // second abandons it.
  CloudConfig cloud = cloud_of(1);
  cloud.failure.enabled = true;
  cloud.failure.script.push_back(crash(0, 0.25 * solo_s(), 1.0));
  cloud.failure.script.push_back(crash(0, 0.5 * solo_s(), 1.0));
  cloud.failure.recovery.policy = RecoveryPolicy::kAbandonAfterRetries;
  cloud.failure.recovery.max_retries = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 2u);
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_EQ(m.vms_abandoned, 1u);
  EXPECT_EQ(m.vms, 0u);
}

TEST(Failure, SampledCrashesAreReproducible) {
  CloudConfig cloud = cloud_of(4);
  cloud.failure.enabled = true;
  cloud.failure.mtbf_s = 2000.0;
  cloud.failure.mttr_s = 300.0;
  const core::FirstFitAllocator ff(2);
  const Simulator sim(db(), cloud);
  const SimMetrics a = sim.run(staggered(12), ff);
  const SimMetrics b = sim.run(staggered(12), ff);
  expect_identical(a, b);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.vm_restarts, b.vm_restarts);
  EXPECT_EQ(a.lost_work_s, b.lost_work_s);
  EXPECT_GT(a.failures, 0u);
}

TEST(Failure, SampledCrashesFollowTheFailureSeed) {
  CloudConfig cloud = cloud_of(4);
  cloud.failure.enabled = true;
  cloud.failure.mtbf_s = 2000.0;
  cloud.failure.mttr_s = 300.0;
  const core::FirstFitAllocator ff(2);
  const SimMetrics a = Simulator(db(), cloud).run(staggered(12), ff);
  cloud.failure.seed = 7;
  const SimMetrics b = Simulator(db(), cloud).run(staggered(12), ff);
  EXPECT_TRUE(a.failures != b.failures || a.lost_work_s != b.lost_work_s ||
              a.makespan_s != b.makespan_s)
      << "different failure seeds should yield different fault histories";
}

TEST(Failure, MidTransferCrashOfDestinationAbortsCleanly) {
  // Satellite regression: a migration in flight toward a server that dies
  // mid-copy must abort cleanly — the VM stays whole on its source, the
  // reservation is dropped, and nothing is double-accounted. With crashes
  // scripted onto every server in turn (transfers slowed to hours), any
  // mis-accounting shows up as a lost VM, a stuck queue, or an invariant
  // failure.
  for (int victim = 0; victim < 8; ++victim) {
    PreparedWorkload workload;
    for (int i = 0; i < 12; ++i) {
      JobRequest job;
      job.id = i + 1;
      job.submit_s = i * 10.0;
      job.profile = ProfileClass::kCpu;
      job.vm_count = 1;
      job.runtime_scale = (i % 4 == 0) ? 3.0 : 0.5;
      job.deadline_s = 1e12;
      workload.jobs.push_back(job);
      workload.total_vms += 1;
    }
    CloudConfig cloud = cloud_of(8);
    cloud.migration.enabled = true;
    cloud.migration.check_interval_s = 300.0;
    cloud.migration.transfer_mbps = 0.01;  // transfers outlive the run
    cloud.failure.enabled = true;
    cloud.failure.script.push_back(crash(victim, 350.0, 1e12));
    const core::FirstFitAllocator ff(1);
    const SimMetrics m = Simulator(db(), cloud).run(workload, ff);
    EXPECT_EQ(m.vms + m.vms_abandoned, 12u) << "victim server " << victim;
    EXPECT_EQ(m.vms_abandoned, 0u) << "victim server " << victim;
    EXPECT_GE(m.goodput_fraction, 0.0);
    EXPECT_LE(m.goodput_fraction, 1.0);
  }
}

TEST(Failure, RejectsInvalidConfigs) {
  const core::FirstFitAllocator ff(1);
  CloudConfig bad = cloud_of(2);
  bad.failure.enabled = true;
  bad.failure.script.push_back(crash(5, 0.0, 1.0));  // server out of range
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(2);
  bad.failure.enabled = true;
  FailureEvent degrade;
  degrade.kind = FailureKind::kDegrade;
  degrade.magnitude = 0.0;  // multiplier out of (0, 1]
  bad.failure.script.push_back(degrade);
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(2);
  bad.failure.enabled = true;
  bad.failure.mtbf_s = 100.0;
  bad.failure.mttr_s = 0.0;  // sampling needs a positive MTTR
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(2);
  bad.failure.enabled = true;
  bad.failure.recovery.checkpoint_tax = 1.0;  // out of [0, 1)
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(2);
  bad.failure.enabled = true;
  bad.failure.recovery.max_retries = -1;
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);
}

TEST(FailureSchedule, MergesScriptInTimeOrder) {
  FailureConfig config;
  config.enabled = true;
  config.script.push_back(crash(1, 100.0, 5.0));
  config.script.push_back(crash(0, 50.0, 5.0));
  FailureSchedule schedule(config, 2, 0.0);
  EXPECT_DOUBLE_EQ(schedule.next_time(), 50.0);
  const auto first = schedule.pop_due(50.0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.front().server, 0);
  EXPECT_DOUBLE_EQ(schedule.next_time(), 100.0);
}

TEST(FailureSchedule, DisabledConfigHasNoEvents) {
  FailureConfig config;
  config.script.push_back(crash(0, 1.0, 1.0));
  config.mtbf_s = 10.0;
  FailureSchedule schedule(config, 4, 0.0);
  EXPECT_TRUE(std::isinf(schedule.next_time()));
  EXPECT_TRUE(schedule.pop_due(1e18).empty());
}

TEST(FailureScript, RoundTripsThroughText) {
  std::vector<FailureEvent> events;
  events.push_back(crash(3, 120.5, 900.0));
  FailureEvent degrade;
  degrade.kind = FailureKind::kDegrade;
  degrade.server = 1;
  degrade.at_s = 10.0;
  degrade.duration_s = 60.0;
  degrade.magnitude = 0.25;
  events.push_back(degrade);
  FailureEvent brownout;
  brownout.kind = FailureKind::kBrownout;
  brownout.server = 0;
  brownout.at_s = 30.0;
  brownout.duration_s = 300.0;
  brownout.magnitude = 140.0;
  events.push_back(brownout);

  std::ostringstream out;
  write_failure_script(out, events);
  const std::vector<FailureEvent> parsed = parse_failure_script(out.str());
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind);
    EXPECT_EQ(parsed[i].server, events[i].server);
    EXPECT_DOUBLE_EQ(parsed[i].at_s, events[i].at_s);
    EXPECT_DOUBLE_EQ(parsed[i].duration_s, events[i].duration_s);
  }
}

// --- correlated failure domains --------------------------------------------

FailureEvent domain_fault(FailureKind kind, int domain, double at_s,
                          double window_s) {
  FailureEvent event;
  event.kind = kind;
  event.server = domain;
  event.at_s = at_s;
  event.duration_s = window_s;
  return event;
}

/// rack 0 = {0, 1} on pdu/tor 0, rack 1 = {2} on pdu/tor 1.
Topology small_topology() {
  return Topology::from_racks(
      {RackSpec{0, 0, 0, {0, 1}}, RackSpec{1, 1, 1, {2}}});
}

TEST(DomainFailure, PduFaultCrashesTheWholeFeed) {
  // The VM runs on server 0; feed 0 also powers the idle server 1. One
  // pdu event must crash both at once, and the blast radius counts only
  // the resident VM. The orphan restarts on server 2 (feed 1).
  const Topology topo = small_topology();
  const double T = 0.25 * solo_s();
  CloudConfig cloud = cloud_of(3);
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.script.push_back(
      domain_fault(FailureKind::kPduFault, 0, T, 1e12));
  cloud.record_completions = true;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 2u) << "both servers on the feed crash";
  EXPECT_EQ(m.correlated_failures, 1u) << "but it is one correlated fault";
  EXPECT_EQ(m.blast_radius_vms_max, 1u);
  EXPECT_DOUBLE_EQ(m.blast_radius_vms_mean, 1.0);
  EXPECT_EQ(m.vm_restarts, 1u);
  EXPECT_EQ(m.vms, 1u);
  EXPECT_NEAR(m.lost_work_s, 0.25 * solo_s(), 1e-6 * solo_s());
  EXPECT_EQ(m.lost_work_correlated_s, m.lost_work_s)
      << "all lost work came from the PDU fault";
  EXPECT_NEAR(m.makespan_s, 1.25 * solo_s(), 1e-6 * solo_s());
  ASSERT_EQ(m.completions.size(), 1u);
  EXPECT_EQ(m.completions.front().server, 2) << "restarted off the dead feed";
}

TEST(DomainFailure, TorFaultStallsResidentsWithoutLosingWork) {
  // An isolated rack freezes its residents: no crash, no lost work, no
  // restart — the VM simply finishes one window later.
  const Topology topo =
      Topology::from_racks({RackSpec{0, 0, 0, {0}}, RackSpec{1, 1, 1, {1}}});
  const double window = 500.0;
  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.script.push_back(
      domain_fault(FailureKind::kTorFault, 0, 0.25 * solo_s(), window));
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(one_vm(), ff);
  EXPECT_EQ(m.failures, 0u) << "isolation is not a crash";
  EXPECT_EQ(m.correlated_failures, 1u);
  EXPECT_EQ(m.blast_radius_vms_max, 1u);
  EXPECT_EQ(m.vm_restarts, 0u);
  EXPECT_DOUBLE_EQ(m.lost_work_s, 0.0);
  EXPECT_DOUBLE_EQ(m.lost_work_correlated_s, 0.0);
  EXPECT_EQ(m.vms, 1u);
  EXPECT_NEAR(m.makespan_s, solo_s() + window, 1e-6 * solo_s());
  EXPECT_DOUBLE_EQ(m.goodput_fraction, 1.0);
}

TEST(DomainFailure, IsolatedRackIsMaskedFromTheAllocator) {
  // Rack 0 is isolated before the job arrives: first-fit must route to
  // the reachable server even though the isolated one comes first.
  const Topology topo =
      Topology::from_racks({RackSpec{0, 0, 0, {0}}, RackSpec{1, 1, 1, {1}}});
  PreparedWorkload workload = one_vm();
  workload.jobs.front().submit_s = 50.0;  // mid-outage
  CloudConfig cloud = cloud_of(2);
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.script.push_back(
      domain_fault(FailureKind::kTorFault, 0, 0.0, 300.0));
  cloud.record_completions = true;
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(workload, ff);
  ASSERT_EQ(m.completions.size(), 1u);
  EXPECT_EQ(m.completions.front().server, 1);
  EXPECT_EQ(m.correlated_failures, 1u);
  EXPECT_EQ(m.blast_radius_vms_max, 0u) << "nothing was resident at fault";
}

TEST(DomainFailure, TorHealReleasesTheWholeRackAtOnce) {
  // Two VMs co-resident on one rack stall together and resume together:
  // the makespan extends by exactly one window, not two.
  const Topology topo = small_topology();
  PreparedWorkload workload;
  for (int i = 0; i < 2; ++i) {
    JobRequest job;
    job.id = i + 1;
    job.submit_s = 0.0;
    job.profile = ProfileClass::kCpu;
    job.vm_count = 1;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e12;
    workload.jobs.push_back(job);
    workload.total_vms += 1;
  }
  const double window = 400.0;
  CloudConfig cloud = cloud_of(3);
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.script.push_back(
      domain_fault(FailureKind::kTorFault, 0, 0.25 * solo_s(), window));
  const core::FirstFitAllocator ff(1);
  const SimMetrics m = Simulator(db(), cloud).run(workload, ff);
  EXPECT_EQ(m.vms, 2u);
  EXPECT_EQ(m.correlated_failures, 1u);
  EXPECT_EQ(m.blast_radius_vms_max, 2u) << "both residents in the blast";
  EXPECT_DOUBLE_EQ(m.blast_radius_vms_mean, 2.0);
  EXPECT_EQ(m.vm_restarts, 0u);
  EXPECT_GE(m.makespan_s, solo_s() + window - 1e-6 * solo_s());
}

TEST(DomainFailure, SampledDomainFaultsAreReproducible) {
  const Topology topo = make_synthetic_topology(
      SyntheticTopologyConfig{4, 2, 1, 1});
  CloudConfig cloud = cloud_of(4);
  cloud.failure.enabled = true;
  cloud.failure.topology = &topo;
  cloud.failure.domains.pdu_mtbf_s = 3000.0;
  cloud.failure.domains.pdu_mttr_s = 300.0;
  cloud.failure.domains.tor_mtbf_s = 2500.0;
  cloud.failure.domains.tor_mttr_s = 200.0;
  const core::FirstFitAllocator ff(2);
  const Simulator sim(db(), cloud);
  const SimMetrics a = sim.run(staggered(12), ff);
  const SimMetrics b = sim.run(staggered(12), ff);
  expect_identical(a, b);
  EXPECT_EQ(a.correlated_failures, b.correlated_failures);
  EXPECT_EQ(a.lost_work_correlated_s, b.lost_work_correlated_s);
  EXPECT_EQ(a.blast_radius_vms_mean, b.blast_radius_vms_mean);
  EXPECT_GT(a.correlated_failures, 0u);
}

TEST(DomainFailure, DomainSamplingNeverShiftsPerServerDraws) {
  // The "domain-failures" named stream is independent of the per-server
  // "failures" stream: wiring up PDU/ToR sampling must leave the sampled
  // per-server crash sequence untouched, draw for draw.
  const Topology topo = make_synthetic_topology(
      SyntheticTopologyConfig{4, 2, 1, 1});
  const auto crash_sequence = [&](bool with_domains) {
    FailureConfig config;
    config.enabled = true;
    config.mtbf_s = 2000.0;
    config.mttr_s = 300.0;
    config.topology = &topo;
    if (with_domains) {
      config.domains.pdu_mtbf_s = 4000.0;
      config.domains.tor_mtbf_s = 3500.0;
    }
    config.validate(4);
    FailureSchedule schedule(config, 4, 0.0);
    std::vector<FailureEvent> due;
    std::vector<std::pair<int, double>> crashes;
    std::size_t domain_events = 0;
    while (schedule.next_time() < 50000.0) {
      schedule.pop_due(schedule.next_time(), due);
      for (const FailureEvent& event : due) {
        if (event.kind == FailureKind::kCrash) {
          crashes.emplace_back(event.server, event.at_s);
          schedule.on_crash(event.server);
          schedule.on_repair(event.server, event.at_s + event.duration_s);
        } else {
          ++domain_events;
        }
      }
    }
    return std::make_pair(crashes, domain_events);
  };
  const auto [base, base_domain_events] = crash_sequence(false);
  const auto [mixed, mixed_domain_events] = crash_sequence(true);
  EXPECT_EQ(base_domain_events, 0u);
  EXPECT_GT(mixed_domain_events, 0u);
  ASSERT_EQ(base.size(), mixed.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].first, mixed[i].first);
    EXPECT_EQ(base[i].second, mixed[i].second);  // bitwise
  }
  EXPECT_FALSE(base.empty());
}

TEST(DomainFailure, SimultaneousFaultsPopInCanonicalOrder) {
  // Satellite regression: a batch of same-instant faults must come out in
  // (time, domain/server, kind) order no matter the script order.
  const Topology topo = small_topology();
  FailureConfig config;
  config.enabled = true;
  config.topology = &topo;
  config.script.push_back(crash(2, 100.0, 50.0));
  config.script.push_back(
      domain_fault(FailureKind::kTorFault, 1, 100.0, 50.0));
  config.script.push_back(
      domain_fault(FailureKind::kPduFault, 0, 100.0, 50.0));
  config.validate(3);
  FailureSchedule schedule(config, 3, 0.0);
  const std::vector<FailureEvent> due = schedule.pop_due(100.0);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].kind, FailureKind::kPduFault);
  EXPECT_EQ(due[0].server, 0);
  EXPECT_EQ(due[1].kind, FailureKind::kTorFault);
  EXPECT_EQ(due[1].server, 1);
  EXPECT_EQ(due[2].kind, FailureKind::kCrash);
  EXPECT_EQ(due[2].server, 2);
}

TEST(DomainFailure, ReplayIsByteEqualUnderScriptPermutation) {
  // Same fault set, permuted script order: the canonical event order must
  // make the two runs bitwise identical, correlated metrics included.
  const Topology topo = make_synthetic_topology(
      SyntheticTopologyConfig{4, 2, 1, 1});
  const std::vector<FailureEvent> events = {
      crash(3, 400.0, 100.0),
      domain_fault(FailureKind::kPduFault, 0, 400.0, 300.0),
      domain_fault(FailureKind::kTorFault, 1, 400.0, 200.0),
  };
  const core::FirstFitAllocator ff(2);
  CloudConfig forward = cloud_of(4);
  forward.failure.enabled = true;
  forward.failure.topology = &topo;
  forward.failure.script = events;
  const SimMetrics a = Simulator(db(), forward).run(staggered(8), ff);
  CloudConfig reversed = cloud_of(4);
  reversed.failure.enabled = true;
  reversed.failure.topology = &topo;
  reversed.failure.script.assign(events.rbegin(), events.rend());
  const SimMetrics b = Simulator(db(), reversed).run(staggered(8), ff);
  expect_identical(a, b);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.correlated_failures, b.correlated_failures);
  EXPECT_EQ(a.lost_work_s, b.lost_work_s);
  EXPECT_EQ(a.lost_work_correlated_s, b.lost_work_correlated_s);
  EXPECT_EQ(a.blast_radius_vms_mean, b.blast_radius_vms_mean);
  EXPECT_EQ(a.correlated_failures, 2u);
}

TEST(DomainFailure, RejectsDomainEventsWithoutOrOutsideTheTopology) {
  const core::FirstFitAllocator ff(1);
  const Topology topo = small_topology();

  CloudConfig bad = cloud_of(3);
  bad.failure.enabled = true;  // pdu event but no topology wired
  bad.failure.script.push_back(
      domain_fault(FailureKind::kPduFault, 0, 1.0, 1.0));
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(3);
  bad.failure.enabled = true;
  bad.failure.topology = &topo;
  bad.failure.script.push_back(
      domain_fault(FailureKind::kPduFault, 2, 1.0, 1.0));  // feed range
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(3);
  bad.failure.enabled = true;
  bad.failure.topology = &topo;
  bad.failure.script.push_back(
      domain_fault(FailureKind::kTorFault, 5, 1.0, 1.0));  // switch range
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);

  bad = cloud_of(2);  // topology covers 3 servers, cloud has 2
  bad.failure.enabled = true;
  bad.failure.topology = &topo;
  EXPECT_THROW((void)Simulator(db(), bad).run(one_vm(), ff),
               std::invalid_argument);
}

TEST(DomainFailure, ScriptRoundTripsDomainEvents) {
  std::vector<FailureEvent> events;
  events.push_back(domain_fault(FailureKind::kPduFault, 1, 10.0, 600.0));
  events.push_back(domain_fault(FailureKind::kTorFault, 0, 20.5, 90.0));
  std::ostringstream out;
  write_failure_script(out, events);
  const std::vector<FailureEvent> parsed = parse_failure_script(out.str());
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, events[i].kind);
    EXPECT_EQ(parsed[i].server, events[i].server);
    EXPECT_DOUBLE_EQ(parsed[i].at_s, events[i].at_s);
    EXPECT_DOUBLE_EQ(parsed[i].duration_s, events[i].duration_s);
  }
  EXPECT_THROW((void)parse_failure_script("pdu 0 1"), std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("tor 0 1 -2"),
               std::invalid_argument);
}

TEST(FailureScript, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_failure_script("explode 0 1 2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("crash 0 1"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("crash zero 1 2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("crash 0 -1 2"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("degrade 0 1 2 1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("brownout 0 1 2 -5"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_failure_script("crash 0 1 nan"),
               std::invalid_argument);
  // Comments and blank lines are fine.
  EXPECT_TRUE(parse_failure_script("# comment\n; other\n\n").empty());
}

}  // namespace
}  // namespace aeva::datacenter
