/// Rack/PDU/ToR topology: structural validation, domain queries, the
/// synthetic generator, spec round-trips, and the spread-config bridge
/// (docs/RESILIENCE.md, "Correlated failure domains").

#include "datacenter/topology.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace aeva::datacenter {
namespace {

RackSpec rack_spec(int rack, int pdu, int tor, std::vector<int> servers) {
  RackSpec spec;
  spec.rack = rack;
  spec.pdu = pdu;
  spec.tor = tor;
  spec.servers = std::move(servers);
  return spec;
}

Topology two_racks() {
  std::vector<RackSpec> racks;
  racks.push_back(rack_spec(0, 0, 0, {0, 1, 2}));
  racks.push_back(rack_spec(1, 0, 1, {3, 4, 5}));
  return Topology::from_racks(std::move(racks));
}

TEST(Topology, DomainQueriesMatchDeclaration) {
  const Topology topo = two_racks();
  EXPECT_EQ(topo.server_count(), 6);
  EXPECT_EQ(topo.rack_count(), 2);
  EXPECT_EQ(topo.pdu_count(), 1);
  EXPECT_EQ(topo.tor_count(), 2);
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(5), 1);
  EXPECT_EQ(topo.pdu_of(2), 0);
  EXPECT_EQ(topo.pdu_of(4), 0);
  EXPECT_EQ(topo.tor_of(1), 0);
  EXPECT_EQ(topo.tor_of(3), 1);
  EXPECT_EQ(topo.pdu_of_rack(1), 0);
  EXPECT_EQ(topo.tor_of_rack(1), 1);
}

TEST(Topology, MemberSpansAreAscendingAndComplete) {
  // Declared out of order and with shuffled member lists: the builder
  // must sort racks by id and member lists ascending — the canonical
  // expansion order of a correlated fault.
  std::vector<RackSpec> racks;
  racks.push_back(rack_spec(1, 1, 0, {5, 3}));
  racks.push_back(rack_spec(0, 0, 0, {4, 0, 2, 1}));
  const Topology topo = Topology::from_racks(std::move(racks));
  const std::span<const int> rack0 = topo.servers_in_rack(0);
  ASSERT_EQ(rack0.size(), 4u);
  EXPECT_EQ(rack0[0], 0);
  EXPECT_EQ(rack0[3], 4);
  const std::span<const int> pdu1 = topo.servers_on_pdu(1);
  ASSERT_EQ(pdu1.size(), 2u);
  EXPECT_EQ(pdu1[0], 3);
  EXPECT_EQ(pdu1[1], 5);
  const std::span<const int> tor0 = topo.servers_on_tor(0);
  EXPECT_EQ(tor0.size(), 6u);
}

TEST(Topology, RejectsStructuralViolations) {
  // No racks at all.
  EXPECT_THROW((void)Topology::from_racks({}), std::invalid_argument);
  // Duplicate rack id.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {0}));
    racks.push_back(rack_spec(0, 0, 0, {1}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // Rack ids with a gap.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {0}));
    racks.push_back(rack_spec(2, 0, 0, {1}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // Empty rack.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // Duplicate server across racks.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {0, 1}));
    racks.push_back(rack_spec(1, 0, 0, {1, 2}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // Server ids with a gap (0, 2 but no 1).
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {0, 2}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // PDU ids with a gap (feed 1 used, feed 0 absent).
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 1, 0, {0, 1}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // ToR ids with a gap.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 2, {0, 1}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
  // Negative ids.
  {
    std::vector<RackSpec> racks;
    racks.push_back(rack_spec(0, 0, 0, {-1}));
    EXPECT_THROW((void)Topology::from_racks(std::move(racks)),
                 std::invalid_argument);
  }
}

TEST(Topology, QueriesRejectOutOfRangeIndices) {
  const Topology topo = two_racks();
  EXPECT_THROW((void)topo.rack_of(-1), std::invalid_argument);
  EXPECT_THROW((void)topo.rack_of(6), std::invalid_argument);
  EXPECT_THROW((void)topo.servers_in_rack(2), std::invalid_argument);
  EXPECT_THROW((void)topo.servers_on_pdu(1), std::invalid_argument);
  EXPECT_THROW((void)topo.servers_on_tor(2), std::invalid_argument);
}

TEST(Topology, SyntheticGeneratorDealsRoundRobin) {
  SyntheticTopologyConfig config;
  config.server_count = 10;
  config.servers_per_rack = 4;
  config.racks_per_pdu = 2;
  config.racks_per_tor = 1;
  const Topology topo = make_synthetic_topology(config);
  EXPECT_EQ(topo.server_count(), 10);
  EXPECT_EQ(topo.rack_count(), 3);  // 4 + 4 + 2 (last rack partial)
  EXPECT_EQ(topo.pdu_count(), 2);   // racks {0,1} on feed 0, rack {2} on 1
  EXPECT_EQ(topo.tor_count(), 3);
  EXPECT_EQ(topo.rack_of(3), 0);
  EXPECT_EQ(topo.rack_of(4), 1);
  EXPECT_EQ(topo.rack_of(9), 2);
  EXPECT_EQ(topo.pdu_of(7), 0);
  EXPECT_EQ(topo.pdu_of(8), 1);
  EXPECT_EQ(topo.servers_in_rack(2).size(), 2u);
}

TEST(Topology, SyntheticGeneratorRejectsBadSizes) {
  SyntheticTopologyConfig config;
  config.server_count = 0;
  EXPECT_THROW((void)make_synthetic_topology(config), std::invalid_argument);
  config.server_count = 4;
  config.servers_per_rack = 0;
  EXPECT_THROW((void)make_synthetic_topology(config), std::invalid_argument);
  config.servers_per_rack = 2;
  config.racks_per_pdu = -1;
  EXPECT_THROW((void)make_synthetic_topology(config), std::invalid_argument);
}

TEST(Topology, SpecRoundTripsThroughText) {
  SyntheticTopologyConfig config;
  config.server_count = 24;
  config.servers_per_rack = 5;
  config.racks_per_pdu = 3;
  config.racks_per_tor = 2;
  const Topology original = make_synthetic_topology(config);
  std::ostringstream out;
  write_topology(out, original);
  const Topology reparsed = parse_topology(out.str());
  ASSERT_EQ(reparsed.rack_count(), original.rack_count());
  for (int r = 0; r < original.rack_count(); ++r) {
    EXPECT_EQ(reparsed.pdu_of_rack(r), original.pdu_of_rack(r));
    EXPECT_EQ(reparsed.tor_of_rack(r), original.tor_of_rack(r));
    const std::span<const int> a = original.servers_in_rack(r);
    const std::span<const int> b = reparsed.servers_in_rack(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
    }
  }
  // A second write of the reparsed topology is byte-identical.
  std::ostringstream again;
  write_topology(again, reparsed);
  EXPECT_EQ(out.str(), again.str());
}

TEST(Topology, ParserAcceptsCommentsAndRejectsMalformedInput) {
  const Topology topo = parse_topology(
      "# header comment\n"
      "; alt comment\n"
      "\n"
      "rack 0 pdu 0 tor 0 servers 0 1\n"
      "rack 1 pdu 0 tor 0 servers 2\n");
  EXPECT_EQ(topo.server_count(), 3);
  EXPECT_THROW((void)parse_topology("shelf 0 pdu 0 tor 0 servers 0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology("rack 0 pdu 0 tor 0 servers"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology("rack 0 pdu 0 servers 0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology("rack 0 pdu 0 tor 0 servers x"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology("rack 0.5 pdu 0 tor 0 servers 0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology("rack 0 tor 0 pdu 0 servers 0"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_topology(""), std::invalid_argument);
}

TEST(Topology, SpreadBridgeMapsRacksToDomains) {
  const Topology topo = two_racks();
  const core::SpreadConfig spread = spread_by_rack(topo, 2, 0.25);
  EXPECT_TRUE(spread.enabled);
  EXPECT_EQ(spread.max_vms_per_domain, 2);
  EXPECT_EQ(spread.domain_count, 2);
  EXPECT_DOUBLE_EQ(spread.blast_penalty, 0.25);
  ASSERT_EQ(spread.domain_of_server.size(), 6u);
  EXPECT_EQ(spread.domain_of(0), 0);
  EXPECT_EQ(spread.domain_of(5), 1);
  EXPECT_EQ(spread.domain_of(6), -1);  // outside the map: unconstrained
  EXPECT_TRUE(spread.feasible_width(4));
  EXPECT_FALSE(spread.feasible_width(5));
  EXPECT_THROW((void)spread_by_rack(topo, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)spread_by_rack(Topology{}, 1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::datacenter
