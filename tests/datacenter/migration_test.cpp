#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

/// A workload whose second wave leaves servers lightly loaded: staggered
/// single-VM jobs of very different lengths, so short jobs drain and leave
/// stragglers behind — the classic consolidation opportunity.
PreparedWorkload straggler_workload() {
  PreparedWorkload workload;
  long long id = 1;
  for (int i = 0; i < 12; ++i) {
    JobRequest job;
    job.id = id++;
    job.submit_s = i * 10.0;
    job.profile = ProfileClass::kCpu;
    job.vm_count = 1;
    job.runtime_scale = (i % 4 == 0) ? 3.0 : 0.5;  // stragglers + short jobs
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 1;
  }
  return workload;
}

CloudConfig migration_cloud(int servers = 8) {
  CloudConfig cloud;
  cloud.server_count = servers;
  cloud.migration.enabled = true;
  cloud.migration.check_interval_s = 300.0;
  return cloud;
}

TEST(Migration, DisabledByDefaultChangesNothing) {
  CloudConfig plain;
  plain.server_count = 8;
  const core::FirstFitAllocator ff(1);
  const SimMetrics a =
      Simulator(db(), plain).run(straggler_workload(), ff);
  EXPECT_EQ(a.migrations, 0u);
  EXPECT_DOUBLE_EQ(a.migration_transfer_s, 0.0);
}

TEST(Migration, SweepConsolidatesStragglers) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics with = Simulator(db(), migration_cloud())
                              .run(straggler_workload(), ff);
  EXPECT_GT(with.migrations, 0u);
  EXPECT_GT(with.migration_transfer_s, 0.0);
}

TEST(Migration, ConsolidationReducesBusyServerTime) {
  const core::FirstFitAllocator ff(1);
  CloudConfig plain;
  plain.server_count = 8;
  const SimMetrics without =
      Simulator(db(), plain).run(straggler_workload(), ff);
  const SimMetrics with = Simulator(db(), migration_cloud())
                              .run(straggler_workload(), ff);
  EXPECT_LT(with.mean_busy_servers, without.mean_busy_servers);
}

TEST(Migration, AllVmsStillComplete) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = Simulator(db(), migration_cloud())
                                 .run(straggler_workload(), ff);
  EXPECT_EQ(metrics.vms,
            static_cast<std::size_t>(straggler_workload().total_vms));
}

TEST(Migration, DowntimeExtendsCompletionTimes) {
  // Migration is costly: the migrated stragglers lose stop-and-copy work,
  // so the makespan must not shrink (nothing was queue-bound here).
  const core::FirstFitAllocator ff(1);
  CloudConfig plain;
  plain.server_count = 8;
  const SimMetrics without =
      Simulator(db(), plain).run(straggler_workload(), ff);
  CloudConfig costly = migration_cloud();
  costly.migration.downtime_work_fraction = 0.05;
  const SimMetrics with =
      Simulator(db(), costly).run(straggler_workload(), ff);
  if (with.migrations > 0) {
    EXPECT_GE(with.makespan_s, without.makespan_s - 1e-6);
  }
}

TEST(Migration, ProactivePlacementNeedsFewerMigrations) {
  // The paper's thesis: application-centric proactive allocation avoids
  // costly migrations. Compare migrations triggered by the sweep under
  // first-fit vs PROACTIVE on the same workload.
  const core::FirstFitAllocator ff(1);
  core::ProactiveConfig config;
  config.alpha = 1.0;
  const core::ProactiveAllocator pa(db(), config);
  const SimMetrics ff_run = Simulator(db(), migration_cloud())
                                .run(straggler_workload(), ff);
  const SimMetrics pa_run = Simulator(db(), migration_cloud())
                                .run(straggler_workload(), pa);
  EXPECT_LE(pa_run.migrations, ff_run.migrations);
}

TEST(Migration, RespectsConcurrencyCap) {
  CloudConfig capped = migration_cloud();
  capped.migration.max_concurrent = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), capped).run(straggler_workload(), ff);
  // With a single slot the sweep can still work, just more slowly.
  EXPECT_EQ(metrics.vms,
            static_cast<std::size_t>(straggler_workload().total_vms));
}

TEST(Migration, RejectsBadConfig) {
  const core::FirstFitAllocator ff(1);
  CloudConfig bad = migration_cloud();
  bad.migration.check_interval_s = 0.0;
  EXPECT_THROW((void)Simulator(db(), bad).run(straggler_workload(), ff),
               std::invalid_argument);
  bad = migration_cloud();
  bad.migration.degradation = 0.0;
  EXPECT_THROW((void)Simulator(db(), bad).run(straggler_workload(), ff),
               std::invalid_argument);
  bad = migration_cloud();
  bad.migration.downtime_work_fraction = 1.0;
  EXPECT_THROW((void)Simulator(db(), bad).run(straggler_workload(), ff),
               std::invalid_argument);
  bad = migration_cloud();
  bad.migration.transfer_mbps = 0.0;
  EXPECT_THROW((void)Simulator(db(), bad).run(straggler_workload(), ff),
               std::invalid_argument);
}

TEST(Migration, DeterministicAcrossRuns) {
  const core::FirstFitAllocator ff(1);
  const Simulator sim(db(), migration_cloud());
  const SimMetrics a = sim.run(straggler_workload(), ff);
  const SimMetrics b = sim.run(straggler_workload(), ff);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

}  // namespace
}  // namespace aeva::datacenter
