#include "datacenter/simulator.hpp"

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "util/stats.hpp"
#include "testing/shared_db.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

PreparedWorkload tiny_workload() {
  PreparedWorkload workload;
  long long id = 1;
  double t = 0.0;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    for (int k = 0; k < 4; ++k) {
      JobRequest job;
      job.id = id++;
      job.submit_s = t;
      job.profile = profile;
      job.vm_count = 1 + k % 3;
      job.runtime_scale = 1.0;
      job.deadline_s = 1e9;
      job.max_exec_stretch = 3.0;
      workload.total_vms += job.vm_count;
      workload.vm_mix.of(profile) += job.vm_count;
      workload.jobs.push_back(job);
      t += 100.0;
    }
  }
  return workload;
}

CloudConfig tiny_cloud(int servers = 8) {
  CloudConfig cloud;
  cloud.server_count = servers;
  return cloud;
}

TEST(Simulator, RunsTinyWorkloadWithFirstFit) {
  const Simulator sim(db(), tiny_cloud());
  const core::FirstFitAllocator ff(2);
  const SimMetrics metrics = sim.run(tiny_workload(), ff);
  EXPECT_EQ(metrics.vms, static_cast<std::size_t>(tiny_workload().total_vms));
  EXPECT_EQ(metrics.jobs, tiny_workload().jobs.size());
  EXPECT_GT(metrics.makespan_s, 0.0);
  EXPECT_GT(metrics.energy_j, 0.0);
}

TEST(Simulator, RunsTinyWorkloadWithProactive) {
  const Simulator sim(db(), tiny_cloud());
  core::ProactiveConfig config;
  config.alpha = 0.5;
  const core::ProactiveAllocator pa(db(), config);
  const SimMetrics metrics = sim.run(tiny_workload(), pa);
  EXPECT_EQ(metrics.vms, static_cast<std::size_t>(tiny_workload().total_vms));
  EXPECT_DOUBLE_EQ(metrics.sla_violation_pct, 0.0);
}

TEST(Simulator, SingleJobMatchesModelEstimate) {
  const Simulator sim(db(), tiny_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;

  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  // Alone on an empty cloud the VM runs at the pure single-VM estimate.
  workload::ClassCounts solo{1, 0, 0};
  EXPECT_NEAR(metrics.makespan_s, db().estimate(solo).time_of(job.profile),
              1e-6);
  EXPECT_NEAR(metrics.energy_j,
              db().estimate(solo).avg_power_w() * metrics.makespan_s,
              metrics.energy_j * 1e-9);
}

TEST(Simulator, RuntimeScaleStretchesExecution) {
  const Simulator sim(db(), tiny_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kIo;
  job.vm_count = 1;
  job.runtime_scale = 2.5;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;

  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  workload::ClassCounts solo{0, 0, 1};
  EXPECT_NEAR(metrics.makespan_s,
              2.5 * db().estimate(solo).time_of(job.profile), 1e-6);
}

TEST(Simulator, QueueingDelaysSecondJobOnTinyCloud) {
  const Simulator sim(db(), tiny_cloud(1));
  PreparedWorkload workload;
  for (int i = 0; i < 2; ++i) {
    JobRequest job;
    job.id = i + 1;
    job.submit_s = 0.0;
    job.profile = ProfileClass::kMem;
    job.vm_count = 4;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 4;
  }
  const core::FirstFitAllocator ff(1);  // 4 VMs per server: jobs serialize
  const SimMetrics metrics = sim.run(workload, ff);
  EXPECT_GT(metrics.mean_wait_s, 0.0);
  const double single = db().estimate({0, 4, 0}).time_of(ProfileClass::kMem);
  EXPECT_NEAR(metrics.makespan_s, 2.0 * single, single * 0.01);
}

TEST(Simulator, SlaViolationsCountMissedDeadlines) {
  const Simulator sim(db(), tiny_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 10.0;  // impossible response bound
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  EXPECT_EQ(metrics.sla_violations, 1u);
  EXPECT_DOUBLE_EQ(metrics.sla_violation_pct, 100.0);
}

TEST(Simulator, EnergyOnlyAccruesForBusyServers) {
  // One short job on a big cloud: energy must reflect a single busy
  // server, not the idle fleet.
  const Simulator sim(db(), tiny_cloud(50));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kIo;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  workload::ClassCounts solo{0, 0, 1};
  const double one_server =
      db().estimate(solo).avg_power_w() * metrics.makespan_s;
  EXPECT_NEAR(metrics.energy_j, one_server, one_server * 1e-9);
}

TEST(Simulator, BusyServerMetrics) {
  const Simulator sim(db(), tiny_cloud(4));
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(tiny_workload(), ff);
  EXPECT_GT(metrics.mean_busy_servers, 0.0);
  EXPECT_LE(metrics.mean_busy_servers, 4.0);
  EXPECT_LE(metrics.peak_busy_servers, 4.0);
  EXPECT_GE(metrics.peak_busy_servers, metrics.mean_busy_servers);
  EXPECT_GE(metrics.servers_powered, 1u);
  EXPECT_LE(metrics.servers_powered, 4u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Simulator sim(db(), tiny_cloud());
  const core::FirstFitAllocator ff(3);
  const SimMetrics a = sim.run(tiny_workload(), ff);
  const SimMetrics b = sim.run(tiny_workload(), ff);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.sla_violations, b.sla_violations);
}

TEST(Simulator, ThrowsWhenJobCanNeverBePlaced) {
  const Simulator sim(db(), tiny_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 4;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 4;
  // FF with multiplex 1 on a 2-CPU server can host only 2 VMs: the 4-VM
  // job is permanently unplaceable.
  const core::FirstFitAllocator ff(1, 2);
  EXPECT_THROW((void)sim.run(workload, ff), std::runtime_error);
}

TEST(Simulator, RejectsBadInputs) {
  CloudConfig no_servers;
  no_servers.server_count = 0;
  EXPECT_THROW(Simulator(db(), no_servers), std::invalid_argument);
  CloudConfig bad_map = tiny_cloud(2);
  bad_map.hardware = {0};  // size mismatch
  EXPECT_THROW(Simulator(db(), bad_map), std::invalid_argument);
  CloudConfig bad_class = tiny_cloud(2);
  bad_class.hardware = {0, 1};  // class 1 has no database
  EXPECT_THROW(Simulator(db(), bad_class), std::invalid_argument);
  const Simulator sim(db(), tiny_cloud());
  const core::FirstFitAllocator ff(1);
  EXPECT_THROW((void)sim.run(PreparedWorkload{}, ff), std::invalid_argument);
}

TEST(Simulator, RejectsUnsortedWorkload) {
  const Simulator sim(db(), tiny_cloud());
  PreparedWorkload workload = tiny_workload();
  std::swap(workload.jobs.front().submit_s, workload.jobs.back().submit_s);
  const core::FirstFitAllocator ff(1);
  EXPECT_THROW((void)sim.run(workload, ff), std::invalid_argument);
}

TEST(Simulator, CompletionRecordsOffByDefault) {
  const Simulator sim(db(), tiny_cloud());
  const core::FirstFitAllocator ff(2);
  const SimMetrics metrics = sim.run(tiny_workload(), ff);
  EXPECT_TRUE(metrics.completions.empty());
}

TEST(Simulator, CompletionRecordsCoverEveryVm) {
  CloudConfig cloud = tiny_cloud();
  cloud.record_completions = true;
  const Simulator sim(db(), cloud);
  const core::FirstFitAllocator ff(2);
  const SimMetrics metrics = sim.run(tiny_workload(), ff);
  ASSERT_EQ(metrics.completions.size(), metrics.vms);
  for (const VmCompletion& c : metrics.completions) {
    EXPECT_GE(c.start_s, c.submit_s);
    EXPECT_GT(c.finish_s, c.start_s);
    EXPECT_GE(c.server, 0);
    EXPECT_LT(c.server, cloud.server_count);
    EXPECT_DOUBLE_EQ(c.response_s(), c.finish_s - c.submit_s);
    EXPECT_DOUBLE_EQ(c.wait_s(), c.start_s - c.submit_s);
  }
}

TEST(Simulator, CompletionRecordsMatchAggregates) {
  CloudConfig cloud = tiny_cloud();
  cloud.record_completions = true;
  const Simulator sim(db(), cloud);
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(tiny_workload(), ff);
  util::RunningStats responses;
  for (const VmCompletion& c : metrics.completions) {
    responses.add(c.response_s());
  }
  EXPECT_NEAR(responses.mean(), metrics.mean_response_s, 1e-9);
}

TEST(Simulator, MoreServersNeverSlower) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics small = Simulator(db(), tiny_cloud(2)).run(
      tiny_workload(), ff);
  const SimMetrics large = Simulator(db(), tiny_cloud(16)).run(
      tiny_workload(), ff);
  EXPECT_LE(large.makespan_s, small.makespan_s + 1e-6);
  EXPECT_LE(large.mean_wait_s, small.mean_wait_s + 1e-6);
}

}  // namespace
}  // namespace aeva::datacenter
