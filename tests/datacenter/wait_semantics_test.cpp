/// \file wait_semantics_test.cpp
/// Pins the two wait metrics' weighting semantics (this PR's heap-churn
/// sweep surfaced the ambiguity and resolved it by keeping both):
///
///  * SimMetrics::mean_wait_s — one sample per *placed VM*: a 16-VM job
///    admitted after a long wait contributes 16 samples (capacity-weighted;
///    the goldens and published reports depend on it);
///  * SimMetrics::mean_job_wait_s — one sample per *admitted job*,
///    regardless of width.
///
/// Both are recomputed here from ground truth — the per-VM completion
/// records, which carry each VM's submit and allocation instants — on a
/// congested workload where wide jobs queue differently from narrow ones,
/// so the two means must diverge and each must match its own definition.

#include "datacenter/simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/first_fit.hpp"
#include "testing/shared_db.hpp"
#include "trace/prepare.hpp"
#include "util/rng.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

/// Congested mix: frequent 1-VM jobs interleaved with rare 16-VM jobs on
/// a small cloud, so wide jobs systematically wait longer than narrow
/// ones and the two means cannot coincide.
PreparedWorkload congested_workload() {
  util::Rng rng(555);
  PreparedWorkload workload;
  long long id = 1;
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    JobRequest job;
    job.id = id++;
    job.submit_s = t;
    job.profile = static_cast<ProfileClass>(rng.uniform_int(0, 2));
    job.vm_count = (i % 8 == 0) ? 16 : 1;
    job.runtime_scale = rng.uniform(0.8, 1.6);
    job.deadline_s = 1e9;  // waits are the subject, not SLA misses
    job.max_exec_stretch = 3.0;
    workload.total_vms += job.vm_count;
    workload.vm_mix.of(job.profile) += job.vm_count;
    workload.jobs.push_back(job);
    t += rng.exponential(1.0 / 30.0);
  }
  return workload;
}

TEST(WaitSemantics, PerVmAndPerJobMeansMatchGroundTruthAndDiverge) {
  CloudConfig cloud;
  cloud.server_count = 8;
  cloud.record_completions = true;
  const core::FirstFitAllocator allocator(2);
  const Simulator sim(testing::shared_db(), cloud);
  const PreparedWorkload workload = congested_workload();
  const SimMetrics metrics = sim.run(workload, allocator);

  ASSERT_EQ(metrics.completions.size(),
            static_cast<std::size_t>(workload.total_vms))
      << "fail-free run must complete every VM";

  // Recompute both means from the completion records.
  double vm_sum = 0.0;
  std::size_t vm_count = 0;
  std::map<long long, double> job_wait;  // admission is atomic per job
  for (const VmCompletion& c : metrics.completions) {
    vm_sum += c.wait_s();
    ++vm_count;
    const auto [it, inserted] = job_wait.emplace(c.job_id, c.wait_s());
    if (!inserted) {
      EXPECT_DOUBLE_EQ(it->second, c.wait_s())
          << "VMs of job " << c.job_id << " were placed at different times";
    }
  }
  double job_sum = 0.0;
  for (const auto& [id, wait] : job_wait) {
    job_sum += wait;
  }
  const double vm_mean = vm_sum / static_cast<double>(vm_count);
  const double job_mean = job_sum / static_cast<double>(job_wait.size());

  EXPECT_NEAR(metrics.mean_wait_s, vm_mean, 1e-9 * (1.0 + vm_mean))
      << "mean_wait_s must be the per-VM (capacity-weighted) mean";
  EXPECT_NEAR(metrics.mean_job_wait_s, job_mean, 1e-9 * (1.0 + job_mean))
      << "mean_job_wait_s must weight every job once";

  // The workload congests wide jobs more than narrow ones: if the two
  // means coincide the test lost its teeth (and the 16x weighting this
  // PR examined would be unobservable).
  EXPECT_GT(std::abs(vm_mean - job_mean), 1.0)
      << "workload failed to make the weighting semantics observable";
  EXPECT_GT(job_wait.size(), 0u);
}

TEST(WaitSemantics, UniformWidthCollapsesBothMeans) {
  // All jobs 1-VM wide: per-VM and per-job weighting are the same
  // distribution, so the metrics must agree exactly.
  CloudConfig cloud;
  cloud.server_count = 4;
  const core::FirstFitAllocator allocator(2);
  const Simulator sim(testing::shared_db(), cloud);

  util::Rng rng(777);
  PreparedWorkload workload;
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    JobRequest job;
    job.id = i + 1;
    job.submit_s = t;
    job.profile = static_cast<ProfileClass>(rng.uniform_int(0, 2));
    job.vm_count = 1;
    job.runtime_scale = rng.uniform(0.8, 1.6);
    job.deadline_s = 1e9;
    job.max_exec_stretch = 3.0;
    workload.total_vms += 1;
    workload.vm_mix.of(job.profile) += 1;
    workload.jobs.push_back(job);
    t += rng.exponential(1.0 / 20.0);
  }
  const SimMetrics metrics = sim.run(workload, allocator);
  EXPECT_DOUBLE_EQ(metrics.mean_wait_s, metrics.mean_job_wait_s);
}

}  // namespace
}  // namespace aeva::datacenter
