#include "datacenter/accounting.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace aeva::datacenter {
namespace {

TEST(IntervalAccounting, PaperExecTimeExampleExact) {
  // ExecTime_VM1 = 0.7·1200 + 0.3·1800 = 1380 s (Fig. 4).
  EXPECT_DOUBLE_EQ(
      interval_weighted_time_s({{0.7, 1200.0}, {0.3, 1800.0}}), 1380.0);
}

TEST(IntervalAccounting, PaperEnergyExampleExact) {
  // Energy = 0.35·15 kJ + 0.15·20 kJ + 0.5·12 kJ = 14.25 kJ (Fig. 4).
  EXPECT_DOUBLE_EQ(interval_weighted_energy_j(
                       {{0.35, 15000.0}, {0.15, 20000.0}, {0.5, 12000.0}}),
                   14250.0);
}

TEST(IntervalAccounting, SingleIntervalIsIdentity) {
  EXPECT_DOUBLE_EQ(interval_weighted_time_s({{1.0, 777.0}}), 777.0);
}

TEST(IntervalAccounting, ZeroWeightIntervalContributesNothing) {
  EXPECT_DOUBLE_EQ(
      interval_weighted_time_s({{1.0, 100.0}, {0.0, 99999.0}}), 100.0);
}

TEST(IntervalAccounting, WeightsMustSumToOne) {
  EXPECT_THROW((void)interval_weighted_time_s({{0.5, 100.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)interval_weighted_energy_j({{0.7, 100.0}, {0.7, 100.0}}),
      std::invalid_argument);
}

TEST(IntervalAccounting, WeightsWithinToleranceAccepted) {
  EXPECT_NO_THROW((void)interval_weighted_time_s(
      {{0.5, 1.0}, {0.5 + 5e-10, 1.0}}));
}

TEST(IntervalAccounting, RejectsNegativeWeightOrValue) {
  EXPECT_THROW(
      (void)interval_weighted_time_s({{-0.5, 1.0}, {1.5, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({{1.0, -1.0}}),
               std::invalid_argument);
}

TEST(IntervalAccounting, RejectsEmpty) {
  EXPECT_THROW((void)interval_weighted_time_s({}), std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({}), std::invalid_argument);
}

// Sect. III-D edge cases: degenerate interval structures that the Fig. 4
// accounting must handle exactly.

TEST(IntervalAccounting, ManyZeroWeightIntervals) {
  // A run whose mix changed at instants without progress (e.g. back-to-back
  // reallocation events) produces zero-length intervals; only the one
  // carrying weight contributes.
  EXPECT_DOUBLE_EQ(
      interval_weighted_time_s(
          {{0.0, 5.0}, {0.0, 7.0}, {1.0, 1200.0}, {0.0, 9.0}}),
      1200.0);
}

TEST(IntervalAccounting, SplittingAnIntervalIsInvariant) {
  // Splitting one interval into equal halves under the same estimate must
  // not change the weighted total (the accounting is a proper integral).
  const double whole = interval_weighted_energy_j({{0.4, 100.0}, {0.6, 50.0}});
  const double split = interval_weighted_energy_j(
      {{0.2, 100.0}, {0.2, 100.0}, {0.3, 50.0}, {0.3, 50.0}});
  EXPECT_DOUBLE_EQ(whole, split);
}

TEST(IntervalAccounting, WeightsShortOfOneRejected) {
  // Under-covering weights (progress fractions lost by the caller) are as
  // wrong as over-covering ones; both sides of the |Σw − 1| check fire.
  EXPECT_THROW((void)interval_weighted_time_s({{0.3, 1.0}, {0.3, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({{0.9999, 1.0}}),
               std::invalid_argument);
}

TEST(IntervalAccounting, RejectsNonFiniteWeightOrValue) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)interval_weighted_time_s({{nan, 1.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_time_s({{1.0, nan}}),
               std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({{1.0, inf}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::datacenter
