#include "datacenter/accounting.hpp"

#include <gtest/gtest.h>

namespace aeva::datacenter {
namespace {

TEST(IntervalAccounting, PaperExecTimeExampleExact) {
  // ExecTime_VM1 = 0.7·1200 + 0.3·1800 = 1380 s (Fig. 4).
  EXPECT_DOUBLE_EQ(
      interval_weighted_time_s({{0.7, 1200.0}, {0.3, 1800.0}}), 1380.0);
}

TEST(IntervalAccounting, PaperEnergyExampleExact) {
  // Energy = 0.35·15 kJ + 0.15·20 kJ + 0.5·12 kJ = 14.25 kJ (Fig. 4).
  EXPECT_DOUBLE_EQ(interval_weighted_energy_j(
                       {{0.35, 15000.0}, {0.15, 20000.0}, {0.5, 12000.0}}),
                   14250.0);
}

TEST(IntervalAccounting, SingleIntervalIsIdentity) {
  EXPECT_DOUBLE_EQ(interval_weighted_time_s({{1.0, 777.0}}), 777.0);
}

TEST(IntervalAccounting, ZeroWeightIntervalContributesNothing) {
  EXPECT_DOUBLE_EQ(
      interval_weighted_time_s({{1.0, 100.0}, {0.0, 99999.0}}), 100.0);
}

TEST(IntervalAccounting, WeightsMustSumToOne) {
  EXPECT_THROW((void)interval_weighted_time_s({{0.5, 100.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)interval_weighted_energy_j({{0.7, 100.0}, {0.7, 100.0}}),
      std::invalid_argument);
}

TEST(IntervalAccounting, WeightsWithinToleranceAccepted) {
  EXPECT_NO_THROW((void)interval_weighted_time_s(
      {{0.5, 1.0}, {0.5 + 5e-10, 1.0}}));
}

TEST(IntervalAccounting, RejectsNegativeWeightOrValue) {
  EXPECT_THROW(
      (void)interval_weighted_time_s({{-0.5, 1.0}, {1.5, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({{1.0, -1.0}}),
               std::invalid_argument);
}

TEST(IntervalAccounting, RejectsEmpty) {
  EXPECT_THROW((void)interval_weighted_time_s({}), std::invalid_argument);
  EXPECT_THROW((void)interval_weighted_energy_j({}), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::datacenter
