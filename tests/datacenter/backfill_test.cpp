#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

/// A big job that cannot fit behind two small ones: the classic backfill
/// scenario. One 4-slot server; a 3-VM job is running; a 4-VM job heads
/// the queue (needs a full drain); a 1-VM job sits behind it.
PreparedWorkload head_of_line_workload() {
  PreparedWorkload workload;
  JobRequest running_job;
  running_job.id = 1;
  running_job.submit_s = 0.0;
  running_job.profile = ProfileClass::kCpu;
  running_job.vm_count = 3;
  running_job.runtime_scale = 1.0;
  running_job.deadline_s = 1e9;
  workload.jobs.push_back(running_job);

  JobRequest big;
  big.id = 2;
  big.submit_s = 1.0;
  big.profile = ProfileClass::kMem;
  big.vm_count = 4;
  big.runtime_scale = 1.0;
  big.deadline_s = 1e9;
  workload.jobs.push_back(big);

  JobRequest small;
  small.id = 3;
  small.submit_s = 2.0;
  small.profile = ProfileClass::kIo;
  small.vm_count = 1;
  small.runtime_scale = 0.2;
  small.deadline_s = 1e9;
  workload.jobs.push_back(small);

  workload.total_vms = 8;
  return workload;
}

CloudConfig one_server(int backfill_window) {
  CloudConfig cloud;
  cloud.server_count = 1;
  cloud.backfill_window = backfill_window;
  return cloud;
}

TEST(Backfill, StrictFcfsBlocksSmallJobBehindBigOne) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics fcfs =
      Simulator(db(), one_server(0)).run(head_of_line_workload(), ff);
  const SimMetrics backfill =
      Simulator(db(), one_server(4)).run(head_of_line_workload(), ff);
  // The 1-VM job fills the fourth slot immediately under backfilling, so
  // mean wait drops.
  EXPECT_LT(backfill.mean_wait_s, fcfs.mean_wait_s);
}

TEST(Backfill, AllJobsStillComplete) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), one_server(4)).run(head_of_line_workload(), ff);
  EXPECT_EQ(metrics.vms, 8u);
}

TEST(Backfill, WindowZeroIsStrictFcfs) {
  const core::FirstFitAllocator ff(1);
  const SimMetrics a =
      Simulator(db(), one_server(0)).run(head_of_line_workload(), ff);
  // Under strict FCFS, the small job waits for the big one: its VM starts
  // only after the big job's 4 VMs occupied and freed capacity. The big
  // job itself waits for the first drain.
  EXPECT_GT(a.mean_wait_s, 0.0);
}

TEST(Backfill, WindowLimitsLookahead) {
  // Put the backfillable job beyond the window: behaves like FCFS.
  PreparedWorkload workload = head_of_line_workload();
  // Insert two more unplaceable 4-VM jobs between the big job and the
  // small one.
  trace::JobRequest blocker = workload.jobs[1];
  blocker.id = 10;
  blocker.submit_s = 1.5;
  workload.jobs.insert(workload.jobs.begin() + 2, blocker);
  blocker.id = 11;
  blocker.submit_s = 1.6;
  workload.jobs.insert(workload.jobs.begin() + 3, blocker);
  workload.total_vms += 8;

  const core::FirstFitAllocator ff(1);
  const SimMetrics narrow =
      Simulator(db(), one_server(1)).run(workload, ff);
  const SimMetrics wide = Simulator(db(), one_server(8)).run(workload, ff);
  EXPECT_LE(wide.mean_wait_s, narrow.mean_wait_s + 1e-9);
}

TEST(Backfill, NeverLosesDeterminism) {
  const core::FirstFitAllocator ff(1);
  const Simulator sim(db(), one_server(4));
  const SimMetrics a = sim.run(head_of_line_workload(), ff);
  const SimMetrics b = sim.run(head_of_line_workload(), ff);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.mean_wait_s, b.mean_wait_s);
}

}  // namespace
}  // namespace aeva::datacenter
