/// Tests for the reactive thermal-migration trigger — the authors' prior
/// work [3], re-implemented as a sweep policy of the cloud simulator.

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"
#include "thermal/thermal_model.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

const thermal::ThermalMap& map20() {
  static const thermal::ThermalMap map(20, thermal::ThermalConfig{});
  return map;
}

/// A hot-zone workload: long CPU jobs that first-fit packs contiguously
/// onto the first few servers, pushing their neighbours over the redline.
PreparedWorkload hot_pack_workload() {
  PreparedWorkload workload;
  for (int i = 0; i < 8; ++i) {
    JobRequest job;
    job.id = i + 1;
    job.submit_s = i * 5.0;
    job.profile = ProfileClass::kCpu;
    job.vm_count = 4;
    job.runtime_scale = 2.0;
    job.deadline_s = 1e9;
    workload.jobs.push_back(job);
    workload.total_vms += 4;
  }
  return workload;
}

CloudConfig thermal_cloud() {
  CloudConfig cloud;
  cloud.server_count = 20;
  cloud.migration.enabled = true;
  cloud.migration.trigger = MigrationConfig::Trigger::kThermal;
  cloud.migration.thermal_map = &map20();
  cloud.migration.check_interval_s = 120.0;
  return cloud;
}

/// Thermal observer over a run: peak inlet plus redline dwell time.
struct ThermalWatch {
  double peak = 0.0;
  double overheat_server_seconds = 0.0;
  Simulator::IntervalObserver observer() {
    return [this](double t0, double t1, const std::vector<double>& power) {
      const std::vector<double> inlets = map20().inlet_temps(power);
      for (const double inlet : inlets) {
        peak = std::max(peak, inlet);
        if (inlet > map20().config().inlet_limit_c) {
          overheat_server_seconds += t1 - t0;
        }
      }
    };
  }
};

TEST(ThermalMigration, SweepMigratesAwayFromHotZone) {
  const core::FirstFitAllocator ff(1);
  const Simulator sim(db(), thermal_cloud());
  const SimMetrics metrics = sim.run(hot_pack_workload(), ff);
  EXPECT_GT(metrics.migrations, 0u);
  EXPECT_EQ(metrics.vms,
            static_cast<std::size_t>(hot_pack_workload().total_vms));
}

TEST(ThermalMigration, ReducesRedlineDwellTime) {
  // Reactive management cannot prevent the initial spike (the sweep fires
  // after the hot pack forms — exactly why the paper argues for proactive
  // placement), but it must cut the *time spent* over the redline.
  const core::FirstFitAllocator ff(1);

  CloudConfig plain;
  plain.server_count = 20;
  ThermalWatch before;
  (void)Simulator(db(), plain).run(hot_pack_workload(), ff,
                                   before.observer());

  ThermalWatch after;
  (void)Simulator(db(), thermal_cloud())
      .run(hot_pack_workload(), ff, after.observer());

  EXPECT_GT(before.peak, map20().config().inlet_limit_c)
      << "scenario must actually overheat without intervention";
  EXPECT_GT(before.overheat_server_seconds, 0.0);
  EXPECT_LT(after.overheat_server_seconds,
            0.5 * before.overheat_server_seconds);
}

TEST(ThermalMigration, QuietCloudNeverMigrates) {
  // One small job cannot overheat anything: no migrations fire.
  const core::FirstFitAllocator ff(1);
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kIo;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  const SimMetrics metrics =
      Simulator(db(), thermal_cloud()).run(workload, ff);
  EXPECT_EQ(metrics.migrations, 0u);
}

TEST(ThermalMigration, RequiresThermalMap) {
  CloudConfig bad = thermal_cloud();
  bad.migration.thermal_map = nullptr;
  const core::FirstFitAllocator ff(1);
  EXPECT_THROW((void)Simulator(db(), bad).run(hot_pack_workload(), ff),
               std::invalid_argument);
}

TEST(ThermalMigration, MapMustCoverTheCloud) {
  static const thermal::ThermalMap tiny(2, thermal::ThermalConfig{});
  CloudConfig bad = thermal_cloud();
  bad.migration.thermal_map = &tiny;
  const core::FirstFitAllocator ff(1);
  EXPECT_THROW((void)Simulator(db(), bad).run(hot_pack_workload(), ff),
               std::invalid_argument);
}

TEST(ThermalMigration, Deterministic) {
  const core::FirstFitAllocator ff(1);
  const Simulator sim(db(), thermal_cloud());
  const SimMetrics a = sim.run(hot_pack_workload(), ff);
  const SimMetrics b = sim.run(hot_pack_workload(), ff);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

}  // namespace
}  // namespace aeva::datacenter
