/// Workflow-dependency scheduling: jobs carrying `depends_on` start only
/// after their predecessor completes (SWF field 17, the paper's
/// "scientific HPC workflows" framing).

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "datacenter/ground_truth.hpp"
#include "datacenter/simulator.hpp"
#include "testing/shared_db.hpp"
#include "trace/generator.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

JobRequest make_job(long long id, double submit_s, long long depends_on = 0) {
  JobRequest job;
  job.id = id;
  job.submit_s = submit_s;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  job.depends_on = depends_on;
  return job;
}

CloudConfig roomy_cloud() {
  CloudConfig cloud;
  cloud.server_count = 8;
  cloud.record_completions = true;
  return cloud;
}

TEST(Workflow, ChainedJobsRunStrictlySequentially) {
  PreparedWorkload workload;
  workload.jobs = {make_job(1, 0.0), make_job(2, 0.0, 1),
                   make_job(3, 0.0, 2)};
  workload.total_vms = 3;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), roomy_cloud()).run(workload, ff);
  ASSERT_EQ(metrics.completions.size(), 3u);
  // Completion records are emitted in completion order; with ample room
  // each stage starts exactly when its predecessor finishes.
  const double solo = db().base().cpu.solo_time_s;
  EXPECT_NEAR(metrics.completions[0].finish_s, solo, 1e-6);
  EXPECT_NEAR(metrics.completions[1].start_s, solo, 1e-6);
  EXPECT_NEAR(metrics.completions[2].finish_s, 3.0 * solo, 1e-6);
  EXPECT_NEAR(metrics.makespan_s, 3.0 * solo, 1e-6);
}

TEST(Workflow, IndependentJobsUnaffected) {
  PreparedWorkload workload;
  workload.jobs = {make_job(1, 0.0), make_job(2, 0.0), make_job(3, 0.0)};
  workload.total_vms = 3;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), roomy_cloud()).run(workload, ff);
  // All three co-run; makespan bounded by the 3-VM co-location estimate.
  EXPECT_LT(metrics.makespan_s, 2.0 * db().base().cpu.solo_time_s);
}

TEST(Workflow, FanOutReleasesAllDependentsTogether) {
  PreparedWorkload workload;
  workload.jobs = {make_job(1, 0.0), make_job(2, 0.0, 1),
                   make_job(3, 0.0, 1)};
  workload.total_vms = 3;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), roomy_cloud()).run(workload, ff);
  ASSERT_EQ(metrics.completions.size(), 3u);
  const double solo = db().base().cpu.solo_time_s;
  EXPECT_NEAR(metrics.completions[1].start_s, solo, 1e-6);
  EXPECT_NEAR(metrics.completions[2].start_s, solo, 1e-6);
}

TEST(Workflow, DependentArrivingAfterPredecessorCompletesRunsImmediately) {
  PreparedWorkload workload;
  const double late = 2.0 * db().base().cpu.solo_time_s;
  workload.jobs = {make_job(1, 0.0), make_job(2, late, 1)};
  workload.total_vms = 2;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics =
      Simulator(db(), roomy_cloud()).run(workload, ff);
  ASSERT_EQ(metrics.completions.size(), 2u);
  EXPECT_NEAR(metrics.completions[1].start_s, late, 1e-6);
}

TEST(Workflow, RejectsUnknownOrForwardDependencies) {
  const core::FirstFitAllocator ff(1);
  PreparedWorkload unknown;
  unknown.jobs = {make_job(1, 0.0, 99)};
  unknown.total_vms = 1;
  EXPECT_THROW((void)Simulator(db(), roomy_cloud()).run(unknown, ff),
               std::invalid_argument);

  PreparedWorkload forward;
  forward.jobs = {make_job(1, 0.0, 2), make_job(2, 1.0)};
  forward.total_vms = 2;
  EXPECT_THROW((void)Simulator(db(), roomy_cloud()).run(forward, ff),
               std::invalid_argument);
}

TEST(Workflow, GroundTruthBackendRefusesDependencies) {
  PreparedWorkload workload;
  workload.jobs = {make_job(1, 0.0), make_job(2, 0.0, 1)};
  workload.total_vms = 2;
  CloudConfig cloud;
  cloud.server_count = 4;
  const GroundTruthSimulator sim(db(), testbed::testbed_server(), cloud);
  const core::FirstFitAllocator ff(1);
  EXPECT_THROW((void)sim.run(workload, ff), std::invalid_argument);
}

TEST(Workflow, PrepareChainsBurstMembers) {
  util::Rng rng(31);
  trace::GeneratorConfig gen;
  gen.target_jobs = 1500;
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  trace::clean(raw);
  trace::PreparationConfig config;
  config.workflow_chain_fraction = 1.0;
  config.target_total_vms = 0;
  const PreparedWorkload workload =
      trace::prepare_workload(raw, config, rng);
  std::size_t chained = 0;
  for (const JobRequest& job : workload.jobs) {
    if (job.depends_on != 0) {
      EXPECT_EQ(job.depends_on, job.id - 1);
      ++chained;
    }
  }
  // Every non-first burst member chains; with mean burst 3 that is ~2/3.
  EXPECT_GT(static_cast<double>(chained) / workload.jobs.size(), 0.5);
}

TEST(Workflow, PrepareDefaultsToIndependentJobs) {
  util::Rng rng(32);
  trace::GeneratorConfig gen;
  gen.target_jobs = 600;
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  trace::clean(raw);
  const PreparedWorkload workload =
      trace::prepare_workload(raw, trace::PreparationConfig{}, rng);
  for (const JobRequest& job : workload.jobs) {
    EXPECT_EQ(job.depends_on, 0);
  }
}

TEST(Workflow, ChainedWorkloadCompletesEndToEnd) {
  util::Rng rng(33);
  trace::GeneratorConfig gen;
  gen.target_jobs = 400;
  gen.span_s = 4000.0;
  trace::SwfTrace raw = trace::generate_egee_like(gen, rng);
  trace::clean(raw);
  trace::PreparationConfig config;
  config.workflow_chain_fraction = 0.8;
  config.target_total_vms = 600;
  for (const ProfileClass profile : workload::kAllProfileClasses) {
    config.solo_time_s[static_cast<std::size_t>(profile)] =
        db().base().of(profile).solo_time_s;
  }
  const PreparedWorkload workload =
      trace::prepare_workload(raw, config, rng);
  CloudConfig cloud;
  cloud.server_count = 10;
  const core::FirstFitAllocator ff(2);
  const SimMetrics metrics = Simulator(db(), cloud).run(workload, ff);
  EXPECT_EQ(metrics.vms, static_cast<std::size_t>(workload.total_vms));
}

}  // namespace
}  // namespace aeva::datacenter
