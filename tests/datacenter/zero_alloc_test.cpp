/// \file zero_alloc_test.cpp
/// Steady-state heap-allocation gate for the event loop (this PR's
/// tentpole): once the simulator's scratch buffers, queue, and fleet view
/// have warmed up, processing an event must perform ZERO heap
/// allocations. The test instruments the global allocator with a counting
/// override, arms it over a mid-run window (after every high-water mark —
/// running-VM vector, queue ring, scratch capacities, estimate cache —
/// has been reached), and asserts the counter never moves.
///
/// The override is binary-global but inert unless armed, so the other
/// suites linked into test_datacenter are unaffected (gtest runs tests in
/// one binary serially).
///
/// Configuration deliberately mirrors the bench's steady-state leg:
/// FirstFit, observability OFF (trace spans allocate strings when a
/// session is attached), failures/migration/snapshots OFF.

#include "datacenter/simulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/first_fit.hpp"
#include "testing/shared_db.hpp"
#include "trace/prepare.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocations{0};

void note_allocation() noexcept {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): every heap
// allocation in the binary funnels through these.
void* operator new(std::size_t size) {
  note_allocation();
  return checked_malloc(size);
}
void* operator new[](std::size_t size) {
  note_allocation();
  return checked_malloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  note_allocation();
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  note_allocation();
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

/// Steady bursty workload (same generator shape as the bit-identity
/// suite): enough jobs that concurrency plateaus well before the armed
/// window opens.
PreparedWorkload steady_workload(std::uint64_t seed, int target_jobs) {
  util::Rng rng(seed);
  PreparedWorkload workload;
  long long id = 1;
  double t = 0.0;
  while (static_cast<int>(workload.jobs.size()) < target_jobs) {
    const auto burst = static_cast<int>(rng.uniform_int(1, 5));
    const auto profile = static_cast<ProfileClass>(rng.uniform_int(0, 2));
    for (int b = 0; b < burst; ++b) {
      JobRequest job;
      job.id = id++;
      job.submit_s = t;
      job.profile = profile;
      job.vm_count = static_cast<int>(rng.uniform_int(1, 4));
      job.runtime_scale = rng.uniform(0.4, 2.5);
      job.deadline_s = rng.uniform(2000.0, 20000.0);
      job.max_exec_stretch = rng.uniform(1.5, 3.0);
      workload.total_vms += job.vm_count;
      workload.vm_mix.of(job.profile) += job.vm_count;
      workload.jobs.push_back(job);
    }
    t += rng.exponential(1.0 / 45.0);
  }
  return workload;
}

TEST(ZeroAllocEventLoop, WarmWindowPerformsNoHeapAllocations) {
  const PreparedWorkload workload = steady_workload(4242, 400);
  CloudConfig cloud;
  cloud.server_count = 40;
  const core::FirstFitAllocator allocator(2);
  const Simulator sim(testing::shared_db(), cloud);

  // Pass 1: count the run's intervals so the armed window can sit in the
  // middle of the steady state.
  std::size_t total_intervals = 0;
  const SimMetrics first = sim.run(
      workload, allocator,
      [&](double, double, const std::vector<double>&) { ++total_intervals; });
  ASSERT_GT(total_intervals, 100u) << "workload too small to have a warm "
                                      "steady-state window";

  // Pass 2: arm the counter over the middle 55%..90% of intervals — past
  // every capacity high-water mark, before teardown.
  const std::size_t arm_at = (total_intervals * 55) / 100;
  const std::size_t disarm_at = (total_intervals * 90) / 100;
  std::size_t interval = 0;
  g_allocations.store(0);
  const SimMetrics second = sim.run(
      workload, allocator, [&](double, double, const std::vector<double>&) {
        ++interval;
        if (interval == arm_at) {
          g_armed.store(true, std::memory_order_relaxed);
        } else if (interval == disarm_at) {
          g_armed.store(false, std::memory_order_relaxed);
        }
      });
  g_armed.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "the event loop heap-allocated inside its warm steady-state "
         "window (" << arm_at << ".." << disarm_at << " of "
      << total_intervals << " intervals)";
  // Both passes are the same simulation: the observer is passive.
  EXPECT_EQ(first.energy_j, second.energy_j);
  EXPECT_EQ(first.vms, second.vms);
}

}  // namespace
}  // namespace aeva::datacenter
