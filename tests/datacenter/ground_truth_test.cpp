#include "datacenter/ground_truth.hpp"

#include <gtest/gtest.h>

#include "core/first_fit.hpp"
#include "core/proactive.hpp"
#include "testing/shared_db.hpp"
#include "workload/registry.hpp"

namespace aeva::datacenter {
namespace {

using trace::JobRequest;
using trace::PreparedWorkload;
using workload::ProfileClass;

const modeldb::ModelDatabase& db() { return testing::shared_db(); }

PreparedWorkload small_workload() {
  PreparedWorkload workload;
  long long id = 1;
  double t = 0.0;
  for (int i = 0; i < 9; ++i) {
    JobRequest job;
    job.id = id++;
    job.submit_s = t;
    job.profile = workload::kAllProfileClasses[static_cast<std::size_t>(i) % 3];
    job.vm_count = 1 + i % 3;
    job.runtime_scale = 1.0;
    job.deadline_s = 1e9;
    job.max_exec_stretch = 3.0;
    workload.total_vms += job.vm_count;
    workload.jobs.push_back(job);
    t += 150.0;
  }
  return workload;
}

CloudConfig small_cloud(int servers = 6) {
  CloudConfig cloud;
  cloud.server_count = servers;
  return cloud;
}

TEST(GroundTruth, CompletesEveryVm) {
  const GroundTruthSimulator sim(db(), testbed::testbed_server(),
                                 small_cloud());
  const core::FirstFitAllocator ff(2);
  const SimMetrics metrics = sim.run(small_workload(), ff);
  EXPECT_EQ(metrics.vms, static_cast<std::size_t>(small_workload().total_vms));
  EXPECT_GT(metrics.makespan_s, 0.0);
  EXPECT_GT(metrics.energy_j, 0.0);
}

TEST(GroundTruth, SoloJobMatchesFluidRuntimeExactly) {
  // One VM on an empty cloud runs at its app's nominal runtime (the fluid
  // ground truth), not the database estimate.
  const GroundTruthSimulator sim(db(), testbed::testbed_server(),
                                 small_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 1;
  job.runtime_scale = 1.5;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  const double nominal =
      workload::canonical_app(ProfileClass::kCpu).nominal_runtime_s();
  EXPECT_NEAR(metrics.makespan_s, 1.5 * nominal, 1e-3);
}

TEST(GroundTruth, TracksDbBackendWithinModelError) {
  // The two backends must agree on the big picture: same workload, same
  // strategy, metrics within a modest band (the DB was measured on this
  // very fluid model).
  const core::ProactiveAllocator pa(db(), core::ProactiveConfig{});
  const Simulator db_sim(db(), small_cloud());
  const GroundTruthSimulator fluid_sim(db(), testbed::testbed_server(),
                                       small_cloud());
  const SimMetrics a = db_sim.run(small_workload(), pa);
  const SimMetrics b = fluid_sim.run(small_workload(), pa);
  EXPECT_EQ(a.vms, b.vms);
  EXPECT_NEAR(b.makespan_s, a.makespan_s, 0.30 * a.makespan_s);
  EXPECT_NEAR(b.energy_j, a.energy_j, 0.30 * a.energy_j);
}

TEST(GroundTruth, DeterministicAcrossRuns) {
  const GroundTruthSimulator sim(db(), testbed::testbed_server(),
                                 small_cloud());
  const core::FirstFitAllocator ff(2);
  const SimMetrics a = sim.run(small_workload(), ff);
  const SimMetrics b = sim.run(small_workload(), ff);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(GroundTruth, EnergyOnlyForBusyServers) {
  const GroundTruthSimulator sim(db(), testbed::testbed_server(),
                                 small_cloud(30));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kIo;
  job.vm_count = 1;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 1;
  const core::FirstFitAllocator ff(1);
  const SimMetrics metrics = sim.run(workload, ff);
  // One busy server: mean power between idle and peak of the testbed.
  const double mean_power = metrics.energy_j / metrics.makespan_s;
  EXPECT_GT(mean_power, 125.0);
  EXPECT_LT(mean_power, testbed::testbed_server().power.peak_w());
  EXPECT_EQ(metrics.servers_powered, 1u);
}

TEST(GroundTruth, RejectsUnsupportedConfigurations) {
  CloudConfig with_migration = small_cloud();
  with_migration.migration.enabled = true;
  EXPECT_THROW(GroundTruthSimulator(db(), testbed::testbed_server(),
                                    with_migration),
               std::invalid_argument);
  CloudConfig hetero = small_cloud(2);
  hetero.hardware = {0, 0};
  EXPECT_THROW(GroundTruthSimulator(db(), testbed::testbed_server(), hetero),
               std::invalid_argument);
}

TEST(GroundTruth, ThrowsOnPermanentlyUnplaceableJob) {
  const GroundTruthSimulator sim(db(), testbed::testbed_server(),
                                 small_cloud(1));
  PreparedWorkload workload;
  JobRequest job;
  job.id = 1;
  job.submit_s = 0.0;
  job.profile = ProfileClass::kCpu;
  job.vm_count = 4;
  job.runtime_scale = 1.0;
  job.deadline_s = 1e9;
  workload.jobs.push_back(job);
  workload.total_vms = 4;
  const core::FirstFitAllocator ff(1, 2);  // only 2 slots per server
  EXPECT_THROW((void)sim.run(workload, ff), std::runtime_error);
}

}  // namespace
}  // namespace aeva::datacenter
