#include "trace/prepare.hpp"

#include <gtest/gtest.h>

#include <map>

#include "trace/generator.hpp"

namespace aeva::trace {
namespace {

SwfTrace clean_trace(std::uint64_t seed = 1) {
  GeneratorConfig config;
  config.target_jobs = 2000;
  util::Rng rng(seed);
  SwfTrace trace = generate_egee_like(config, rng);
  clean(trace);
  return trace;
}

TEST(Prepare, VmCountsWithinBounds) {
  util::Rng rng(2);
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), PreparationConfig{}, rng);
  for (const JobRequest& job : prepared.jobs) {
    EXPECT_GE(job.vm_count, 1);
    EXPECT_LE(job.vm_count, 4);
  }
}

TEST(Prepare, StopsAtTargetVms) {
  util::Rng rng(3);
  PreparationConfig config;
  config.target_total_vms = 500;
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), config, rng);
  EXPECT_GE(prepared.total_vms, 500);
  EXPECT_LE(prepared.total_vms, 503);  // last job may overshoot by <4
}

TEST(Prepare, ZeroTargetUsesWholeTrace) {
  util::Rng rng(4);
  PreparationConfig config;
  config.target_total_vms = 0;
  const SwfTrace trace = clean_trace();
  const PreparedWorkload prepared = prepare_workload(trace, config, rng);
  EXPECT_EQ(prepared.jobs.size(), trace.jobs.size());
}

TEST(Prepare, TotalsAreConsistent) {
  util::Rng rng(5);
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), PreparationConfig{}, rng);
  int total = 0;
  workload::ClassCounts mix;
  for (const JobRequest& job : prepared.jobs) {
    total += job.vm_count;
    mix.of(job.profile) += job.vm_count;
  }
  EXPECT_EQ(total, prepared.total_vms);
  EXPECT_EQ(mix, prepared.vm_mix);
}

TEST(Prepare, ProfilesAssignedByBursts) {
  // Consecutive jobs share profiles in runs of 1..5; check both that runs
  // exist and that no run exceeds the configured maximum... run length can
  // exceed max_burst only when two adjacent bursts draw the same class.
  util::Rng rng(6);
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), PreparationConfig{}, rng);
  std::size_t same_as_previous = 0;
  for (std::size_t i = 1; i < prepared.jobs.size(); ++i) {
    same_as_previous +=
        prepared.jobs[i].profile == prepared.jobs[i - 1].profile;
  }
  // With bursts of mean 3 the repeat share is far above the 1/3 expected
  // from i.i.d. assignment.
  EXPECT_GT(static_cast<double>(same_as_previous) / prepared.jobs.size(),
            0.55);
}

TEST(Prepare, AllClassesRepresented) {
  util::Rng rng(7);
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), PreparationConfig{}, rng);
  EXPECT_GT(prepared.vm_mix.cpu, 0);
  EXPECT_GT(prepared.vm_mix.mem, 0);
  EXPECT_GT(prepared.vm_mix.io, 0);
}

TEST(Prepare, RoughlyUniformClassShares) {
  util::Rng rng(8);
  PreparationConfig config;
  config.target_total_vms = 0;
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), config, rng);
  const double total = prepared.total_vms;
  EXPECT_NEAR(prepared.vm_mix.cpu / total, 1.0 / 3.0, 0.08);
  EXPECT_NEAR(prepared.vm_mix.mem / total, 1.0 / 3.0, 0.08);
  EXPECT_NEAR(prepared.vm_mix.io / total, 1.0 / 3.0, 0.08);
}

TEST(Prepare, RuntimeScaleClamped) {
  util::Rng rng(9);
  PreparationConfig config;
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), config, rng);
  for (const JobRequest& job : prepared.jobs) {
    EXPECT_GE(job.runtime_scale, config.min_runtime_scale);
    EXPECT_LE(job.runtime_scale, config.max_runtime_scale);
  }
}

TEST(Prepare, DeadlinesArePerType) {
  util::Rng rng(10);
  PreparationConfig config;
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), config, rng);
  std::map<workload::ProfileClass, double> deadline;
  for (const JobRequest& job : prepared.jobs) {
    const auto [it, inserted] = deadline.emplace(job.profile, job.deadline_s);
    if (!inserted) {
      EXPECT_DOUBLE_EQ(it->second, job.deadline_s)
          << "deadline varies within a class";
    }
    const auto ci = static_cast<std::size_t>(job.profile);
    EXPECT_DOUBLE_EQ(job.deadline_s,
                     config.qos_factor[ci] * config.solo_time_s[ci]);
    EXPECT_DOUBLE_EQ(job.max_exec_stretch, config.qos_exec_stretch[ci]);
  }
}

TEST(Prepare, SubmitOrderAndIdsPreserved) {
  util::Rng rng(11);
  const PreparedWorkload prepared =
      prepare_workload(clean_trace(), PreparationConfig{}, rng);
  for (std::size_t i = 0; i < prepared.jobs.size(); ++i) {
    EXPECT_EQ(prepared.jobs[i].id, static_cast<long long>(i) + 1);
    if (i > 0) {
      EXPECT_GE(prepared.jobs[i].submit_s, prepared.jobs[i - 1].submit_s);
    }
  }
}

TEST(Prepare, DeterministicInRngState) {
  util::Rng rng_a(12);
  util::Rng rng_b(12);
  const SwfTrace trace = clean_trace();
  const PreparedWorkload a =
      prepare_workload(trace, PreparationConfig{}, rng_a);
  const PreparedWorkload b =
      prepare_workload(trace, PreparationConfig{}, rng_b);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].profile, b.jobs[i].profile);
    EXPECT_EQ(a.jobs[i].vm_count, b.jobs[i].vm_count);
  }
}

TEST(Prepare, RejectsBadInputs) {
  util::Rng rng(13);
  EXPECT_THROW((void)prepare_workload(SwfTrace{}, PreparationConfig{}, rng),
               std::invalid_argument);

  PreparationConfig config;
  config.min_vms_per_job = 0;
  EXPECT_THROW((void)prepare_workload(clean_trace(), config, rng),
               std::invalid_argument);

  config = PreparationConfig{};
  config.max_vms_per_job = 0;
  EXPECT_THROW((void)prepare_workload(clean_trace(), config, rng),
               std::invalid_argument);

  config = PreparationConfig{};
  config.reference_runtime_s = 0.0;
  EXPECT_THROW((void)prepare_workload(clean_trace(), config, rng),
               std::invalid_argument);

  config = PreparationConfig{};
  config.qos_factor[0] = 0.0;
  EXPECT_THROW((void)prepare_workload(clean_trace(), config, rng),
               std::invalid_argument);

  config = PreparationConfig{};
  config.min_runtime_scale = 2.0;
  config.max_runtime_scale = 1.0;
  EXPECT_THROW((void)prepare_workload(clean_trace(), config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::trace
