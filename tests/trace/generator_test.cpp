#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace aeva::trace {
namespace {

SwfTrace small_trace(std::uint64_t seed = 1,
                     GeneratorConfig config = GeneratorConfig{}) {
  config.target_jobs = 800;
  util::Rng rng(seed);
  return generate_egee_like(config, rng);
}

TEST(Generator, ProducesAtLeastTargetJobs) {
  const SwfTrace trace = small_trace();
  EXPECT_GE(trace.jobs.size(), 800u);
}

TEST(Generator, DeterministicInSeed) {
  const SwfTrace a = small_trace(7);
  const SwfTrace b = small_trace(7);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_s, b.jobs[i].submit_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].run_s, b.jobs[i].run_s);
    EXPECT_EQ(a.jobs[i].status, b.jobs[i].status);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const SwfTrace a = small_trace(1);
  const SwfTrace b = small_trace(2);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.jobs.size(), b.jobs.size()); ++i) {
    any_diff |= a.jobs[i].run_s != b.jobs[i].run_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, SubmitTimesSortedAndWithinSpan) {
  GeneratorConfig config;
  config.target_jobs = 800;
  const SwfTrace trace = small_trace(3, config);
  double previous = 0.0;
  for (const SwfJob& job : trace.jobs) {
    EXPECT_GE(job.submit_s, previous);
    EXPECT_GE(job.submit_s, 0.0);
    EXPECT_LE(job.submit_s, config.span_s + 31.0);  // intra-burst jitter
    previous = job.submit_s;
  }
}

TEST(Generator, JobIdsAreSequential) {
  const SwfTrace trace = small_trace();
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(trace.jobs[i].job_id, static_cast<long long>(i) + 1);
  }
}

TEST(Generator, ImperfectionFractionsRoughlyRespected) {
  GeneratorConfig config;
  config.target_jobs = 4000;
  util::Rng rng(5);
  const SwfTrace trace = generate_egee_like(config, rng);
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  for (const SwfJob& job : trace.jobs) {
    failed += job.status == static_cast<int>(SwfStatus::kFailed) ? 1 : 0;
    cancelled +=
        job.status == static_cast<int>(SwfStatus::kCancelled) ? 1 : 0;
  }
  const double n = static_cast<double>(trace.jobs.size());
  EXPECT_NEAR(failed / n, config.failed_fraction, 0.02);
  EXPECT_NEAR(cancelled / n, config.cancelled_fraction, 0.02);
}

TEST(Generator, CleaningLeavesOnlyUsableJobs) {
  SwfTrace trace = small_trace(9);
  const std::size_t before = trace.jobs.size();
  const CleanStats stats = clean(trace);
  EXPECT_GT(stats.total(), 0u);
  EXPECT_EQ(trace.jobs.size() + stats.total(), before);
  for (const SwfJob& job : trace.jobs) {
    EXPECT_GT(job.run_s, 0.0);
    EXPECT_EQ(job.status, static_cast<int>(SwfStatus::kCompleted));
  }
}

TEST(Generator, ProcessorsArePowersOfTwo) {
  const SwfTrace trace = small_trace(11);
  for (const SwfJob& job : trace.jobs) {
    const int p = job.requested_procs;
    EXPECT_GT(p, 0);
    EXPECT_EQ(p & (p - 1), 0) << p;
    EXPECT_LE(p, 64);
  }
}

TEST(Generator, RuntimesTruncatedAtMax) {
  GeneratorConfig config;
  config.target_jobs = 2000;
  config.max_runtime_s = 3000.0;
  util::Rng rng(13);
  const SwfTrace trace = generate_egee_like(config, rng);
  for (const SwfJob& job : trace.jobs) {
    // Cancelled/anomalous jobs have zeroed runtimes; others obey the cap
    // plus the ±10% per-job jitter.
    EXPECT_LE(job.run_s, 3000.0 * 1.1 + 1e-9);
  }
}

TEST(Generator, BurstsShareExecutable) {
  // Jobs submitted within seconds of each other in a burst carry the same
  // executable id reasonably often — verify bursts exist at all by
  // checking consecutive-job executable repeats.
  const SwfTrace trace = small_trace(17);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < trace.jobs.size(); ++i) {
    repeats += trace.jobs[i].executable == trace.jobs[i - 1].executable;
  }
  EXPECT_GT(repeats, trace.jobs.size() / 5);
}

TEST(Generator, RejectsBadConfig) {
  util::Rng rng(1);
  GeneratorConfig config;
  config.target_jobs = 0;
  EXPECT_THROW((void)generate_egee_like(config, rng), std::invalid_argument);

  config = GeneratorConfig{};
  config.span_s = 0.0;
  EXPECT_THROW((void)generate_egee_like(config, rng), std::invalid_argument);

  config = GeneratorConfig{};
  config.min_burst = 3;
  config.max_burst = 2;
  EXPECT_THROW((void)generate_egee_like(config, rng), std::invalid_argument);

  config = GeneratorConfig{};
  config.failed_fraction = 0.6;
  config.cancelled_fraction = 0.5;
  EXPECT_THROW((void)generate_egee_like(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace aeva::trace
