#include "trace/prepared_swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace aeva::trace {
namespace {

PreparedWorkload sample_workload() {
  util::Rng rng(5);
  GeneratorConfig gen;
  gen.target_jobs = 600;
  SwfTrace raw = generate_egee_like(gen, rng);
  clean(raw);
  PreparationConfig config;
  config.target_total_vms = 0;
  config.workflow_chain_fraction = 0.5;
  return prepare_workload(raw, config, rng);
}

TEST(PreparedSwf, RoundTripPreservesEveryField) {
  const PreparedWorkload original = sample_workload();
  const PreparedWorkload back = swf_to_prepared(prepared_to_swf(original));
  ASSERT_EQ(back.jobs.size(), original.jobs.size());
  EXPECT_EQ(back.total_vms, original.total_vms);
  EXPECT_EQ(back.vm_mix, original.vm_mix);
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const JobRequest& a = original.jobs[i];
    const JobRequest& b = back.jobs[i];
    EXPECT_EQ(b.id, a.id);
    EXPECT_DOUBLE_EQ(b.submit_s, a.submit_s);
    EXPECT_EQ(b.profile, a.profile);
    EXPECT_EQ(b.vm_count, a.vm_count);
    EXPECT_NEAR(b.runtime_scale, a.runtime_scale, 1e-9);
    EXPECT_NEAR(b.deadline_s, a.deadline_s, 1e-9);
    EXPECT_NEAR(b.max_exec_stretch, a.max_exec_stretch, 1e-9);
    EXPECT_EQ(b.depends_on, a.depends_on);
  }
}

TEST(PreparedSwf, SurvivesTextSerialization) {
  // The annotated trace must survive the plain SWF writer/parser too —
  // note the writer emits whole seconds, so sub-second precision rounds.
  const PreparedWorkload original = sample_workload();
  std::ostringstream out;
  write_swf(out, prepared_to_swf(original));
  std::istringstream in(out.str());
  const PreparedWorkload back = swf_to_prepared(parse_swf(in));
  ASSERT_EQ(back.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < original.jobs.size(); i += 13) {
    EXPECT_EQ(back.jobs[i].profile, original.jobs[i].profile);
    EXPECT_EQ(back.jobs[i].vm_count, original.jobs[i].vm_count);
    EXPECT_NEAR(back.jobs[i].runtime_scale, original.jobs[i].runtime_scale,
                1e-3);
    EXPECT_EQ(back.jobs[i].depends_on, original.jobs[i].depends_on);
  }
}

TEST(PreparedSwf, ThirdPartySwfFieldsAreSane) {
  const SwfTrace annotated = prepared_to_swf(sample_workload());
  for (const SwfJob& row : annotated.jobs) {
    EXPECT_GE(row.requested_procs, 1);
    EXPECT_LE(row.requested_procs, 4);
    EXPECT_GT(row.run_s, 0.0);
    EXPECT_EQ(row.status, static_cast<int>(SwfStatus::kCompleted));
  }
}

TEST(PreparedSwf, RejectsCorruptEncodings) {
  SwfTrace bad = prepared_to_swf(sample_workload());
  bad.jobs[0].executable = 9;
  EXPECT_THROW((void)swf_to_prepared(bad), std::invalid_argument);

  bad = prepared_to_swf(sample_workload());
  bad.jobs[0].requested_procs = 0;
  EXPECT_THROW((void)swf_to_prepared(bad), std::invalid_argument);

  bad = prepared_to_swf(sample_workload());
  bad.jobs[0].think_s = 0.0;
  EXPECT_THROW((void)swf_to_prepared(bad), std::invalid_argument);

  EXPECT_THROW((void)swf_to_prepared(SwfTrace{}), std::invalid_argument);
  EXPECT_THROW((void)prepared_to_swf(PreparedWorkload{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::trace
