// Malformed-SWF fixtures exercising the hardened parser error paths
// (fuzz_swf findings): every rejection must be a typed
// std::invalid_argument naming the line, never UB, a hang, or a silently
// zero-filled job.

#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace aeva::trace {
namespace {

const char* kValidLine =
    "1 791 0 1176 2 825 373968 2 2448 373968 1 97 18 39 4 1 -1 -1\n";

SwfTrace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_swf(in);
}

TEST(SwfMalformed, RejectsNanInIntegerField) {
  // Previously static_cast<int>(NaN) — undefined behaviour.
  EXPECT_THROW(
      (void)parse("1 791 0 1176 nan 825 373968 2 2448 373968 1 97 18 39 4 1 "
                  "-1 -1\n"),
      std::invalid_argument);
}

TEST(SwfMalformed, RejectsNonFiniteTimeFields) {
  EXPECT_THROW(
      (void)parse("1 inf 0 1176 2 825 373968 2 2448 373968 1 97 18 39 4 1 "
                  "-1 -1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse("1 791 0 -inf 2 825 373968 2 2448 373968 1 97 18 39 4 1 "
                  "-1 -1\n"),
      std::invalid_argument);
}

TEST(SwfMalformed, RejectsOutOfRangeProcessorCount) {
  // Previously static_cast<int>(1e300) — undefined behaviour.
  EXPECT_THROW(
      (void)parse("1 791 0 1176 1e300 825 373968 2 2448 373968 1 97 18 39 4 "
                  "1 -1 -1\n"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse("1 791 0 1176 2 825 373968 2147483648 2448 373968 1 97 18 "
                  "39 4 1 -1 -1\n"),
      std::invalid_argument);
}

TEST(SwfMalformed, RejectsOutOfRangeJobId) {
  EXPECT_THROW(
      (void)parse("1e300 791 0 1176 2 825 373968 2 2448 373968 1 97 18 39 4 "
                  "1 -1 -1\n"),
      std::invalid_argument);
}

TEST(SwfMalformed, RejectsTruncatedLine) {
  EXPECT_THROW((void)parse("1 791 0 1176 2 825 373968 2 2448\n"),
               std::invalid_argument);
}

TEST(SwfMalformed, RejectsExtraFields) {
  EXPECT_THROW(
      (void)parse("1 791 0 1176 2 825 373968 2 2448 373968 1 97 18 39 4 1 "
                  "-1 -1 42\n"),
      std::invalid_argument);
}

TEST(SwfMalformed, ErrorMessageNamesTheLine) {
  try {
    (void)parse(std::string(kValidLine) + "2 3 4\n");
    FAIL() << "parse_swf accepted a truncated line";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("line 2"), std::string::npos)
        << err.what();
  }
}

TEST(SwfMalformed, BoundaryIntegerFieldsStillParse) {
  // INT_MAX processors and a ±9e18 job id are extreme but in range.
  const SwfTrace trace =
      parse("9000000000000000000 791 0 1176 2147483647 825 373968 2 2448 "
            "373968 1 97 18 39 4 1 -1 -1\n");
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].job_id, 9000000000000000000LL);
  EXPECT_EQ(trace.jobs[0].allocated_procs, 2147483647);
}

TEST(SwfMalformed, ValidLineStillParsesAfterHardening) {
  const SwfTrace trace = parse(kValidLine);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].allocated_procs, 2);
}

}  // namespace
}  // namespace aeva::trace
