/// Tests against the committed sample trace (data/sample_egee.swf): the
/// file-driven pipeline must keep loading the artifact a user would start
/// from. The path is wired in by CMake as AEVA_SAMPLE_TRACE.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/prepare.hpp"
#include "trace/swf.hpp"
#include "util/rng.hpp"

#ifndef AEVA_SAMPLE_TRACE
#error "AEVA_SAMPLE_TRACE must be defined by the build"
#endif

namespace aeva::trace {
namespace {

TEST(SampleData, LoadsCommittedTrace) {
  const SwfTrace trace = read_swf_file(AEVA_SAMPLE_TRACE);
  EXPECT_EQ(trace.jobs.size(), 220u);
  EXPECT_EQ(trace.comments.size(), 2u);
}

TEST(SampleData, CleansAndPrepares) {
  SwfTrace trace = read_swf_file(AEVA_SAMPLE_TRACE);
  const CleanStats stats = clean(trace);
  EXPECT_GT(stats.total(), 0u);
  EXPECT_GT(trace.jobs.size(), 150u);

  util::Rng rng(1);
  PreparationConfig config;
  config.target_total_vms = 0;
  const PreparedWorkload workload = prepare_workload(trace, config, rng);
  EXPECT_EQ(workload.jobs.size(), trace.jobs.size());
  EXPECT_GT(workload.total_vms, 0);
}

TEST(SampleData, RoundTripsThroughWriter) {
  const SwfTrace trace = read_swf_file(AEVA_SAMPLE_TRACE);
  std::ostringstream out;
  write_swf(out, trace);
  std::istringstream in(out.str());
  const SwfTrace reparsed = parse_swf(in);
  ASSERT_EQ(reparsed.jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); i += 17) {
    EXPECT_DOUBLE_EQ(reparsed.jobs[i].submit_s, trace.jobs[i].submit_s);
    EXPECT_DOUBLE_EQ(reparsed.jobs[i].run_s, trace.jobs[i].run_s);
  }
}

}  // namespace
}  // namespace aeva::trace
