#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace aeva::trace {
namespace {

const char* kSample =
    "; Comment: tiny trace\n"
    "; Version: 2\n"
    "1 0 5 100 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n"
    "2 30 0 250 8 200 512 8 300 1024 1 11 2 7 2 1 -1 -1\n"
    "\n"
    "3 60 10 0 1 0 0 1 10 0 5 12 3 8 1 1 -1 -1\n";

TEST(SwfParse, ParsesJobsAndComments) {
  std::istringstream in(kSample);
  const SwfTrace trace = parse_swf(in);
  ASSERT_EQ(trace.jobs.size(), 3u);
  EXPECT_EQ(trace.comments.size(), 2u);
  EXPECT_EQ(trace.jobs[0].job_id, 1);
  EXPECT_DOUBLE_EQ(trace.jobs[0].submit_s, 0.0);
  EXPECT_DOUBLE_EQ(trace.jobs[0].run_s, 100.0);
  EXPECT_EQ(trace.jobs[0].allocated_procs, 4);
  EXPECT_EQ(trace.jobs[1].requested_procs, 8);
  EXPECT_EQ(trace.jobs[2].status, 5);  // cancelled
  EXPECT_EQ(trace.jobs[2].preceding_job, -1);
}

TEST(SwfParse, RejectsWrongArity) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW((void)parse_swf(in), std::invalid_argument);
}

TEST(SwfParse, RejectsNonNumeric) {
  std::istringstream in(
      "1 0 5 abc 4 90 1024 4 200 2048 1 10 2 7 1 1 -1 -1\n");
  EXPECT_THROW((void)parse_swf(in), std::invalid_argument);
}

TEST(SwfParse, EmptyInput) {
  std::istringstream in("");
  const SwfTrace trace = parse_swf(in);
  EXPECT_TRUE(trace.jobs.empty());
}

TEST(SwfRoundTrip, WriteThenParse) {
  std::istringstream in(kSample);
  const SwfTrace trace = parse_swf(in);
  std::ostringstream out;
  write_swf(out, trace);
  std::istringstream back(out.str());
  const SwfTrace reparsed = parse_swf(back);
  ASSERT_EQ(reparsed.jobs.size(), trace.jobs.size());
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    EXPECT_EQ(reparsed.jobs[i].job_id, trace.jobs[i].job_id);
    EXPECT_DOUBLE_EQ(reparsed.jobs[i].submit_s, trace.jobs[i].submit_s);
    EXPECT_DOUBLE_EQ(reparsed.jobs[i].run_s, trace.jobs[i].run_s);
    EXPECT_EQ(reparsed.jobs[i].status, trace.jobs[i].status);
  }
  EXPECT_EQ(reparsed.comments, trace.comments);
}

TEST(SwfFiles, DiskRoundTrip) {
  std::istringstream in(kSample);
  const SwfTrace trace = parse_swf(in);
  const std::string path =
      (std::filesystem::temp_directory_path() / "aeva_swf_test.swf").string();
  write_swf_file(path, trace);
  const SwfTrace loaded = read_swf_file(path);
  EXPECT_EQ(loaded.jobs.size(), trace.jobs.size());
  std::filesystem::remove(path);
}

TEST(SwfFiles, MissingFileThrows) {
  EXPECT_THROW((void)read_swf_file("/no/such/file.swf"), std::runtime_error);
}

TEST(SwfMerge, SortsBySubmitAndRenumbers) {
  SwfTrace a;
  SwfJob job;
  job.run_s = 10.0;
  job.allocated_procs = 1;
  job.job_id = 7;
  job.submit_s = 100.0;
  a.jobs.push_back(job);
  job.job_id = 8;
  job.submit_s = 10.0;
  a.jobs.push_back(job);

  SwfTrace b;
  job.job_id = 3;
  job.submit_s = 50.0;
  b.jobs.push_back(job);
  b.comments.push_back("; from b");

  const SwfTrace merged = merge_traces({a, b});
  ASSERT_EQ(merged.jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(merged.jobs[0].submit_s, 10.0);
  EXPECT_DOUBLE_EQ(merged.jobs[1].submit_s, 50.0);
  EXPECT_DOUBLE_EQ(merged.jobs[2].submit_s, 100.0);
  EXPECT_EQ(merged.jobs[0].job_id, 1);
  EXPECT_EQ(merged.jobs[2].job_id, 3);
  EXPECT_EQ(merged.comments.size(), 1u);
}

TEST(SwfMerge, RejectsEmptyInput) {
  EXPECT_THROW((void)merge_traces({}), std::invalid_argument);
}

TEST(SwfClean, RemovesFailedCancelledAnomalies) {
  SwfTrace trace;
  SwfJob good;
  good.run_s = 100.0;
  good.allocated_procs = 2;
  good.submit_s = 0.0;
  good.status = static_cast<int>(SwfStatus::kCompleted);
  trace.jobs.push_back(good);

  SwfJob failed = good;
  failed.status = static_cast<int>(SwfStatus::kFailed);
  trace.jobs.push_back(failed);

  SwfJob cancelled = good;
  cancelled.status = static_cast<int>(SwfStatus::kCancelled);
  trace.jobs.push_back(cancelled);

  SwfJob zero_runtime = good;
  zero_runtime.run_s = 0.0;
  trace.jobs.push_back(zero_runtime);

  SwfJob negative_submit = good;
  negative_submit.submit_s = -5.0;
  trace.jobs.push_back(negative_submit);

  SwfJob no_procs = good;
  no_procs.allocated_procs = -1;
  no_procs.requested_procs = -1;
  trace.jobs.push_back(no_procs);

  const CleanStats stats = clean(trace);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.anomalies, 3u);
  EXPECT_EQ(stats.total(), 5u);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_EQ(trace.jobs[0].status, static_cast<int>(SwfStatus::kCompleted));
}

TEST(SwfClean, KeepsRequestedProcsOnlyJobs) {
  // Grid traces often lack allocated_procs but carry the request.
  SwfTrace trace;
  SwfJob job;
  job.run_s = 50.0;
  job.allocated_procs = -1;
  job.requested_procs = 16;
  job.submit_s = 0.0;
  trace.jobs.push_back(job);
  const CleanStats stats = clean(trace);
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_EQ(trace.jobs.size(), 1u);
}

TEST(SwfClean, PreservesOrder) {
  SwfTrace trace;
  for (int i = 0; i < 5; ++i) {
    SwfJob job;
    job.job_id = i;
    job.submit_s = i * 10.0;
    job.run_s = 10.0;
    job.allocated_procs = 1;
    job.status = i == 2 ? 0 : 1;
    trace.jobs.push_back(job);
  }
  clean(trace);
  ASSERT_EQ(trace.jobs.size(), 4u);
  EXPECT_EQ(trace.jobs[0].job_id, 0);
  EXPECT_EQ(trace.jobs[1].job_id, 1);
  EXPECT_EQ(trace.jobs[2].job_id, 3);
  EXPECT_EQ(trace.jobs[3].job_id, 4);
}

}  // namespace
}  // namespace aeva::trace
