#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace aeva::trace {
namespace {

SwfTrace make_trace(std::uint64_t seed = 1,
                    DailyCycleConfig config = DailyCycleConfig{}) {
  util::Rng rng(seed);
  return generate_daily_cycle(config, rng);
}

TEST(DailyCycle, ProducesAtLeastTargetJobs) {
  DailyCycleConfig config;
  config.target_jobs = 1000;
  const SwfTrace trace = make_trace(1, config);
  EXPECT_GE(trace.jobs.size(), 1000u);
}

TEST(DailyCycle, DeterministicInSeed) {
  DailyCycleConfig config;
  config.target_jobs = 500;
  const SwfTrace a = make_trace(9, config);
  const SwfTrace b = make_trace(9, config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_s, b.jobs[i].submit_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].run_s, b.jobs[i].run_s);
  }
}

TEST(DailyCycle, SubmitsSortedAndWithinSpan) {
  DailyCycleConfig config;
  config.target_jobs = 800;
  const SwfTrace trace = make_trace(2, config);
  double previous = 0.0;
  for (const SwfJob& job : trace.jobs) {
    EXPECT_GE(job.submit_s, previous);
    EXPECT_LE(job.submit_s, config.days * 86400.0 + 31.0);
    previous = job.submit_s;
  }
}

TEST(DailyCycle, PeakHourReceivesMoreArrivalsThanTrough) {
  DailyCycleConfig config;
  config.target_jobs = 8000;
  config.peak_to_trough = 4.0;
  const SwfTrace trace = make_trace(3, config);
  // Bucket arrivals by hour of day and compare the peak bucket (14:00)
  // against the trough (02:00), each widened to a 4-hour window.
  std::array<int, 24> by_hour{};
  for (const SwfJob& job : trace.jobs) {
    const int hour =
        static_cast<int>(std::fmod(job.submit_s, 86400.0) / 3600.0) % 24;
    ++by_hour[static_cast<std::size_t>(hour)];
  }
  int peak = 0;
  int trough = 0;
  for (int h = 12; h < 16; ++h) {
    peak += by_hour[static_cast<std::size_t>(h)];
  }
  for (int h = 0; h < 4; ++h) {
    trough += by_hour[static_cast<std::size_t>(h)];
  }
  EXPECT_GT(peak, trough * 2);
}

TEST(DailyCycle, RuntimesFollowGammaMoments) {
  DailyCycleConfig config;
  config.target_jobs = 6000;
  config.max_runtime_s = 1e9;  // no truncation for the moment check
  config.failed_fraction = 0.0;
  config.cancelled_fraction = 0.0;
  const SwfTrace trace = make_trace(4, config);
  double sum = 0.0;
  std::size_t n = 0;
  for (const SwfJob& job : trace.jobs) {
    sum += job.run_s;
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  // Burst members share a base runtime with ±10% jitter; the mean is
  // preserved. Gamma mean = shape × scale = 1440 s.
  EXPECT_NEAR(mean,
              config.runtime_gamma_shape * config.runtime_gamma_scale_s,
              120.0);
}

TEST(DailyCycle, CleansLikeAnyTrace) {
  SwfTrace trace = make_trace(5);
  const CleanStats stats = clean(trace);
  EXPECT_GT(stats.total(), 0u);
  for (const SwfJob& job : trace.jobs) {
    EXPECT_EQ(job.status, static_cast<int>(SwfStatus::kCompleted));
  }
}

TEST(DailyCycle, RejectsBadConfig) {
  util::Rng rng(1);
  DailyCycleConfig config;
  config.peak_to_trough = 0.5;
  EXPECT_THROW((void)generate_daily_cycle(config, rng),
               std::invalid_argument);
  config = DailyCycleConfig{};
  config.days = 0.0;
  EXPECT_THROW((void)generate_daily_cycle(config, rng),
               std::invalid_argument);
  config = DailyCycleConfig{};
  config.runtime_gamma_shape = 0.0;
  EXPECT_THROW((void)generate_daily_cycle(config, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace aeva::trace
