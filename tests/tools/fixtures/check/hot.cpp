// Deliberately bad TU for aeva_check's hot-path-lock check. The
// fixture runner passes `--hot <this file>:Simulator::run`, so only
// the loops inside Simulator::run are hot; setup() does the same
// things legally.

#include <cstddef>

namespace util {
class Mutex {
 public:
  void lock() {}
  void unlock() {}
};
class MutexGuard {
 public:
  explicit MutexGuard(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexGuard() { mu_.unlock(); }

 private:
  Mutex& mu_;
};
}  // namespace util

struct Registry {
  double slot = 0.0;
  double& counter(const char*) { return slot; }
};

struct Simulator {
  util::Mutex mu_;
  Registry reg_;
  double events_ = 0.0;
  void setup();
  void run(std::size_t steps);
};

void Simulator::setup() {
  // Not on the hot list: locking and by-name lookup are fine here.
  const util::MutexGuard lock(mu_);
  reg_.counter("sim.events") = 0.0;
}

void Simulator::run(std::size_t steps) {
  double& events = reg_.counter("sim.events");  // pre-loop: fine
  for (std::size_t i = 0; i < steps; ++i) {
    const util::MutexGuard lock(mu_);  // EXPECT[hot-path-lock]
    events += 1.0;
  }
  std::size_t remaining = steps;
  while (remaining > 0) {
    mu_.lock();  // EXPECT[hot-path-lock]
    reg_.counter("sim.retries") += 1.0;  // EXPECT[hot-path-lock]
    mu_.unlock();
    --remaining;
  }
}
