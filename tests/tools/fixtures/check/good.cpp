// Clean translation unit for tools/analyze/aeva_check.py: every
// construct here is determinism-safe and must produce zero findings.

#include <cstddef>
#include <iostream>
#include <map>
#include <thread>
#include <unordered_map>

namespace fixture {

class Mutex {};
class MutexGuard {
 public:
  explicit MutexGuard(Mutex&) {}
};

// Integer accumulation over a hash map is order-independent: allowed.
long count_all(const std::unordered_map<int, long>& hits) {
  long total = 0;
  for (const auto& [key, value] : hits) {
    total += value;
  }
  return total;
}

// Canonicalizing through an ordered container is the sanctioned fix
// for unordered iteration feeding an output: allowed.
void dump_sorted(const std::unordered_map<int, double>& weights) {
  std::map<int, double> sorted;
  for (const auto& [key, value] : weights) {
    sorted.insert({key, value});
  }
  for (const auto& [key, value] : sorted) {
    std::cout << key << '=' << value << '\n';
  }
}

// Point lookups don't iterate: allowed.
double lookup(const std::unordered_map<int, double>& weights, int key) {
  const auto it = weights.find(key);
  return it == weights.end() ? 0.0 : it->second;
}

// Reads of thread identity/capacity are not thread spawns: allowed.
std::size_t stripe_for_this_thread(std::size_t stripes) {
  const std::thread::id id = std::this_thread::get_id();
  const std::size_t n = std::thread::hardware_concurrency();
  return (std::hash<std::thread::id>{}(id) ^ n) % stripes;
}

// Const/constexpr statics are immutable: allowed.
static const double kScale = 2.0;
static constexpr int kMaxShards = 8;

// Locks in loops are only flagged inside configured hot functions;
// this file is never on the hot list.
void drain(Mutex& mu, int n) {
  for (int i = 0; i < n; ++i) {
    const MutexGuard lock(mu);
  }
}

}  // namespace fixture
