// Deliberately bad TU for aeva_check's unordered-iteration checks.
// Marked lines must be reported exactly (check id + line).

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Writer {
  Writer& operator<<(int) { return *this; }
  Writer& operator<<(const std::string&) { return *this; }
};

// Hash-order iteration streamed straight into an output.
void dump(const std::unordered_map<int, std::string>& names, Writer& out) {
  for (const auto& [id, name] : names) {  // EXPECT[unordered-iteration-sink]
    out << id << name;
  }
}

// Hash-order iteration appended to an order-sensitive sequence.
void collect(const std::unordered_set<int>& ids, std::vector<int>& out) {
  for (const int id : ids) {  // EXPECT[unordered-iteration-sink]
    out.push_back(id);
  }
}

// Non-associative float accumulation in hash order.
double total(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& [id, weight] : weights) {
    sum += weight;  // EXPECT[unordered-float-reduction]
  }
  return sum;
}

// The checks see through type aliases of unordered containers.
using Index = std::unordered_map<std::string, int>;

void emit_index(const Index& index, Writer& out) {
  for (const auto& [key, pos] : index) {  // EXPECT[unordered-iteration-sink]
    out << key << pos;
  }
}

// Classic iterator loops are caught too, not just range-for.
void stream_legacy(const std::unordered_map<int, double>& weights,
                   Writer& out) {
  for (auto it = weights.begin(); it != weights.end(); ++it) {  // EXPECT[unordered-iteration-sink]
    out << it->first;
  }
}
