// Deliberately bad TU for aeva_check's raw-thread check.

#include <future>
#include <thread>
#include <vector>

namespace fixture {

int work() { return 42; }

void spawn_raw() {
  std::thread worker(work);  // EXPECT[raw-thread]
  worker.join();
}

void spawn_detached() {
  std::thread worker(work);  // EXPECT[raw-thread]
  worker.detach();  // EXPECT[raw-thread]
}

void spawn_async() {
  auto fut = std::async(work);  // EXPECT[raw-thread]
  (void)fut.get();
}

struct Pool {
  std::vector<std::thread> members;  // EXPECT[raw-thread]
};

}  // namespace fixture
