// Deliberately bad TU for aeva_check's mutable-static check.

#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

// Namespace-scope mutable globals couple consecutive simulations.
static int g_run_counter = 0;  // EXPECT[mutable-static]

// thread_local is still per-run mutable state the snapshot layer
// cannot capture.
static thread_local double g_scratch = 0.0;  // EXPECT[mutable-static]

// Atomics are race-free but still cross-run shared state.
static std::atomic<std::uint64_t> g_ids{1};  // EXPECT[mutable-static]

int next_id() {
  // Function-local statics hide the coupling even better.
  static std::vector<int> history;  // EXPECT[mutable-static]
  history.push_back(g_run_counter++);
  g_scratch += 1.0;
  return static_cast<int>(g_ids.fetch_add(1));
}

// Immutable statics are fine and must NOT be flagged.
static const int kLimit = 64;
static constexpr double kEpsilon = 1e-9;

int limit() { return kLimit + static_cast<int>(kEpsilon); }

}  // namespace fixture
