// Deliberately bad translation unit for the rng-entry rule. Opts into
// the scope with the marker the rule documents:
// aeva-lint: rng-entry
//
// Prose mentioning util::named_stream(seed, "weather") must NOT trip the
// rule — call sites are located on comment-stripped source.

#include "util/rng.hpp"

namespace fixture {

inline double draw(std::uint64_t seed) {
  // A novel label forks a stream the replay-stability contract never
  // sanctioned for this subsystem.
  aeva::util::Rng rogue = aeva::util::named_stream(seed, "weather");  // EXPECT[rng-entry]
  // Direct seeded construction bypasses named_stream entirely.
  aeva::util::Rng raw(seed * 2 + 1);  // EXPECT[rng-entry]
  return rogue.exponential(1.0) + raw.exponential(1.0);
}

}  // namespace fixture
