// Clean counterpart for the hot-path-container rule. Opts in with the
// marker (aeva-lint: hot-path); every construction site below is
// sanctioned, and the fixture runner asserts the file lints clean under
// an empty allowlist.

#include <cstddef>
#include <vector>

namespace fixture {

struct Pool {
  template <typename T>
  std::vector<T>& take();
};

// Column block: one justifying comment covers a whole declaration run
// (gaps of up to two lines), mirroring the simulator's FleetSoA.
struct Fleet {
  // Sized once at construction, mutated in place per event.
  std::vector<double> busy_power_w;
  std::vector<int> alloc;

  std::vector<std::size_t> view_pos;  // sized once; never grows
};

inline double drain(Pool& pool, std::size_t n) {
  // Reference bindings to reused scratch buffers are not fresh
  // containers; the `&` skip covers them (and range-for below).
  std::vector<double>& power = pool.take<double>();
  power.assign(n, 0.0);
  double total = 0.0;
  for (const double& w : power) {
    total += w;
  }
  return total;
}

}  // namespace fixture
