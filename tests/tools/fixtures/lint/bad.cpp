// Deliberately bad translation unit for tools/lint/aeva_lint.py.
// Each offending line carries an expectation marker; the fixture
// runner (tests/tools/run_tool_tests.py) asserts the tool reports
// exactly the marked (rule, line) pairs — nothing more, nothing less.
//
// The raw string below spans several lines and *mentions* banned
// constructs; if the lexer mishandled raw strings (the pre-fix lint
// swallowed newlines after unterminated quotes), every later line
// number would shift and the exact-line assertions would fail.

const char* kManual = R"doc(
  This text must be invisible to the linter: assert(x), std::mutex,
  std::cout << "hi", srand(42), and an unbalanced quote: " <- here.
)doc";

// Prose mentioning assert( and std::mutex in a comment must not trip.

struct Widget {
  int value = 0;
};

#include <mutex>  // EXPECT[raw-mutex]

void locked_update(Widget& w) {
  static std::mutex mu;               // EXPECT[raw-mutex]
  const std::lock_guard<std::mutex> lock(mu);  // EXPECT[raw-mutex]
  ++w.value;
}

void check_widget(const Widget& w) {
  assert(w.value >= 0);  // EXPECT[raw-assert]
}

#include <deque>
#include <queue>

// Queue primitives that never say how big they may grow; overload
// protection treats such buffers as a defect (docs/RESILIENCE.md).
struct RequestBuffer {
  std::deque<Widget> pending_;  // EXPECT[unbounded-queue]

  int spacer_between_the_two_declarations = 0;

  std::queue<int> backlog_;  // EXPECT[unbounded-queue]
};
