// Clean translation unit for tools/lint/aeva_lint.py: uses the
// sanctioned project idioms, so the tool must report zero findings.

namespace aeva::util {
class Mutex;
class MutexGuard;
}  // namespace aeva::util

struct Sample {
  double value = 0.0;
};

// A raw string mentioning banned constructs is fine (string contents
// are stripped before rule matching):
const char* kHelp = R"(use AEVA_REQUIRE(cond, ...) not assert; guard
state with util::MutexGuard, never std::lock_guard)";

double scaled(const Sample& s, double factor) {
  return s.value * factor;
}

#include <deque>

// Bounded work list: every producer checks size() against kWorkCapacity
// before pushing (the capacity bound lives next to the declaration).
std::deque<Sample> g_work;
