// Deliberately bad translation unit for the hot-path-container rule.
// This file lives outside HOT_PATH_FILES, so it opts in via the marker:
// aeva-lint: hot-path
//
// Expectation markers follow the bad.cpp convention: the fixture runner
// asserts the tool reports exactly the marked (rule, line) pairs.

#include <map>
#include <vector>

struct Vm {
  long long id = 0;
};

struct EventLoop {
  // A node-based table is banned outright in a hot-path file, with or
  // without a justifying comment nearby.
  std::map<long long, Vm> by_id_;  // EXPECT[hot-path-container]

  int spacer_so_the_runs_stay_separate_ = 0;

  // Sequence declarations with no nearby justification: every line of
  // the declaration run below is reported individually.
  std::vector<Vm> fresh_batch_;  // EXPECT[hot-path-container]
  std::vector<double> weights_;  // EXPECT[hot-path-container]
};
