// Clean counterpart for the rng-entry rule. Opts into the scope with
// the marker (aeva-lint: rng-entry); every RNG below enters through a
// sanctioned named stream and fans out with fork(), the idiom
// src/datacenter/failure.cpp standardized on.

#include <vector>

#include "util/rng.hpp"

namespace fixture {

inline std::vector<aeva::util::Rng> per_server_streams(std::uint64_t seed,
                                                       std::size_t n) {
  aeva::util::Rng root = aeva::util::named_stream(seed, "failures");
  std::vector<aeva::util::Rng> streams;
  streams.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    streams.push_back(root.fork(s));
  }
  return streams;
}

inline double first_domain_draw(std::uint64_t seed, double mtbf_s) {
  aeva::util::Rng domains = aeva::util::named_stream(seed, "domain-failures");
  return domains.fork(0).exponential(1.0 / mtbf_s);
}

}  // namespace fixture
