#!/usr/bin/env python3
"""Fixture self-tests for the static-analysis tools.

Runs tools/lint/aeva_lint.py and tools/analyze/aeva_check.py against the
checked-in translation units under tests/tools/fixtures/ and asserts the
reported findings match the fixtures' `EXPECT[rule]` marker comments
*exactly* — same rule/check ids, same line numbers, nothing extra,
nothing missing. This pins:

  * every check/rule actually fires on its target construct,
  * the clean fixtures stay clean (no false positives on the sanctioned
    idioms: ordered-map canonicalization, integer reductions,
    std::thread::id reads, const statics, util::MutexGuard, ...),
  * reported line numbers are exact — the lint fixtures deliberately
    open with multi-line raw strings that the lexers must not swallow
    (regression for the raw-string/unterminated-quote line drift), and
  * both aeva_check input modes (--files and --compile-commands) agree.

Marker lines double as documentation: the expected set is derived from
the fixture text itself, so fixtures can be edited without updating a
parallel expectations table.

Runs with a hermetic empty allowlist so repo allowlists cannot mask
fixture regressions. Exit 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"
LINT = REPO / "tools" / "lint" / "aeva_lint.py"
CHECK = REPO / "tools" / "analyze" / "aeva_check.py"

MARKER_RE = re.compile(r"EXPECT\[([a-z-]+)\]")

failures = 0


def expected_from(paths: list[Path]) -> set[tuple[str, str, int]]:
    """(rule, filename, line) triples from EXPECT[...] markers."""
    out = set()
    for path in paths:
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            for m in MARKER_RE.finditer(line):
                out.add((m.group(1), path.name, lineno))
    return out


def reported_from(report: dict, id_key: str) -> set[tuple[str, str, int]]:
    return {
        (f[id_key], Path(f["path"]).name, f["line"])
        for f in report["findings"]
    }


def run_tool(argv: list[str]) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable] + argv, cwd=REPO,
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def check_case(name: str, ok: bool, detail: str = "") -> None:
    global failures
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f"\n{detail}" if detail and not ok else ""))
    if not ok:
        failures += 1


def diff(expected: set, got: set) -> str:
    lines = []
    for t in sorted(expected - got):
        lines.append(f"  missing:    {t}")
    for t in sorted(got - expected):
        lines.append(f"  unexpected: {t}")
    return "\n".join(lines)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="aeva_tools_") as tmp:
        tmpdir = Path(tmp)
        empty_allowlist = tmpdir / "empty_allowlist.json"
        empty_allowlist.write_text("{}\n")

        # ---- aeva_lint: bad fixture reports exactly the marked set ----
        lint_bad = FIXTURES / "lint" / "bad.cpp"
        report_path = tmpdir / "lint_bad.json"
        rc, out = run_tool([
            str(LINT), str(lint_bad), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist), "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        expected = expected_from([lint_bad])
        got = reported_from(report, "rule")
        check_case("aeva_lint finds exactly the marked violations",
                   rc == 1 and got == expected,
                   diff(expected, got) + f"\n  exit={rc}\n{out}")

        # ---- aeva_lint: clean fixture stays clean ----
        lint_good = FIXTURES / "lint" / "good.cpp"
        rc, out = run_tool([
            str(LINT), str(lint_good), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist)])
        check_case("aeva_lint reports the clean fixture clean",
                   rc == 0, f"  exit={rc}\n{out}")

        # ---- aeva_lint: hot-path opt-in fixture reports the marked set --
        hot_bad = FIXTURES / "lint" / "hot_path_bad.cpp"
        report_path = tmpdir / "lint_hot_bad.json"
        rc, out = run_tool([
            str(LINT), str(hot_bad), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist), "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        expected = expected_from([hot_bad])
        got = reported_from(report, "rule")
        check_case("aeva_lint hot-path fixture finds exactly the marked "
                   "violations",
                   rc == 1 and got == expected,
                   diff(expected, got) + f"\n  exit={rc}\n{out}")

        # ---- aeva_lint: sanctioned hot-path idioms stay clean ----
        hot_good = FIXTURES / "lint" / "hot_path_good.cpp"
        rc, out = run_tool([
            str(LINT), str(hot_good), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist)])
        check_case("aeva_lint hot-path clean fixture stays clean",
                   rc == 0, f"  exit={rc}\n{out}")

        # ---- aeva_lint: rng-entry opt-in fixture reports the marked set --
        rng_bad = FIXTURES / "lint" / "rng_entry_bad.cpp"
        report_path = tmpdir / "lint_rng_bad.json"
        rc, out = run_tool([
            str(LINT), str(rng_bad), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist), "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        expected = expected_from([rng_bad])
        got = reported_from(report, "rule")
        check_case("aeva_lint rng-entry fixture finds exactly the marked "
                   "violations",
                   rc == 1 and got == expected,
                   diff(expected, got) + f"\n  exit={rc}\n{out}")

        # ---- aeva_lint: sanctioned named-stream idioms stay clean ----
        rng_good = FIXTURES / "lint" / "rng_entry_good.cpp"
        rc, out = run_tool([
            str(LINT), str(rng_good), "--no-compile", "--no-doc-links",
            "--allowlist", str(empty_allowlist)])
        check_case("aeva_lint rng-entry clean fixture stays clean",
                   rc == 0, f"  exit={rc}\n{out}")

        # ---- aeva_check (--files): bad fixtures report the marked set --
        check_dir = FIXTURES / "check"
        check_files = sorted(check_dir.glob("*.cpp"))
        hot_spec = (
            f"tests/tools/fixtures/check/hot.cpp:Simulator::run")
        report_path = tmpdir / "check_files.json"
        rc, out = run_tool([
            str(CHECK), "--files", *map(str, check_files),
            "--hot", hot_spec,
            "--allowlist", str(empty_allowlist),
            "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        expected = expected_from(check_files)
        got = reported_from(report, "check")
        check_case("aeva_check (--files) finds exactly the marked "
                   "violations across all fixtures",
                   rc == 1 and got == expected,
                   diff(expected, got) + f"\n  exit={rc}\n{out}")

        # ---- aeva_check: clean fixture alone exits 0 ----
        rc, out = run_tool([
            str(CHECK), "--files", str(check_dir / "good.cpp"),
            "--allowlist", str(empty_allowlist)])
        check_case("aeva_check reports the clean fixture clean",
                   rc == 0, f"  exit={rc}\n{out}")

        # ---- aeva_check (--compile-commands): same result set ----
        cc = [
            {
                "directory": str(REPO),
                "command": f"c++ -std=c++20 -c {f}",
                "file": str(f),
            }
            for f in check_files
        ]
        cc_path = tmpdir / "compile_commands.json"
        cc_path.write_text(json.dumps(cc))
        report_path = tmpdir / "check_cc.json"
        rc, out = run_tool([
            str(CHECK), "--compile-commands", str(cc_path),
            "--paths", "tests/tools/fixtures/check",
            "--hot", hot_spec,
            "--allowlist", str(empty_allowlist),
            "--json", str(report_path)])
        report = json.loads(report_path.read_text())
        got = reported_from(report, "check")
        check_case("aeva_check (--compile-commands) agrees with --files",
                   rc == 1 and got == expected,
                   diff(expected, got) + f"\n  exit={rc}\n{out}")

        # ---- aeva_check allowlist suppresses with a reason ----
        scoped = tmpdir / "scoped_allowlist.json"
        scoped.write_text(json.dumps({
            "mutable-static": {
                "tests/tools/fixtures/check/bad_static.cpp":
                    "fixture: suppression path under test"
            }
        }))
        rc, out = run_tool([
            str(CHECK), "--files", str(check_dir / "bad_static.cpp"),
            "--allowlist", str(scoped)])
        check_case("aeva_check allowlist suppresses listed findings",
                   rc == 0, f"  exit={rc}\n{out}")

        # ---- aeva_check libclang engine (only where bindings exist) ----
        probe = subprocess.run(
            [sys.executable, "-c", "import clang.cindex"],
            capture_output=True)
        if probe.returncode == 0:
            report_path = tmpdir / "check_libclang.json"
            rc, out = run_tool([
                str(CHECK), "--engine", "libclang",
                "--files", str(check_dir / "bad_static.cpp"),
                str(check_dir / "bad_thread.cpp"),
                "--allowlist", str(empty_allowlist),
                "--json", str(report_path)])
            report = json.loads(report_path.read_text())
            got = {(f["check"], Path(f["path"]).name)
                   for f in report["findings"]}
            expected_pairs = {
                (rule, name) for (rule, name, _line) in expected_from(
                    [check_dir / "bad_static.cpp",
                     check_dir / "bad_thread.cpp"])}
            check_case("aeva_check (libclang) confirms the declaration-"
                       "level findings",
                       rc == 1 and expected_pairs <= got,
                       diff(expected_pairs, got) + f"\n  exit={rc}\n{out}")
        else:
            print("[skip] libclang bindings not installed; builtin engine "
                  "already covered above")

    if failures:
        print(f"{failures} fixture test(s) failed")
        return 1
    print("all tool fixture tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
